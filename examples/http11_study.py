#!/usr/bin/env python3
"""HTTP/1.1 study: what persistent connections do to each server design.

The paper's algorithms target HTTP/1.0; Section 4 notes persistent
connections need "slightly modifying the algorithms".  This study sweeps
the mean requests-per-connection and shows the divergent effects:

* L2S amortizes hand-offs (migrations per request fall) and holds its
  throughput;
* LARD hands a connection off once and relays later requests through
  the front-end — cheap relays, but locality decays (misses creep up);
* the traditional server doesn't distribute anything and doesn't care.

Run:  python examples/http11_study.py
"""

from repro.experiments import render_table
from repro.servers import make_policy
from repro.sim import run_persistent_simulation
from repro.workload import synthesize

NODES = 8
LENGTHS = (1.0, 2.0, 4.0, 8.0, 16.0)


def main() -> None:
    trace = synthesize("calgary", num_requests=10_000, seed=11)
    print(
        f"persistent connections on {NODES} nodes "
        f"(calgary-like, {len(trace):,} requests)\n"
    )
    rows = []
    for policy_name in ("l2s", "lard", "traditional"):
        for k in LENGTHS:
            r = run_persistent_simulation(
                trace,
                make_policy(policy_name),
                nodes=NODES,
                mean_requests_per_connection=k,
            )
            rows.append(
                (
                    policy_name,
                    f"{k:.0f}",
                    f"{r.throughput_rps:,.0f}",
                    f"{r.forwarded_fraction:.2f}",
                    f"{r.miss_rate:.2%}",
                    f"{r.mean_cpu_idle:.2f}",
                )
            )
    print(
        render_table(
            ["policy", "reqs/conn", "req/s", "migrations/req", "miss", "idle"],
            rows,
        )
    )
    print(
        "\nReading the table: L2S's migrations-per-request column falls"
        "\nsteadily (hand-offs amortized over the connection), LARD's"
        "\nmigrations approach 1/k while its miss rate drifts up (relayed"
        "\nrequests always serve locally, whatever the content), and the"
        "\ntraditional rows barely move."
    )


if __name__ == "__main__":
    main()
