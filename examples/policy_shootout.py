#!/usr/bin/env python3
"""Shootout: every distribution policy on one workload.

Runs all seven policies — the paper's three (traditional, LARD, L2S),
the §6 dispatcher-based scalable LARD, and the extension baselines
(round-robin, consistent hashing, cached-DNS) — on the same synthesized
trace and prints a comparison table, with the analytic model bound on
top.

Run:  python examples/policy_shootout.py [trace] [nodes]
      e.g. python examples/policy_shootout.py clarknet 8
"""

import sys

from repro import model_bound_for_trace, run_simulation
from repro.experiments import render_table
from repro.workload import synthesize

POLICIES = (
    "l2s",
    "lard",
    "lard-ng",
    "traditional",
    "round-robin",
    "consistent-hash",
    "dns-cached",
)


def main() -> None:
    trace_name = sys.argv[1] if len(sys.argv) > 1 else "calgary"
    nodes = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    requests = 16_000

    trace = synthesize(trace_name, num_requests=requests, seed=1)
    bound = model_bound_for_trace(trace, nodes=nodes)
    print(
        f"{trace_name} x {nodes} nodes, {requests:,} requests; "
        f"model bound {bound.throughput:,.0f} req/s\n"
    )

    rows = []
    for policy in POLICIES:
        r = run_simulation(trace, policy, nodes=nodes)
        rows.append(
            (
                policy,
                f"{r.throughput_rps:,.0f}",
                f"{r.throughput_rps / bound.throughput:.0%}",
                f"{r.miss_rate:.2%}",
                f"{r.forwarded_fraction:.2%}",
                f"{r.mean_cpu_idle:.2%}",
                f"{r.load_imbalance:.2f}",
            )
        )
    print(
        render_table(
            ["policy", "req/s", "of bound", "miss", "forwarded", "cpu idle", "imbalance"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
