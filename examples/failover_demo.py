#!/usr/bin/env python3
"""Failover demo: crash a node mid-run, reboot it, watch the timeline.

The paper's central architectural criticism of LARD is its front-end:
"a single point of failure and a potential bottleneck".  This demo
crashes one node partway through a run and reboots it (cold cache) a
little later, with clients retrying under capped exponential backoff,
and shows what each server design does on the availability timeline:

* L2S / traditional — goodput dips by roughly a node's worth, the
  survivors absorb the retries, and after the reboot a cache-reheat
  miss-rate transient decays back to steady state;
* LARD, back-end crash — same graceful story;
* LARD, front-end crash — in-flight back-end work drains, then goodput
  is ZERO until the front-end itself reboots (no failover exists);
* LARD-NG with failover — the dispatcher dies, an election promotes a
  serving node after 200 ms, and service resumes with cold LARD tables.

Run:  python examples/failover_demo.py
"""

from repro.experiments import fault_recovery_experiment
from repro.faults import RetryPolicy
from repro.workload import synthesize

#: (policy, crashed node, failover_s, label)
SCENARIOS = [
    ("l2s", 3, None, "L2S, any node"),
    ("traditional", 3, None, "traditional, any node"),
    ("lard", 3, None, "LARD, a back-end"),
    ("lard", 0, None, "LARD, the front-end"),
    ("lard-ng", 0, 0.2, "LARD-NG, dispatcher (0.2s failover)"),
]


def main() -> None:
    trace = synthesize("calgary", num_requests=10_000, seed=3)
    print(
        "crash one of 8 nodes at 55% of the run, reboot it at 75% "
        "(calgary workload)\n"
    )
    print(
        f"{'scenario':>36} {'healthy':>8} {'outage':>8} {'recovered':>9} "
        f"{'retried':>8} {'reheat miss':>12}"
    )
    results = {}
    for policy, node, failover_s, label in SCENARIOS:
        r = fault_recovery_experiment(
            policy,
            trace=trace,
            nodes=8,
            failed_node=node,
            retry=RetryPolicy(max_retries=6),
            failover_s=failover_s,
        )
        results[label] = r
        print(
            f"{label:>36} {r.healthy_throughput:>8,.0f} "
            f"{r.outage_goodput:>8,.0f} {r.recovered_goodput:>9,.0f} "
            f"{r.requests_retried:>8,} "
            f"{r.reheat_miss_rate:>5.1%} -> {r.steady_miss_rate:<5.1%}"
        )

    r = results["LARD, the front-end"]
    print("\nLARD front-end crash, on the timeline (goodput per window):\n")
    print(r.timeline.render(max_rows=24))
    print(
        "\nL2S and the traditional server degrade gracefully and re-warm"
        "\nthe rebooted node's cache through normal replication; LARD"
        "\nsurvives back-end deaths, but lose the front-end and goodput"
        "\nis zero until that very node reboots.  LARD-NG's election"
        "\nbuys the outage window down to its failover delay."
    )


if __name__ == "__main__":
    main()
