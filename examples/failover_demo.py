#!/usr/bin/env python3
"""Failover demo: what one crashed node costs each server design.

The paper's central architectural criticism of LARD is its front-end:
"a single point of failure and a potential bottleneck".  This demo
kills one node halfway through a run and shows the throughput windows
before and after for L2S, the traditional server, and LARD — killing a
LARD back-end first, then the front-end itself.

Run:  python examples/failover_demo.py
"""

from repro.experiments import availability_experiment
from repro.workload import synthesize

SCENARIOS = [
    ("l2s", 3, "L2S, any node"),
    ("traditional", 3, "traditional, any node"),
    ("lard", 3, "LARD, a back-end"),
    ("lard", 0, "LARD, the front-end"),
]


def main() -> None:
    trace = synthesize("calgary", num_requests=10_000, seed=3)
    print("crashing one of 8 nodes mid-run (calgary workload)\n")
    print(f"{'scenario':>24} {'healthy':>9} {'degraded':>9} {'retained':>9} {'lost reqs':>10}")
    for policy, node, label in SCENARIOS:
        r = availability_experiment(policy, trace=trace, nodes=8, failed_node=node)
        print(
            f"{label:>24} {r.healthy_throughput:>9,.0f} {r.degraded_throughput:>9,.0f} "
            f"{r.retained_fraction:>8.0%} {r.requests_failed:>10,}"
        )
    print(
        "\nL2S and the traditional server degrade gracefully (L2S also"
        "\npays a cache-reheat transient for the files the dead node was"
        "\nserving).  LARD survives back-end deaths - but lose the"
        "\nfront-end and every request in flight or arriving fails."
    )


if __name__ == "__main__":
    main()
