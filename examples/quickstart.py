#!/usr/bin/env python3
"""Quickstart: locality-conscious vs locality-oblivious in two minutes.

Synthesizes a small Calgary-like workload, runs the paper's L2S server
and the traditional fewest-connections server on a 4-node cluster at
saturation, and compares both against the analytic model's upper bound.

Run:  python examples/quickstart.py
"""

from repro import model_bound_for_trace, run_simulation
from repro.workload import synthesize

NODES = 4
REQUESTS = 8_000  # small on purpose; see examples/policy_shootout.py


def main() -> None:
    print(f"Synthesizing a Calgary-like trace ({REQUESTS:,} requests)...")
    trace = synthesize("calgary", num_requests=REQUESTS, seed=42)
    print(
        f"  {trace.fileset.num_files:,} files, "
        f"{trace.fileset.total_bytes / 2**20:,.0f} MB footprint, "
        f"mean requested size {trace.mean_request_bytes() / 1024:.1f} KB\n"
    )

    bound = model_bound_for_trace(trace, nodes=NODES)
    print(
        f"Analytic bound for any locality-conscious server on {NODES} nodes: "
        f"{bound.throughput:,.0f} req/s (bottleneck: {bound.bottleneck})\n"
    )

    for policy in ("l2s", "traditional"):
        result = run_simulation(trace, policy, nodes=NODES)
        print(
            f"{policy:>12s}: {result.throughput_rps:7,.0f} req/s   "
            f"miss rate {result.miss_rate:6.2%}   "
            f"forwarded {result.forwarded_fraction:6.2%}   "
            f"CPU idle {result.mean_cpu_idle:6.2%}"
        )

    print(
        "\nThe locality-conscious server turns the four 32 MB memories into"
        "\none big cache; the traditional server wastes them on copies of"
        "\nthe same hot files and pays for the misses with disk time."
    )


if __name__ == "__main__":
    main()
