#!/usr/bin/env python3
"""Replay a real access log through the simulator.

The paper drives its simulator with Common Log Format server logs.  This
example shows that end of the pipeline: parse CLF lines, build a trace
(file population, popularity ranking, fitted Zipf alpha), and simulate.

A small log is generated in-process so the example is self-contained;
point ``LOG_PATH`` at a real access_log to replay your own traffic.

Run:  python examples/replay_access_log.py
"""

import numpy as np

from repro import run_simulation
from repro.workload import (
    ZipfDistribution,
    parse_common_log,
    trace_from_log_entries,
)

LOG_PATH = None  # set to a file path to replay a real log


def fabricate_log_lines(n: int = 8_000, seed: int = 7) -> list:
    """A plausible CLF log: Zipf-popular paths with stable sizes."""
    rng = np.random.default_rng(seed)
    paths = [f"/site/page{k}.html" for k in range(600)]
    sizes = np.maximum(256, rng.lognormal(np.log(12_000), 1.4, len(paths))).astype(int)
    zipf = ZipfDistribution(len(paths), alpha=0.9)
    picks = zipf.sample(n, rng)
    lines = []
    for i, rank in enumerate(picks):
        status, nbytes = 200, sizes[rank]
        if rng.random() < 0.02:  # a sprinkle of failures, dropped by the parser
            status, nbytes = 404, 0
        lines.append(
            f"client{i % 97} - - [01/Mar/2000:00:{(i // 60) % 60:02d}:{i % 60:02d} -0500] "
            f'"GET {paths[rank]} HTTP/1.0" {status} {nbytes if nbytes else "-"}'
        )
    return lines


def main() -> None:
    if LOG_PATH:
        with open(LOG_PATH) as fh:
            lines = fh.readlines()
    else:
        lines = fabricate_log_lines()

    entries = parse_common_log(lines)
    print(f"parsed {len(entries):,} complete GET requests from {len(lines):,} lines")

    trace = trace_from_log_entries(entries, name="access-log")
    stats = trace.stats()
    print(
        f"trace: {stats.num_files:,} files, mean file {stats.avg_file_kb:.1f} KB, "
        f"mean request {stats.avg_request_kb:.1f} KB, fitted alpha {stats.alpha:.2f}\n"
    )

    for policy in ("l2s", "traditional"):
        r = run_simulation(trace, policy, nodes=4, cache_bytes=2 * 1024 * 1024)
        print(
            f"{policy:>12s}: {r.throughput_rps:7,.0f} req/s  "
            f"miss {r.miss_rate:6.2%}  forwarded {r.forwarded_fraction:6.2%}"
        )


if __name__ == "__main__":
    main()
