#!/usr/bin/env python3
"""Capacity planning with the analytic model.

A downstream use the paper motivates: you operate a WWW hosting service
and need to know how many cluster nodes hit a target request rate — and
whether locality-conscious distribution is worth deploying for *your*
content mix.  The open queuing-network model answers both instantly,
without a simulation.

Run:  python examples/capacity_planning.py
"""

from repro.model import MB, ModelParameters, bound_for_population

# Describe the content: a hosting service with many mid-size files.
NUM_FILES = 120_000
MEAN_REQUEST_KB = 24.0
ZIPF_ALPHA = 0.85
NODE_MEMORY = 256 * MB
TARGET_RPS = 12_000.0


def nodes_needed(kind: str, max_nodes: int = 256):
    """Smallest cluster hitting the target, or None if unreachable.

    A disk-bound oblivious server may *never* reach the target no matter
    how many nodes are added proportionally — that is the point the
    paper makes about miss costs.
    """
    for nodes in range(1, max_nodes + 1):
        params = ModelParameters(
            nodes=nodes,
            cache_bytes=NODE_MEMORY,
            alpha=ZIPF_ALPHA,
            replication=0.15 if kind == "conscious" else 0.0,
        )
        bound = bound_for_population(kind, params, MEAN_REQUEST_KB, NUM_FILES)
        if bound.throughput >= TARGET_RPS:
            return nodes
    return None


def main() -> None:
    print(
        f"Content: {NUM_FILES:,} files, mean requested size "
        f"{MEAN_REQUEST_KB} KB, Zipf alpha {ZIPF_ALPHA}, "
        f"{NODE_MEMORY // MB} MB per node"
    )
    print(f"Target: {TARGET_RPS:,.0f} requests/second\n")

    print(f"{'nodes':>6} {'oblivious':>12} {'conscious':>12}  bottlenecks")
    for nodes in (4, 8, 16, 24, 32, 48):
        rows = []
        for kind in ("oblivious", "conscious"):
            params = ModelParameters(
                nodes=nodes,
                cache_bytes=NODE_MEMORY,
                alpha=ZIPF_ALPHA,
                replication=0.15 if kind == "conscious" else 0.0,
            )
            rows.append(bound_for_population(kind, params, MEAN_REQUEST_KB, NUM_FILES))
        obl, con = rows
        print(
            f"{nodes:>6} {obl.throughput:>12,.0f} {con.throughput:>12,.0f}  "
            f"{obl.bottleneck} / {con.bottleneck}"
        )

    n_obl = nodes_needed("oblivious")
    n_con = nodes_needed("conscious")
    obl_text = f"{n_obl}" if n_obl else "unreachable (disk-bound at any size)"
    print(
        f"\nNodes needed for {TARGET_RPS:,.0f} req/s: "
        f"locality-oblivious {obl_text}, locality-conscious {n_con}."
    )
    if n_obl is None:
        print(
            "Per-node caches never cover this working set, so the oblivious\n"
            "server stays disk-bound — exactly the regime where the paper's\n"
            "locality-conscious distribution is worth up to 7x."
        )


if __name__ == "__main__":
    main()
