#!/usr/bin/env python3
"""Explore the analytic model's parameter space (figures 3-6, live).

Prints the throughput surfaces of both server designs and the locality
gain as terminal heat maps, then walks one slice in detail showing the
bottleneck hand-offs (disk -> CPU -> router) as the hit rate climbs.

Run:  python examples/model_explorer.py
"""

from repro.experiments import model_figures
from repro.experiments.figures import render_figure3, render_figure4, render_figure5
from repro.model import ModelParameters, SurfaceGrid, conscious_result, oblivious_result


def main() -> None:
    grid = SurfaceGrid(
        hit_rates=tuple(h / 10 for h in range(11)),
        sizes_kb=tuple(float(s) for s in (4, 8, 16, 32, 48, 64, 96, 128)),
    )
    surfaces = model_figures(grid=grid)
    print(render_figure3(surfaces), "\n")
    print(render_figure4(surfaces), "\n")
    print(render_figure5(surfaces), "\n")
    print(
        f"peak locality gain: {surfaces.peak_increase():.1f}x at "
        f"(hit rate, size) = {surfaces.peak_location()}\n"
    )

    params = ModelParameters()
    size_kb = 8.0
    print(f"slice at S = {size_kb:.0f} KB (16 nodes, 128 MB memories):")
    print(f"{'Hlo':>5} {'oblivious':>11} {'bottleneck':>11} {'conscious':>11} {'bottleneck':>11} {'gain':>6}")
    for h in grid.hit_rates:
        obl = oblivious_result(params, size_kb, h)
        con = conscious_result(params, size_kb, h)
        print(
            f"{h:>5.2f} {obl.throughput:>11,.0f} {obl.bottleneck:>11} "
            f"{con.throughput:>11,.0f} {con.bottleneck:>11} "
            f"{con.throughput / obl.throughput:>6.2f}"
        )


if __name__ == "__main__":
    main()
