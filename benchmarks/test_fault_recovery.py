"""A2 — crash *and reboot* on the fault-injection subsystem.

The acceptance scenario for ``repro.faults``: one node crashes partway
through a run and reboots (cold cache) later, clients retry with capped
exponential backoff, and the availability timeline shows

* LARD, front-end crash — after the in-flight back-end work drains,
  goodput is ZERO until the front-end itself reboots;
* L2S / traditional — degraded-then-recovered goodput, with a visible
  cache-reheat miss-rate transient after the reboot;
* LARD-NG with failover — the election bounds the outage: goodput
  resumes on the promoted dispatcher well before the dead node reboots;
* determinism — a fixed seed gives bit-identical timelines across runs.
"""

from conftest import run_once

from repro.experiments import fault_recovery_experiment, render_table
from repro.faults import RetryPolicy
from repro.workload import synthesize

NODES = 8
RETRY = RetryPolicy(max_retries=6)


def _trace():
    return synthesize("calgary", num_requests=10_000, seed=3)


def test_fault_recovery(benchmark):
    trace = _trace()

    def compute():
        return {
            ("l2s", 3, None): fault_recovery_experiment(
                "l2s", trace=trace, nodes=NODES, failed_node=3, retry=RETRY
            ),
            ("traditional", 3, None): fault_recovery_experiment(
                "traditional", trace=trace, nodes=NODES, failed_node=3, retry=RETRY
            ),
            ("lard", 0, None): fault_recovery_experiment(
                "lard", trace=trace, nodes=NODES, failed_node=0, retry=RETRY
            ),
            ("lard-ng", 0, 0.2): fault_recovery_experiment(
                "lard-ng",
                trace=trace,
                nodes=NODES,
                failed_node=0,
                retry=RETRY,
                failover_s=0.2,
            ),
        }

    results = run_once(benchmark, compute)
    print("\ncrash at 55%, reboot at 75% of the run (8 nodes, calgary):")
    print(
        render_table(
            ["policy", "killed", "healthy", "outage", "recovered", "retried",
             "reheat", "steady"],
            [
                (
                    p,
                    node,
                    f"{r.healthy_throughput:,.0f}",
                    f"{r.outage_goodput:,.0f}",
                    f"{r.recovered_goodput:,.0f}",
                    r.requests_retried,
                    f"{r.reheat_miss_rate:.2f}",
                    f"{r.steady_miss_rate:.2f}",
                )
                for (p, node, _), r in results.items()
            ],
        )
    )

    l2s = results[("l2s", 3, None)]
    trad = results[("traditional", 3, None)]
    lard = results[("lard", 0, None)]
    lardng = results[("lard-ng", 0, 0.2)]

    # LARD front-end crash: total outage once the in-flight hand-offs
    # drain, and heavy client retry pressure across the outage.
    assert lard.outage_goodput < 0.05 * lard.healthy_throughput
    assert lard.requests_retried > 100
    # ...but the reboot brings service back.
    assert lard.recovered_goodput > 0.5 * lard.healthy_throughput
    assert lard.timeline.goodput_between(
        lard.recover_at, lard.recover_at + 2.0
    ) > 0

    # Decentralized designs: degraded during the outage (but serving),
    # recovered after the reboot.
    for r in (l2s, trad):
        assert r.outage_goodput > 0.3 * r.healthy_throughput
        assert r.recovered_goodput > 0.6 * r.healthy_throughput
        assert r.requests_failed == 0  # retries absorb every abort
    # The rebooted node comes back cold: the post-reboot miss rate runs
    # above the end-of-run steady state (the reheat transient).
    assert l2s.reheat_miss_rate > l2s.steady_miss_rate
    assert trad.reheat_miss_rate > trad.steady_miss_rate

    # LARD-NG failover: the election (0.2 s) restores service without
    # waiting for the dead dispatcher's reboot — the outage window
    # retains real goodput where plain LARD shows none.
    assert lardng.outage_goodput > 0.25 * lardng.healthy_throughput
    assert lardng.timeline.samples, "timeline must have sampled"

    # Node-state strings witness the crash and the reboot.
    states = [s.node_states for s in lard.timeline.samples]
    assert any(s.startswith("D") for s in states)
    assert states[-1] == "U" * NODES


def test_fault_recovery_deterministic(benchmark):
    trace = synthesize("clarknet", num_requests=4_000, seed=1)

    def compute():
        return [
            fault_recovery_experiment(
                "l2s", trace=trace, nodes=4, failed_node=1, retry=RETRY
            )
            for _ in range(2)
        ]

    a, b = run_once(benchmark, compute)
    # Bit-identical timelines for a fixed seed: same sample instants,
    # goodput, miss rates, retry counts, and node states (dataclass
    # equality compares every field exactly).
    assert a.timeline.samples == b.timeline.samples
    assert a.events == b.events
    assert a.faulted_throughput == b.faulted_throughput
