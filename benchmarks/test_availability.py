"""A1 — availability under node failure (the paper's §1/§4 claims).

"[the LARD front-end] represents both a single point of failure and a
potential bottleneck ... [in L2S] the system is bottleneck-free and has
no single point of failure."  We crash one node mid-measurement:

* L2S and the traditional server keep serving on the survivors;
* LARD survives a back-end crash but a front-end crash is a total
  outage — every subsequent request fails.
"""

from conftest import run_once

from repro.experiments import availability_experiment, bench_requests, render_table
from repro.workload import synthesize


def test_availability(benchmark):
    trace = synthesize("calgary", num_requests=min(bench_requests(), 12_000))

    def compute():
        return {
            ("l2s", 3): availability_experiment("l2s", trace=trace, failed_node=3),
            ("traditional", 3): availability_experiment(
                "traditional", trace=trace, failed_node=3
            ),
            ("lard", 3): availability_experiment("lard", trace=trace, failed_node=3),
            ("lard", 0): availability_experiment("lard", trace=trace, failed_node=0),
        }

    results = run_once(benchmark, compute)
    print("\nhealthy vs crashed-node throughput (8 nodes, calgary):")
    print(
        render_table(
            ["policy", "killed", "healthy", "degraded", "retained", "failed reqs"],
            [
                (
                    p,
                    node,
                    f"{r.healthy_throughput:,.0f}",
                    f"{r.degraded_throughput:,.0f}",
                    f"{r.retained_fraction:.2f}",
                    r.requests_failed,
                )
                for (p, node), r in results.items()
            ],
        )
    )

    # Decentralized designs keep serving, losing roughly a node's worth
    # of capacity (with slack for reassignment inefficiency).
    assert 0.55 < results[("l2s", 3)].retained_fraction <= 1.05
    assert results[("l2s", 3)].completed_after > 1000
    assert 0.6 < results[("traditional", 3)].retained_fraction <= 1.05
    # LARD: back-end death survivable...
    assert 0.5 < results[("lard", 3)].retained_fraction <= 1.05
    # ...front-end death is a total outage: only the handful of requests
    # already handed off to back-ends drain; everything else fails.
    assert results[("lard", 0)].retained_fraction < 0.15
    assert results[("lard", 0)].completed_after < 1000
    assert results[("lard", 0)].requests_failed > 1000
    # Few requests are lost outright when a non-critical node dies.
    assert results[("l2s", 3)].requests_failed < 200
