"""Ablations of this reproduction's own design choices (DESIGN.md §5).

* MPL: the closed-loop buffer depth — throughput rises mildly until the
  mean connection count crosses L2S's T=20, then replication churn
  collapses it (why the default is 16).
* DFS layout: replicated disks vs hash-partitioned content.
* L2S variant: eager-local replication vs the strict both-overloaded
  reading of the paper's prose.
* Consistent hashing: locality without load awareness (extension
  baseline) loses badly to L2S on a hot-file workload.
"""

from conftest import run_once

from repro.experiments import (
    bench_requests,
    dfs_ablation,
    l2s_variant_ablation,
    mpl_ablation,
    render_series,
)
from repro.sim import run_simulation
from repro.workload import synthesize


def test_mpl_ablation(benchmark):
    results = run_once(benchmark, lambda: mpl_ablation(mpls=(8, 16, 24)))
    mpls = sorted(results)
    print("\nL2S throughput by multiprogramming level, calgary @ 16 nodes:")
    print(
        render_series(
            "mpl_per_node",
            mpls,
            {
                "throughput": [f"{results[m].throughput_rps:,.0f}" for m in mpls],
                "replications": [
                    results[m].policy_stats["replications"] for m in mpls
                ],
            },
        )
    )
    # Deeper buffers help until T=20 is crossed, where churn sets in.
    assert results[16].throughput_rps > 0.9 * results[8].throughput_rps
    assert results[24].throughput_rps < results[16].throughput_rps
    assert (
        results[24].policy_stats["replications"]
        > 5 * results[16].policy_stats["replications"]
    )


def test_dfs_ablation(benchmark):
    results = run_once(benchmark, dfs_ablation)
    print("\ntraditional-server throughput by DFS layout, calgary @ 8 nodes:")
    for layout, r in results.items():
        print(f"  {layout:>12s}: {r.throughput_rps:,.0f} req/s (miss {r.miss_rate:.2%})")
    # Remote fetches cost messages but the disk time dominates, so the
    # penalty is visible yet bounded.
    assert results["partitioned"].throughput_rps <= results["replicated"].throughput_rps
    assert results["partitioned"].throughput_rps > 0.5 * results["replicated"].throughput_rps


def test_l2s_variant_ablation(benchmark):
    results = run_once(benchmark, l2s_variant_ablation)
    print("\nL2S replication-rule variants, calgary @ 16 nodes:")
    for label, r in results.items():
        print(
            f"  {label:>7s}: {r.throughput_rps:,.0f} req/s "
            f"(repl {r.policy_stats['replications']}, idle {r.mean_cpu_idle:.2f})"
        )
    # The eager variant must not lose to the strict one; under round-robin
    # arrivals the strict rule starves replication of hot files.
    assert results["eager"].throughput_rps >= 0.95 * results["strict"].throughput_rps


def test_cache_policy_ablation(benchmark):
    """Does LRU matter?  Swap GreedyDual-Size and LFU into every node.

    For L2S (big aggregate cache, misses already rare) the policy
    barely matters; for the traditional server (32 MB per node against
    a ~350 MB working set) the replacement policy moves the miss rate —
    GDS's small-file bias wins objects but not necessarily bytes."""
    from repro.cluster import ClusterConfig

    trace = synthesize("calgary", num_requests=min(bench_requests(), 12_000))

    def compute():
        out = {}
        for cache in ("lru", "gds", "lfu"):
            cfg = ClusterConfig(nodes=8, cache_policy=cache)
            for policy in ("traditional", "l2s"):
                out[(policy, cache)] = run_simulation(
                    trace, policy, config=cfg, passes=2
                )
        return out

    results = run_once(benchmark, compute)
    print("\ncache replacement policies (8 nodes, calgary):")
    for (policy, cache), r in sorted(results.items()):
        print(
            f"  {policy:>12s}/{cache}: {r.throughput_rps:,.0f} req/s "
            f"(miss {r.miss_rate:.2%})"
        )
    # L2S is insensitive: its aggregate cache already fits the hot set.
    l2s = [results[("l2s", c)].throughput_rps for c in ("lru", "gds", "lfu")]
    assert (max(l2s) - min(l2s)) / max(l2s) < 0.15
    # The traditional server's miss rate depends visibly on the policy.
    trad_miss = {c: results[("traditional", c)].miss_rate for c in ("lru", "gds", "lfu")}
    assert max(trad_miss.values()) - min(trad_miss.values()) > 0.01


def test_switch_contention_ablation(benchmark):
    """The paper skips contention 'within the network fabric itself'.

    With an output-queued switch model enabled, L2S throughput moves by
    only a few percent at 1 Gbit/s — the simplification is safe."""
    from repro.cluster import ClusterConfig

    trace = synthesize("calgary", num_requests=min(bench_requests(), 12_000))

    def compute():
        out = {}
        for label, flag in (("ideal fabric", False), ("output-queued", True)):
            cfg = ClusterConfig(nodes=16, model_switch_contention=flag)
            out[label] = run_simulation(trace, "l2s", config=cfg, passes=2)
        return out

    results = run_once(benchmark, compute)
    print("\nswitch-fabric contention (L2S, calgary @ 16 nodes):")
    for label, r in results.items():
        print(f"  {label:>14s}: {r.throughput_rps:,.0f} req/s")
    ideal = results["ideal fabric"].throughput_rps
    queued = results["output-queued"].throughput_rps
    # "Very fast switched network": the difference is a few percent of
    # noise either way (the added delays perturb L2S's threshold timing
    # more than they cost bandwidth).
    assert 0.93 < queued / ideal < 1.07


def test_consistent_hash_extension(benchmark):
    trace = synthesize("calgary", num_requests=bench_requests())
    results = run_once(
        benchmark,
        lambda: {
            p: run_simulation(trace, p, nodes=16, passes=2)
            for p in ("consistent-hash", "l2s")
        },
    )
    print("\nlocality without load balancing, calgary @ 16 nodes:")
    for p, r in results.items():
        print(
            f"  {p:>16s}: {r.throughput_rps:,.0f} req/s "
            f"(miss {r.miss_rate:.2%}, idle {r.mean_cpu_idle:.2f}, "
            f"imbalance {r.load_imbalance:.2f})"
        )
    ch, l2s = results["consistent-hash"], results["l2s"]
    # Hash partitioning gets the locality (low miss rate)...
    assert ch.miss_rate < 0.05
    # ...but its load imbalance loses to L2S's balanced distribution.
    assert l2s.throughput_rps > 1.3 * ch.throughput_rps
    assert ch.load_imbalance > l2s.load_imbalance
