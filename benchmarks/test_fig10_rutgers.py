"""F10 — Figure 10: throughput vs cluster size, Rutgers trace.

Paper landmarks at 16 nodes: L2S +56% over LARD and +442% over the
traditional server — Rutgers has the biggest working set (735 MB), so
single-node caches are hopeless and locality-conscious distribution
shines.
"""

from figshared import figure_experiment


def test_fig10_rutgers(benchmark, scaling_store):
    exp = figure_experiment(benchmark, scaling_store, "rutgers", "Figure 10")

    series = exp.throughput_series()
    i16 = exp.node_counts.index(16)
    assert series["l2s"][i16] > 1.1 * series["lard"][i16]
    assert series["l2s"][i16] > 3.0 * series["traditional"][i16]

    miss = exp.metric_series("miss_rate")
    assert miss["traditional"][i16] > 0.3  # oversized working set
