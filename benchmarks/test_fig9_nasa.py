"""F9 — Figure 9: throughput vs cluster size, NASA trace.

Paper landmarks: NASA's large requested files (47 KB) make the per-file
reply cost dominate, so the absolute throughputs are the lowest of the
four traces and the L2S advantage over LARD is the smallest (paper:
+7%; we allow a band around parity).
"""

from figshared import figure_experiment


def test_fig9_nasa(benchmark, scaling_store):
    # NASA is the near-parity trace: allow L2S down to 0.9x LARD.  Its
    # 47 KB replies keep LARD's back-ends (not the front-end) the
    # bottleneck, so the front-end plateau is not yet visible at 16
    # nodes and that check is skipped.
    exp = figure_experiment(
        benchmark,
        scaling_store,
        "nasa",
        "Figure 9",
        l2s_over_lard_at_16=0.9,
        lard_plateaus=False,
    )

    series = exp.throughput_series()
    i16 = exp.node_counts.index(16)
    # The smallest L2S/LARD gap of the four traces.
    gap_nasa = series["l2s"][i16] / series["lard"][i16]
    assert gap_nasa < 1.4
    # Lowest absolute model bound of the four traces (~4000 req/s).
    assert series["model"][i16] < 6_000
