"""Shared state for the benchmark suite.

The four scaling experiments (figures 7-10) also feed the Section 5.2
analyses (miss rates, idle times, forwarding), so their results are
computed once per session and shared.  The benchmark that touches a
trace first pays its compute time; later benchmarks reuse the cache and
time only their own analysis.

Knobs:
    REPRO_BENCH_REQUESTS  synthetic requests per trace (default 16000).
"""

from __future__ import annotations

import pytest

from repro.experiments import model_figures, scaling_experiment


class _ScalingStore:
    """Session cache of per-trace scaling experiments."""

    def __init__(self):
        self._cache = {}

    def get(self, trace_name: str):
        if trace_name not in self._cache:
            self._cache[trace_name] = scaling_experiment(trace_name)
        return self._cache[trace_name]


@pytest.fixture(scope="session")
def scaling_store():
    return _ScalingStore()


@pytest.fixture(scope="session")
def surfaces_cache():
    holder = {}

    def get():
        if "s" not in holder:
            holder["s"] = model_figures()
        return holder["s"]

    return get


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
