"""Shared setup and assertions for the figure 7-10 scaling benchmarks.

Also the bridge to the perf suite: :func:`canonical_perf_simulation`
delegates to :mod:`repro.bench`, so ``benchmarks/perf/`` and
``repro bench`` measure exactly the scenario shape the figures run.
"""

from __future__ import annotations

from repro.bench import canonical_simulation
from repro.experiments import ScalingExperiment


def print_figure(exp: ScalingExperiment, figure: str) -> None:
    print(f"\n{figure}: throughput (req/s) for the {exp.trace} trace")
    print(exp.render())


def figure_experiment(
    benchmark, scaling_store, trace: str, figure: str, **shape_kwargs
) -> ScalingExperiment:
    """The setup shared by every figure 7-10 benchmark: run the trace's
    scaling experiment exactly once under pytest-benchmark timing, print
    the figure, and assert the common paper shape.  Returns the
    experiment for trace-specific assertions."""
    exp = benchmark.pedantic(
        scaling_store.get, args=(trace,), rounds=1, iterations=1
    )
    print_figure(exp, figure)
    assert_paper_shape(exp, **shape_kwargs)
    return exp


def canonical_perf_simulation(policy: str, num_requests=None):
    """Build the canonical 16-node perf scenario for ``policy``.

    Thin wrapper over :func:`repro.bench.canonical_simulation` so the
    perf suite and the figure benchmarks share one scenario definition.
    """
    if num_requests is None:
        return canonical_simulation(policy)
    return canonical_simulation(policy, num_requests=num_requests)


def assert_paper_shape(
    exp: ScalingExperiment,
    l2s_within: float = 0.45,
    l2s_over_lard_at_16: float = 1.0,
    lard_plateaus: bool = True,
) -> None:
    """The shape claims common to figures 7-10.

    * the model bound dominates every simulated system;
    * every system scales from 2 to 16 nodes (LARD may plateau late);
    * at 16 nodes: L2S >= LARD (within ``l2s_over_lard_at_16`` slack)
      and L2S > traditional by a wide margin;
    * L2S lands within ``l2s_within`` of the model bound at 16 nodes
      (the paper achieves 22%; our closed-loop regime is documented to
      land near 20-45% depending on the trace);
    * with ``lard_plateaus``, LARD saturates: its 8 -> 16 node gain is
      small (front-end bound).  NASA's expensive replies keep LARD
      back-end-bound below the front-end limit, so its curve still grows
      at 16 nodes — there the check is skipped.
    """
    series = exp.throughput_series()
    n_idx = {n: i for i, n in enumerate(exp.node_counts)}
    i16, i8, i2 = n_idx[16], n_idx[8], n_idx[2]

    for system in ("l2s", "lard", "traditional"):
        for i in range(len(exp.node_counts)):
            assert series[system][i] <= series["model"][i] * 1.08, (
                f"{system} exceeds the model bound at "
                f"{exp.node_counts[i]} nodes"
            )

    # Scaling from 2 to 16 nodes for every system.
    for system in ("l2s", "lard", "traditional"):
        assert series[system][i16] > series[system][i2], f"{system} did not scale"

    l2s16, lard16, trad16 = (
        series["l2s"][i16],
        series["lard"][i16],
        series["traditional"][i16],
    )
    assert l2s16 >= lard16 * l2s_over_lard_at_16
    assert l2s16 > 1.5 * trad16
    assert l2s16 >= (1.0 - l2s_within) * series["model"][i16]

    if lard_plateaus:
        # LARD's front-end plateau: the 8->16 gain is far below 2x.
        assert series["lard"][i16] < 1.5 * series["lard"][i8]

    # LARD forwards 100% of requests; L2S forwards fewer.
    fwd = exp.metric_series("forwarded_fraction")
    assert fwd["lard"][i16] == 1.0
    assert fwd["l2s"][i16] < 1.0
    assert fwd["traditional"][i16] == 0.0
