"""H1 — heterogeneous cluster extension.

The paper assumes "all cluster nodes are equally powerful".  Relaxing
that probes the robustness of connection-count load metrics: with half
the nodes at half CPU speed, policies that watch connection counts
(L2S, the fewest-connections dispatcher) shift work towards the fast
nodes automatically, while blind round-robin splits evenly and lets the
slow half bottleneck the cluster.
"""

from conftest import run_once

from repro.cluster import ClusterConfig
from repro.experiments import bench_requests, render_table
from repro.sim import run_simulation
from repro.workload import synthesize

NODES = 8
SPEEDS = (1.0, 1.0, 1.0, 1.0, 0.5, 0.5, 0.5, 0.5)


def test_heterogeneous(benchmark):
    trace = synthesize("calgary", num_requests=min(bench_requests(), 12_000))

    def compute():
        out = {}
        for label, speeds in (("homogeneous", None), ("mixed", SPEEDS)):
            cfg = ClusterConfig(nodes=NODES, node_speeds=speeds)
            for policy in ("l2s", "round-robin", "traditional"):
                out[(label, policy)] = run_simulation(
                    trace, policy, config=cfg, passes=2
                )
        return out

    results = run_once(benchmark, compute)
    print("\nhalf the nodes at half speed (8 nodes, calgary):")
    print(
        render_table(
            ["cluster", "policy", "req/s", "idle", "imbalance"],
            [
                (
                    label,
                    policy,
                    f"{r.throughput_rps:,.0f}",
                    f"{r.mean_cpu_idle:.2f}",
                    f"{r.load_imbalance:.2f}",
                )
                for (label, policy), r in results.items()
            ],
        )
    )

    # Aggregate CPU capacity of the mixed cluster is 75% of homogeneous.
    for policy in ("l2s", "traditional"):
        homo = results[("homogeneous", policy)].throughput_rps
        mixed = results[("mixed", policy)].throughput_rps
        # Load-aware policies keep most of the proportional capacity.
        assert mixed > 0.55 * homo, policy
    # L2S still leads on the mixed cluster.
    assert (
        results[("mixed", "l2s")].throughput_rps
        > results[("mixed", "traditional")].throughput_rps
    )
    # The fast nodes complete more work under load-aware policies.
    mixed_l2s = results[("mixed", "l2s")]
    fast = sum(mixed_l2s.node_completions[:4])
    slow = sum(mixed_l2s.node_completions[4:])
    assert fast > slow
    # The CPU-bound policy (L2S) loses close to the removed capacity
    # fraction and no more: its connection-count metric absorbs the
    # heterogeneity.  (The oblivious policies are *disk*-bound on this
    # workload, so CPU speeds barely move them — visible in the table.)
    l2s_ratio = (
        results[("mixed", "l2s")].throughput_rps
        / results[("homogeneous", "l2s")].throughput_rps
    )
    assert 0.60 < l2s_ratio < 0.90  # aggregate capacity fraction is 0.75