"""F4 — Figure 4: throughput surface of the locality-conscious server.

Shape claims checked: the significant-throughput region is much larger
than the oblivious server's (files < 96 KB, hit rates above ~50%), and
the peak holds over a wide plateau.
"""

import numpy as np
from conftest import run_once

from repro.experiments.figures import render_figure4


def test_fig4_conscious_surface(benchmark, surfaces_cache):
    s = run_once(benchmark, surfaces_cache)
    print("\n" + render_figure4(s))

    con = s.conscious
    grid = s.grid
    hits = np.array(grid.hit_rates)
    sizes = np.array(grid.sizes_kb)
    assert 2.0e4 < con.max() < 2.6e4

    # The conscious server is near its peak already at hit rate 0.8 and
    # small files...
    i80 = int(np.argmin(np.abs(hits - 0.8)))
    assert con[i80, 0] > 0.9 * con.max()
    # ...while the oblivious server is nowhere close there.
    assert s.oblivious[i80, 0] < 0.3 * s.oblivious.max()

    # Plateau size: count grid cells within 80% of peak.
    con_plateau = (con > 0.8 * con.max()).sum()
    obl_plateau = (s.oblivious > 0.8 * s.oblivious.max()).sum()
    assert con_plateau > 2 * obl_plateau
