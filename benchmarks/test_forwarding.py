"""S3 — Section 5.2 text: fraction of forwarded requests.

"Recall that LARD forwards 100% of the requests.  ...for clusters of up
to 4 nodes L2S forwards at least 15% fewer requests than the LARD
server.  For 16 nodes, L2S still forwards at least about 8% fewer
requests... but this difference can be as significant as about 25%."
"""

from conftest import run_once

from repro.experiments import render_series


def test_forwarding(benchmark, scaling_store):
    exps = run_once(
        benchmark,
        lambda: {t: scaling_store.get(t) for t in ("calgary", "clarknet")},
    )
    for trace, exp in exps.items():
        fwd = exp.metric_series("forwarded_fraction")
        print(f"\nforwarded fraction, {trace}:")
        print(
            render_series(
                "nodes",
                list(exp.node_counts),
                {k: [f"{v:.3f}" for v in vs] for k, vs in fwd.items()},
            )
        )
        for i, n in enumerate(exp.node_counts):
            assert fwd["lard"][i] == 1.0, f"LARD must forward 100% at {n} nodes"
            assert fwd["traditional"][i] == 0.0
        # L2S forwards strictly less than LARD everywhere; the gap is at
        # least ~8% at 16 nodes and larger at 4 nodes.
        i16 = exp.node_counts.index(16)
        i4 = exp.node_counts.index(4)
        assert fwd["l2s"][i16] <= 0.95
        assert fwd["l2s"][i4] <= 0.85
