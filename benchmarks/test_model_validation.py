"""V1 — validation: the model's Zipf hit rates vs exact LRU behaviour.

The analytic model assumes the ``C/S`` most popular files are always
cached (``H = z(C/S, F)``).  This bench computes the *exact* LRU miss
behaviour of each synthesized trace (Mattson stack distances) and
compares:

* the model's predicted sequential hit rate vs exact LRU at 32 MB — the
  model should be mildly optimistic (perfect frequency caching beats
  LRU) but in the same band;
* the paper's Section 5.1 statement that the traces produce "cache miss
  rates between 9 and 28% assuming a sequential server with 32 MBytes".
"""

from conftest import run_once

from repro.experiments import bench_requests, render_table
from repro.model import MB
from repro.workload import miss_rate_curve, model_vs_lru_hit_rate, synthesize

TRACES = ("calgary", "clarknet", "nasa", "rutgers")


def test_model_validation(benchmark):
    n = bench_requests()

    def compute():
        out = {}
        for name in TRACES:
            trace = synthesize(name, num_requests=n)
            predicted, actual = model_vs_lru_hit_rate(trace, 32 * MB)
            curve = miss_rate_curve(
                trace, [8 * MB, 32 * MB, 128 * MB], include_cold=False
            )
            out[name] = (predicted, actual, curve)
        return out

    results = run_once(benchmark, compute)
    print("\nsequential 32 MB cache: model z(C/S, F) vs exact LRU hit rate")
    print(
        render_table(
            ["trace", "model H", "LRU H", "miss@8MB", "miss@32MB", "miss@128MB"],
            [
                (
                    name,
                    f"{pred:.3f}",
                    f"{act:.3f}",
                    f"{curve[0][1]:.3f}",
                    f"{curve[1][1]:.3f}",
                    f"{curve[2][1]:.3f}",
                )
                for name, (pred, act, curve) in results.items()
            ],
        )
    )

    for name, (predicted, actual, curve) in results.items():
        # Same band; model optimistic by at most a modest margin.
        assert abs(predicted - actual) < 0.22, name
        # Paper: sequential 32 MB miss rates between ~9 and ~28% (we
        # allow a wider band for the scaled synthetic traces).
        miss32 = curve[1][1]
        assert 0.02 < miss32 < 0.40, f"{name}: {miss32:.3f}"
        # Bigger caches mean fewer misses.
        assert curve[0][1] >= curve[1][1] >= curve[2][1]
