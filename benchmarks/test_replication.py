"""E1 — error bars: do the headline comparisons survive seed noise?

Replicates the Calgary 16-node comparison over several trace
realizations and checks the L2S > LARD > traditional ordering holds
with non-overlapping confidence intervals.
"""

from conftest import run_once

from repro.experiments import bench_requests
from repro.experiments.replication_stats import replicate_throughput

SEEDS = (0, 1, 2)


def test_replication(benchmark):
    n = min(bench_requests(), 12_000)

    def compute():
        return {
            policy: replicate_throughput(
                "calgary", policy, nodes=16, seeds=SEEDS, num_requests=n
            )
            for policy in ("l2s", "lard", "traditional")
        }

    metrics = run_once(benchmark, compute)
    print("\nthroughput across trace seeds (calgary, 16 nodes):")
    for m in metrics.values():
        print(f"  {m}")

    l2s, lard, trad = metrics["l2s"], metrics["lard"], metrics["traditional"]
    # Seed noise is bounded relative to the means.
    for m in metrics.values():
        assert m.relative_half_width < 0.6, str(m)
    # The headline win is robust: L2S's interval clears both rivals'.
    assert l2s.interval[0] > lard.interval[1]
    assert l2s.interval[0] > trad.interval[1]
    # LARD vs traditional: ordered in the mean (their intervals can
    # overlap at n=3 because the traditional server's miss rate varies
    # strongly across trace realizations).
    assert lard.mean > trad.mean
