"""M1 — Section 3.2 text: model sensitivity to node memory size.

"For a memory size of 512 MBytes, these gains peak at a factor of about
6.5" (down from ~7 at 128 MB): larger memories shrink the locality
benefit everywhere but it stays significant.
"""

from conftest import run_once

from repro.experiments import model_memory_sensitivity, render_series


def test_model_memory_sensitivity(benchmark):
    peaks = run_once(benchmark, lambda: model_memory_sensitivity((128, 256, 512)))
    print("\npeak locality gain by node memory:")
    print(
        render_series(
            "memory_mb",
            list(peaks.keys()),
            {"peak_increase": [f"{v:.2f}" for v in peaks.values()]},
        )
    )
    assert peaks[128] >= peaks[256] >= peaks[512]
    assert 5.0 < peaks[512] < 9.0  # still significant
    # The decline is modest, not a collapse.
    assert peaks[512] > 0.6 * peaks[128]
