"""F8 — Figure 8: throughput vs cluster size, Clarknet trace.

Paper landmarks at 16 nodes: the largest L2S-over-LARD gap of the four
traces (paper: +141%) and a huge gap over the traditional server
(paper: +366%) — Clarknet's many small files make locality decisive.
"""

from figshared import figure_experiment


def test_fig8_clarknet(benchmark, scaling_store):
    # Clarknet is our widest L2S-to-bound gap: the bound assumes 15%
    # replication of its 36k-file population, while simulated L2S
    # replicates only the hottest files (see EXPERIMENTS.md).
    exp = figure_experiment(
        benchmark, scaling_store, "clarknet", "Figure 8", l2s_within=0.55
    )

    series = exp.throughput_series()
    i16 = exp.node_counts.index(16)
    assert series["l2s"][i16] > 1.5 * series["lard"][i16]
    assert series["l2s"][i16] > 3.0 * series["traditional"][i16]

    # Clarknet's working set dwarfs a single 32 MB cache: the
    # traditional server misses heavily.
    miss = exp.metric_series("miss_rate")
    assert miss["traditional"][i16] > 0.3
    assert miss["l2s"][i16] < 0.1
