"""V3 — per-station utilization validation against the model.

The analytic model predicts each station's utilization at a given
request rate (``rho = X * d / servers``).  Feeding it the simulator's
*measured* throughput and miss rate, the measured per-station
utilizations should track the predictions — confirming the simulator
charges each piece of hardware what Table 1 says it should.  Also
checks the bottleneck-migration story: the traditional server is
disk-bound on Calgary while L2S (near-zero misses) is CPU-bound.
"""

from conftest import run_once

from repro.experiments import bench_requests, render_table
from repro.model import ModelParameters, oblivious_result
from repro.sim import run_simulation
from repro.workload import synthesize


def test_utilization_validation(benchmark):
    trace = synthesize("calgary", num_requests=min(bench_requests(), 12_000))

    def compute():
        trad = run_simulation(trace, "traditional", nodes=8, passes=2)
        l2s = run_simulation(trace, "l2s", nodes=8, passes=2)
        params = ModelParameters(
            nodes=8, alpha=trace.fileset.alpha, cache_bytes=trad.cache_bytes
        )
        size_kb = trace.mean_request_bytes() / 1024.0
        analytic = oblivious_result(params, size_kb, 1.0 - trad.miss_rate)
        predicted = analytic.utilizations(trad.throughput_rps)
        return trad, l2s, predicted

    trad, l2s, predicted = run_once(benchmark, compute)
    measured = trad.station_utilizations
    print("\nper-station utilization, traditional @ 8 nodes (calgary):")
    print(
        render_table(
            ["station", "model rho", "measured"],
            [
                (s, f"{predicted.get(s, 0):.3f}", f"{measured[s]:.3f}")
                for s in ("router", "cpu", "disk", "ni_in", "ni_out")
            ],
        )
    )
    print(
        f"\nbottlenecks: traditional -> {trad.bottleneck_station()}, "
        f"l2s -> {l2s.bottleneck_station()}"
    )

    # The heavily loaded stations must track the model closely.
    for station in ("cpu", "disk"):
        assert measured[station] == predicted[station] == 0 or abs(
            measured[station] - predicted[station]
        ) < max(0.12, 0.35 * predicted[station]), station
    # Bottleneck migration: misses pin the traditional server on its
    # disks; L2S's aggregate cache moves the bottleneck to the CPUs.
    assert trad.bottleneck_station() == "disk"
    assert l2s.bottleneck_station() == "cpu"
    # The lightly loaded NIs stay lightly loaded in both views.
    assert measured["ni_in"] < 0.2 and predicted["ni_in"] < 0.2