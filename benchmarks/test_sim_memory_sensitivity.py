"""S4 — Section 5.2 text: simulated sensitivity to node memory size.

"Increasing the size of the memories improves the performance of the
traditional server tremendously... affects the other two servers much
less significantly... the throughput of the traditional server becomes
higher than that of the LARD server for larger memories (128 MBytes)"
— LARD's ~constant front-end barrier cannot benefit from cache.
"""

from conftest import run_once

from repro.experiments import render_series, sim_memory_sensitivity


def test_sim_memory_sensitivity(benchmark):
    results = run_once(
        benchmark,
        lambda: sim_memory_sensitivity("calgary", memories_mb=(32, 128)),
    )
    memories = [32, 128]
    series = {
        system: [results[system][mb].throughput_rps for mb in memories]
        for system in results
    }
    print("\nthroughput by node memory, calgary @ 16 nodes:")
    print(
        render_series(
            "memory_mb",
            memories,
            {k: [f"{v:,.0f}" for v in vs] for k, vs in series.items()},
        )
    )

    trad_gain = series["traditional"][1] / series["traditional"][0]
    lard_gain = series["lard"][1] / series["lard"][0]
    l2s_gain = series["l2s"][1] / series["l2s"][0]
    assert trad_gain > 1.5, "traditional must improve tremendously"
    assert lard_gain < 1.25, "LARD is capped by its front-end"
    assert l2s_gain < 1.4, "L2S's miss rate was already low"
    # The crossover: traditional overtakes LARD at 128 MB.
    assert series["traditional"][1] > series["lard"][1]
    # Misses nearly vanish for the traditional server at 128 MB.
    assert results["traditional"][128].miss_rate < 0.1
