"""F5 — Figure 5: throughput increase due to locality (F4 / F3).

Shape claims checked: the peak is "up to 7-fold" (we allow 6-9x on our
grid), located at small files near the 80% hit-rate knee; the gain
collapses past 80% and dips below 1 for small files at hit rate 1.
"""

import numpy as np
from conftest import run_once

from repro.experiments.figures import render_figure5


def test_fig5_throughput_increase(benchmark, surfaces_cache):
    s = run_once(benchmark, surfaces_cache)
    print("\n" + render_figure5(s))
    print(f"\npeak increase: {s.peak_increase():.2f}x at {s.peak_location()}")

    assert 6.0 < s.peak_increase() < 9.0
    h, size = s.peak_location()
    assert 0.6 <= h <= 0.9
    assert size <= 16.0

    inc = s.increase
    hits = np.array(s.grid.hit_rates)
    i80 = int(np.argmin(np.abs(hits - 0.8)))
    i95 = int(np.argmin(np.abs(hits - 0.95)))
    assert inc[i80, 0] > inc[i95, 0]  # collapse after 80%
    assert inc[-1, 0] < 1.0  # below 1 at hit rate 1, small files
    assert inc[0, :].max() < 1.5  # near 1 at hit rate 0
