"""V2 — closed-network (MVA) validation of the simulator.

The simulator runs closed-loop at a fixed multiprogramming level; exact
Mean Value Analysis predicts a closed product-form network's throughput
at exactly that population.  Feeding MVA the traditional server's
station demands — with the *measured* miss rate, so only the queueing
behaviour is under test — its prediction should land within a modest
factor of the simulated throughput, and both should sit below the open
saturation bound.
"""

from conftest import run_once

from repro.experiments import bench_requests, render_table
from repro.model import ModelParameters, mva_from_stations, oblivious_result
from repro.sim import run_simulation
from repro.workload import synthesize


def test_closed_loop_validation(benchmark):
    trace = synthesize("calgary", num_requests=min(bench_requests(), 12_000))

    def compute():
        rows = {}
        for nodes in (4, 8, 16):
            sim = run_simulation(trace, "traditional", nodes=nodes, passes=2)
            params = ModelParameters(
                nodes=nodes,
                alpha=trace.fileset.alpha,
                cache_bytes=sim.cache_bytes,
            )
            size_kb = trace.mean_request_bytes() / 1024.0
            analytic = oblivious_result(params, size_kb, 1.0 - sim.miss_rate)
            customers = 16 * nodes  # the driver's default MPL
            closed = mva_from_stations(analytic.network.stations, customers)
            rows[nodes] = (sim.throughput_rps, closed.throughput, analytic.throughput)
        return rows

    rows = run_once(benchmark, compute)
    print("\nclosed-loop sim vs exact MVA vs open bound (traditional, calgary):")
    print(
        render_table(
            ["nodes", "simulated", "MVA(closed)", "open bound"],
            [
                (n, f"{s:,.0f}", f"{m:,.0f}", f"{b:,.0f}")
                for n, (s, m, b) in rows.items()
            ],
        )
    )

    for n, (sim_x, mva_x, bound) in rows.items():
        # MVA approaches the open bound from below at this population.
        assert mva_x <= bound * 1.001, n
        # The sim's service times are deterministic-ish rather than
        # exponential and its caches are LRU, so exact agreement is not
        # expected — but the closed model must land within a factor ~2
        # and on the same side of the bound.
        assert 0.4 * mva_x <= sim_x <= 1.25 * mva_x, (n, sim_x, mva_x)
        assert sim_x <= bound * 1.05, n
