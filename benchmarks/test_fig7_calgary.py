"""F7 — Figure 7: throughput vs cluster size, Calgary trace.

Paper landmarks at 16 nodes: model ~8000 req/s; L2S within 22% of the
model, 33% over LARD, 180% over the traditional server; LARD flattens at
its front-end limit.
"""

from figshared import figure_experiment


def test_fig7_calgary(benchmark, scaling_store):
    exp = figure_experiment(benchmark, scaling_store, "calgary", "Figure 7")

    series = exp.throughput_series()
    i16 = exp.node_counts.index(16)
    # Calgary-specific: L2S clearly above LARD (paper: +33%, we see more
    # because our LARD front-end saturates earlier).
    assert series["l2s"][i16] > 1.2 * series["lard"][i16]
    # Traditional lands far below (paper: L2S +180%).
    assert series["l2s"][i16] > 2.0 * series["traditional"][i16]
