"""S2 — Section 5.2 text: CPU idle times (load balance).

"The CPU idle times of the traditional server stay roughly constant as
we increase the number of cluster nodes... In contrast, the L2S idle
times always improve, approaching full utilization for 16 nodes."
(LARD's idle times fall until its front-end saturates.)
"""

from conftest import run_once

from repro.experiments import render_series


def test_idle_times(benchmark, scaling_store):
    exp = run_once(benchmark, lambda: scaling_store.get("calgary"))
    idle = exp.metric_series("mean_cpu_idle")
    print("\nmean CPU idle, calgary:")
    print(
        render_series(
            "nodes",
            list(exp.node_counts),
            {k: [f"{v:.3f}" for v in vs] for k, vs in idle.items()},
        )
    )
    i16 = exp.node_counts.index(16)
    i2 = exp.node_counts.index(2)
    # L2S approaches full utilization at 16 nodes.
    assert idle["l2s"][i16] < 0.25
    # The traditional server wastes far more CPU than L2S at scale
    # (waiting on disks and imbalance).
    assert idle["traditional"][i16] > idle["l2s"][i16] + 0.2
    # LARD's back-ends idle once the front-end saturates.
    assert idle["lard"][i16] > idle["l2s"][i16]