"""M2 — Section 3.2 text: the effect of replication R in the model.

"A small degree of file replication (15%) ... reduces the overhead of
request forwarding within the server": Q falls as R grows, the
aggregate cache (and so Hlc) shrinks, and R = 1 degenerates to the
locality-oblivious server.
"""

import pytest
from conftest import run_once

from repro.experiments import model_replication_sweep, render_table
from repro.model import ModelParameters, conscious_result, oblivious_result


def test_model_replication(benchmark):
    rows = run_once(
        benchmark,
        lambda: model_replication_sweep(
            replications=(0.0, 0.05, 0.15, 0.3, 0.5, 1.0)
        ),
    )
    print("\nreplication sweep (S=16 KB, Hlo=0.7):")
    print(
        render_table(
            ["R", "throughput", "Hlc", "Q"],
            [(f"{r:.2f}", f"{t:,.0f}", f"{h:.3f}", f"{q:.3f}") for r, t, h, q in rows],
        )
    )

    qs = [q for _, _, _, q in rows]
    hlcs = [h for _, _, h, _ in rows]
    assert all(a >= b for a, b in zip(qs, qs[1:])), "Q must fall with R"
    assert all(a >= b - 1e-12 for a, b in zip(hlcs, hlcs[1:])), "Hlc must fall with R"

    # R = 1 degenerates to the oblivious server's cache (same hit rate).
    p1 = ModelParameters(replication=1.0)
    con = conscious_result(p1, 16.0, 0.7)
    obl = oblivious_result(p1, 16.0, 0.7)
    assert con.hit_rate == pytest.approx(obl.hit_rate, abs=1e-9)
