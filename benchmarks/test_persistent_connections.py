"""P1 — persistent connections (HTTP/1.1), the paper's §4 extension.

The paper's algorithms target HTTP/1.0 and defer persistent connections
to Aron et al.  Expectations of that literature, checked here:

* L2S: connection migrations per request fall as connections lengthen
  (hand-off amortized), throughput holds or improves;
* LARD: one hand-off per connection plus front-end relays; locality
  decays with connection length (the PHTTP problem), but the front-end
  relay is cheaper than a full distribution decision;
* traditional: indifferent to connection length (no distribution).
"""

from conftest import run_once

from repro.experiments import bench_requests, render_table
from repro.servers import make_policy
from repro.sim import run_persistent_simulation
from repro.workload import synthesize

LENGTHS = (1.0, 4.0, 8.0)


def test_persistent_connections(benchmark):
    trace = synthesize("calgary", num_requests=min(bench_requests(), 12_000))

    def compute():
        out = {}
        for k in LENGTHS:
            for policy in ("l2s", "lard", "traditional"):
                out[(policy, k)] = run_persistent_simulation(
                    trace,
                    make_policy(policy),
                    nodes=8,
                    mean_requests_per_connection=k,
                )
        return out

    results = run_once(benchmark, compute)
    print("\npersistent connections (8 nodes, calgary):")
    rows = []
    for (policy, k), r in sorted(results.items()):
        rows.append(
            (
                policy,
                k,
                f"{r.throughput_rps:,.0f}",
                f"{r.forwarded_fraction:.2f}",
                f"{r.miss_rate:.3f}",
            )
        )
    print(render_table(["policy", "reqs/conn", "req/s", "migrations/req", "miss"], rows))

    # L2S: migrations per request fall with connection length.
    assert (
        results[("l2s", 8.0)].forwarded_fraction
        < results[("l2s", 1.0)].forwarded_fraction
    )
    # L2S throughput holds (within noise) or improves.
    assert (
        results[("l2s", 8.0)].throughput_rps
        > 0.9 * results[("l2s", 1.0)].throughput_rps
    )
    # LARD: exactly one hand-off per connection -> ~1/k migrations.
    assert results[("lard", 8.0)].forwarded_fraction < 0.3
    # LARD's locality decays with connection length (misses rise).
    assert results[("lard", 8.0)].miss_rate >= results[("lard", 1.0)].miss_rate
    # Traditional is indifferent (no distribution at all).
    t1 = results[("traditional", 1.0)].throughput_rps
    t8 = results[("traditional", 8.0)].throughput_rps
    assert 0.8 < t8 / t1 < 1.25
