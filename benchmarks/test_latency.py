"""L1 — latency under load, and the model's M/M/1 latency validation.

The paper's model also predicts response times (Section 3.1), though
its results focus on throughput.  Checked here: the simulated
latency-vs-load curve has the M/M/1 hockey-stick shape, and the model's
open-network response-time sum agrees with the simulator within a small
factor for the locality-oblivious server it describes exactly (the gap
is LRU's extra misses over the model's ideal frequency caching).
"""

from conftest import run_once

from repro.experiments import (
    bench_requests,
    latency_vs_load,
    model_latency_validation,
    render_table,
)
from repro.workload import synthesize

LOADS = (0.3, 0.5, 0.7, 0.85)


def test_latency(benchmark):
    trace = synthesize("calgary", num_requests=min(bench_requests(), 10_000))

    def compute():
        points = latency_vs_load("l2s", trace=trace, nodes=8, loads=LOADS)
        validation = model_latency_validation(trace=trace, nodes=8, load=0.3)
        return points, validation

    points, (model_ms, sim_ms) = run_once(benchmark, compute)
    print("\nL2S latency vs load (8 nodes, calgary):")
    print(
        render_table(
            ["load", "req/s", "mean ms", "p50 ms", "p99 ms"],
            [
                (
                    f"{p.utilization:.2f}",
                    f"{p.throughput_rps:,.0f}",
                    f"{p.mean_latency_s * 1e3:.2f}",
                    f"{p.percentiles['p50'] * 1e3:.2f}",
                    f"{p.percentiles['p99'] * 1e3:.2f}",
                )
                for p in points
            ],
        )
    )
    print(
        f"\nmodel-vs-sim mean response (traditional, 30% load): "
        f"{model_ms * 1e3:.2f} ms vs {sim_ms * 1e3:.2f} ms"
    )

    means = [p.mean_latency_s for p in points]
    # Monotone hockey-stick: latency grows with load...
    assert all(b >= a * 0.95 for a, b in zip(means, means[1:]))
    # ...sharply at the top end.
    assert means[-1] > 1.3 * means[0]
    # Throughput tracks the offered rate below saturation.
    for p in points[:-1]:
        assert p.throughput_rps > 0.85 * p.arrival_rate
    # Tail heaviness.
    for p in points:
        assert p.percentiles["p99"] > 2 * p.percentiles["p50"]
    # Model agreement within a small factor at low load.
    assert sim_ms < 6 * model_ms
    assert sim_ms > 0.5 * model_ms
