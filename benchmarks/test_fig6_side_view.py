"""F6 — Figure 6: side view of the throughput-increase surface.

The profile (max over file sizes per hit rate) climbs towards the ~80%
knee and falls towards 1 at the extremes.
"""

import numpy as np
from conftest import run_once

from repro.experiments.figures import render_figure6
from repro.model import side_view


def test_fig6_side_view(benchmark, surfaces_cache):
    s = run_once(benchmark, surfaces_cache)
    print("\n" + render_figure6(s))

    env = side_view(s)
    hits = np.array(s.grid.hit_rates)
    profile = env[:, 1]
    knee = int(np.argmax(profile))
    assert 0.6 <= hits[knee] <= 0.9
    assert profile[knee] == s.peak_increase()
    # Envelope is consistent and collapses at both ends.
    assert (env[:, 0] <= env[:, 1] + 1e-12).all()
    assert profile[0] < 2.0
    assert profile[-1] < 1.6
