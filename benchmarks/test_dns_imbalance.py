"""D1 — §2 claim: DNS translation caching causes load imbalance.

"The translation is then cached by intermediate name servers and
possibly clients.  This caching of translations can cause significant
load imbalance ... the main problem with DNS distribution is that the
server cannot adjust the request distribution."  Compared: cached-DNS
arrivals vs ideal round-robin vs a fewest-connections dispatcher, all
serving strictly locally.
"""

from conftest import run_once

from repro.experiments import bench_requests, render_table
from repro.servers import CachedDNSPolicy, make_policy
from repro.sim import run_simulation
from repro.workload import synthesize


def test_dns_imbalance(benchmark):
    trace = synthesize("calgary", num_requests=min(bench_requests(), 12_000))

    def compute():
        out = {}
        for label, policy in (
            ("dns-cached", CachedDNSPolicy(resolver_alpha=1.2, ttl_requests=500)),
            ("round-robin", make_policy("round-robin")),
            ("traditional", make_policy("traditional")),
        ):
            out[label] = run_simulation(trace, policy, nodes=8, passes=2)
        return out

    results = run_once(benchmark, compute)
    print("\narrival distribution schemes (local service, 8 nodes, calgary):")
    print(
        render_table(
            ["scheme", "req/s", "imbalance (max/mean)", "idle"],
            [
                (
                    label,
                    f"{r.throughput_rps:,.0f}",
                    f"{r.load_imbalance:.2f}",
                    f"{r.mean_cpu_idle:.2f}",
                )
                for label, r in results.items()
            ],
        )
    )

    dns, rr, trad = (
        results["dns-cached"],
        results["round-robin"],
        results["traditional"],
    )
    # Cached translations skew the per-node load far beyond ideal RR.
    assert dns.load_imbalance > rr.load_imbalance + 0.15
    # The skew costs throughput relative to ideal RR...
    assert dns.throughput_rps < rr.throughput_rps
    # ...and the server-side fewest-connections dispatcher beats both
    # DNS schemes — the paper's motivation for in-cluster distribution.
    assert trad.throughput_rps >= dns.throughput_rps