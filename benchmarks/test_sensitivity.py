"""S5 — §5.2 summary: L2S is robust to communication parameters.

"The performance of L2S is only slightly affected by reasonable
parameters of frequency of broadcasts, messaging overhead, and network
latency and bandwidth."  Each sweep's relative throughput spread must
stay small.
"""

from conftest import run_once

from repro.experiments import bench_requests, render_series
from repro.experiments.sensitivity import (
    broadcast_frequency_sweep,
    message_overhead_sweep,
    network_bandwidth_sweep,
    relative_spread,
)
from repro.workload import synthesize


def test_sensitivity(benchmark):
    trace = synthesize("calgary", num_requests=min(bench_requests(), 12_000))

    def compute():
        return (
            broadcast_frequency_sweep(trace=trace),
            message_overhead_sweep(trace=trace),
            network_bandwidth_sweep(trace=trace),
        )

    by_delta, by_overhead, by_bw = run_once(benchmark, compute)

    print("\nL2S sensitivity sweeps (calgary, 16 nodes):")
    print(
        render_series(
            "broadcast_delta",
            sorted(by_delta),
            {"req/s": [f"{by_delta[k].throughput_rps:,.0f}" for k in sorted(by_delta)]},
        )
    )
    print(
        render_series(
            "msg_overhead_us",
            sorted(by_overhead),
            {"req/s": [f"{by_overhead[k].throughput_rps:,.0f}" for k in sorted(by_overhead)]},
        )
    )
    print(
        render_series(
            "link_gbit",
            sorted(by_bw),
            {"req/s": [f"{by_bw[k].throughput_rps:,.0f}" for k in sorted(by_bw)]},
        )
    )

    reasonable = [by_delta[k].throughput_rps for k in (3, 4, 6)]
    spread_delta = relative_spread(reasonable)
    spread_ovh = relative_spread([r.throughput_rps for r in by_overhead.values()])
    spread_bw = relative_spread([r.throughput_rps for r in by_bw.values()])
    print(
        f"\nspreads: broadcasts(3-6) {spread_delta:.1%}, overhead {spread_ovh:.1%}, "
        f"bandwidth {spread_bw:.1%}"
    )

    # "Only slightly affected" by *reasonable* parameters: within ~20%
    # across each sweep (single-seed runs carry threshold noise).
    assert spread_delta < 0.20
    assert spread_ovh < 0.20
    assert spread_bw < 0.20
    # The staleness cliff beyond the reasonable range: broadcasting only
    # every ~T connections leaves views so stale that balancing
    # collapses — why the paper's tuning landed on 4.
    assert by_delta[16].throughput_rps < 0.6 * by_delta[4].throughput_rps
    # The chatty end degrades too (synchronized freshness herds every
    # initial node onto the same least-loaded target), but mildly.
    assert by_delta[2].throughput_rps > 0.6 * by_delta[4].throughput_rps
    # Sanity: more broadcasts mean more control messages on the wire.
    msgs = {k: by_delta[k].messages_per_request for k in by_delta}
    assert msgs[2] > msgs[16]
