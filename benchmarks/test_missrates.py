"""S1 — Section 5.2 text: cache miss-rate behaviour of the systems.

"For a small number of nodes, L2S exhibits the lowest miss rates, but as
we increase the number of nodes, the LARD server starts to exhibit miss
rates that are comparable (if not slightly lower) than those of L2S" —
the front-end's wasted cache space matters less at scale.  The
traditional server's miss rate stays high regardless of cluster size.
"""

from conftest import run_once
from figshared import print_figure

from repro.experiments import render_series


def test_missrates(benchmark, scaling_store):
    exps = run_once(
        benchmark,
        lambda: {t: scaling_store.get(t) for t in ("calgary", "rutgers")},
    )
    for trace, exp in exps.items():
        miss = exp.metric_series("miss_rate")
        print(f"\nmiss rates, {trace}:")
        print(
            render_series(
                "nodes",
                list(exp.node_counts),
                {k: [f"{v:.3f}" for v in vs] for k, vs in miss.items()},
            )
        )
        i16 = exp.node_counts.index(16)
        i2 = exp.node_counts.index(2)
        # Locality-conscious systems end with far lower miss rates than
        # the traditional server at 16 nodes.
        assert miss["l2s"][i16] < 0.5 * miss["traditional"][i16]
        assert miss["lard"][i16] < 0.5 * miss["traditional"][i16]
        # LARD's miss rate converges towards L2S's as nodes grow: the
        # 16-node gap is no larger than a modest absolute margin.
        assert miss["lard"][i16] <= miss["l2s"][i16] + 0.1
        # The traditional server's miss rate does not improve with scale
        # (independent caches of the same content).
        assert miss["traditional"][i16] > 0.7 * miss["traditional"][i2]
