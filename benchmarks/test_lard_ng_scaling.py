"""R1 — §6 related work: the dispatcher-based "scalable LARD".

The paper's analysis of Aron et al.'s follow-up design: "the saturation
points of the switch and of the dispatcher are reached at a higher
throughput than the original LARD front-end.  Nevertheless ... the
dispatcher [is] still [a] potential bottleneck and point of failure,
the cache space of the dispatcher is still wasted, and all requests
must incur the overhead of a two-way communication ... L2S has none of
these problems."  Checked: lard-ng out-scales front-end LARD past its
plateau but stays below L2S at 16 nodes.
"""

from conftest import run_once

from repro.experiments import bench_requests, render_series
from repro.sim import run_simulation
from repro.workload import synthesize

NODE_COUNTS = (4, 8, 16)


def test_lard_ng_scaling(benchmark):
    trace = synthesize("calgary", num_requests=bench_requests())

    def compute():
        out = {}
        for policy in ("lard", "lard-ng", "l2s"):
            out[policy] = [
                run_simulation(trace, policy, nodes=n, passes=2).throughput_rps
                for n in NODE_COUNTS
            ]
        return out

    series = run_once(benchmark, compute)
    print("\ndispatcher LARD vs front-end LARD vs L2S (calgary):")
    print(
        render_series(
            "nodes",
            list(NODE_COUNTS),
            {k: [f"{v:,.0f}" for v in vs] for k, vs in series.items()},
        )
    )

    i16 = NODE_COUNTS.index(16)
    i8 = NODE_COUNTS.index(8)
    # lard-ng breaks through front-end LARD's plateau at 16 nodes...
    assert series["lard-ng"][i16] > 1.2 * series["lard"][i16]
    # ...and keeps scaling 8 -> 16 where lard flattens.
    assert series["lard-ng"][i16] > 1.5 * series["lard-ng"][i8]
    # ...but decentralized L2S still wins (dispatcher round-trips + a
    # wasted node).
    assert series["l2s"][i16] > 1.15 * series["lard-ng"][i16]
