"""T1 — Table 1: model parameters and their default values.

Regenerates the parameter table and checks every default against the
published numbers.
"""

from conftest import run_once

from repro.experiments import render_table1, table1_rows
from repro.model import DEFAULT_PARAMETERS


def test_table1_parameters(benchmark):
    rows = run_once(benchmark, table1_rows)
    print("\n" + render_table1())

    by_name = {r[0]: r[2] for r in rows}
    assert by_name["N"] == "16"
    assert by_name["R"] == "0%"
    assert by_name["alpha"] == "1"
    assert by_name["C"] == "128 MBytes"
    assert "500,000/size" in by_name["mu_r"]
    assert "140,000" in by_name["mu_i"]
    assert "6,300" in by_name["mu_p"]
    assert "10,000" in by_name["mu_f"]
    # The closed-form rates at spot sizes.
    p = DEFAULT_PARAMETERS
    assert abs(1 / p.reply_time(12.0) - 1 / (0.0001 + 12 / 12000)) < 1e-6
    assert abs(1 / p.disk_time(10.0) - 1 / (0.028 + 10 / 10000)) < 1e-6
    assert abs(1 / p.ni_reply_time(64.0) - 1 / (0.000003 + 64 / 128000)) < 1e-6
