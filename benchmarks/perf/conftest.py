"""Path setup for the perf suite.

These tests live one level below ``benchmarks/`` but share its helpers
(``figshared``), so put the parent directory on ``sys.path`` before
collection.  Fixtures from ``benchmarks/conftest.py`` are inherited
through pytest's conftest chain as usual.
"""

from __future__ import annotations

import sys
from pathlib import Path

_BENCHMARKS_DIR = str(Path(__file__).resolve().parents[1])
if _BENCHMARKS_DIR not in sys.path:
    sys.path.insert(0, _BENCHMARKS_DIR)
