"""P1 — kernel perf scenarios: the three canonical 16-node runs.

Times the exact scenario shapes ``repro bench`` measures (traditional,
LARD, L2S on the calgary trace, two passes), built through
``figshared.canonical_perf_simulation`` so the perf suite, the figure
benchmarks, and the CLI harness all share one scenario definition.

These are timing benchmarks plus determinism canaries — the CI
regression gate itself is ``repro bench --quick --check
BENCH_kernel.json`` (see docs/KERNEL.md).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from figshared import canonical_perf_simulation
from repro.bench import (
    CANONICAL_NODES,
    CANONICAL_PASSES,
    CANONICAL_POLICIES,
    CANONICAL_TRACE,
    QUICK_REQUESTS,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "BENCH_kernel.json"


@pytest.mark.parametrize("policy", CANONICAL_POLICIES)
def test_canonical_scenario(benchmark, policy):
    """Wall-clock per canonical scenario (quick scale), one fresh
    Simulation per round so cache warm-up is inside the measurement."""

    def setup():
        sim = canonical_perf_simulation(policy, num_requests=QUICK_REQUESTS)
        return (sim,), {}

    result = benchmark.pedantic(
        lambda sim: sim.run(), setup=setup, rounds=3, iterations=1
    )
    assert result.throughput_rps > 0
    assert result.requests_measured > 0


@pytest.mark.parametrize("policy", CANONICAL_POLICIES)
def test_canonical_scenario_deterministic(policy):
    """Two builds of the same scenario simulate identically — the
    property the ``throughput_rps`` canary in ``repro bench --check``
    stands on."""
    runs = []
    for _ in range(2):
        sim = canonical_perf_simulation(policy, num_requests=QUICK_REQUESTS)
        result = sim.run()
        runs.append((result.throughput_rps, sim.env.event_count))
    assert runs[0] == runs[1]


def test_committed_baseline_matches_canonical_shape():
    """BENCH_kernel.json (the CI regression baseline) must stay in sync
    with the canonical scenario constants and cover every policy."""
    payload = json.loads(BASELINE.read_text())
    meta = payload["meta"]
    assert meta["trace"] == CANONICAL_TRACE
    assert meta["nodes"] == CANONICAL_NODES
    assert meta["passes"] == CANONICAL_PASSES
    for policy in CANONICAL_POLICIES:
        scenario = payload["scenarios"][policy]
        assert scenario["events_per_s"] > 0
        assert scenario["throughput_rps"] > 0
