"""F11 — flash crowd: one file goes viral mid-run (extension).

The scenario the paper's replication machinery exists for: 60% of
requests suddenly converge on one representative-size file for 30% of
the run.

* L2S replicates the file across the cluster and rides the spike
  nearly unfazed;
* LARD/R replicates from its front-end and degrades moderately;
* LARD *without* replication and consistent hashing leave the file
  pinned to one node, which saturates while the rest idle;
* the traditional server ironically thrives — locality-oblivious
  caching replicates everything everywhere by default, and a
  single-file spike is its best case.
"""

from conftest import run_once

from repro.experiments import bench_requests, render_table
from repro.experiments.flashcrowd import flash_crowd_experiment
from repro.servers import LARDPolicy, make_policy
from repro.workload import synthesize


def test_flash_crowd(benchmark):
    trace = synthesize("calgary", num_requests=min(bench_requests(), 12_000))

    def compute():
        cases = {
            "l2s": make_policy("l2s"),
            "lard": make_policy("lard"),
            "lard-noR": LARDPolicy(replication=False),
            "consistent-hash": make_policy("consistent-hash"),
            "traditional": make_policy("traditional"),
        }
        return {
            label: flash_crowd_experiment(policy, trace=trace, nodes=8)
            for label, policy in cases.items()
        }

    results = run_once(benchmark, compute)
    print("\nflash crowd: 60% of requests on one file for 30% of the run:")
    print(
        render_table(
            ["policy", "baseline", "spike", "retention", "hot servers"],
            [
                (
                    label,
                    f"{r.baseline_rps:,.0f}",
                    f"{r.spike_rps:,.0f}",
                    f"{r.spike_retention:.2f}",
                    r.hot_server_count,
                )
                for label, r in results.items()
            ],
        )
    )

    # L2S replicates the viral file widely and keeps its throughput.
    assert results["l2s"].spike_retention > 0.85
    assert results["l2s"].hot_server_count >= 4
    # Without dynamic replication the hot node pins the whole cluster.
    assert results["lard-noR"].spike_retention < 0.6
    assert results["lard-noR"].hot_server_count == 1
    assert results["consistent-hash"].spike_retention < 0.65
    # LARD/R sits in between: it replicates, less aggressively.
    assert (
        results["lard-noR"].spike_retention
        < results["lard"].spike_retention
        <= results["l2s"].spike_retention + 0.15
    )
    assert results["lard"].hot_server_count > 1
    # The oblivious server's every-node-caches-everything design makes a
    # single-file spike its best case.
    assert results["traditional"].spike_retention > 1.0
