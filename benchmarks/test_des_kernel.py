"""K1 — kernel micro-benchmark: DES event throughput.

Not a paper artifact; a performance-regression guard for the substrate
every simulation stands on.  Measures events/second through the three
hot paths: bare timeouts, resource handoffs, and store message-passing.
"""

import pytest

from repro.des import Environment, Resource, Store


def run_timeout_chain(n: int) -> int:
    env = Environment()
    count = [0]

    def ticker(env):
        for _ in range(n):
            yield env.timeout(1.0)
            count[0] += 1

    env.process(ticker(env))
    env.run()
    return count[0]


def run_resource_contention(n: int, workers: int = 8) -> int:
    env = Environment()
    res = Resource(env, capacity=2)
    done = [0]

    def worker(env):
        for _ in range(n // workers):
            with res.request() as req:
                yield req
                yield env.timeout(0.5)
            done[0] += 1

    for _ in range(workers):
        env.process(worker(env))
    env.run()
    return done[0]


def run_store_pingpong(n: int) -> int:
    env = Environment()
    a, b = Store(env, capacity=4), Store(env, capacity=4)
    moved = [0]

    def producer(env):
        for i in range(n):
            yield a.put(i)

    def relay(env):
        while True:
            item = yield a.get()
            yield b.put(item)

    def consumer(env):
        for _ in range(n):
            yield b.get()
            moved[0] += 1

    env.process(producer(env))
    env.process(relay(env))
    env.process(consumer(env))
    env.run()
    return moved[0]


@pytest.mark.parametrize(
    "name,fn,n",
    [
        ("timeouts", run_timeout_chain, 50_000),
        ("resource", run_resource_contention, 40_000),
        ("store", run_store_pingpong, 20_000),
    ],
)
def test_des_kernel_throughput(benchmark, name, fn, n):
    result = benchmark.pedantic(fn, args=(n,), rounds=3, iterations=1)
    assert result == n or result == (n // 8) * 8
    # Regression floor: the kernel must stay well above 10k events/s
    # even on slow CI machines (typical: several hundred k/s).
    events_per_sec = n / benchmark.stats.stats.mean
    print(f"\n{name}: {events_per_sec:,.0f} ops/s")
    assert events_per_sec > 10_000
