"""T2 — Table 2: characteristics of the four WWW traces.

Synthesizes each trace and regenerates the table, checking the measured
characteristics of the synthetic workloads against the published ones.
"""

import pytest
from conftest import run_once

from repro.experiments import bench_requests, render_table2, table2_rows


def test_table2_traces(benchmark):
    n = bench_requests()
    rows = run_once(benchmark, lambda: table2_rows(num_requests=n))
    print("\n" + render_table2(num_requests=n))

    by_trace = {}
    for row in rows:
        by_trace.setdefault(row[1], {})[row[0]] = row
    assert set(by_trace) == {"calgary", "clarknet", "nasa", "rutgers"}
    for name, pair in by_trace.items():
        paper, synth = pair["paper"], pair["synthetic"]
        assert synth[2] == paper[2], f"{name}: file count"
        assert synth[3] == pytest.approx(paper[3], rel=0.03), f"{name}: file size"
        assert synth[5] == pytest.approx(paper[5], rel=0.10), f"{name}: request size"
        assert synth[6] == paper[6], f"{name}: alpha"
