"""F3 — Figure 3: throughput surface of the locality-oblivious server.

Shape claims checked: throughput rises with the hit rate and falls with
the average file size; significant throughput only for small files at
hit rates above ~80%; peak ~2.2-2.7e4 req/s on 16 nodes.
"""

import numpy as np
from conftest import run_once

from repro.experiments.figures import render_figure3


def test_fig3_oblivious_surface(benchmark, surfaces_cache):
    s = run_once(benchmark, surfaces_cache)
    print("\n" + render_figure3(s))

    obl = s.oblivious
    grid = s.grid
    assert (np.diff(obl, axis=0) >= -1e-9).all()  # rises with hit rate
    assert (np.diff(obl, axis=1) <= 1e-9).all()  # falls with size
    assert 2.2e4 < obl.max() < 2.9e4

    # "Throughputs only increase significantly for files smaller than
    # 64 KB and hit rates higher than 80%."
    hits = np.array(grid.hit_rates)
    sizes = np.array(grid.sizes_kb)
    low_region = obl[np.ix_(hits <= 0.6, sizes >= 64)]
    assert low_region.max() < 0.25 * obl.max()
