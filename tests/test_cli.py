"""Tests for the command-line interface."""

import pytest

from repro.cli import FIGURE_TRACES, build_parser, main


def test_version_flag(capsys):
    from repro import __version__

    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert capsys.readouterr().out.strip() == f"repro {__version__}"


def test_help_epilog_mentions_live_subcommands(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    # argparse re-wraps the epilog, so match pieces, not the phrase.
    assert "repro live" in out
    assert "serve|loadtest|compare" in out
    assert "docs/LIVE.md" in out


def test_live_delegates_to_live_cli(capsys):
    # `repro live --help` reaches the live sub-parser (no sockets).
    with pytest.raises(SystemExit) as excinfo:
        main(["live", "--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert "serve" in out and "loadtest" in out and "compare" in out


def test_live_requires_subcommand():
    with pytest.raises(SystemExit) as excinfo:
        main(["live"])
    assert excinfo.value.code == 2


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_figure_trace_mapping():
    assert FIGURE_TRACES == {7: "calgary", 8: "clarknet", 9: "nasa", 10: "rutgers"}


def test_tables_command(capsys):
    assert main(["tables"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out and "Table 2" in out
    assert "mu_p" in out and "calgary" in out


def test_bound_command(capsys):
    assert main(["bound", "nasa", "--nodes", "8", "--memory", "32"]) == 0
    out = capsys.readouterr().out
    assert "nasa x 8 nodes" in out
    assert "req/s" in out


def test_simulate_command(capsys):
    assert (
        main(
            [
                "simulate",
                "calgary",
                "round-robin",
                "--nodes",
                "2",
                "--requests",
                "1500",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "round-robin" in out
    assert "model bound" in out


def test_simulate_rejects_bad_trace():
    with pytest.raises(KeyError):
        main(["simulate", "unknown-trace", "l2s", "--requests", "100"])


def test_figure_command_validates_number():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure", "5"])  # 7-10 only


def test_netfaults_command(tmp_path, capsys):
    out = tmp_path / "nf.txt"
    args = [
        "netfaults",
        "calgary",
        "--policies",
        "l2s",
        "--nodes",
        "2",
        "--requests",
        "1500",
        "--loss",
        "0.01",
        "--seed",
        "3",
        "--out",
        str(out),
    ]
    assert main(args) == 0
    text = capsys.readouterr().out
    assert "Unreliable interconnect" in text
    assert "l2s" in text and "loss 1.0%" in text
    first = out.read_text()
    assert first == text.rstrip("\n") + "\n" or first in text
    # Same seed, byte-identical report (the CI smoke's contract).
    assert main(args) == 0
    capsys.readouterr()
    assert out.read_text() == first


def test_netfaults_command_with_schedule(capsys):
    assert (
        main(
            [
                "netfaults",
                "calgary",
                "--policies",
                "traditional",
                "--nodes",
                "2",
                "--requests",
                "1500",
                "--loss",
                "0",
                "--schedule",
                "link:0-1@0.05..0.1",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "traditional" in out


def test_analyze_command_preset(capsys):
    assert main(["analyze", "nasa", "--requests", "4000", "--memories", "8,32"]) == 0
    out = capsys.readouterr().out
    assert "nasa" in out
    assert "LRU capacity-miss rates" in out
    assert "8 MB" in out and "32 MB" in out


def test_reproduce_command_model_only(tmp_path, capsys):
    out = tmp_path / "report.md"
    assert main(["reproduce", "--out", str(out), "--model-only"]) == 0
    text = out.read_text()
    assert "Table 1" in text and "Table 2" in text
    assert "Peak locality gain" in text
    assert "Figure 7" not in text  # simulations skipped


def test_reproduce_command_with_tiny_sims(tmp_path):
    out = tmp_path / "report.md"
    assert (
        main(
            [
                "reproduce",
                "--out",
                str(out),
                "--requests",
                "1500",
                "--traces",
                "calgary",
                "--nodes",
                "2",
            ]
        )
        == 0
    )
    text = out.read_text()
    assert "Figure 7" in text
    assert "calgary" in text


def test_analyze_command_npz(tmp_path, capsys):
    from repro.workload import synthesize

    trace = synthesize("calgary", num_requests=2000)
    path = tmp_path / "t.npz"
    trace.save(path)
    assert main(["analyze", str(path), "--memories", "4"]) == 0
    out = capsys.readouterr().out
    assert "calgary" in out


def test_simulate_verify_flag(capsys):
    assert (
        main(
            [
                "simulate", "calgary", "l2s",
                "--nodes", "2", "--requests", "1500", "--verify",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "verify: books balance" in out


CHAOS_DATA = "tests/chaos/data"


def test_faults_accepts_spec(capsys):
    assert main(["faults", "--spec", f"{CHAOS_DATA}/planted.json"]) == 0
    out = capsys.readouterr().out
    # The scenario's own policy, cluster size, and crash schedule ran.
    assert "l2s" in out
    assert "schedule:" in out and "crash(2)" in out


def test_faults_spec_positionals_override(capsys):
    assert (
        main(
            [
                "faults", "calgary", "traditional",
                "--spec", f"{CHAOS_DATA}/planted.json",
            ]
        )
        == 0
    )
    assert "traditional" in capsys.readouterr().out


def test_faults_spec_exclusive_with_schedule(capsys):
    assert (
        main(
            [
                "faults", "--spec", f"{CHAOS_DATA}/planted.json",
                "--schedule", "crash:1@0.1",
            ]
        )
        == 2
    )
    assert "exclusive" in capsys.readouterr().err


def test_faults_requires_trace_without_spec(capsys):
    assert main(["faults"]) == 2
    assert "required without --spec" in capsys.readouterr().err


def test_netfaults_accepts_spec(capsys):
    assert main(["netfaults", "--spec", f"{CHAOS_DATA}/smoke.json"]) == 0
    out = capsys.readouterr().out
    assert "l2s" in out


def test_netfaults_spec_exclusive_with_sweep(capsys):
    assert (
        main(["netfaults", "--spec", f"{CHAOS_DATA}/smoke.json", "--sweep"])
        == 2
    )
    assert "exclusive" in capsys.readouterr().err
