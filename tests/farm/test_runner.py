"""Farm execution: ordered merging, determinism, crash retry.

The heart of the farm contract: for any worker count the merged output
is byte-identical to the serial run, under both kernel schedulers, and
a worker process dying is retried while a deterministic exception
propagates.
"""

from __future__ import annotations

import os

import pytest

from repro.farm.runner import (
    FarmWorkerError,
    pool_map,
    run_chaos_farm,
    run_sweep,
)
from repro.farm.spec import SweepSpec

#: Small enough for CI, large enough to exercise every policy path.
_SPEC = SweepSpec(
    traces=("calgary",),
    policies=("traditional", "lard", "l2s"),
    node_counts=(4,),
    seeds=(0, 1),
    requests=400,
)


# -- pool_map ----------------------------------------------------------------


def _square(x: int) -> int:
    return x * x


def _crash_once(args) -> int:
    """Die hard on the first attempt per item; succeed on the retry.

    The flag file distinguishes attempts because a retry runs in a
    *fresh* worker process — in-process state cannot.
    """
    value, flag_dir = args
    flag = os.path.join(flag_dir, f"seen-{value}")
    if not os.path.exists(flag):
        with open(flag, "w") as fh:
            fh.write("1")
        os._exit(17)  # kill the worker, not just raise
    return value * 10


def _always_crash(args) -> int:
    os._exit(17)


def _raise_value_error(x: int) -> int:
    raise ValueError(f"deterministic failure on {x}")


def test_pool_map_serial_matches_parallel():
    items = list(range(20))
    assert pool_map(_square, items, workers=1) == [x * x for x in items]
    assert pool_map(_square, items, workers=3) == [x * x for x in items]


def test_pool_map_preserves_item_order_with_many_workers():
    items = list(range(40, 0, -1))
    assert pool_map(_square, items, workers=4) == [x * x for x in items]


def test_pool_map_retries_killed_workers(tmp_path):
    items = [(i, str(tmp_path)) for i in range(4)]
    assert pool_map(_crash_once, items, workers=2) == [0, 10, 20, 30]


def test_pool_map_gives_up_after_bounded_retries(tmp_path):
    items = [(i, str(tmp_path)) for i in range(2)]
    with pytest.raises(FarmWorkerError):
        pool_map(_always_crash, items, workers=2, crash_retries=1)


def test_pool_map_propagates_deterministic_exceptions():
    with pytest.raises(ValueError, match="deterministic failure"):
        pool_map(_raise_value_error, [1, 2, 3], workers=2)


def test_pool_map_progress_sees_every_item():
    seen = []
    pool_map(_square, [1, 2, 3], workers=1, progress=lambda i, r: seen.append((i, r)))
    assert seen == [(0, 1), (1, 4), (2, 9)]


# -- sweep farming -----------------------------------------------------------


def test_farm_matches_serial_byte_for_byte():
    serial = run_sweep(_SPEC, workers=1)
    farmed = run_sweep(_SPEC, workers=2)
    assert farmed.to_json() == serial.to_json()
    assert farmed.render() == serial.render()


def test_same_grid_twice_is_deterministic():
    first = run_sweep(_SPEC, workers=2)
    second = run_sweep(_SPEC, workers=2)
    assert first.to_json() == second.to_json()


@pytest.mark.parametrize("scheduler", ["heap", "calendar"])
def test_farm_serial_identity_under_both_schedulers(monkeypatch, scheduler):
    monkeypatch.setenv("REPRO_DES_SCHEDULER", scheduler)
    spec = SweepSpec(
        traces=("calgary",),
        policies=("lard",),
        node_counts=(4,),
        seeds=(0, 1),
        requests=400,
    )
    serial = run_sweep(spec, workers=1)
    farmed = run_sweep(spec, workers=2)
    assert farmed.to_json() == serial.to_json()


def test_farm_results_line_up_with_shards():
    farm = run_sweep(_SPEC, workers=2)
    for shard, result in farm.rows():
        assert result.policy == shard.policy
        assert result.trace == shard.trace
        assert result.nodes == shard.nodes


def test_shard_results_match_direct_run_simulation():
    from repro.sim import run_simulation

    farm = run_sweep(_SPEC, workers=2)
    shard, result = farm.rows()[1]
    direct = run_simulation(
        shard.trace,
        shard.policy,
        nodes=shard.nodes,
        cache_bytes=_SPEC.cache_mb * 1024 * 1024,
        num_requests=_SPEC.requests,
        passes=_SPEC.passes,
        seed=shard.seed,
    )
    assert direct.throughput_rps == result.throughput_rps
    assert direct.node_completions == result.node_completions


def test_shard_result_unchanged_under_sanitizer():
    """A sanitized rerun of a farmed shard is observationally identical
    — the farm's free-list/fast-path reliance never leaks into results."""
    import dataclasses

    from repro.sim import run_simulation

    farm = run_sweep(_SPEC, workers=2)
    shard, result = farm.rows()[4]  # an l2s cell (the most stateful)
    sanitized = run_simulation(
        shard.trace,
        shard.policy,
        nodes=shard.nodes,
        cache_bytes=_SPEC.cache_mb * 1024 * 1024,
        num_requests=_SPEC.requests,
        passes=_SPEC.passes,
        seed=shard.seed,
        sanitize=True,
    )
    assert dataclasses.asdict(sanitized) == dataclasses.asdict(result)


# -- chaos farming -----------------------------------------------------------


def test_chaos_farm_matches_serial_verdicts():
    serial = run_chaos_farm(3, seed=11, workers=1, requests=300)
    farmed = run_chaos_farm(3, seed=11, workers=2, requests=300)
    assert farmed.outcomes == serial.outcomes
    assert farmed.failures == serial.failures
