"""SweepSpec: validation, shard ordering, seed derivation, JSON round-trip."""

from __future__ import annotations

import pytest

from repro.farm.spec import FarmSpecError, SweepSpec, derive_shard_seed


def _spec(**overrides) -> SweepSpec:
    kwargs = dict(
        traces=("calgary",),
        policies=("traditional", "lard"),
        node_counts=(2, 4),
        seeds=(0, 1),
        requests=500,
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


def test_shard_order_is_grid_order_and_stable():
    spec = _spec()
    shards = spec.shards()
    assert len(shards) == len(spec) == 8
    assert [s.index for s in shards] == list(range(8))
    # trace-major, then policy, then nodes, then seed.
    assert [(s.policy, s.nodes, s.seed) for s in shards[:4]] == [
        ("traditional", 2, 0),
        ("traditional", 2, 1),
        ("traditional", 4, 0),
        ("traditional", 4, 1),
    ]
    assert spec.shards() == shards  # identical on every call


def test_json_round_trip():
    spec = _spec(cache_mb=16, passes=1)
    again = SweepSpec.from_json(spec.to_json())
    assert again == spec


def test_save_load_round_trip(tmp_path):
    spec = _spec()
    path = str(tmp_path / "spec.json")
    spec.save(path)
    assert SweepSpec.load(path) == spec


@pytest.mark.parametrize(
    "overrides",
    [
        {"traces": ()},
        {"traces": ("not-a-trace",)},
        {"policies": ()},
        {"node_counts": ()},
        {"node_counts": (0,)},
        {"seeds": ()},
        {"seeds": (1, 1)},
        {"requests": 0},
        {"cache_mb": 0},
        {"passes": 0},
    ],
)
def test_invalid_specs_rejected(overrides):
    with pytest.raises(FarmSpecError):
        _spec(**overrides)


def test_from_json_rejects_garbage():
    with pytest.raises(FarmSpecError):
        SweepSpec.from_json("not json at all {")
    with pytest.raises(FarmSpecError):
        SweepSpec.from_json("[1, 2]")
    with pytest.raises(FarmSpecError):
        SweepSpec.from_json('{"traces": ["calgary"]}')  # missing fields
    with pytest.raises(FarmSpecError):
        SweepSpec.from_json(
            '{"traces": ["calgary"], "policies": ["lard"], '
            '"node_counts": [2], "seeds": [0], "requests": 10, '
            '"bogus_field": 1}'
        )


def test_derived_seed_stream_is_deterministic_and_spread():
    a = [derive_shard_seed(0, i) for i in range(32)]
    b = [derive_shard_seed(0, i) for i in range(32)]
    assert a == b
    assert len(set(a)) == 32
    # Different bases give unrelated streams (no base+index aliasing).
    c = [derive_shard_seed(1, i) for i in range(32)]
    assert not set(a) & set(c)
    assert derive_shard_seed(1, 0) != derive_shard_seed(0, 1)


def test_derived_spec_uses_the_seed_stream():
    spec = SweepSpec.derived(
        traces=("calgary",),
        policies=("lard",),
        node_counts=(2,),
        base_seed=9,
        replicates=3,
        requests=100,
    )
    assert spec.seeds == tuple(derive_shard_seed(9, i) for i in range(3))
