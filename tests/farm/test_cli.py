"""``repro farm`` CLI: flags, spec files, quick mode, determinism."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as repro_main
from repro.farm.cli import main as farm_main

_GRID = [
    "sweep",
    "--traces", "calgary",
    "--policies", "traditional,lard",
    "--nodes", "4",
    "--seeds", "0,1",
    "--requests", "300",
    "--no-progress",
]


def test_sweep_quick_smoke(capsys):
    rc = farm_main(
        ["sweep", "--quick", "--requests", "300", "--workers", "1",
         "--no-progress"]
    )
    captured = capsys.readouterr()
    assert rc == 0
    # --quick still honors the default grid shape in its banner.
    assert "= 6 shards" in captured.err
    assert "traditional" in captured.out and "l2s" in captured.out


def test_sweep_workers_flag_output_identical(capsys):
    assert farm_main(_GRID + ["--workers", "1"]) == 0
    serial_out = capsys.readouterr().out
    assert farm_main(_GRID + ["--workers", "2"]) == 0
    farm_out = capsys.readouterr().out
    assert farm_out == serial_out


def test_sweep_twice_identical(capsys):
    assert farm_main(_GRID + ["--workers", "2"]) == 0
    first = capsys.readouterr().out
    assert farm_main(_GRID + ["--workers", "2"]) == 0
    second = capsys.readouterr().out
    assert first == second


def test_sweep_spec_file_round_trip(tmp_path, capsys):
    spec_path = str(tmp_path / "grid.json")
    rc = farm_main(_GRID + ["--save-spec", spec_path])
    assert rc == 0
    capsys.readouterr()
    out_path = str(tmp_path / "merged.json")
    rc = farm_main(
        ["sweep", "--spec", spec_path, "--workers", "2", "--no-progress",
         "--out", out_path]
    )
    assert rc == 0
    spec_run = capsys.readouterr().out
    rc = farm_main(_GRID + ["--workers", "1", "--out", str(tmp_path / "s.json")])
    assert rc == 0
    with open(out_path) as fh:
        merged = json.load(fh)
    assert len(merged["results"]) == 4
    assert merged["spec"]["requests"] == 300
    # The --spec run and the flag run produce the same table.
    flag_run = capsys.readouterr().out
    table = lambda text: text.split("trace ", 1)[1].rsplit("wrote", 1)[0]
    assert table(spec_run) == table(flag_run)


def test_sweep_rejects_bad_spec(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"traces": []}')
    rc = farm_main(["sweep", "--spec", str(bad)])
    assert rc == 2
    assert "farm sweep:" in capsys.readouterr().err


def test_sweep_derived_seed_count(capsys):
    rc = farm_main(
        ["sweep", "--traces", "calgary", "--policies", "traditional",
         "--nodes", "2", "--replicates", "3", "--requests", "200",
         "--no-progress"]
    )
    assert rc == 0
    assert "3 seed(s)" in capsys.readouterr().err


def test_top_level_cli_delegates_to_farm(capsys):
    rc = repro_main(
        ["farm", "sweep", "--traces", "calgary", "--policies", "traditional",
         "--nodes", "2", "--seeds", "0", "--requests", "200",
         "--workers", "1", "--no-progress"]
    )
    assert rc == 0
    captured = capsys.readouterr()
    assert "farm sweep:" in captured.err
    assert "traditional" in captured.out


def test_chaos_farm_cli_smoke(capsys, tmp_path):
    rc = farm_main(
        ["chaos", "--trials", "2", "--seed", "11", "--requests", "300",
         "--workers", "2", "--no-progress", "--out", str(tmp_path / "f")]
    )
    captured = capsys.readouterr()
    assert rc in (0, 1)
    assert "2 trials" in captured.err
    assert "farm chaos:" in captured.out


def test_progress_goes_to_stderr_not_stdout(capsys):
    rc = farm_main(
        ["sweep", "--traces", "calgary", "--policies", "traditional",
         "--nodes", "2", "--seeds", "0", "--requests", "200",
         "--workers", "1"]
    )
    assert rc == 0
    captured = capsys.readouterr()
    assert "[1/1]" in captured.err
    assert "[1/1]" not in captured.out
