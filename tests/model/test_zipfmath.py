"""Tests for the continuous Zipf accumulation math."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import fit_population, harmonic_continuous, zipf_mass
from repro.workload import harmonic


def test_harmonic_continuous_matches_exact_small():
    for n in (1, 2, 5, 100, 1000):
        for alpha in (0.5, 0.78, 1.0, 1.08, 2.0):
            assert harmonic_continuous(n, alpha) == pytest.approx(
                harmonic(n, alpha), rel=1e-12
            )


def test_harmonic_continuous_fractional_interpolates():
    a = harmonic_continuous(10, 1.0)
    b = harmonic_continuous(11, 1.0)
    mid = harmonic_continuous(10.5, 1.0)
    assert a < mid < b
    assert mid == pytest.approx(a + 0.5 * (b - a), rel=1e-9)


def test_harmonic_continuous_below_one():
    assert harmonic_continuous(0.25, 1.0) == pytest.approx(0.25)
    assert harmonic_continuous(0, 1.0) == 0.0


def test_harmonic_continuous_large_alpha1():
    # H_n ~ ln(n) + gamma for alpha = 1.
    gamma = 0.5772156649015329
    n = 1e12
    assert harmonic_continuous(n, 1.0) == pytest.approx(
        math.log(n) + gamma, rel=1e-9
    )


def test_harmonic_continuous_large_alpha_below_one():
    # H_n(a) ~ n^(1-a)/(1-a) + zeta(a) for 0 < a < 1; dominant term check.
    n = 1e10
    alpha = 0.78
    dominant = n ** (1 - alpha) / (1 - alpha)
    val = harmonic_continuous(n, alpha)
    assert val == pytest.approx(dominant, rel=0.01)


def test_harmonic_continuous_continuity_at_anchor():
    """No jump where the exact sum hands over to Euler-Maclaurin."""
    limit = 1 << 20
    for alpha in (0.78, 1.0, 1.08):
        below = harmonic_continuous(limit - 0.5, alpha)
        above = harmonic_continuous(limit + 0.5, alpha)
        at = harmonic_continuous(limit, alpha)
        assert below < at < above
        assert above - below < 2.5 * limit**-alpha


def test_harmonic_continuous_validation():
    with pytest.raises(ValueError):
        harmonic_continuous(-1, 1.0)
    with pytest.raises(ValueError):
        harmonic_continuous(1, -0.1)


def test_zipf_mass_matches_discrete():
    from repro.workload import zipf_top_mass

    assert zipf_mass(10, 100, 1.0) == pytest.approx(
        zipf_top_mass(10, 100, 1.0), rel=1e-12
    )


def test_zipf_mass_bounds_and_clamping():
    assert zipf_mass(0, 100, 1.0) == 0.0
    assert zipf_mass(100, 100, 1.0) == pytest.approx(1.0)
    assert zipf_mass(1e6, 100, 1.0) == pytest.approx(1.0)


def test_zipf_mass_infinite_population():
    assert zipf_mass(1000, math.inf, 1.0) == 0.0
    assert zipf_mass(1000, math.inf, 0.8) == 0.0
    # alpha > 1: converges; top-1 of infinitely many has mass 1/zeta(alpha).
    m = zipf_mass(1, math.inf, 2.0)
    assert m == pytest.approx(6 / math.pi**2, rel=1e-6)


def test_zipf_mass_invalid_population():
    with pytest.raises(ValueError):
        zipf_mass(1, 0, 1.0)


def test_fit_population_roundtrip():
    for alpha in (0.78, 1.0, 1.08):
        for hit in (0.2, 0.5, 0.9, 0.99):
            f = fit_population(hit, 1000, alpha)
            if math.isinf(f):
                # Reachable only above the infinite-population asymptote
                # (possible when alpha > 1, e.g. alpha=1.08 at hit=0.2).
                assert alpha > 1.0
                assert zipf_mass(1000, math.inf, alpha) > hit
            else:
                assert zipf_mass(1000, f, alpha) == pytest.approx(hit, rel=1e-6)


def test_fit_population_hit_one():
    assert fit_population(1.0, 5000, 1.0) == 5000


def test_fit_population_monotone_in_hit_rate():
    f_low = fit_population(0.3, 1000, 1.0)
    f_high = fit_population(0.8, 1000, 1.0)
    assert f_low > f_high >= 1000


def test_fit_population_unreachable_returns_inf():
    # alpha = 2: even an infinite population gives the top-1000 files
    # almost all the mass, so very low hit rates are unreachable.
    floor = zipf_mass(1000, math.inf, 2.0)
    assert floor > 0.99
    assert fit_population(0.5, 1000, 2.0) == math.inf


def test_fit_population_validation():
    with pytest.raises(ValueError):
        fit_population(0.0, 100, 1.0)
    with pytest.raises(ValueError):
        fit_population(1.1, 100, 1.0)
    with pytest.raises(ValueError):
        fit_population(0.5, 0, 1.0)


@given(
    x=st.floats(min_value=0.1, max_value=1e15),
    alpha=st.floats(min_value=0.0, max_value=2.5),
)
@settings(max_examples=80, deadline=None)
def test_property_harmonic_positive_and_monotone(x, alpha):
    v = harmonic_continuous(x, alpha)
    v2 = harmonic_continuous(x * 1.5, alpha)
    assert v > 0
    assert v2 >= v


@given(
    hit=st.floats(min_value=0.01, max_value=1.0),
    cached=st.floats(min_value=1.0, max_value=1e6),
    alpha=st.floats(min_value=0.3, max_value=1.2),
)
@settings(max_examples=50, deadline=None)
def test_property_fit_population_inverts_zipf_mass(hit, cached, alpha):
    f = fit_population(hit, cached, alpha)
    assert f >= cached * (1 - 1e-9)
    if math.isfinite(f):
        assert zipf_mass(cached, f, alpha) == pytest.approx(hit, rel=1e-4)
