"""Tests that ModelParameters encodes Table 1 exactly."""

import pytest

from repro.model import DEFAULT_PARAMETERS, MB, ModelParameters


def test_table1_default_values():
    p = DEFAULT_PARAMETERS
    assert p.nodes == 16
    assert p.replication == 0.0
    assert p.alpha == 1.0
    assert p.cache_bytes == 128 * MB


def test_table1_service_rates():
    """The reciprocal service times must equal the table's ops/s."""
    p = DEFAULT_PARAMETERS
    assert 1 / p.ni_request_time() == pytest.approx(140_000)
    assert 1 / p.parse_time() == pytest.approx(6_300)
    assert 1 / p.forward_time() == pytest.approx(10_000)
    # mu_m = (0.0001 + S/12000)^-1 at S = 12 KB.
    assert 1 / p.reply_time(12.0) == pytest.approx(1 / (0.0001 + 12 / 12000))
    # mu_d = (0.028 + S/10000)^-1 at S = 100 KB.
    assert 1 / p.disk_time(100.0) == pytest.approx(1 / (0.028 + 0.01))
    # mu_o = (0.000003 + S/128000)^-1 at S = 64 KB.
    assert 1 / p.ni_reply_time(64.0) == pytest.approx(1 / (0.000003 + 64 / 128000))
    # mu_r = 500000/size ops/s at size = 50 KB.
    assert 1 / p.route_time(50.0) == pytest.approx(10_000)


def test_small_message_ni_time_consistent_with_mu_i():
    """A request-sized message through the NI costs about 1/mu_i."""
    p = DEFAULT_PARAMETERS
    assert p.ni_message_time(p.request_kb) == pytest.approx(
        p.ni_request_time(), rel=0.05
    )


def test_cache_space_formulas():
    # Clo = C; Clc = N*(1-R)*C + R*C.
    p = ModelParameters(nodes=16, replication=0.15, cache_bytes=128 * MB)
    c = 128 * 1024.0  # KB
    assert p.oblivious_cache_kb() == pytest.approx(c)
    assert p.conscious_cache_kb() == pytest.approx(16 * 0.85 * c + 0.15 * c)
    assert p.replicated_cache_kb() == pytest.approx(0.15 * c)


def test_replication_one_degenerates_to_oblivious_cache():
    """Paper: 'a locality-oblivious server is a locality-conscious server
    with R = 1'."""
    p = ModelParameters(replication=1.0)
    assert p.conscious_cache_kb() == pytest.approx(p.oblivious_cache_kb())


def test_validation():
    with pytest.raises(ValueError):
        ModelParameters(nodes=0)
    with pytest.raises(ValueError):
        ModelParameters(replication=1.5)
    with pytest.raises(ValueError):
        ModelParameters(alpha=-1)
    with pytest.raises(ValueError):
        ModelParameters(cache_bytes=0)
    with pytest.raises(ValueError):
        ModelParameters(parse_rate=0)


def test_with_replaces_fields():
    p = DEFAULT_PARAMETERS.with_(nodes=8, cache_bytes=32 * MB)
    assert p.nodes == 8
    assert p.cache_bytes == 32 * MB
    assert DEFAULT_PARAMETERS.nodes == 16  # original untouched


def test_service_times_scale_with_size():
    p = DEFAULT_PARAMETERS
    assert p.reply_time(100) > p.reply_time(10)
    assert p.disk_time(100) > p.disk_time(10)
    assert p.ni_reply_time(100) > p.ni_reply_time(10)
    assert p.route_time(100) == pytest.approx(10 * p.route_time(10))
