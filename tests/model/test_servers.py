"""Tests for the analytic server bounds — including the paper's headline
modeling claims (Section 3.2)."""

import pytest

from repro.model import (
    MB,
    ModelParameters,
    bound_for_population,
    conscious_hit_rates,
    conscious_result,
    oblivious_result,
    throughput_increase,
)
from repro.workload import preset


def test_oblivious_peak_matches_figure3():
    """Fig 3: oblivious peak ~2.2-2.7e4 req/s at small files, hit rate 1."""
    p = ModelParameters()
    t = oblivious_result(p, 4.0, 1.0).throughput
    assert 2.2e4 < t < 2.9e4


def test_conscious_peak_matches_figure4():
    """Fig 4: conscious peak also ~2.2-2.5e4 (CPU bound, forwarding tax)."""
    p = ModelParameters()
    t = conscious_result(p, 4.0, 1.0).throughput
    assert 2.0e4 < t < 2.6e4


def test_oblivious_throughput_monotone_in_hit_rate():
    p = ModelParameters()
    ts = [oblivious_result(p, 16.0, h).throughput for h in (0.0, 0.4, 0.8, 1.0)]
    assert ts[0] <= ts[1] <= ts[2] <= ts[3]


def test_oblivious_throughput_decreasing_in_size():
    p = ModelParameters()
    ts = [oblivious_result(p, s, 0.9).throughput for s in (4, 16, 64, 128)]
    assert ts[0] > ts[1] > ts[2] > ts[3]


def test_oblivious_bottlenecks():
    """Low hit rates are disk-bound; hit rate 1 with small files is CPU-bound."""
    p = ModelParameters()
    assert oblivious_result(p, 4.0, 0.3).bottleneck == "disk"
    assert oblivious_result(p, 4.0, 1.0).bottleneck == "cpu"


def test_conscious_forward_fraction_without_replication():
    """With R=0 no file is replicated, so Q = (N-1)/N."""
    p = ModelParameters(nodes=16, replication=0.0)
    _, h, q = conscious_hit_rates(p, 16.0, 0.7)
    assert h == 0.0
    assert q == pytest.approx(15 / 16)


def test_conscious_replication_reduces_forwarding():
    p0 = ModelParameters(nodes=16, replication=0.0)
    p15 = ModelParameters(nodes=16, replication=0.15)
    _, _, q0 = conscious_hit_rates(p0, 16.0, 0.7)
    _, h15, q15 = conscious_hit_rates(p15, 16.0, 0.7)
    assert h15 > 0.0
    assert q15 < q0


def test_conscious_hit_rate_exceeds_oblivious():
    """The big cache (Clc = N*C) must dominate the per-node cache."""
    p = ModelParameters(nodes=16)
    for hlo in (0.3, 0.5, 0.8):
        hlc, _, _ = conscious_hit_rates(p, 16.0, hlo)
        assert hlc > hlo


def test_conscious_hit_rate_zero_oblivious():
    """Hlo = 0 means an unbounded working set: Hlc = 0 too (alpha <= 1)."""
    p = ModelParameters(nodes=16)
    hlc, h, q = conscious_hit_rates(p, 16.0, 0.0)
    assert hlc == 0.0
    assert q == pytest.approx(15 / 16)


def test_conscious_hit_rate_one():
    p = ModelParameters(nodes=16)
    hlc, _, _ = conscious_hit_rates(p, 16.0, 1.0)
    assert hlc == pytest.approx(1.0)


def test_headline_sevenfold_increase():
    """Section 3.2: locality-conscious distribution can raise throughput
    'up to 7-fold' on 16 nodes.  Our grid peaks in the 6-9x band at small
    files around the 80% oblivious hit rate."""
    p = ModelParameters()
    ratio = throughput_increase(p, 4.0, 0.8)
    assert 6.0 < ratio < 9.0


def test_increase_declines_after_80_percent():
    """'The improvements come down quickly after the hit rate reaches 80%.'"""
    p = ModelParameters()
    r80 = throughput_increase(p, 4.0, 0.8)
    r95 = throughput_increase(p, 4.0, 0.95)
    r99 = throughput_increase(p, 4.0, 0.99)
    assert r80 > r95 > r99


def test_increase_below_one_at_very_high_hit_rate():
    """'...the throughput improvement for small files becomes slightly
    smaller than 1, due to the extra cost of forwarding requests.'"""
    p = ModelParameters()
    ratio = throughput_increase(p, 4.0, 1.0)
    assert 0.75 < ratio < 1.0


def test_increase_near_one_at_zero_hit_rate():
    """Both servers are disk-bound with the same miss stream at Hlo=0."""
    p = ModelParameters()
    ratio = throughput_increase(p, 16.0, 0.0)
    assert ratio == pytest.approx(1.0, abs=0.1)


def test_memory_sensitivity_512mb():
    """Section 3.2: with 512 MB memories the peak gain drops to ~6.5x."""
    p128 = ModelParameters(cache_bytes=128 * MB)
    p512 = ModelParameters(cache_bytes=512 * MB)
    r128 = max(throughput_increase(p128, 4.0, h) for h in (0.7, 0.75, 0.8, 0.85))
    r512 = max(throughput_increase(p512, 4.0, h) for h in (0.7, 0.75, 0.8, 0.85))
    assert r512 <= r128
    assert 5.0 < r512 < 8.5


def test_bound_for_population_matches_paper_fig7():
    """The 'model' curve of figure 7 tops out around 8000 req/s at 16
    nodes for Calgary (S=19.7 KB, 32 MB memories, 15% replication)."""
    pr = preset("calgary")
    p = ModelParameters(
        nodes=16, replication=0.15, alpha=pr.alpha, cache_bytes=32 * MB
    )
    r = bound_for_population("conscious", p, pr.avg_request_kb, pr.num_files)
    assert 7_000 < r.throughput < 9_500


def test_bound_for_population_matches_paper_fig8_fig9_fig10():
    expectations = {
        "clarknet": (11_000, 15_000),  # fig 8 model ~13 000
        "nasa": (3_200, 4_500),  # fig 9 model ~4 000
        "rutgers": (5_500, 8_000),  # fig 10 model ~6 500
    }
    for name, (lo, hi) in expectations.items():
        pr = preset(name)
        p = ModelParameters(
            nodes=16, replication=0.15, alpha=pr.alpha, cache_bytes=32 * MB
        )
        r = bound_for_population("conscious", p, pr.avg_request_kb, pr.num_files)
        assert lo < r.throughput < hi, f"{name}: {r.throughput:.0f}"


def test_bound_scales_with_nodes():
    pr = preset("calgary")
    ts = []
    for n in (1, 4, 8, 16):
        p = ModelParameters(
            nodes=n, replication=0.15, alpha=pr.alpha, cache_bytes=32 * MB
        )
        ts.append(
            bound_for_population(
                "conscious", p, pr.avg_request_kb, pr.num_files
            ).throughput
        )
    assert ts[0] < ts[1] < ts[2] < ts[3]


def test_bound_for_population_oblivious_below_conscious_at_16():
    pr = preset("rutgers")
    p = ModelParameters(nodes=16, replication=0.15, alpha=pr.alpha, cache_bytes=32 * MB)
    lo = bound_for_population("oblivious", p, pr.avg_request_kb, pr.num_files)
    lc = bound_for_population("conscious", p, pr.avg_request_kb, pr.num_files)
    assert lc.throughput > lo.throughput


def test_bound_for_population_validation():
    p = ModelParameters()
    with pytest.raises(ValueError):
        bound_for_population("conscious", p, -1.0, 100)
    with pytest.raises(ValueError):
        bound_for_population("conscious", p, 10.0, 0)
    with pytest.raises(ValueError):
        bound_for_population("weird", p, 10.0, 100)  # type: ignore[arg-type]


def test_result_exposes_network_queries():
    p = ModelParameters()
    r = oblivious_result(p, 16.0, 0.9)
    u = r.utilizations(100.0)
    assert set(u) == {"router", "ni_in", "cpu", "disk", "ni_out"}
    assert r.response_time(0.0) > 0
    assert r.response_time(r.throughput * 2) == float("inf")


def test_input_validation():
    p = ModelParameters()
    with pytest.raises(ValueError):
        oblivious_result(p, 0.0, 0.5)
    with pytest.raises(ValueError):
        oblivious_result(p, 16.0, 1.5)
    with pytest.raises(ValueError):
        conscious_hit_rates(p, -2.0, 0.5)
    with pytest.raises(ValueError):
        conscious_hit_rates(p, 16.0, -0.1)
