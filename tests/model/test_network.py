"""Tests for the open M/M/1 network solver."""

import math

import pytest

from repro.model import QueuingNetwork, StationDemand


def net(*stations):
    return QueuingNetwork(list(stations))


def test_station_capacity():
    s = StationDemand("cpu", 0.001, servers=4)
    assert s.capacity == pytest.approx(4000.0)


def test_station_zero_demand_infinite_capacity():
    assert StationDemand("idle", 0.0).capacity == math.inf


def test_station_validation():
    with pytest.raises(ValueError):
        StationDemand("x", -1.0)
    with pytest.raises(ValueError):
        StationDemand("x", 1.0, servers=0)


def test_network_requires_stations():
    with pytest.raises(ValueError):
        QueuingNetwork([])


def test_network_rejects_duplicate_names():
    with pytest.raises(ValueError):
        net(StationDemand("a", 1.0), StationDemand("a", 2.0))


def test_saturation_is_min_capacity():
    n = net(
        StationDemand("router", 0.0001, servers=1),  # 10 000/s
        StationDemand("cpu", 0.002, servers=16),  # 8 000/s
        StationDemand("disk", 0.01, servers=16),  # 1 600/s
    )
    assert n.saturation_throughput() == pytest.approx(1600.0)
    assert n.bottleneck().name == "disk"


def test_utilizations_linear_in_rate():
    n = net(StationDemand("cpu", 0.002, servers=4))
    u = n.utilizations(1000.0)
    assert u["cpu"] == pytest.approx(0.5)
    assert n.utilizations(2000.0)["cpu"] == pytest.approx(1.0)
    with pytest.raises(ValueError):
        n.utilizations(-1)


def test_response_time_single_mm1():
    # Classic M/M/1: W = 1/(mu - lambda); with d=1/mu: d/(1-rho).
    n = net(StationDemand("q", 0.01, servers=1))  # mu = 100
    lam = 50.0
    assert n.response_time(lam) == pytest.approx(1 / (100 - 50))


def test_response_time_diverges_at_saturation():
    n = net(StationDemand("q", 0.01, servers=1))
    assert n.response_time(100.0) == math.inf
    assert n.response_time(150.0) == math.inf


def test_response_time_sums_stations():
    n = net(
        StationDemand("a", 0.01, servers=1),
        StationDemand("b", 0.005, servers=1),
    )
    lam = 20.0
    expected = 0.01 / (1 - 0.2) + 0.005 / (1 - 0.1)
    assert n.response_time(lam) == pytest.approx(expected)


def test_response_time_monotone_in_load():
    n = net(StationDemand("a", 0.001, servers=2))
    r = [n.response_time(lam) for lam in (0.0, 500.0, 1000.0, 1500.0)]
    assert r[0] < r[1] < r[2] < r[3]
    assert r[0] == pytest.approx(0.001)  # no queueing at zero load


def test_response_time_negative_rate_rejected():
    n = net(StationDemand("a", 0.001))
    with pytest.raises(ValueError):
        n.response_time(-1.0)


def test_as_dict():
    n = net(StationDemand("a", 0.5, servers=2))
    assert n.as_dict() == {"a": (0.5, 2)}
