"""Tests for exact Mean Value Analysis, against textbook results."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import StationDemand
from repro.model.mva import mva, mva_from_stations


def test_single_station_saturates_immediately():
    """One queue, no think time: X(m) = 1/d for every m >= 1."""
    for m in (1, 2, 5, 50):
        r = mva([("q", 0.01)], m)
        assert r.throughput == pytest.approx(100.0)
        assert r.queue_lengths["q"] == pytest.approx(m)


def test_balanced_network_closed_form():
    """K identical stations of demand d: X(m) = m / (d * (K + m - 1))."""
    d, k = 0.02, 4
    demands = [(f"s{i}", d) for i in range(k)]
    for m in (1, 2, 3, 10, 40):
        r = mva(demands, m)
        assert r.throughput == pytest.approx(m / (d * (k + m - 1)), rel=1e-12)


def test_think_time_interactive_law():
    """With think time Z: X(1) = 1 / (Z + sum d)."""
    r = mva([("a", 0.01), ("b", 0.02)], 1, think_time=0.5)
    assert r.throughput == pytest.approx(1 / 0.53)
    assert r.response_time == pytest.approx(0.03)


def test_asymptotic_bounds():
    """X(m) <= min(m / (Z + D), 1 / d_max) — the classic bounds."""
    demands = [("a", 0.004), ("b", 0.01), ("c", 0.002)]
    total = sum(d for _, d in demands)
    for m in (1, 3, 8, 100):
        x = mva(demands, m).throughput
        assert x <= m / total + 1e-12
        assert x <= 1 / 0.01 + 1e-12
    # Large populations approach the bottleneck rate.
    assert mva(demands, 200).throughput == pytest.approx(100.0, rel=1e-3)


def test_queue_lengths_sum_to_population():
    demands = [("a", 0.004), ("b", 0.01)]
    r = mva(demands, 12)
    assert sum(r.queue_lengths.values()) == pytest.approx(12.0)


def test_utilization_helper():
    demands = [("a", 0.004), ("b", 0.01)]
    r = mva(demands, 50)
    u = r.utilization(dict(demands))
    assert u["b"] == pytest.approx(1.0, rel=1e-3)  # bottleneck saturated
    assert u["a"] == pytest.approx(0.4, rel=1e-2)


def test_validation():
    with pytest.raises(ValueError):
        mva([("a", 0.01)], 0)
    with pytest.raises(ValueError):
        mva([("a", 0.01)], 5, think_time=-1)
    with pytest.raises(ValueError):
        mva([("a", 0.01), ("a", 0.02)], 5)
    with pytest.raises(ValueError):
        mva([("a", -0.01)], 5)
    with pytest.raises(ValueError):
        mva([("a", 0.0)], 5)


def test_station_expansion_matches_manual():
    stations = [
        StationDemand("router", 0.001, servers=1),
        StationDemand("cpu", 0.008, servers=4),
    ]
    r = mva_from_stations(stations, 10)
    manual = mva(
        [("router", 0.001)] + [(f"cpu[{i}]", 0.002) for i in range(4)], 10
    )
    assert r.throughput == pytest.approx(manual.throughput)
    assert set(r.queue_lengths) == {"router", "cpu[0]", "cpu[1]", "cpu[2]", "cpu[3]"}


def test_mva_approaches_open_bound():
    """At large populations the closed throughput approaches the open
    network's saturation bound min_k(servers/d)."""
    stations = [
        StationDemand("router", 0.0001, servers=1),
        StationDemand("cpu", 0.004, servers=8),  # bottleneck: 2000/s
        StationDemand("disk", 0.002, servers=8),
    ]
    r = mva_from_stations(stations, 400)
    assert r.throughput == pytest.approx(2000.0, rel=0.02)
    assert r.throughput < 2000.0  # from below
    # Convergence from below: more customers, closer to the bound.
    assert mva_from_stations(stations, 1200).throughput > r.throughput


@given(
    n_stations=st.integers(min_value=1, max_value=6),
    customers=st.integers(min_value=1, max_value=60),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=50, deadline=None)
def test_property_mva_monotone_and_bounded(n_stations, customers, seed):
    import random

    rng = random.Random(seed)
    demands = [(f"s{i}", rng.uniform(1e-4, 1e-2)) for i in range(n_stations)]
    x1 = mva(demands, customers).throughput
    x2 = mva(demands, customers + 1).throughput
    d_max = max(d for _, d in demands)
    assert 0 < x1 <= x2 + 1e-12  # throughput non-decreasing in population
    assert x2 <= 1 / d_max + 1e-9  # never beats the bottleneck
