"""Tests for the figure 3-6 model surfaces."""

import numpy as np
import pytest

from repro.model import (
    ModelParameters,
    ModelSurfaces,
    SurfaceGrid,
    compute_surfaces,
    peak_increase,
    side_view,
)

SMALL_GRID = SurfaceGrid(
    hit_rates=(0.0, 0.25, 0.5, 0.75, 0.8, 0.9, 0.95, 1.0),
    sizes_kb=(4.0, 16.0, 48.0, 96.0, 128.0),
)


@pytest.fixture(scope="module")
def surfaces():
    return compute_surfaces(ModelParameters(), SMALL_GRID)


def test_surface_shapes(surfaces):
    assert surfaces.oblivious.shape == SMALL_GRID.shape
    assert surfaces.conscious.shape == SMALL_GRID.shape
    assert surfaces.increase.shape == SMALL_GRID.shape


def test_surfaces_positive(surfaces):
    assert (surfaces.oblivious > 0).all()
    assert (surfaces.conscious > 0).all()


def test_fig3_shape_rises_with_hit_rate_and_small_files(surfaces):
    obl = surfaces.oblivious
    # Throughput non-decreasing in hit rate (rows) for every size.
    assert (np.diff(obl, axis=0) >= -1e-9).all()
    # Throughput decreasing in file size (columns) for every hit rate.
    assert (np.diff(obl, axis=1) <= 1e-9).all()


def test_fig4_conscious_flatter_than_oblivious(surfaces):
    """Fig 4: the conscious server sustains its peak over a much larger
    region.  At hit rate 0.8 and small files, conscious is at its peak
    while oblivious is far below its own."""
    grid = surfaces.grid
    i80 = grid.hit_rates.index(0.8)
    j4 = grid.sizes_kb.index(4.0)
    con_frac = surfaces.conscious[i80, j4] / surfaces.conscious.max()
    obl_frac = surfaces.oblivious[i80, j4] / surfaces.oblivious.max()
    assert con_frac > 0.9
    assert obl_frac < 0.25


def test_fig5_peak_increase_band(surfaces):
    """Paper: 'up to 7-fold' increase; our grid peaks in the 6-9x band."""
    assert 6.0 < surfaces.peak_increase() < 9.0


def test_fig5_peak_location(surfaces):
    """The peak lies at small files around the 80% hit-rate knee."""
    h, s = surfaces.peak_location()
    assert 0.6 <= h <= 0.9
    assert s <= 16.0


def test_fig6_side_view_envelope(surfaces):
    env = side_view(surfaces)
    assert env.shape == (len(SMALL_GRID.hit_rates), 2)
    # min <= max everywhere.
    assert (env[:, 0] <= env[:, 1] + 1e-12).all()
    # The envelope's global max is the peak increase.
    assert env[:, 1].max() == pytest.approx(surfaces.peak_increase())


def test_fig6_profile_rises_then_falls(surfaces):
    """Figure 6: the max-ratio profile climbs to the ~80% knee and falls
    towards (slightly below) 1 at hit rate 1."""
    env_max = side_view(surfaces)[:, 1]
    hit_rates = surfaces.grid.hit_rates
    knee = int(np.argmax(env_max))
    assert 0.6 <= hit_rates[knee] <= 0.9
    assert env_max[-1] < 1.6  # collapsed by hit rate 1.0
    assert env_max[0] < 2.0  # near 1 at hit rate 0


def test_peak_increase_helper_consistent(surfaces):
    assert peak_increase(ModelParameters(), SMALL_GRID) == pytest.approx(
        surfaces.peak_increase()
    )


def test_default_grid_construction():
    g = SurfaceGrid()
    assert g.shape[0] >= 10 and g.shape[1] >= 10
    assert min(g.sizes_kb) >= 4.0
    assert max(g.sizes_kb) <= 128.0


def test_grid_validation():
    with pytest.raises(ValueError):
        SurfaceGrid(hit_rates=(), sizes_kb=(4.0,))
    with pytest.raises(ValueError):
        SurfaceGrid(hit_rates=(1.2,), sizes_kb=(4.0,))
    with pytest.raises(ValueError):
        SurfaceGrid(hit_rates=(0.5,), sizes_kb=(0.0,))
