"""Tests for GreedyDual-Size and LFU file caches."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    CACHE_POLICIES,
    GDSFileCache,
    LFUFileCache,
    LRUFileCache,
    make_cache,
)


def test_registry_and_factory():
    assert set(CACHE_POLICIES) == {"lru", "gds", "lfu"}
    assert isinstance(make_cache("LRU", 100), LRUFileCache)
    assert isinstance(make_cache("gds", 100), GDSFileCache)
    assert isinstance(make_cache("lfu", 100), LFUFileCache)
    with pytest.raises(KeyError):
        make_cache("arc", 100)


@pytest.mark.parametrize("policy", ["gds", "lfu"])
def test_common_interface(policy):
    c = make_cache(policy, 1000)
    assert not c.lookup(1)
    assert c.insert(1, 400) == []
    assert c.lookup(1)
    assert 1 in c and len(c) == 1
    assert c.used_bytes == 400 and c.free_bytes == 600
    assert c.size_of(1) == 400 and c.size_of(2) is None
    assert c.peek(1) and not c.peek(2)
    assert c.miss_rate == pytest.approx(0.5)
    c.reset_stats()
    assert c.miss_rate == 0.0
    assert c.invalidate(1) and not c.invalidate(1)
    assert c.used_bytes == 0


@pytest.mark.parametrize("policy", ["gds", "lfu"])
def test_validation(policy):
    with pytest.raises(ValueError):
        make_cache(policy, 0)
    c = make_cache(policy, 100)
    with pytest.raises(ValueError):
        c.insert(1, 0)


@pytest.mark.parametrize("policy", ["gds", "lfu"])
def test_oversized_file_not_cached(policy):
    c = make_cache(policy, 100)
    assert c.insert(1, 200) == []
    assert 1 not in c


@pytest.mark.parametrize("policy", ["gds", "lfu"])
def test_clear(policy):
    c = make_cache(policy, 1000)
    c.insert(1, 100)
    c.insert(2, 100)
    c.clear()
    assert len(c) == 0 and c.used_bytes == 0


def test_gds_prefers_small_files():
    """Uniform-cost GDS evicts the big file before equally-recent small
    ones (1/size priority)."""
    c = GDSFileCache(1000)
    c.insert(1, 600)  # big
    c.insert(2, 100)  # small
    c.insert(3, 100)  # small
    evicted = c.insert(4, 400)
    assert evicted == [1]
    assert 2 in c and 3 in c and 4 in c


def test_gds_recency_via_clock_inflation():
    """After evictions raise the clock, a freshly touched old file can
    outrank newer untouched ones."""
    c = GDSFileCache(300)
    c.insert(1, 100)
    c.insert(2, 100)
    c.insert(3, 100)
    c.insert(4, 100)  # evicts something, clock rises
    assert len(c) == 3
    survivor = next(iter(c))
    c.lookup(survivor)  # refresh at the inflated clock
    before = set(c)
    c.insert(5, 100)
    assert survivor in c  # the refreshed file survived
    assert len(c) == 3


def test_lfu_evicts_least_frequent():
    c = LFUFileCache(300)
    c.insert(1, 100)
    c.insert(2, 100)
    c.insert(3, 100)
    c.lookup(1)
    c.lookup(1)
    c.lookup(2)
    evicted = c.insert(4, 100)
    assert evicted == [3]  # freq: 1->3, 2->2, 3->1


def test_lfu_forgets_frequency_on_eviction():
    c = LFUFileCache(200)
    c.insert(1, 100)
    for _ in range(5):
        c.lookup(1)
    c.insert(2, 100)
    c.insert(3, 100)  # evicts 2 (freq 1 vs 6)
    assert 2 not in c
    # Re-inserting 2 starts from frequency 1 again.
    c.insert(2, 100)  # evicts 3
    assert 3 not in c
    evicted = c.insert(4, 100)
    assert evicted == [2]


@pytest.mark.parametrize("policy", ["lru", "gds", "lfu"])
@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=25),
            st.integers(min_value=1, max_value=400),
        ),
        min_size=1,
        max_size=150,
    )
)
@settings(max_examples=25, deadline=None)
def test_property_capacity_and_consistency(policy, ops):
    """Invariants shared by every policy: bytes bounded by capacity and
    equal to the sum of live entries; hit iff present."""
    c = make_cache(policy, 1000)
    sizes = {}
    for file_id, size in ops:
        size = sizes.setdefault(file_id, size)
        present = c.peek(file_id)
        hit = c.lookup(file_id)
        assert hit == present
        if not hit:
            c.insert(file_id, size)
        assert c.used_bytes <= c.capacity
        assert c.used_bytes == sum(sizes[f] for f in c)


def test_caches_differ_on_size_skewed_workload():
    """On a workload mixing huge and tiny files, GDS keeps more objects
    than LRU (it biases against the huge ones)."""
    rng = np.random.default_rng(0)
    sizes = {f: (10_000 if f < 5 else 100) for f in range(105)}
    stream = rng.integers(0, 105, size=4000)
    counts = {}
    for policy in ("lru", "gds"):
        c = make_cache(policy, 20_000)
        for f in stream:
            f = int(f)
            if not c.lookup(f):
                c.insert(f, sizes[f])
        counts[policy] = len(c)
    assert counts["gds"] > counts["lru"]
