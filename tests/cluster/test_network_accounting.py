"""Accounting equivalence of the two message-delivery paths.

``send_message`` (generator) and ``send_message_cb`` (callback chain)
must move the same counters at the same simulated times, including under
an active netfault layer — loss/dup/jitter draws happen at the switch
stage in both paths, in the same event order, off the same seeded RNG.
"""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.des import Environment
from repro.model import MB
from repro.netfaults import NetFaultConfig


def make_cluster(nodes=3, net_faults=None):
    env = Environment()
    config = ClusterConfig(nodes=nodes, cache_bytes=1 * MB, net_faults=net_faults)
    return env, Cluster(env, config)


def counters(net):
    return {
        "sent": dict(net.message_counts),
        "delivered": dict(net.delivered_counts),
        "dropped": dict(net.dropped_counts),
        "causes": dict(net.drop_causes),
        "dups": dict(net.dup_counts),
        "in_flight": dict(net.in_flight_counts),
    }


#: (src, dst, size_kb, kind) of a burst that mixes sizes and directions.
BURST = [
    (0, 1, 1.0, "a"),
    (1, 2, 8.0, "b"),
    (2, 0, 0.5, "a"),
    (0, 2, 16.0, "c"),
    (1, 0, 2.0, "b"),
    (2, 1, 4.0, "a"),
] * 10


def run_gen_burst(net, env):
    for src, dst, size, kind in BURST:
        env.process(net.send_message(src, dst, size, kind))
    env.run()


def run_cb_burst(net, env):
    for src, dst, size, kind in BURST:
        net.send_message_cb(src, dst, size, kind)
    env.run()


@pytest.mark.parametrize(
    "nf",
    [
        None,
        NetFaultConfig(loss_rate=0.25, dup_rate=0.2, jitter_s=2e-6, seed=5),
    ],
    ids=["perfect", "lossy"],
)
def test_generator_and_callback_paths_account_identically(nf):
    env_g, cluster_g = make_cluster(net_faults=nf)
    run_gen_burst(cluster_g.net, env_g)
    env_c, cluster_c = make_cluster(net_faults=nf)
    run_cb_burst(cluster_c.net, env_c)

    assert counters(cluster_g.net) == counters(cluster_c.net)
    assert env_g.now == env_c.now
    # The burst drained: nothing is still in flight.
    assert cluster_g.net.in_flight_total() == 0
    # Books close: sent == delivered + dropped, kind by kind.
    for kind, sent in cluster_g.net.message_counts.items():
        assert sent == cluster_g.net.delivered_counts.get(
            kind, 0
        ) + cluster_g.net.dropped_counts.get(kind, 0)


def test_lossy_burst_actually_drops_and_duplicates():
    nf = NetFaultConfig(loss_rate=0.25, dup_rate=0.2, seed=5)
    env, cluster = make_cluster(net_faults=nf)
    run_gen_burst(cluster.net, env)
    assert sum(cluster.net.dropped_counts.values()) > 0
    assert sum(cluster.net.dup_counts.values()) > 0
    assert cluster.net.drop_causes.get("loss", 0) > 0


def test_send_counters_move_synchronously_in_both_paths():
    env, cluster = make_cluster()
    gen = cluster.net.send_message(0, 1, 1.0, "x")
    # The generator form counts at call time, before any advance...
    assert cluster.net.message_counts == {"x": 1}
    assert cluster.net.in_flight_counts == {"x": 1}
    # ...exactly like the callback form.
    cluster.net.send_message_cb(0, 1, 1.0, "x")
    assert cluster.net.message_counts == {"x": 2}
    env.process(gen)
    env.run()
    assert cluster.net.delivered_counts == {"x": 2}
    assert cluster.net.in_flight_counts == {"x": 0}


def test_callback_path_reports_drops():
    nf = NetFaultConfig(always_on=True)
    env, cluster = make_cluster(net_faults=nf)
    cluster.net.netfaults.link_down(0, 1)
    got, lost = [], []
    cluster.net.send_message_cb(
        0, 1, 1.0, "x", done=lambda: got.append(1), on_drop=lambda: lost.append(1)
    )
    cluster.net.send_message_cb(
        0, 2, 1.0, "x", done=lambda: got.append(1), on_drop=lambda: lost.append(1)
    )
    env.run()
    assert (got, lost) == ([1], [1])
    assert cluster.net.drop_causes == {"link": 1}


def test_reset_accounting_keeps_in_flight_level():
    env, cluster = make_cluster()
    env.process(cluster.net.send_message(0, 1, 64.0, "bulk"))
    env.run(until=1e-6)  # mid-flight
    assert cluster.net.in_flight_counts == {"bulk": 1}
    cluster.net.reset_accounting()
    assert cluster.net.message_counts == {}
    # The level survives the reset so post-warmup reconciliation holds.
    assert cluster.net.in_flight_counts == {"bulk": 1}
    env.run()
    assert cluster.net.in_flight_counts == {"bulk": 0}
    assert cluster.net.delivered_counts == {"bulk": 1}
