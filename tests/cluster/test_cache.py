"""Tests for the byte-bounded LRU file cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import LRUFileCache


def test_insert_and_lookup():
    c = LRUFileCache(1000)
    assert not c.lookup(1)  # miss
    c.insert(1, 400)
    assert c.lookup(1)  # hit
    assert c.hits == 1 and c.misses == 1
    assert c.used_bytes == 400
    assert c.free_bytes == 600
    assert len(c) == 1
    assert 1 in c


def test_eviction_order_is_lru():
    c = LRUFileCache(1000)
    c.insert(1, 400)
    c.insert(2, 400)
    c.lookup(1)  # 1 is now most recently used
    evicted = c.insert(3, 400)
    assert evicted == [2]
    assert 1 in c and 3 in c and 2 not in c


def test_eviction_of_multiple_files():
    c = LRUFileCache(1000)
    c.insert(1, 300)
    c.insert(2, 300)
    c.insert(3, 300)
    evicted = c.insert(4, 800)
    assert evicted == [1, 2, 3]
    assert c.used_bytes == 800


def test_oversized_file_not_cached():
    c = LRUFileCache(1000)
    assert c.insert(1, 2000) == []
    assert 1 not in c
    assert c.used_bytes == 0


def test_reinsert_refreshes_recency_without_double_count():
    c = LRUFileCache(1000)
    c.insert(1, 400)
    c.insert(2, 400)
    c.insert(1, 400)  # refresh, no size change
    assert c.used_bytes == 800
    evicted = c.insert(3, 400)
    assert evicted == [2]


def test_touch_refreshes_without_stats():
    c = LRUFileCache(1000)
    c.insert(1, 400)
    c.insert(2, 400)
    assert c.touch(1)
    assert not c.touch(99)
    assert c.hits == 0 and c.misses == 0
    evicted = c.insert(3, 400)
    assert evicted == [2]


def test_peek_and_size_of():
    c = LRUFileCache(1000)
    c.insert(5, 123)
    assert c.peek(5)
    assert not c.peek(6)
    assert c.size_of(5) == 123
    assert c.size_of(6) is None
    assert c.hits == 0 and c.misses == 0  # peek does not count


def test_invalidate():
    c = LRUFileCache(1000)
    c.insert(1, 500)
    assert c.invalidate(1)
    assert not c.invalidate(1)
    assert c.used_bytes == 0
    assert 1 not in c


def test_clear():
    c = LRUFileCache(1000)
    c.insert(1, 100)
    c.insert(2, 100)
    c.clear()
    assert len(c) == 0
    assert c.used_bytes == 0


def test_miss_rate_and_reset_stats():
    c = LRUFileCache(1000)
    c.lookup(1)
    c.insert(1, 100)
    c.lookup(1)
    c.lookup(1)
    assert c.miss_rate == pytest.approx(1 / 3)
    c.reset_stats()
    assert c.miss_rate == 0.0
    assert 1 in c  # contents survive a stats reset


def test_validation():
    with pytest.raises(ValueError):
        LRUFileCache(0)
    c = LRUFileCache(100)
    with pytest.raises(ValueError):
        c.insert(1, 0)


def test_iteration_order_lru_to_mru():
    c = LRUFileCache(1000)
    c.insert(1, 100)
    c.insert(2, 100)
    c.insert(3, 100)
    c.lookup(1)
    assert list(c) == [2, 3, 1]


@given(
    ops=st.lists(
        st.tuples(st.integers(min_value=0, max_value=30), st.integers(min_value=1, max_value=400)),
        min_size=1,
        max_size=200,
    )
)
@settings(max_examples=50, deadline=None)
def test_property_capacity_never_exceeded(ops):
    """Invariant: used_bytes <= capacity and equals the sum of entries."""
    c = LRUFileCache(1000)
    sizes = {}
    for file_id, size in ops:
        size = sizes.setdefault(file_id, size)  # sizes immutable per id
        if not c.lookup(file_id):
            c.insert(file_id, size)
        assert c.used_bytes <= c.capacity
        assert c.used_bytes == sum(sizes[f] for f in c)
