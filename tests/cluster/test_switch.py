"""Tests for the optional switch-fabric contention model."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.des import Environment
from repro.model import MB


def make(contention: bool, nodes=3):
    env = Environment()
    cfg = ClusterConfig(
        nodes=nodes, cache_bytes=1 * MB, model_switch_contention=contention
    )
    return env, Cluster(env, cfg)


def test_disabled_by_default():
    env, cluster = make(False)
    assert cluster.net.switch_ports is None


def test_ports_created_when_enabled():
    env, cluster = make(True)
    assert len(cluster.net.switch_ports) == 3


def test_single_message_latency_slightly_higher_with_contention():
    env1, c1 = make(False)
    p1 = env1.process(c1.net.send_message(0, 1, 64.0))
    env1.run(until=p1)
    env2, c2 = make(True)
    p2 = env2.process(c2.net.send_message(0, 1, 64.0))
    env2.run(until=p2)
    # Uncontended: only the fabric transfer time is added.
    assert env2.now > env1.now
    assert env2.now - env1.now == pytest.approx(64.0 / 128_000.0, rel=1e-6)


def test_destination_port_serializes_concurrent_senders():
    env, cluster = make(True)
    done = []

    def send(src):
        yield from cluster.net.send_message(src, 2, 640.0)  # 5 ms fabric
        done.append((src, env.now))

    env.process(send(0))
    env.process(send(1))
    env.run()
    t0, t1 = sorted(t for _, t in done)
    # The second transfer had to wait for the port (~one transfer time).
    assert t1 - t0 == pytest.approx(640.0 / 128_000.0, rel=0.2)


def test_different_destinations_do_not_contend():
    env, cluster = make(True)
    done = []

    def send(src, dst):
        yield from cluster.net.send_message(src, dst, 640.0)
        done.append(env.now)

    env.process(send(0, 1))
    env.process(send(2, 1))  # same port: serialized
    env.run()
    serialized_last = max(done)

    env2, cluster2 = make(True)
    done2 = []

    def send2(src, dst):
        yield from cluster2.net.send_message(src, dst, 640.0)
        done2.append(env2.now)

    env2.process(send2(0, 1))
    env2.process(send2(2, 0))  # distinct ports: parallel
    env2.run()
    assert max(done2) < serialized_last
