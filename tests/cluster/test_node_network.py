"""Tests for Node hardware, the interconnect, and the DFS read path."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.des import Environment
from repro.model import MB


def make_cluster(nodes=4, **cfg):
    env = Environment()
    config = ClusterConfig(nodes=nodes, cache_bytes=cfg.pop("cache_bytes", 1 * MB), **cfg)
    return env, Cluster(env, config)


def run(env, gen):
    p = env.process(gen)
    env.run(until=p)
    return env.now


def test_config_validation():
    with pytest.raises(ValueError):
        ClusterConfig(nodes=0)
    with pytest.raises(ValueError):
        ClusterConfig(cache_bytes=0)
    with pytest.raises(ValueError):
        ClusterConfig(multiprogramming_per_node=0)
    with pytest.raises(ValueError):
        ClusterConfig(cpu_msg_overhead_s=-1)
    with pytest.raises(ValueError):
        ClusterConfig(control_kb=0)


def test_config_one_way_latency_is_19us():
    """M-VIA: a 4-byte message takes ~19 us end to end."""
    cfg = ClusterConfig()
    assert cfg.one_way_message_latency() == pytest.approx(19e-6, rel=0.05)


def test_config_model_parameters_inherit_hardware():
    cfg = ClusterConfig(nodes=8, cache_bytes=32 * MB)
    p = cfg.model_parameters(replication=0.15, alpha=0.9)
    assert p.nodes == 8
    assert p.cache_bytes == 32 * MB
    assert p.replication == 0.15
    assert p.alpha == 0.9


def test_node_cpu_occupancy_is_serialized():
    env, cluster = make_cluster(1)
    node = cluster.node(0)
    done = []

    def work(name):
        yield from node.use_cpu(1.0)
        done.append((name, env.now))

    env.process(work("a"))
    env.process(work("b"))
    env.run()
    assert done == [("a", 1.0), ("b", 2.0)]


def test_node_parse_reply_disk_times_match_table1():
    env, cluster = make_cluster(1)
    node = cluster.node(0)

    assert run(env, node.parse_request()) == pytest.approx(1 / 6300)
    t0 = env.now
    run(env, node.reply_work(12.0))
    assert env.now - t0 == pytest.approx(0.0001 + 12 / 12000)
    t0 = env.now
    run(env, node.read_from_disk(100.0))
    assert env.now - t0 == pytest.approx(0.028 + 100 / 10000)
    t0 = env.now
    run(env, node.forward_work())
    assert env.now - t0 == pytest.approx(1 / 10000)


def test_connection_accounting():
    env, cluster = make_cluster(2)
    node = cluster.node(0)
    node.connection_opened()
    node.connection_opened()
    assert node.open_connections == 2
    node.connection_closed()
    assert node.open_connections == 1
    assert node.completed == 1
    node.connection_closed()
    with pytest.raises(RuntimeError):
        node.connection_closed()


def test_serve_file_hit_is_instant_miss_reads_disk():
    env, cluster = make_cluster(1)
    node = cluster.node(0)
    run(env, node.serve_file(7, 10 * 1024))
    miss_time = env.now
    assert miss_time == pytest.approx(0.028 + 10 / 10000)
    t0 = env.now
    run(env, node.serve_file(7, 10 * 1024))
    assert env.now == t0  # hit: no time passes
    assert node.cache.hits == 1 and node.cache.misses == 1


def test_router_serializes_transfers():
    env, cluster = make_cluster(2)
    times = []

    def xfer():
        yield from cluster.net.route(500.0)  # 1 ms each at 500000 KB/s
        times.append(env.now)

    env.process(xfer())
    env.process(xfer())
    env.run()
    assert times == [pytest.approx(0.001), pytest.approx(0.002)]


def test_send_message_end_to_end_cost():
    env, cluster = make_cluster(2)
    run(env, cluster.net.send_control(0, 1))
    assert env.now == pytest.approx(cluster.config.one_way_message_latency(), rel=1e-6)
    assert cluster.net.messages_sent == 1


def test_send_message_same_node_is_free():
    env, cluster = make_cluster(2)
    run(env, cluster.net.send_message(0, 0, 1.0))
    assert env.now == 0.0
    assert cluster.net.messages_sent == 0


def test_send_message_validation():
    env, cluster = make_cluster(2)
    with pytest.raises(ValueError):
        run(env, cluster.net.send_message(0, 5, 1.0))
    with pytest.raises(ValueError):
        run(env, cluster.net.send_message(0, 1, 0.0))


def test_broadcast_control_reaches_all_other_nodes():
    env, cluster = make_cluster(4)
    cluster.net.broadcast_control(1, kind="load")
    env.run()
    assert cluster.net.message_counts["load"] == 3


def test_broadcast_control_exclude():
    env, cluster = make_cluster(4)
    cluster.net.broadcast_control(0, kind="load", exclude=2)
    env.run()
    assert cluster.net.message_counts["load"] == 2


def test_message_occupies_both_nis_and_cpus():
    env, cluster = make_cluster(2)
    run(env, cluster.net.send_message(0, 1, 64.0))
    n0, n1 = cluster.nodes
    assert n0.ni_out.busy_time() > 0
    assert n1.ni_in.busy_time() > 0
    assert n0.cpu.busy_time() == pytest.approx(3e-6)
    assert n1.cpu.busy_time() == pytest.approx(3e-6)


def test_fetch_file_caches_after_miss():
    env, cluster = make_cluster(2)
    run(env, cluster.fetch_file(0, 42, 100 * 1024))
    assert 42 in cluster.node(0).cache
    t0 = env.now
    run(env, cluster.fetch_file(0, 42, 100 * 1024))
    assert env.now == t0
    assert cluster.overall_miss_rate() == pytest.approx(0.5)


def test_dfs_replicated_reads_local():
    env, cluster = make_cluster(4)
    run(env, cluster.dfs.read(2, 7, 10 * 1024))
    assert cluster.dfs.local_reads == 1
    assert cluster.dfs.remote_reads == 0
    assert cluster.node(2).disk.busy_time() > 0


def test_dfs_partitioned_remote_read_costs_more():
    env1, c1 = make_cluster(4, replicated_disks=True)
    run(env1, c1.dfs.read(0, 3, 50 * 1024))
    local_time = env1.now

    env2, c2 = make_cluster(4, replicated_disks=False)
    # file 3 homes at node 3 (3 % 4), so node 0's read is remote.
    run(env2, c2.dfs.read(0, 3, 50 * 1024))
    remote_time = env2.now
    assert c2.dfs.remote_reads == 1
    assert remote_time > local_time
    # The remote disk did the work.
    assert c2.node(3).disk.busy_time() > 0
    assert c2.node(0).disk.busy_time() == 0


def test_dfs_partitioned_local_home():
    env, cluster = make_cluster(4, replicated_disks=False)
    run(env, cluster.dfs.read(0, 4, 10 * 1024))  # 4 % 4 == 0: local
    assert cluster.dfs.local_reads == 1


def test_least_loaded_node_with_ties():
    env, cluster = make_cluster(3)
    assert cluster.least_loaded_node() == 0
    cluster.node(0).connection_opened()
    assert cluster.least_loaded_node() == 1
    cluster.node(1).connection_opened()
    cluster.node(1).connection_opened()
    cluster.node(2).connection_opened()
    assert cluster.least_loaded_node() == 0


def test_reset_accounting_preserves_cache_contents():
    env, cluster = make_cluster(2)
    run(env, cluster.fetch_file(0, 1, 1024))
    cluster.reset_accounting()
    assert 1 in cluster.node(0).cache
    assert cluster.total_cache_misses() == 0
    assert cluster.net.messages_sent == 0
    assert cluster.node(0).disk.busy_time() == 0.0


def test_cluster_len_and_counts():
    env, cluster = make_cluster(5)
    assert len(cluster) == 5
    assert cluster.num_nodes == 5
    assert cluster.connection_counts() == [0] * 5
