"""Tests for heterogeneous node speeds (extension)."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.des import Environment
from repro.model import MB


def test_config_validation():
    with pytest.raises(ValueError):
        ClusterConfig(nodes=2, node_speeds=(1.0,))
    with pytest.raises(ValueError):
        ClusterConfig(nodes=2, node_speeds=(1.0, 0.0))
    cfg = ClusterConfig(nodes=2, node_speeds=(1.0, 0.5))
    assert cfg.speed_of(0) == 1.0
    assert cfg.speed_of(1) == 0.5


def test_homogeneous_default():
    cfg = ClusterConfig(nodes=3)
    assert all(cfg.speed_of(i) == 1.0 for i in range(3))


def test_slow_node_takes_longer_on_cpu():
    env = Environment()
    cfg = ClusterConfig(nodes=2, cache_bytes=1 * MB, node_speeds=(1.0, 0.5))
    cluster = Cluster(env, cfg)

    done = []

    def work(node):
        yield from node.use_cpu(0.01)
        done.append((node.id, env.now))

    env.process(work(cluster.node(0)))
    env.process(work(cluster.node(1)))
    env.run()
    times = dict(done)
    assert times[0] == pytest.approx(0.01)
    assert times[1] == pytest.approx(0.02)  # half speed: double time


def test_speed_scales_parse_and_reply():
    env = Environment()
    cfg = ClusterConfig(nodes=1, cache_bytes=1 * MB, node_speeds=(2.0,))
    cluster = Cluster(env, cfg)
    node = cluster.node(0)
    p = env.process(node.parse_request())
    env.run(until=p)
    assert env.now == pytest.approx((1 / 6300) / 2.0)


def test_disk_and_ni_unaffected_by_cpu_speed():
    env = Environment()
    cfg = ClusterConfig(nodes=1, cache_bytes=1 * MB, node_speeds=(2.0,))
    cluster = Cluster(env, cfg)
    node = cluster.node(0)
    p = env.process(node.read_from_disk(10.0))
    env.run(until=p)
    assert env.now == pytest.approx(0.028 + 10 / 10000)
