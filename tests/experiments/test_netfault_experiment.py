"""Tests for the unreliable-interconnect experiment (study A3)."""

import pytest

from repro.experiments import netfault_experiment
from repro.experiments.netfault import NetFaultReport
from repro.workload import build_fileset, generate_trace


@pytest.fixture(scope="module")
def trace():
    fs = build_fileset(250, 15 * 1024, 12 * 1024, 0.9, seed=13, name="nfx")
    return generate_trace(fs, 3000, seed=14, name="nfx")


@pytest.fixture(scope="module")
def report(trace):
    return netfault_experiment(
        trace=trace,
        nodes=4,
        policies=("traditional", "l2s"),
        loss_rates=(0.0, 0.02),
        partition_group=(0,),
        partition_window=(0.3, 0.6),
        seed=1,
    )


def test_validation(trace):
    with pytest.raises(ValueError):
        netfault_experiment(trace=trace, policies=())
    with pytest.raises(ValueError):
        netfault_experiment(trace=trace, loss_rates=(1.0,))
    with pytest.raises(ValueError):
        netfault_experiment(trace=trace, partition_window=(0.6, 0.3))


def test_report_shape(report):
    assert isinstance(report, NetFaultReport)
    assert report.nodes == 4 and report.requests == 3000
    # Per policy: the loss sweep plus the protocol and partition cells.
    by_policy = {}
    for cell in report.cells:
        by_policy.setdefault(cell.policy, []).append(cell.scenario)
    assert by_policy == {
        "traditional": ["loss", "loss", "protocol", "partition"],
        "l2s": ["loss", "loss", "protocol", "partition"],
    }
    group, start, end = report.partition
    assert group == (0,) and 0 < start < end


def test_cells_reconcile_and_degrade_sensibly(report):
    for cell in report.cells:
        assert cell.reconciliation_residual == 0
        assert 0.0 <= cell.served_fraction <= 1.0
    lossy = {
        c.policy: c
        for c in report.cells
        if c.scenario == "loss" and c.loss_rate > 0
    }
    # Loss shows up in the drop causes, and the protocol pushes back.
    assert lossy["l2s"].drop_causes.get("loss", 0) > 0
    assert lossy["l2s"].retries > 0
    # A perfect-fabric traditional run needs no protocol effort at all.
    clean_trad = next(
        c
        for c in report.cells
        if c.policy == "traditional" and c.scenario == "loss" and c.loss_rate == 0
    )
    assert clean_trad.retries == clean_trad.send_failures == 0
    assert clean_trad.served_fraction == 1.0


def test_partition_cell_records_the_outage(report):
    part = {c.policy: c for c in report.cells if c.scenario == "partition"}
    assert part["l2s"].drop_causes.get("partition", 0) > 0


def test_render_is_deterministic(trace, report):
    text = report.render()
    assert "Unreliable interconnect" in text
    assert "seed 1" in text
    assert "partition" in text
    assert "sent == delivered + dropped + in-flight" in text
    again = netfault_experiment(
        trace=trace,
        nodes=4,
        policies=("traditional", "l2s"),
        loss_rates=(0.0, 0.02),
        partition_group=(0,),
        partition_window=(0.3, 0.6),
        seed=1,
    )
    assert again.render() == text


def test_partition_group_none_skips_partition_cells(trace):
    report = netfault_experiment(
        trace=trace,
        nodes=4,
        policies=("traditional",),
        loss_rates=(0.0,),
        partition_group=None,
    )
    assert [c.scenario for c in report.cells] == ["loss"]
    assert report.partition is None
