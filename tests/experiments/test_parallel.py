"""Tests for parallel experiment fan-out (process-pool execution)."""

import pytest

from repro.experiments import scaling_experiment
from repro.experiments.figures import bench_workers


def test_bench_workers_env(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_WORKERS", raising=False)
    assert bench_workers() == 1
    assert bench_workers(3) == 3
    monkeypatch.setenv("REPRO_BENCH_WORKERS", "4")
    assert bench_workers() == 4
    monkeypatch.setenv("REPRO_BENCH_WORKERS", "0")
    assert bench_workers() == 1  # clamped


def test_parallel_matches_serial():
    """Every cell is deterministic, so fan-out must be bit-identical."""
    kwargs = dict(
        systems=("l2s", "traditional"),
        node_counts=(2, 4),
        num_requests=1500,
    )
    serial = scaling_experiment("calgary", workers=1, **kwargs)
    parallel = scaling_experiment("calgary", workers=4, **kwargs)
    assert serial.model == parallel.model
    for system in kwargs["systems"]:
        for n in kwargs["node_counts"]:
            a = serial.results[system][n]
            b = parallel.results[system][n]
            assert a.throughput_rps == b.throughput_rps
            assert a.miss_rate == b.miss_rate
            assert a.node_completions == b.node_completions
