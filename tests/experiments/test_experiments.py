"""Tests for the figure/table/ablation experiment drivers (small scale)."""

import pytest

from repro.experiments import (
    ScalingExperiment,
    model_figures,
    model_memory_sensitivity,
    model_replication_sweep,
    render_figure3,
    render_figure4,
    render_figure5,
    render_figure6,
    render_table1,
    render_table2,
    scaling_experiment,
    table1_rows,
    table2_rows,
)
from repro.model import SurfaceGrid

TINY_GRID = SurfaceGrid(hit_rates=(0.0, 0.5, 0.8, 1.0), sizes_kb=(4.0, 64.0))


@pytest.fixture(scope="module")
def tiny_scaling():
    return scaling_experiment(
        "calgary",
        systems=("l2s", "traditional"),
        node_counts=(2, 4),
        num_requests=3000,
    )


def test_model_figures_render(capsys):
    s = model_figures(grid=TINY_GRID)
    for render in (render_figure3, render_figure4, render_figure5, render_figure6):
        text = render(s)
        assert isinstance(text, str) and len(text) > 0


def test_table1_contains_all_parameters():
    rows = table1_rows()
    names = [r[0] for r in rows]
    assert names == [
        "N", "R", "alpha", "mu_r", "mu_i", "mu_p", "mu_f", "mu_m", "mu_d", "mu_o", "C",
    ]
    text = render_table1()
    assert "140,000 ops/s" in text
    assert "6,300 ops/s" in text
    assert "128 MBytes" in text


def test_table2_paper_and_synthetic_rows_match():
    rows = table2_rows(num_requests=5000, traces=("nasa",))
    assert len(rows) == 2
    paper, synth = rows
    assert paper[0] == "paper" and synth[0] == "synthetic"
    assert paper[2] == synth[2] == 5500  # num files
    # Synthetic requested-size mean within 10% of the published value.
    assert synth[5] == pytest.approx(paper[5], rel=0.10)
    assert "nasa" in render_table2(num_requests=5000)


def test_scaling_experiment_structure(tiny_scaling):
    e = tiny_scaling
    assert isinstance(e, ScalingExperiment)
    assert e.trace == "calgary"
    assert set(e.results) == {"l2s", "traditional"}
    assert set(e.model) == {2, 4}
    series = e.throughput_series()
    assert set(series) == {"model", "l2s", "traditional"}
    assert len(series["l2s"]) == 2
    assert all(v > 0 for v in series["model"])


def test_scaling_experiment_model_is_upper_bound(tiny_scaling):
    series = tiny_scaling.throughput_series()
    for system in ("l2s", "traditional"):
        for sim, bound in zip(series[system], series["model"]):
            assert sim <= bound * 1.1  # small tolerance for estimation noise


def test_scaling_experiment_metric_series(tiny_scaling):
    miss = tiny_scaling.metric_series("miss_rate")
    assert set(miss) == {"l2s", "traditional"}
    assert all(0 <= m <= 1 for m in miss["l2s"])


def test_scaling_experiment_render(tiny_scaling):
    text = tiny_scaling.render()
    assert "nodes" in text and "model" in text


def test_model_memory_sensitivity_decreasing():
    peaks = model_memory_sensitivity(memories_mb=(128, 512))
    assert peaks[512] <= peaks[128]
    assert 4.0 < peaks[512] < 9.0


def test_model_replication_sweep_tradeoff():
    rows = model_replication_sweep(replications=(0.0, 0.15, 1.0))
    by_r = {r: (thr, hlc, q) for r, thr, hlc, q in rows}
    # Q falls with replication (at R=1 only misses on the fully
    # replicated cache are forwarded, per Table 1's formula); Hlc falls
    # with replication (the aggregate cache shrinks to C at R=1).
    assert by_r[0.0][2] > by_r[0.15][2] > by_r[1.0][2]
    assert by_r[0.0][1] >= by_r[0.15][1] >= by_r[1.0][1]


def test_bench_requests_env_override(monkeypatch):
    from repro.experiments import bench_requests

    monkeypatch.delenv("REPRO_BENCH_REQUESTS", raising=False)
    assert bench_requests(123) == 123
    monkeypatch.setenv("REPRO_BENCH_REQUESTS", "777")
    assert bench_requests(123) == 777
