"""Tests for the CSV exporters (plot-ready long-format data)."""

import csv
import io

import pytest

from repro.experiments import scaling_experiment
from repro.model import ModelParameters, SurfaceGrid, compute_surfaces


@pytest.fixture(scope="module")
def surfaces():
    grid = SurfaceGrid(hit_rates=(0.0, 0.5, 1.0), sizes_kb=(4.0, 64.0))
    return compute_surfaces(ModelParameters(), grid)


@pytest.fixture(scope="module")
def scaling():
    return scaling_experiment(
        "calgary", systems=("l2s",), node_counts=(2,), num_requests=1500
    )


def test_surfaces_csv_shape(surfaces):
    rows = list(csv.DictReader(io.StringIO(surfaces.to_csv())))
    assert len(rows) == 3 * 2
    assert set(rows[0]) == {
        "hit_rate",
        "size_kb",
        "oblivious_rps",
        "conscious_rps",
        "increase",
    }


def test_surfaces_csv_values_consistent(surfaces):
    rows = list(csv.DictReader(io.StringIO(surfaces.to_csv())))
    for row in rows:
        obl = float(row["oblivious_rps"])
        con = float(row["conscious_rps"])
        inc = float(row["increase"])
        assert inc == pytest.approx(con / obl, rel=1e-4)


def test_scaling_csv(scaling):
    rows = list(csv.DictReader(io.StringIO(scaling.to_csv())))
    systems = {r["system"] for r in rows}
    assert systems == {"model", "l2s"}
    model_rows = [r for r in rows if r["system"] == "model"]
    assert model_rows[0]["miss_rate"] == ""  # model rows carry no sim metrics
    sim_rows = [r for r in rows if r["system"] == "l2s"]
    assert float(sim_rows[0]["throughput_rps"]) > 0
    assert 0.0 <= float(sim_rows[0]["miss_rate"]) <= 1.0
