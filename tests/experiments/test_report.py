"""Tests for the text renderers."""

import numpy as np
import pytest

from repro.experiments import render_series, render_surface, render_table


def test_render_table_alignment():
    out = render_table(["a", "bb"], [[1, "x"], [22, "yy"]])
    lines = out.split("\n")
    assert len(lines) == 4
    assert lines[0].split() == ["a", "bb"]
    # All lines equal width.
    assert len({len(l) for l in lines}) == 1


def test_render_table_number_formatting():
    out = render_table(["n"], [[1234567], [3.14159]])
    assert "1,234,567" in out
    assert "3.14" in out


def test_render_table_width_mismatch():
    with pytest.raises(ValueError):
        render_table(["a", "b"], [[1]])


def test_render_table_empty_rows():
    out = render_table(["a"], [])
    assert "a" in out


def test_render_series():
    out = render_series("x", [1, 2], {"up": [10, 20], "down": [20, 10]})
    lines = out.split("\n")
    assert "up" in lines[0] and "down" in lines[0]
    assert len(lines) == 4


def test_render_surface_shades():
    vals = np.array([[0.0, 5.0], [5.0, 10.0]])
    out = render_surface(["r0", "r1"], ["c0", "c1"], vals, title="T")
    assert out.startswith("T")
    assert " " in out  # min shade
    assert "@" in out  # max shade


def test_render_surface_constant_values():
    vals = np.ones((2, 2))
    out = render_surface(["a", "b"], ["c", "d"], vals)
    # Constant surface: the data rows map to the lowest shade (space),
    # i.e. no high-intensity glyphs outside the legend line.
    data_rows = out.split("\n")[2:4]
    assert all(set(r.split("  ")[-1]) <= {" "} for r in data_rows)
    assert "min=1.0" in out


def test_render_surface_shape_mismatch():
    with pytest.raises(ValueError):
        render_surface(["a"], ["b", "c"], np.ones((2, 2)))
