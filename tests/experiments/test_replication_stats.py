"""Tests for the multi-seed replication statistics."""

import pytest

from repro.experiments.replication_stats import ReplicatedMetric, replicate


def test_replicate_calls_per_seed():
    calls = []
    m = replicate(lambda s: (calls.append(s), float(s * 10))[1], seeds=(1, 2, 3))
    assert calls == [1, 2, 3]
    assert m.values == (10.0, 20.0, 30.0)
    assert m.n == 3
    assert m.mean == pytest.approx(20.0)


def test_known_stdev_and_interval():
    m = ReplicatedMetric("x", (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0), 0.95)
    assert m.stdev == pytest.approx((32 / 7) ** 0.5)
    lo, hi = m.interval
    assert lo < m.mean < hi
    # t(7, 0.975) ~ 2.365; half width = 2.365 * s / sqrt(8).
    assert m.half_width == pytest.approx(2.365 * m.stdev / 8**0.5, rel=1e-3)


def test_single_seed_degenerate():
    m = replicate(lambda s: 5.0, seeds=(0,))
    assert m.stdev == 0.0
    assert m.half_width == 0.0
    assert m.interval == (5.0, 5.0)


def test_relative_half_width():
    m = ReplicatedMetric("x", (10.0, 10.0, 10.0), 0.95)
    assert m.relative_half_width == 0.0
    z = ReplicatedMetric("zero", (0.0, 0.0), 0.95)
    assert z.relative_half_width == 0.0


def test_higher_confidence_wider_interval():
    vals = (1.0, 2.0, 3.0, 4.0)
    narrow = ReplicatedMetric("x", vals, 0.80)
    wide = ReplicatedMetric("x", vals, 0.99)
    assert wide.half_width > narrow.half_width


def test_validation():
    with pytest.raises(ValueError):
        replicate(lambda s: 1.0, seeds=())
    with pytest.raises(ValueError):
        replicate(lambda s: 1.0, seeds=(1,), confidence=1.5)


def test_str_rendering():
    m = ReplicatedMetric("demo", (100.0, 110.0, 90.0), 0.95)
    text = str(m)
    assert "demo" in text and "±" in text and "n=3" in text
