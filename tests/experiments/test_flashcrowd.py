"""Tests for the flash-crowd trace rewrite and experiment plumbing."""

import numpy as np
import pytest

from repro.experiments.flashcrowd import (
    FlashCrowdResult,
    flash_crowd_experiment,
    flash_crowd_trace,
    pick_hot_rank,
)
from repro.workload import build_fileset, generate_trace


@pytest.fixture(scope="module")
def trace():
    fs = build_fileset(400, 16 * 1024, 13 * 1024, 0.9, seed=17, name="fc")
    return generate_trace(fs, 4000, seed=18, name="fc")


def test_pick_hot_rank_representative(trace):
    rank = pick_hot_rank(trace)
    assert 20 <= rank < 400
    size = trace.fileset.size_of(rank)
    assert abs(size - trace.mean_request_bytes()) < 0.5 * trace.mean_request_bytes()


def test_flash_crowd_trace_rewrites_window(trace):
    hot = pick_hot_rank(trace)
    flash = flash_crowd_trace(trace, spike_start=0.4, spike_length=0.3, hot_share=0.6, hot_rank=hot)
    n = len(trace)
    lo, hi = int(n * 0.4), int(n * 0.7)
    window = flash.file_ids[lo:hi]
    outside = np.concatenate([flash.file_ids[:lo], flash.file_ids[hi:]])
    hot_frac_in = (window == hot).mean()
    hot_frac_out = (outside == hot).mean()
    assert hot_frac_in == pytest.approx(0.6, abs=0.08)
    assert hot_frac_out < 0.05
    # Outside the window nothing changed.
    assert (flash.file_ids[:lo] == trace.file_ids[:lo]).all()
    assert (flash.file_ids[hi:] == trace.file_ids[hi:]).all()


def test_flash_crowd_trace_validation(trace):
    with pytest.raises(ValueError):
        flash_crowd_trace(trace, spike_start=1.0)
    with pytest.raises(ValueError):
        flash_crowd_trace(trace, spike_start=0.9, spike_length=0.5)
    with pytest.raises(ValueError):
        flash_crowd_trace(trace, hot_share=0.0)
    with pytest.raises(IndexError):
        flash_crowd_trace(trace, hot_rank=400)


def test_flash_crowd_trace_deterministic(trace):
    a = flash_crowd_trace(trace, seed=3)
    b = flash_crowd_trace(trace, seed=3)
    assert (a.file_ids == b.file_ids).all()


def test_flash_crowd_experiment_smoke(trace):
    r = flash_crowd_experiment("l2s", trace=trace, nodes=2)
    assert isinstance(r, FlashCrowdResult)
    assert r.baseline_rps > 0
    assert r.spike_rps > 0
    assert r.hot_server_count >= 1
    assert 0.0 < r.spike_retention < 5.0
