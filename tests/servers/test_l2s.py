"""Unit tests for the L2S distribution algorithm."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.des import Environment
from repro.model import MB
from repro.servers import L2SPolicy


def make(nodes=4, **kwargs):
    env = Environment()
    cluster = Cluster(env, ClusterConfig(nodes=nodes, cache_bytes=1 * MB))
    policy = L2SPolicy(**kwargs)
    policy.bind(cluster)
    return env, cluster, policy


def load(cluster, node_id, count):
    """Set a node's open-connection count."""
    node = cluster.node(node_id)
    while node.open_connections < count:
        node.connection_opened()
    while node.open_connections > count:
        node.connection_closed()


def sync_views(policy):
    """Give every node a perfectly fresh load view (test convenience)."""
    cluster = policy.cluster
    for i in range(cluster.num_nodes):
        for j in range(cluster.num_nodes):
            policy._views[i][j] = cluster.node(j).open_connections


def test_parameter_validation():
    with pytest.raises(ValueError):
        L2SPolicy(overload_threshold=0)
    with pytest.raises(ValueError):
        L2SPolicy(underload_threshold=30, overload_threshold=20)
    with pytest.raises(ValueError):
        L2SPolicy(broadcast_delta=0)
    with pytest.raises(ValueError):
        L2SPolicy(set_age_s=-1)


def test_defaults_match_paper():
    """Section 5.1: T = 20 connections, t = 10 connections, delta = 4."""
    p = L2SPolicy()
    assert p.overload_threshold == 20
    assert p.underload_threshold == 10
    assert p.broadcast_delta == 4


def test_first_request_served_locally():
    env, cluster, p = make()
    d = p.decide(2, 100)
    assert d.target == 2
    assert not d.forwarded
    assert p.server_set(100) == [2]


def test_first_request_on_overloaded_node_goes_to_least_loaded():
    env, cluster, p = make()
    load(cluster, 2, 25)  # over T=20
    sync_views(p)
    d = p.decide(2, 100)
    assert d.target != 2
    assert d.forwarded
    assert p.server_set(100) == [d.target]


def test_cached_file_served_locally_when_not_overloaded():
    env, cluster, p = make()
    p.decide(1, 50)  # node 1 becomes the server for file 50
    d = p.decide(1, 50)
    assert d.target == 1 and not d.forwarded


def test_request_forwarded_to_server_set_member():
    env, cluster, p = make()
    p.decide(1, 50)
    d = p.decide(3, 50)  # node 3 does not serve file 50
    assert d.target == 1
    assert d.forwarded
    assert p.server_set(50) == [1]  # no replication while 1 is not overloaded


def test_replication_when_set_overloaded_eager_local():
    """Eager variant: an un-overloaded initial node joins an overloaded set."""
    env, cluster, p = make()
    p.decide(1, 50)
    load(cluster, 1, 25)
    sync_views(p)
    d = p.decide(3, 50)
    assert d.target == 3
    assert not d.forwarded
    assert d.replicated
    assert set(p.server_set(50)) == {1, 3}
    assert p.replications == 1


def test_replication_strict_variant_requires_both_overloaded():
    env, cluster, p = make(eager_local_replication=False)
    p.decide(1, 50)
    load(cluster, 1, 25)  # set member overloaded
    sync_views(p)
    # Initial node 3 is NOT overloaded: strict rule keeps the request on
    # the overloaded set member.
    d = p.decide(3, 50)
    assert d.target == 1
    assert not d.replicated
    # Overload the initial node too -> replicate to global least loaded.
    load(cluster, 3, 25)
    load(cluster, 0, 22)
    load(cluster, 2, 5)
    sync_views(p)
    d = p.decide(3, 50)
    assert d.target == 2
    assert d.replicated


def test_set_shrinks_when_underloaded_and_old():
    env, cluster, p = make(set_age_s=0.0)
    p.decide(1, 50)
    load(cluster, 1, 25)
    sync_views(p)
    p.decide(3, 50)  # replicates onto 3
    assert len(p.server_set(50)) == 2
    # Everyone idle again; age 0 so the set may shrink immediately.
    load(cluster, 1, 0)
    load(cluster, 3, 0)
    sync_views(p)
    d = p.decide(3, 50)
    assert d.target == 3
    assert p.server_set(50) == [3]  # the other (most loaded view) removed
    assert p.shrinks == 1


def test_set_does_not_shrink_before_aging():
    env, cluster, p = make(set_age_s=1000.0)
    p.decide(1, 50)
    load(cluster, 1, 25)
    sync_views(p)
    p.decide(3, 50)
    load(cluster, 1, 0)
    sync_views(p)
    p.decide(3, 50)
    assert len(p.server_set(50)) == 2
    assert p.shrinks == 0


def test_load_broadcast_on_delta_crossing():
    env, cluster, p = make()
    node = cluster.node(1)
    for _ in range(3):
        node.connection_opened()
        p.on_connection_change(1)
    assert p.load_broadcasts == 0  # |3 - 0| < 4
    node.connection_opened()
    p.on_connection_change(1)
    assert p.load_broadcasts == 1  # crossed the delta
    env.run()  # deliver the messages
    # All other nodes' views of node 1 updated to 4.
    for other in (0, 2, 3):
        assert p._views[other][1] == 4
    assert cluster.net.message_counts.get("l2s_load") == 3


def test_load_views_are_stale_until_delivery():
    env, cluster, p = make()
    node = cluster.node(1)
    for _ in range(4):
        node.connection_opened()
    p.on_connection_change(1)
    # Messages scheduled but not yet delivered.
    assert p._views[0][1] == 0
    env.run()
    assert p._views[0][1] == 4


def test_server_set_change_broadcasts():
    env, cluster, p = make()
    p.decide(1, 50)  # creates a set -> broadcast
    env.run()
    assert p.set_broadcasts == 1
    assert cluster.net.message_counts.get("l2s_set") == 3


def test_optimistic_view_update_after_decision():
    """The initial node bumps its own view of the chosen target, so
    repeated decisions at one node don't all herd to the same target."""
    env, cluster, p = make()
    p.decide(1, 50)
    sync_views(p)
    before = p._views[3][1]
    d = p.decide(3, 50)
    assert d.target == 1
    assert p._views[3][1] == before + 1


def test_round_robin_initial_nodes_balanced():
    env, cluster, p = make(nodes=4)
    nodes = [p.initial_node(k, 0) for k in range(4)]
    assert sorted(nodes) == [0, 1, 2, 3]


def test_stats_and_reset():
    env, cluster, p = make()
    p.decide(0, 1)
    s = p.stats()
    assert s["files_with_server_sets"] == 1
    assert s["mean_server_set_size"] == 1.0
    p.reset_stats()
    assert p.stats()["replications"] == 0
    # Server sets survive a stats reset.
    assert p.server_set(1) == [0]


def test_mean_server_set_size_empty():
    env, cluster, p = make()
    assert p.mean_server_set_size() == 0.0
