"""Unit tests for the LARD/R front-end policy."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.des import Environment
from repro.model import MB
from repro.servers import LARDPolicy


def make(nodes=5, **kwargs):
    env = Environment()
    cluster = Cluster(env, ClusterConfig(nodes=nodes, cache_bytes=1 * MB))
    policy = LARDPolicy(**kwargs)
    policy.bind(cluster)
    return env, cluster, policy


def test_parameter_validation():
    with pytest.raises(ValueError):
        LARDPolicy(t_low=0)
    with pytest.raises(ValueError):
        LARDPolicy(t_low=70, t_high=65)
    with pytest.raises(ValueError):
        LARDPolicy(completion_batch=0)
    with pytest.raises(ValueError):
        LARDPolicy(set_age_s=-1)


def test_defaults_match_pai_et_al():
    p = LARDPolicy()
    assert p.t_low == 25
    assert p.t_high == 65
    assert p.completion_batch == 4


def test_all_requests_arrive_at_front_end():
    env, cluster, p = make()
    assert all(p.initial_node(k, k) == 0 for k in range(10))


def test_front_end_never_services():
    env, cluster, p = make()
    for f in range(50):
        d = p.decide(0, f)
        assert d.target != 0
        assert d.forwarded


def test_unknown_target_to_least_loaded_back_end():
    env, cluster, p = make()
    d1 = p.decide(0, 100)
    # View of d1.target bumped; a different file goes elsewhere.
    d2 = p.decide(0, 200)
    assert d2.target != d1.target
    assert p.server_set(100) == [d1.target]


def test_known_target_sticks_to_server():
    env, cluster, p = make()
    d1 = p.decide(0, 100)
    for _ in range(5):
        assert p.decide(0, 100).target == d1.target
    assert p.server_set(100) == [d1.target]


def test_replication_when_server_hot_and_cold_node_exists():
    env, cluster, p = make(t_low=3, t_high=6)
    d1 = p.decide(0, 100)
    # Drive the target's view above t_high with more requests to it; the
    # algorithm must at some point spill onto a cold back-end.
    decisions = [p.decide(0, 100) for _ in range(9)]
    assert p.replications >= 1
    assert any(d.replicated for d in decisions)
    assert len(p.server_set(100)) >= 2
    assert d1.target in p.server_set(100)


def test_no_replication_when_disabled():
    env, cluster, p = make(t_low=3, t_high=6, replication=False)
    d1 = p.decide(0, 100)
    for _ in range(12):
        d = p.decide(0, 100)
        assert d.target == d1.target
    assert p.server_set(100) == [d1.target]
    assert p.replications == 0


def test_set_shrinks_after_aging():
    env, cluster, p = make(t_low=3, t_high=6, set_age_s=0.0)
    p.decide(0, 100)
    for _ in range(9):
        p.decide(0, 100)  # triggers replication at some point
    assert p.replications >= 1
    # Next decision sees an aged multi-member set and trims it.
    p.decide(0, 100)
    p.decide(0, 100)
    assert p.shrinks >= 1


def test_completion_notices_batched_every_4():
    env, cluster, p = make()
    d = p.decide(0, 100)
    back = d.target
    view_before = p._view[back]
    for k in range(3):
        p.on_connection_end(back)
    env.run()
    assert p.completion_notices == 0  # batch not full
    p.on_connection_end(back)
    env.run()
    assert p.completion_notices == 1
    assert p._view[back] == view_before - 4
    assert cluster.net.message_counts.get("lard_done") == 1


def test_view_updates_only_on_delivery():
    env, cluster, p = make()
    d = p.decide(0, 100)
    back = d.target
    before = p._view[back]
    for _ in range(4):
        p.on_connection_end(back)
    # Notice in flight, not yet delivered.
    assert p._view[back] == before
    env.run()
    assert p._view[back] == before - 4


def test_single_node_degenerates_to_sequential():
    env, cluster, p = make(nodes=1)
    assert p.initial_node(0, 1) == 0
    d = p.decide(0, 1)
    assert d.target == 0
    assert not d.forwarded
    p.on_connection_end(0)  # must not send messages
    env.run()
    assert cluster.net.messages_sent == 0


def test_stats_and_reset():
    env, cluster, p = make()
    p.decide(0, 1)
    s = p.stats()
    assert s["files_with_server_sets"] == 1
    assert len(s["front_end_view"]) == 5
    p.reset_stats()
    assert p.stats()["replications"] == 0
