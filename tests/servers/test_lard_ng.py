"""Unit tests for the dispatcher-based scalable LARD (lard-ng)."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.des import Environment
from repro.model import MB
from repro.servers import DispatcherLARDPolicy, make_policy
from repro.servers.base import ServiceUnavailable


def make(nodes=5, **kwargs):
    env = Environment()
    cluster = Cluster(env, ClusterConfig(nodes=nodes, cache_bytes=1 * MB))
    policy = DispatcherLARDPolicy(**kwargs)
    policy.bind(cluster)
    return env, cluster, policy


def drive(env, gen):
    p = env.process(gen)
    env.run(until=p)
    return p.value


def test_registry_and_flags():
    p = make_policy("lard-ng")
    assert p.name == "lard-ng"
    assert p.async_decide is True


def test_validation():
    with pytest.raises(ValueError):
        DispatcherLARDPolicy(decision_cpu_s=-1)


def test_connections_land_on_serving_nodes_only():
    env, cluster, p = make()
    nodes = {p.initial_node(k, 0) for k in range(40)}
    assert 0 not in nodes
    assert nodes == {1, 2, 3, 4}


def test_sync_decide_is_rejected():
    env, cluster, p = make()
    with pytest.raises(RuntimeError, match="decide_process"):
        p.decide(1, 10)


def test_decide_process_charges_round_trip():
    env, cluster, p = make()
    decision = drive(env, p.decide_process(1, 10))
    assert decision.target in (1, 2, 3, 4)
    # Query + reply control messages were sent.
    assert cluster.net.message_counts.get("lardng_query") == 1
    assert cluster.net.message_counts.get("lardng_reply") == 1
    # The dispatcher's CPU did the decision work.
    assert cluster.node(0).cpu.busy_time() >= p.decision_cpu_s
    assert p.queries == 1


def test_local_target_avoids_handoff():
    env, cluster, p = make()
    d1 = drive(env, p.decide_process(1, 10))
    # Subsequent request for the same file arriving AT the server node:
    d2 = drive(env, p.decide_process(d1.target, 10))
    assert d2.target == d1.target
    assert not d2.forwarded


def test_remote_target_is_forwarded():
    env, cluster, p = make()
    d1 = drive(env, p.decide_process(1, 10))
    other = next(n for n in (1, 2, 3, 4) if n != d1.target)
    d2 = drive(env, p.decide_process(other, 10))
    assert d2.target == d1.target
    assert d2.forwarded


def test_dispatcher_failure_is_fatal():
    env, cluster, p = make()
    p.on_node_failed(0)
    with pytest.raises(ServiceUnavailable):
        drive(env, p.decide_process(1, 10))


def test_serving_node_failure_is_survivable():
    env, cluster, p = make()
    d1 = drive(env, p.decide_process(1, 10))
    p.on_node_failed(d1.target)
    d2 = drive(env, p.decide_process(1, 10))
    assert d2.target != d1.target
    assert 0 not in {p.initial_node(k, 0) for k in range(20)}
    assert d1.target not in {p.initial_node(k, 0) for k in range(20)}


def test_single_node_degenerates():
    env, cluster, p = make(nodes=1)
    assert p.initial_node(0, 1) == 0
    d = drive(env, p.decide_process(0, 1))
    assert d.target == 0 and not d.forwarded


def test_stats_include_queries():
    env, cluster, p = make()
    drive(env, p.decide_process(1, 10))
    assert p.stats()["queries"] == 1
