"""Unit tests for the policy interface and the simple policies."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.des import Environment
from repro.model import MB
from repro.servers import (
    ConsistentHashPolicy,
    RoundRobinPolicy,
    TraditionalPolicy,
    make_policy,
)
from repro.servers.base import ShuffledRoundRobin


def bound(policy, nodes=4):
    env = Environment()
    cluster = Cluster(env, ClusterConfig(nodes=nodes, cache_bytes=1 * MB))
    policy.bind(cluster)
    return cluster


def test_policy_requires_binding():
    p = TraditionalPolicy()
    with pytest.raises(RuntimeError):
        p.initial_node(0, 0)


def test_make_policy_registry():
    assert make_policy("traditional").name == "traditional"
    assert make_policy("L2S").name == "l2s"
    assert make_policy("lard", t_low=10, t_high=30).t_low == 10
    with pytest.raises(KeyError):
        make_policy("nope")


def test_shuffled_rr_balanced_within_every_block():
    rr = ShuffledRoundRobin(8)
    for block in range(10):
        nodes = [rr.node_for(block * 8 + k) for k in range(8)]
        assert sorted(nodes) == list(range(8))


def test_shuffled_rr_not_periodic():
    rr = ShuffledRoundRobin(8)
    first = [rr.node_for(k) for k in range(8)]
    later = [rr.node_for(800 + k) for k in range(8)]
    assert first != later  # astronomically unlikely to collide


def test_shuffled_rr_single_node():
    rr = ShuffledRoundRobin(1)
    assert [rr.node_for(k) for k in range(5)] == [0] * 5


def test_shuffled_rr_validation():
    with pytest.raises(ValueError):
        ShuffledRoundRobin(0)


def test_traditional_picks_fewest_connections():
    p = TraditionalPolicy()
    bound(p, nodes=3)
    a = p.initial_node(0, 5)
    b = p.initial_node(1, 6)
    c = p.initial_node(2, 7)
    assert {a, b, c} == {0, 1, 2}  # spreads across all nodes
    # Node `a`'s connection ends; it becomes least loaded again.
    p.on_connection_end(a)
    assert p.initial_node(3, 8) == a


def test_traditional_never_forwards():
    p = TraditionalPolicy()
    bound(p)
    d = p.decide(2, 10)
    assert d.target == 2
    assert not d.forwarded


def test_round_robin_is_balanced():
    p = RoundRobinPolicy()
    bound(p, nodes=4)
    nodes = [p.initial_node(k, 0) for k in range(8)]
    assert sorted(nodes[:4]) == [0, 1, 2, 3]
    assert sorted(nodes[4:]) == [0, 1, 2, 3]
    d = p.decide(1, 99)
    assert d.target == 1 and not d.forwarded


def test_consistent_hash_stable_ownership():
    p = ConsistentHashPolicy()
    bound(p, nodes=4)
    owner = p.owner_of(12345)
    assert owner == p.owner_of(12345)
    d = p.decide((owner + 1) % 4, 12345)
    assert d.target == owner
    assert d.forwarded
    d2 = p.decide(owner, 12345)
    assert not d2.forwarded


def test_consistent_hash_spreads_files():
    p = ConsistentHashPolicy()
    bound(p, nodes=4)
    owners = {p.owner_of(f) for f in range(200)}
    assert owners == {0, 1, 2, 3}


def test_consistent_hash_ring_mostly_stable_under_growth():
    """Adding a node moves only ~1/N of the files (the chash property)."""
    p4 = ConsistentHashPolicy()
    bound(p4, nodes=4)
    p5 = ConsistentHashPolicy()
    bound(p5, nodes=5)
    files = range(2000)
    moved = sum(1 for f in files if p4.owner_of(f) != p5.owner_of(f))
    assert moved / 2000 < 0.35  # ideal is 1/5; allow slack


def test_consistent_hash_validation():
    with pytest.raises(ValueError):
        ConsistentHashPolicy(virtual_nodes=0)


def test_stats_are_dicts():
    for name in ("traditional", "round-robin", "consistent-hash"):
        p = make_policy(name)
        bound(p)
        assert isinstance(p.stats(), dict)
