"""Tests for the DNS-translation-caching arrival model (§2)."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.des import Environment
from repro.model import MB
from repro.servers import CachedDNSPolicy, make_policy


def make(nodes=4, **kwargs):
    env = Environment()
    cluster = Cluster(env, ClusterConfig(nodes=nodes, cache_bytes=1 * MB))
    policy = CachedDNSPolicy(**kwargs)
    policy.bind(cluster)
    return env, cluster, policy


def test_registry():
    assert make_policy("dns-cached").name == "dns-cached"


def test_validation():
    with pytest.raises(ValueError):
        CachedDNSPolicy(num_resolvers=0)
    with pytest.raises(ValueError):
        CachedDNSPolicy(resolver_alpha=-1)
    with pytest.raises(ValueError):
        CachedDNSPolicy(ttl_requests=0)


def test_service_is_local():
    env, cluster, p = make()
    d = p.decide(2, 7)
    assert d.target == 2 and not d.forwarded


def test_translation_pinning():
    """A single resolver sends all its requests to one node until TTL."""
    env, cluster, p = make(num_resolvers=1, ttl_requests=10)
    nodes = [p.initial_node(k, 0) for k in range(10)]
    assert len(set(nodes)) == 1
    # The 11th resolves anew, moving round-robin to the next node.
    nxt = p.initial_node(10, 0)
    assert nxt == (nodes[0] + 1) % 4
    assert p.resolutions == 2


def test_caching_causes_imbalance_vs_ideal_rr():
    """Skewed resolvers + cached translations concentrate arrivals."""
    env, cluster, p = make(
        nodes=4, num_resolvers=50, resolver_alpha=1.2, ttl_requests=500
    )
    counts = [0, 0, 0, 0]
    for k in range(4000):
        counts[p.initial_node(k, 0)] += 1
    mean = sum(counts) / 4
    imbalance = max(counts) / mean
    assert imbalance > 1.2  # visibly uneven
    # Ideal (block-shuffled) round-robin is perfectly even.
    rr = make_policy("round-robin")
    rr.bind(cluster)
    rr_counts = [0, 0, 0, 0]
    for k in range(4000):
        rr_counts[rr.initial_node(k, 0)] += 1
    assert max(rr_counts) / (sum(rr_counts) / 4) < 1.01


def test_shorter_ttl_rebalances():
    def imbalance(ttl):
        env, cluster, p = make(
            nodes=4, num_resolvers=30, resolver_alpha=1.2, ttl_requests=ttl
        )
        counts = [0, 0, 0, 0]
        for k in range(4000):
            counts[p.initial_node(k, 0)] += 1
        return max(counts) / (sum(counts) / 4)

    assert imbalance(5) < imbalance(2000)


def test_failed_node_forces_reresolution():
    env, cluster, p = make(num_resolvers=1, ttl_requests=1000)
    node = p.initial_node(0, 0)
    p.on_node_failed(node)
    replacement = p.initial_node(1, 0)
    assert replacement != node


def test_stats():
    env, cluster, p = make()
    p.initial_node(0, 0)
    s = p.stats()
    assert s["resolutions"] >= 1
    assert s["resolvers_seen"] >= 1
