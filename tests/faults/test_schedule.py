"""Unit tests for FaultEvent / FaultSchedule / RetryPolicy."""

import pytest

from repro.faults import FaultEvent, FaultSchedule, RetryPolicy


# -- FaultEvent ---------------------------------------------------------------


def test_event_requires_exactly_one_trigger():
    with pytest.raises(ValueError):
        FaultEvent("crash", 0)
    with pytest.raises(ValueError):
        FaultEvent("crash", 0, at=1.0, after_requests=10)
    assert FaultEvent("crash", 0, at=1.0).timed
    assert not FaultEvent("crash", 0, after_requests=10).timed


def test_event_validation():
    with pytest.raises(ValueError):
        FaultEvent("explode", 0, at=1.0)
    with pytest.raises(ValueError):
        FaultEvent("crash", -1, at=1.0)
    with pytest.raises(ValueError):
        FaultEvent("crash", 0, at=-1.0)
    with pytest.raises(ValueError):
        FaultEvent("crash", 0, after_requests=-1)
    with pytest.raises(ValueError):
        FaultEvent("slow", 0, at=1.0, factor=0.0)


def test_event_parse_round_trip():
    e = FaultEvent.parse("crash:2@0.5")
    assert (e.kind, e.node, e.at) == ("crash", 2, 0.5)
    e = FaultEvent.parse("slow:3@1.0x0.25")
    assert (e.kind, e.node, e.at, e.factor) == ("slow", 3, 1.0, 0.25)
    with pytest.raises(ValueError):
        FaultEvent.parse("nonsense")
    with pytest.raises(ValueError):
        FaultEvent.parse("crash:zz@1")


def test_event_describe():
    assert FaultEvent("crash", 1, at=2.0).describe() == "crash(1) @ t=2s"
    assert (
        FaultEvent("slow", 3, at=1.0, factor=0.5).describe()
        == "slow(3) @ t=1s x0.5"
    )
    assert (
        FaultEvent("recover", 0, after_requests=100).describe()
        == "recover(0) @ n=100"
    )


# -- FaultSchedule ------------------------------------------------------------


def test_schedule_splits_and_sorts_events():
    s = FaultSchedule(
        [
            FaultEvent("recover", 0, at=2.0),
            FaultEvent("crash", 0, at=1.0),
            FaultEvent("crash", 1, after_requests=500),
            FaultEvent("crash", 2, after_requests=100),
        ]
    )
    assert [e.at for e in s.timed] == [1.0, 2.0]
    assert [e.after_requests for e in s.counted] == [100, 500]
    assert len(s) == 4 and bool(s)
    assert not FaultSchedule()


def test_schedule_parse_spec():
    s = FaultSchedule.parse("crash:2@0.5, recover:2@1.5; slow:1@0.8x0.5")
    assert len(s) == 3
    assert [e.kind for e in s.timed] == ["crash", "slow", "recover"]


def test_schedule_validate_node_range():
    s = FaultSchedule.single_crash(3, at=1.0)
    s.validate(4)
    with pytest.raises(ValueError):
        s.validate(3)


def test_crash_and_recover_ordering():
    s = FaultSchedule.crash_and_recover(1, 2.0, 5.0)
    assert [e.kind for e in s.timed] == ["crash", "recover"]
    with pytest.raises(ValueError):
        FaultSchedule.crash_and_recover(1, 5.0, 2.0)


def test_stochastic_schedule_is_deterministic_and_paired():
    a = FaultSchedule.stochastic(4, horizon_s=50.0, mtbf_s=10.0, mttr_s=2.0, seed=3)
    b = FaultSchedule.stochastic(4, horizon_s=50.0, mtbf_s=10.0, mttr_s=2.0, seed=3)
    assert a.events == b.events
    assert a.events  # a 5x-MTBF horizon virtually always crashes someone
    c = FaultSchedule.stochastic(4, horizon_s=50.0, mtbf_s=10.0, mttr_s=2.0, seed=4)
    assert a.events != c.events
    # Every crash has its recover, even past the horizon (no node is left
    # permanently dead by truncation).
    per_node = {}
    for e in sorted(a.events, key=lambda e: e.at):
        per_node.setdefault(e.node, []).append(e.kind)
    for kinds in per_node.values():
        assert kinds[::2] == ["crash"] * len(kinds[::2])
        assert kinds[1::2] == ["recover"] * len(kinds[1::2])
        assert len(kinds) % 2 == 0


def test_stochastic_exclude():
    s = FaultSchedule.stochastic(
        4, horizon_s=100.0, mtbf_s=5.0, mttr_s=1.0, seed=0, exclude=(0,)
    )
    assert all(e.node != 0 for e in s.events)


# -- RetryPolicy --------------------------------------------------------------


def test_retry_backoff_caps():
    r = RetryPolicy(max_retries=6, base_backoff_s=0.05, multiplier=2.0, cap_s=0.3)
    assert r.backoff(1) == pytest.approx(0.05)
    assert r.backoff(2) == pytest.approx(0.1)
    assert r.backoff(3) == pytest.approx(0.2)
    assert r.backoff(4) == pytest.approx(0.3)  # capped
    assert r.backoff(10) == pytest.approx(0.3)
    with pytest.raises(ValueError):
        r.backoff(0)


def test_retry_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(base_backoff_s=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(base_backoff_s=0.5, cap_s=0.1)
    with pytest.raises(ValueError):
        RetryPolicy(timeout_s=0.0)
