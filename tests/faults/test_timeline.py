"""Unit tests for the availability timeline instrument."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.des import Environment
from repro.faults import AvailabilityTimeline
from repro.model import MB


def make(interval=1.0, nodes=2):
    env = Environment()
    cluster = Cluster(env, ClusterConfig(nodes=nodes, cache_bytes=1 * MB))
    return env, cluster, AvailabilityTimeline(env, cluster, interval)


def test_interval_validation():
    env, cluster, _ = make()
    with pytest.raises(ValueError):
        AvailabilityTimeline(env, cluster, 0.0)


def test_sampler_collects_and_stops():
    env, cluster, tl = make(interval=1.0)
    done = {"n": 0}

    def work(env):
        # Offset the completions so none coincide with a sample boundary
        # (ordering of same-timestamp events is an implementation detail).
        yield env.timeout(0.05)
        for _ in range(30):
            tl.record_completion(was_miss=False)
            done["n"] += 1
            yield env.timeout(0.1)

    env.process(work(env))
    tl.start(stop=lambda: done["n"] >= 30)
    env.run()  # terminates: the sampler exits once the work is done
    assert len(tl.samples) == 3
    assert [s.completions for s in tl.samples] == [10, 10, 10]
    assert all(s.goodput_rps == pytest.approx(10.0) for s in tl.samples)


def test_window_counters_reset_each_sample():
    env, cluster, tl = make(interval=1.0)

    def work(env):
        tl.record_completion(was_miss=True)
        tl.record_completion(was_miss=False)
        tl.record_failure()
        tl.record_retry()
        yield env.timeout(1.0)

    env.process(work(env))
    env.run()
    s = tl.take_sample()
    assert (s.completions, s.failures, s.retries) == (2, 1, 1)
    assert s.miss_rate == pytest.approx(0.5)
    s2 = tl.take_sample()
    assert (s2.completions, s2.failures, s2.retries) == (0, 0, 0)
    assert s2.miss_rate == 0.0


def test_node_state_string_tracks_cluster():
    env, cluster, tl = make(nodes=3)
    cluster.node(1).crash()
    cluster.node(2).set_speed_factor(0.5)
    s = tl.take_sample()
    assert s.node_states == "UDS"
    cluster.node(1).recover()
    cluster.node(2).set_speed_factor(1.0)
    s = tl.take_sample()
    assert s.node_states == "UUU"


def test_analysis_helpers():
    env, cluster, tl = make(interval=1.0)

    def work(env):
        # 10 rps for 2 s, outage for 2 s, 10 rps for 2 s; offset from the
        # sample boundaries so ordering at coincident times can't matter.
        yield env.timeout(0.05)
        for _ in range(20):
            tl.record_completion(was_miss=False)
            yield env.timeout(0.1)
        yield env.timeout(2.0)
        for _ in range(20):
            tl.record_completion(was_miss=False)
            yield env.timeout(0.1)

    env.process(work(env))
    tl.start(stop=lambda: env.now >= 6.0)
    env.run()
    assert tl.goodput_between(0.0, 2.0) == pytest.approx(10.0)
    assert tl.goodput_between(2.0, 4.0) == pytest.approx(0.0)
    assert tl.time_to_recover(4.0, target_rps=5.0) is not None
    assert tl.time_to_recover(4.0, target_rps=1e9) is None


def test_event_annotation_and_render():
    env, cluster, tl = make()
    tl.mark_event("crash", 1)
    tl.take_sample()
    assert tl.events == [(0.0, "crash", 1)]
    out = tl.render()
    assert "crash(1)" in out
    assert "goodput" in out


def test_csv_round_trip():
    env, cluster, tl = make()
    tl.record_completion(was_miss=True)
    tl.take_sample()
    text = tl.to_csv()
    header, row = text.strip().split("\n")
    assert header.startswith("t,goodput_rps,")
    assert row.split(",")[2] == "1"  # completions column


def test_render_empty():
    env, cluster, tl = make()
    assert tl.render() == "(no samples)"


def test_shed_column_and_cross_substrate_csv_compat():
    """The DES and live timelines must emit identical CSV layouts —
    including the ``shed`` column — so overload runs on the two
    substrates diff cleanly (`repro live chaos --csv` vs sim CSVs)."""
    env, cluster, tl = make()
    tl.record_shed()
    tl.record_shed()
    tl.record_completion(was_miss=False)
    sample = tl.take_sample()
    assert sample.shed == 2
    header, row = tl.to_csv().strip().split("\n")
    assert header.split(",")[-1] == "shed"
    assert row.split(",")[-1] == "2"

    # One shared implementation, not two layouts kept in sync by hand:
    # a refactor that forks the CSV writers must fail here.
    from repro.faults.timeline import TimelineBase
    from repro.live.timeline import LiveAvailabilityTimeline

    assert LiveAvailabilityTimeline.to_csv is TimelineBase.to_csv
    assert type(tl).to_csv is TimelineBase.to_csv
