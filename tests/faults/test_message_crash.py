"""Messages in flight when their receiver crashes.

A crash must kill every message bound for the dead incarnation — at the
switch, in the NI, or on the receiver's CPU — and a recovered node must
never see bytes sent to its previous incarnation.  Both delivery paths
report the drop (``cause == "crash"``) and the reliability protocol
turns repeated crash drops into a give-up.
"""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.des import Environment
from repro.model import MB
from repro.netfaults import NetFaultConfig, RetrySpec


def make_cluster(nodes=2, net_faults=None):
    env = Environment()
    config = ClusterConfig(nodes=nodes, cache_bytes=1 * MB, net_faults=net_faults)
    return env, Cluster(env, config)


def run(env, gen):
    p = env.process(gen)
    env.run(until=p)
    return p.value


def test_generator_message_to_crashed_node_is_dropped():
    env, cluster = make_cluster()
    cluster.node(1).crash()
    ok = run(env, cluster.net.send_message(0, 1, 1.0, "x"))
    assert ok is False
    assert cluster.net.dropped_counts == {"x": 1}
    assert cluster.net.drop_causes == {"crash": 1}
    assert cluster.net.in_flight_total() == 0


def test_crash_mid_flight_kills_the_message():
    env, cluster = make_cluster()
    # A bulk message whose NI occupancy far outlasts the crash time.
    p = env.process(cluster.net.send_message(0, 1, 500.0, "bulk"))
    env.call_later(1e-6, lambda _e: cluster.node(1).crash())
    env.run(until=p)
    assert p.value is False
    assert cluster.net.drop_causes == {"crash": 1}


def test_crash_then_recover_still_drops_old_incarnation_bytes():
    env, cluster = make_cluster()
    p = env.process(cluster.net.send_message(0, 1, 500.0, "bulk"))

    def flap(_e):
        cluster.node(1).crash()
        cluster.node(1).recover()

    env.call_later(1e-6, flap)
    env.run(until=p)
    # The node is back up, but the message belonged to incarnation 0.
    assert not cluster.node(1).failed
    assert p.value is False
    assert cluster.net.drop_causes == {"crash": 1}


def test_callback_message_to_crashed_node_fires_on_drop():
    env, cluster = make_cluster()
    cluster.node(1).crash()
    got, lost = [], []
    cluster.net.send_message_cb(
        0, 1, 1.0, "x", done=lambda: got.append(1), on_drop=lambda: lost.append(1)
    )
    env.run()
    assert (got, lost) == ([], [1])
    assert cluster.net.drop_causes == {"crash": 1}


def test_callback_crash_mid_flight():
    env, cluster = make_cluster()
    lost = []
    cluster.net.send_message_cb(0, 1, 500.0, "bulk", on_drop=lambda: lost.append(1))
    env.call_later(1e-6, lambda _e: cluster.node(1).crash())
    env.run()
    assert lost == [1]
    assert cluster.net.in_flight_total() == 0


def test_protocol_gives_up_on_a_crashed_receiver():
    spec = RetrySpec(timeout_s=1e-3, max_retries=2, base_backoff_s=0.0, cap_s=0.0)
    env, cluster = make_cluster(
        net_faults=NetFaultConfig(always_on=True, default_spec=spec)
    )
    proto = cluster.net.protocol
    cluster.node(1).crash()
    ok = run(env, proto.request_gen(0, 1, 1.0, "handoff"))
    assert ok is False
    assert proto.failures == {"handoff": 1}
    assert cluster.net.drop_causes == {"crash": 3}


def test_protocol_rides_out_a_crash_recover_cycle():
    spec = RetrySpec(timeout_s=1e-3, max_retries=5, base_backoff_s=0.0, cap_s=0.0)
    env, cluster = make_cluster(
        net_faults=NetFaultConfig(always_on=True, default_spec=spec)
    )
    proto = cluster.net.protocol
    cluster.node(1).crash()
    env.call_later(2.5e-3, lambda _e: cluster.node(1).recover())
    ok = run(env, proto.request_gen(0, 1, 1.0, "handoff"))
    assert ok is True
    assert proto.retries.get("handoff", 0) >= 2
    assert cluster.net.delivered_counts["handoff"] == 1
    assert cluster.net.drop_causes.get("crash", 0) >= 2


def test_crash_drops_reconcile_with_in_flight_level():
    env, cluster = make_cluster(nodes=3)
    for dst in (1, 2):
        for _ in range(5):
            cluster.net.send_message_cb(0, dst, 50.0, "bulk")
    env.call_later(1e-6, lambda _e: cluster.node(1).crash())
    env.run()
    net = cluster.net
    assert net.message_counts["bulk"] == 10
    assert net.in_flight_total() == 0
    assert net.message_counts["bulk"] == net.delivered_counts.get(
        "bulk", 0
    ) + net.dropped_counts.get("bulk", 0)
    assert net.dropped_counts.get("bulk", 0) == net.drop_causes.get("crash", 0) == 5
