"""Integration tests: injector + recovery semantics + timeline through
the simulation driver."""

import pytest

from repro.cluster import ClusterConfig
from repro.faults import FaultSchedule, RetryPolicy
from repro.model import MB
from repro.servers import DispatcherLARDPolicy, make_policy
from repro.sim import Simulation
from repro.workload import build_fileset, generate_trace


@pytest.fixture(scope="module")
def trace():
    fs = build_fileset(250, 15 * 1024, 12 * 1024, 0.9, seed=13, name="ftrace")
    return generate_trace(fs, 4000, seed=14, name="ftrace")


def cfg(nodes=4):
    return ClusterConfig(nodes=nodes, cache_bytes=2 * MB, multiprogramming_per_node=8)


def run(trace, policy, faults=None, retry=None, interval=None, nodes=4, **kw):
    if isinstance(policy, str):
        policy = make_policy(policy)
    sim = Simulation(
        trace,
        policy,
        cfg(nodes),
        passes=2,
        faults=faults,
        retry=retry,
        timeline_interval_s=interval,
        **kw,
    )
    return sim, sim.run()


# -- node-level recovery semantics -------------------------------------------


def test_recovered_node_serves_again_with_cold_cache(trace):
    sched = FaultSchedule.crash_and_recover(2, crash_at=0.5, recover_at=1.5)
    sim, r = run(trace, "l2s", faults=sched, retry=RetryPolicy())
    node = sim.cluster.node(2)
    assert not node.failed
    assert node.crashes == 1 and node.recoveries == 1
    assert node.incarnation == 1
    # It completed requests after the reboot.
    assert node.completed > 0
    # Conservation holds even through the crash/reboot cycle.
    assert sim._completed + sim._failed == 2 * len(trace)
    assert sim._completed == 2 * len(trace)  # retries absorbed every abort


def test_recovery_without_retry_counts_failures(trace):
    sched = FaultSchedule.crash_and_recover(2, crash_at=0.5, recover_at=1.5)
    sim, r = run(trace, "l2s", faults=sched)
    # No RetryPolicy: in-flight aborts at the crash are terminal.
    assert r.requests_failed > 0
    assert r.requests_retried == 0
    assert sim._completed + sim._failed == 2 * len(trace)


def test_slow_event_degrades_and_restores(trace):
    sched = FaultSchedule.parse("slow:1@0.5x0.25,slow:1@1.0x1")
    sim, r = run(trace, "l2s", faults=sched)
    node = sim.cluster.node(1)
    assert node.speed == node.base_speed  # restored by the second event
    assert sim._completed == 2 * len(trace)


def test_counted_and_timed_events_mix(trace):
    sched = FaultSchedule(
        [
            *FaultSchedule.single_crash(2, after_requests=3000).events,
            *FaultSchedule.parse("recover:2@20").timed,
        ]
    )
    sim, r = run(trace, "l2s", faults=sched, retry=RetryPolicy())
    assert sim._injector is not None
    kinds = [k for _, k, _ in sim._injector.log]
    assert kinds == ["crash", "recover"]


def test_legacy_failures_param_still_works(trace):
    sim = Simulation(
        trace, make_policy("l2s"), cfg(), passes=2, failures=[(2, 3000)]
    )
    sim.run()
    assert sim.cluster.node(2).failed
    # And composes with the new-style schedule.
    sim = Simulation(
        trace,
        make_policy("l2s"),
        cfg(),
        passes=2,
        failures=[(2, 3000)],
        faults=FaultSchedule.parse("recover:2@30"),
        retry=RetryPolicy(),
    )
    sim.run()
    assert not sim.cluster.node(2).failed


def test_injector_validates_schedule_against_cluster(trace):
    with pytest.raises(ValueError):
        Simulation(
            trace,
            make_policy("l2s"),
            cfg(nodes=4),
            faults=FaultSchedule.single_crash(7, at=1.0),
        )


# -- retry / timeout ----------------------------------------------------------


def test_retries_are_counted_and_bounded(trace):
    sched = FaultSchedule.single_crash(0, at=0.5)  # LARD front-end, no reboot
    sim = Simulation(
        trace,
        make_policy("lard"),
        cfg(),
        passes=2,
        faults=sched,
        retry=RetryPolicy(max_retries=2, base_backoff_s=0.01, cap_s=0.05),
    )
    # A permanently-dead front-end leaves no measurement window; the run
    # still drains every slot before the driver reports that.
    with pytest.raises(RuntimeError, match="measurement window"):
        sim.run()
    assert sim._retried > 0
    # Bounded retries: every slot eventually fails terminally, so the
    # run still conserves requests.
    assert sim._completed + sim._failed == 2 * len(trace)
    assert sim._failed > 0


def test_client_timeout_interrupts_requests(trace):
    # A permanently-dead service node plus a timeout: requests that were
    # dispatched to it before the crash get interrupted by their timers.
    sim, r = run(
        trace,
        "l2s",
        faults=FaultSchedule.single_crash(2, at=0.5),
        retry=RetryPolicy(max_retries=6, timeout_s=0.75),
    )
    assert sim._completed + sim._failed == 2 * len(trace)


# -- policy rejoin semantics --------------------------------------------------


def test_l2s_rejoin_unpoisons_views_and_reheats(trace):
    sched = FaultSchedule.crash_and_recover(2, crash_at=0.5, recover_at=1.0)
    sim, r = run(trace, "l2s", faults=sched, retry=RetryPolicy())
    p = sim.policy
    assert sim.cluster.node(2).recoveries == 1
    # Survivors' views of node 2 are real numbers again, not poison.
    for i in range(4):
        assert p._views[i][2] < 1 << 29
    # Node 2 re-entered service.
    assert sim.cluster.node(2).completed > 0


def test_lard_back_end_rejoins_pool(trace):
    sched = FaultSchedule.crash_and_recover(3, crash_at=0.5, recover_at=1.0)
    sim, r = run(trace, "lard", faults=sched, retry=RetryPolicy())
    p = sim.policy
    assert 3 in p._back_ends
    assert sorted(p._back_ends) == p._back_ends
    assert sim.cluster.node(3).completed > 0


def test_lard_front_end_restart_resumes_service(trace):
    sched = FaultSchedule.crash_and_recover(0, crash_at=0.5, recover_at=1.0)
    sim, r = run(trace, "lard", faults=sched, retry=RetryPolicy(max_retries=8))
    assert sim.policy.stats()["front_end_restarts"] == 1
    assert sim._completed == 2 * len(trace)


def test_chash_ring_restores_on_rejoin():
    from repro.cluster import Cluster
    from repro.des import Environment

    env = Environment()
    cluster = Cluster(env, ClusterConfig(nodes=4, cache_bytes=1 * MB))
    p = make_policy("consistent-hash")
    p.bind(cluster)
    owners_before = {f: p.owner_of(f) for f in range(300)}
    p.on_node_failed(2)
    p.on_node_recovered(2)
    assert {f: p.owner_of(f) for f in range(300)} == owners_before


def test_lardng_failover_election(trace):
    sim, r = run(
        trace,
        DispatcherLARDPolicy(failover_s=0.2),
        faults=FaultSchedule.single_crash(0, at=0.5),
        retry=RetryPolicy(max_retries=8),
    )
    p = sim.policy
    assert p.stats()["elections"] == 1
    assert p.dispatcher == 1  # lowest-id alive serving node
    # Service resumed: the run completes everything.
    assert sim._completed == 2 * len(trace)


def test_lardng_no_failover_is_outage(trace):
    sim = Simulation(
        trace,
        DispatcherLARDPolicy(),
        cfg(),
        passes=2,
        faults=FaultSchedule.single_crash(0, at=0.5),
        retry=RetryPolicy(max_retries=2, base_backoff_s=0.01, cap_s=0.05),
    )
    # With no failover configured the dispatcher's death is permanent, so
    # the run may end with an empty measurement window.
    try:
        sim.run()
    except RuntimeError:
        pass
    assert sim.policy.stats()["elections"] == 0
    assert sim._failed > 0


def test_lardng_election_aborts_if_dispatcher_recovered(trace):
    sim, r = run(
        trace,
        DispatcherLARDPolicy(failover_s=1.0),
        faults=FaultSchedule.crash_and_recover(0, crash_at=0.5, recover_at=0.8),
        retry=RetryPolicy(max_retries=8),
    )
    # The dispatcher rebooted before the election delay elapsed: no
    # election happens and node 0 keeps the role.
    assert sim.policy.stats()["elections"] == 0
    assert sim.policy.dispatcher == 0


def test_validation_of_driver_fault_params(trace):
    with pytest.raises(ValueError):
        Simulation(trace, make_policy("l2s"), cfg(), timeline_interval_s=0.0)
    with pytest.raises(ValueError):
        DispatcherLARDPolicy(failover_s=-1.0)
