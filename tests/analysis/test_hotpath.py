"""Planted-bug fixtures for the hot-path allocation lint (REP104)."""

from repro.analysis.callgraph import CallGraph
from repro.analysis import hotpath
from repro.analysis.modules import ProjectModel


def run(sources):
    model = ProjectModel.from_sources(sources)
    return hotpath.run(model, CallGraph.build(model))


def test_allocation_in_marked_function():
    findings = run({
        "pkg.core": (
            "# simlint: hotpath\n"
            "def step(events):\n"
            "    pending = [e for e in events]\n"
            "    return pending\n"
        ),
    })
    assert [f.rule for f in findings] == ["REP104"]
    assert findings[0].line == 3
    assert "step" in "\n".join(findings[0].trace)


def test_allocation_in_transitive_callee():
    findings = run({
        "pkg.core": (
            "from .util import expand\n"
            "\n"
            "# simlint: hotpath\n"
            "def step(events):\n"
            "    return expand(events)\n"
        ),
        "pkg.util": (
            "def expand(events):\n"
            "    return inner(events)\n"
            "\n"
            "def inner(events):\n"
            "    return {e: 1 for e in events}\n"
        ),
    })
    assert [f.rule for f in findings] == ["REP104"]
    assert findings[0].path == "pkg/util.py"
    trace = "\n".join(findings[0].trace)
    # Provenance chain from the marked root through both callees.
    assert "step" in trace and "expand" in trace and "inner" in trace


def test_tuple_literal_exempt():
    findings = run({
        "pkg.core": (
            "# simlint: hotpath\n"
            "def push(heap, t, item):\n"
            "    heap.append((t, item))\n"
        ),
    })
    assert findings == []


def test_allocation_inside_raise_exempt():
    findings = run({
        "pkg.core": (
            "# simlint: hotpath\n"
            "def step(x):\n"
            "    if x < 0:\n"
            "        raise ValueError([x])\n"
            "    return x\n"
        ),
    })
    assert findings == []


def test_coldpath_stops_traversal():
    findings = run({
        "pkg.core": (
            "from .util import resize\n"
            "\n"
            "# simlint: hotpath\n"
            "def step(cal):\n"
            "    return resize(cal)\n"
        ),
        "pkg.util": (
            "# simlint: coldpath\n"
            "def resize(cal):\n"
            "    return [0] * 64\n"
        ),
    })
    assert findings == []


def test_suppression_comment():
    findings = run({
        "pkg.core": (
            "# simlint: hotpath\n"
            "def step(events):\n"
            "    out = []  # simlint: disable=REP104\n"
            "    return out\n"
        ),
    })
    assert findings == []


def test_unmarked_function_not_checked():
    findings = run({
        "pkg.core": (
            "def setup(events):\n"
            "    return [e for e in events]\n"
        ),
    })
    assert findings == []
