"""Call-graph resolution unit suite: the project model's import/alias
resolution and the resolution styles the interprocedural passes rely on
(direct calls, constructors, self/super methods, annotated parameters,
``x = Cls(...)`` locals, self-attribute types)."""

from repro.analysis.callgraph import CallGraph
from repro.analysis.modules import ProjectModel


def build(sources):
    model = ProjectModel.from_sources(sources)
    return model, CallGraph.build(model)


def targets_of(graph, qualname):
    return [c.target for c in graph.callees(qualname) if c.target]


# -- module / import resolution -------------------------------------------


def test_direct_module_function_call():
    _, g = build({
        "pkg.a": "def helper():\n    return 1\n\ndef top():\n    return helper()\n",
    })
    assert targets_of(g, "pkg.a.top") == ["pkg.a.helper"]


def test_from_import_resolution():
    _, g = build({
        "pkg.util": "def f():\n    return 0\n",
        "pkg.b": "from .util import f\n\ndef top():\n    return f()\n",
    })
    assert targets_of(g, "pkg.b.top") == ["pkg.util.f"]


def test_from_import_with_alias():
    _, g = build({
        "pkg.util": "def f():\n    return 0\n",
        "pkg.b": "from .util import f as g\n\ndef top():\n    return g()\n",
    })
    assert targets_of(g, "pkg.b.top") == ["pkg.util.f"]


def test_module_import_dotted_call():
    _, g = build({
        "pkg.util": "def f():\n    return 0\n",
        "pkg.b": (
            "from . import util\n\ndef top():\n    return util.f()\n"
        ),
    })
    assert targets_of(g, "pkg.b.top") == ["pkg.util.f"]


def test_relative_parent_import():
    _, g = build({
        "pkg.sub.mod": (
            "from ..util import f\n\ndef top():\n    return f()\n"
        ),
        "pkg.util": "def f():\n    return 0\n",
    })
    assert targets_of(g, "pkg.sub.mod.top") == ["pkg.util.f"]


# -- classes and methods ---------------------------------------------------


def test_constructor_resolves_to_init():
    _, g = build({
        "pkg.a": (
            "class C:\n"
            "    def __init__(self):\n"
            "        self.x = 1\n"
            "\n"
            "def top():\n"
            "    return C()\n"
        ),
    })
    calls = g.callees("pkg.a.top")
    assert calls[0].class_target == "pkg.a.C"
    assert calls[0].target == "pkg.a.C.__init__"


def test_self_method_call():
    _, g = build({
        "pkg.a": (
            "class C:\n"
            "    def helper(self):\n"
            "        return 1\n"
            "    def top(self):\n"
            "        return self.helper()\n"
        ),
    })
    assert targets_of(g, "pkg.a.C.top") == ["pkg.a.C.helper"]


def test_inherited_method_via_mro():
    _, g = build({
        "pkg.base": (
            "class Base:\n"
            "    def helper(self):\n"
            "        return 1\n"
        ),
        "pkg.child": (
            "from .base import Base\n"
            "\n"
            "class Child(Base):\n"
            "    def top(self):\n"
            "        return self.helper()\n"
        ),
    })
    assert targets_of(g, "pkg.child.Child.top") == ["pkg.base.Base.helper"]


def test_super_call_skips_own_class():
    _, g = build({
        "pkg.a": (
            "class Base:\n"
            "    def setup(self):\n"
            "        return 1\n"
            "\n"
            "class Child(Base):\n"
            "    def setup(self):\n"
            "        return super().setup()\n"
        ),
    })
    assert targets_of(g, "pkg.a.Child.setup") == ["pkg.a.Base.setup"]


def test_annotated_parameter_type():
    _, g = build({
        "pkg.core": (
            "class Env:\n"
            "    def timeout(self, d):\n"
            "        return d\n"
        ),
        "pkg.use": (
            "from .core import Env\n"
            "\n"
            "def top(env: Env):\n"
            "    return env.timeout(1)\n"
        ),
    })
    assert targets_of(g, "pkg.use.top") == ["pkg.core.Env.timeout"]


def test_local_constructor_assignment_type():
    _, g = build({
        "pkg.core": (
            "class Env:\n"
            "    def timeout(self, d):\n"
            "        return d\n"
        ),
        "pkg.use": (
            "from .core import Env\n"
            "\n"
            "def top():\n"
            "    env = Env()\n"
            "    return env.timeout(1)\n"
        ),
    })
    assert "pkg.core.Env.timeout" in targets_of(g, "pkg.use.top")


def test_self_attribute_type_inference():
    _, g = build({
        "pkg.a": (
            "class Worker:\n"
            "    def work(self):\n"
            "        return 1\n"
            "\n"
            "class Owner:\n"
            "    def __init__(self):\n"
            "        self.w = Worker()\n"
            "    def top(self):\n"
            "        return self.w.work()\n"
        ),
    })
    assert "pkg.a.Worker.work" in targets_of(g, "pkg.a.Owner.top")


def test_unresolved_attr_call_keeps_name():
    _, g = build({
        "pkg.a": "def top(env):\n    return env.timeout(1)\n",
    })
    calls = g.callees("pkg.a.top")
    assert calls[0].target is None
    assert calls[0].attr_name == "timeout"


def test_external_call_records_module():
    _, g = build({
        "pkg.a": "import time\n\ndef top():\n    return time.sleep(1)\n",
    })
    calls = g.callees("pkg.a.top")
    assert calls[0].external == "time.sleep"


# -- reachability ----------------------------------------------------------


def test_reachable_from_reports_path():
    _, g = build({
        "pkg.a": (
            "def a():\n    return b()\n"
            "def b():\n    return c()\n"
            "def c():\n    return 1\n"
        ),
    })
    reach = g.reachable_from(["pkg.a.a"])
    assert reach["pkg.a.c"] == ("pkg.a.a", "pkg.a.b", "pkg.a.c")


def test_reachable_from_stops_at_barrier():
    _, g = build({
        "pkg.a": (
            "def a():\n    return b()\n"
            "def b():\n    return c()\n"
            "def c():\n    return 1\n"
        ),
    })
    reach = g.reachable_from(["pkg.a.a"], stop={"pkg.a.b"})
    assert "pkg.a.b" in reach  # reached, but not traversed through
    assert "pkg.a.c" not in reach


def test_subclasses_transitive():
    model, _ = build({
        "pkg.a": (
            "class Base:\n    pass\n"
            "class Mid(Base):\n    pass\n"
            "class Leaf(Mid):\n    pass\n"
        ),
    })
    subs = {c.qualname for c in model.subclasses("pkg.a.Base")}
    assert subs == {"pkg.a.Mid", "pkg.a.Leaf"}
