"""Planted-bug fixtures for the policy-conformance pass (REP107)."""

from repro.analysis.callgraph import CallGraph
from repro.analysis import conformance
from repro.analysis.modules import ProjectModel

BASE = (
    "class DistributionPolicy:\n"
    "    def __init__(self):\n"
    "        self.cluster = None\n"
    "    def bind(self, cluster):\n"
    "        self.cluster = cluster\n"
    "        self._setup()\n"
    "    def _setup(self):\n"
    "        pass\n"
    "    def check_invariants(self):\n"
    "        return []\n"
)


def run(sources):
    model = ProjectModel.from_sources(sources)
    return conformance.run(model, CallGraph.build(model))


def rules_of(findings):
    return [f.rule for f in findings]


def test_missing_check_invariants():
    findings = run({
        "pkg.base": BASE,
        "pkg.lard": (
            "from .base import DistributionPolicy\n"
            "\n"
            "class LARDPolicy(DistributionPolicy):\n"
            "    name = 'lard'\n"
            "    def decide(self, initial, file_id):\n"
            "        return initial\n"
        ),
    })
    assert rules_of(findings) == ["REP107"]
    assert "check_invariants" in findings[0].message


def test_bind_override_without_super():
    findings = run({
        "pkg.base": BASE,
        "pkg.bad": (
            "from .base import DistributionPolicy\n"
            "\n"
            "class BadPolicy(DistributionPolicy):\n"
            "    name = 'bad'\n"
            "    def bind(self, cluster):\n"
            "        self.cluster = cluster\n"
            "    def check_invariants(self):\n"
            "        return []\n"
        ),
    })
    assert rules_of(findings) == ["REP107"]
    assert "super()" in findings[0].message


def test_init_override_without_super():
    findings = run({
        "pkg.base": BASE,
        "pkg.bad": (
            "from .base import DistributionPolicy\n"
            "\n"
            "class BadPolicy(DistributionPolicy):\n"
            "    name = 'bad'\n"
            "    def __init__(self, seed=0):\n"
            "        self.seed = seed\n"
            "    def check_invariants(self):\n"
            "        return []\n"
        ),
    })
    assert rules_of(findings) == ["REP107"]


def test_cluster_env_reach_through():
    findings = run({
        "pkg.base": BASE,
        "pkg.bad": (
            "from .base import DistributionPolicy\n"
            "\n"
            "class BadPolicy(DistributionPolicy):\n"
            "    name = 'bad'\n"
            "    def decide(self, initial, file_id):\n"
            "        return self.cluster.env.now\n"
            "    def check_invariants(self):\n"
            "        return []\n"
        ),
    })
    assert rules_of(findings) == ["REP107"]
    assert "env" in findings[0].message


def test_conforming_policy_is_clean():
    findings = run({
        "pkg.base": BASE,
        "pkg.good": (
            "from .base import DistributionPolicy\n"
            "\n"
            "class GoodPolicy(DistributionPolicy):\n"
            "    name = 'good'\n"
            "    def __init__(self, seed=0):\n"
            "        super().__init__()\n"
            "        self.seed = seed\n"
            "    def bind(self, cluster):\n"
            "        super().bind(cluster)\n"
            "        self.extra = True\n"
            "    def decide(self, initial, file_id):\n"
            "        return initial\n"
            "    def check_invariants(self):\n"
            "        return []\n"
        ),
    })
    assert findings == []


def test_abstract_intermediate_base_not_flagged():
    # An intermediate class that itself has subclasses is still required
    # to be conformant only if concrete; here the leaf implements
    # everything and the intermediate adds nothing — neither is flagged
    # for check_invariants because the leaf inherits the intermediate's
    # implementation, which is below the root base in the MRO.
    findings = run({
        "pkg.base": BASE,
        "pkg.mid": (
            "from .base import DistributionPolicy\n"
            "\n"
            "class LocalDiskPolicy(DistributionPolicy):\n"
            "    def check_invariants(self):\n"
            "        return []\n"
            "\n"
            "class LeafPolicy(LocalDiskPolicy):\n"
            "    name = 'leaf'\n"
            "    def decide(self, initial, file_id):\n"
            "        return initial\n"
        ),
    })
    assert findings == []
