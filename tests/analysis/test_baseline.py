"""Baseline round-trip: generate -> rerun -> empty diff; inject -> nonempty.

Exercises both the :mod:`repro.analysis.baseline` module directly and the
``repro lint --baseline/--write-baseline`` CLI path end to end on a tiny
throwaway package."""

import json

import pytest

from repro.analysis import baseline
from repro.analysis.engine import main as engine_main
from repro.analysis.simlint import Finding

# A module with two deliberate file-local findings: an unseeded Random()
# (REP001) and a time.time() call (REP003), plus duplicate identical
# lines to exercise occurrence counting.
DIRTY = """\
import random
import time


def jitter():
    rng = random.Random()
    return rng.random() + time.time()


def jitter2():
    rng = random.Random()
    return rng.random()
"""


@pytest.fixture()
def dirty_pkg(tmp_path):
    pkg = tmp_path / "sim"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text(DIRTY)
    return pkg


def lint(args):
    return engine_main([str(a) for a in args])


# -- module-level round-trip ------------------------------------------------


def test_generate_then_compare_is_empty():
    findings = [
        Finding("a.py", 3, 4, "REP001", "unseeded"),
        Finding("b.py", 7, 0, "REP003", "wall clock"),
    ]
    lines = {("a.py", 3): "  rng = random.Random()", ("b.py", 7): "t = time.time()"}
    get_line = lambda p, ln: lines[(p, ln)]  # noqa: E731
    data = baseline.generate(findings, get_line)
    new, stale = baseline.compare(findings, data, get_line)
    assert new == []
    assert stale == 0


def test_injected_finding_is_new():
    old = [Finding("a.py", 3, 4, "REP001", "unseeded")]
    get_line = lambda p, ln: "rng = random.Random()"  # noqa: E731
    data = baseline.generate(old, get_line)
    injected = Finding("a.py", 9, 0, "REP003", "wall clock")
    new, stale = baseline.compare(
        old + [injected], data, lambda p, ln: "x" if ln == 9 else "rng = random.Random()"
    )
    assert new == [injected]
    assert stale == 0


def test_occurrence_counting():
    # Two findings on byte-identical lines share a fingerprint; the
    # baseline must allow exactly two, not unboundedly many.
    get_line = lambda p, ln: "self.x = []"  # noqa: E731
    two = [
        Finding("a.py", 3, 4, "REP104", "alloc"),
        Finding("a.py", 9, 4, "REP104", "alloc"),
    ]
    data = baseline.generate(two, get_line)
    assert list(data["counts"].values()) == [2]
    three = two + [Finding("a.py", 15, 4, "REP104", "alloc")]
    new, _ = baseline.compare(three, data, get_line)
    assert len(new) == 1


def test_line_shift_does_not_invalidate():
    # Fingerprints hash line *text*, not line numbers: moving the same
    # line elsewhere in the file keeps it baselined.
    get_line = lambda p, ln: "rng = random.Random()"  # noqa: E731
    data = baseline.generate(
        [Finding("a.py", 3, 4, "REP001", "unseeded")], get_line
    )
    moved = [Finding("a.py", 42, 4, "REP001", "unseeded")]
    new, stale = baseline.compare(moved, data, get_line)
    assert new == []
    assert stale == 0


def test_stale_entries_counted():
    get_line = lambda p, ln: "rng = random.Random()"  # noqa: E731
    data = baseline.generate(
        [Finding("a.py", 3, 4, "REP001", "unseeded")], get_line
    )
    new, stale = baseline.compare([], data, get_line)
    assert new == []
    assert stale == 1


def test_load_rejects_wrong_format(tmp_path):
    path = tmp_path / "b.json"
    path.write_text(json.dumps({"format": "something-else"}))
    with pytest.raises(ValueError):
        baseline.load(str(path))


# -- CLI round-trip ---------------------------------------------------------


def test_cli_round_trip(dirty_pkg, tmp_path, capsys):
    bl = tmp_path / "bl.json"
    # Dirty package fails without a baseline...
    assert lint([dirty_pkg]) == 1
    capsys.readouterr()
    # ...adopting the findings succeeds...
    assert lint([dirty_pkg, "--write-baseline", bl]) == 0
    out = capsys.readouterr().out
    assert "wrote baseline" in out
    # ...and a rerun against the baseline is clean.
    assert lint([dirty_pkg, "--baseline", bl]) == 0
    out = capsys.readouterr().out
    assert "0 new findings" in out


def test_cli_new_finding_fails_against_baseline(dirty_pkg, tmp_path, capsys):
    bl = tmp_path / "bl.json"
    assert lint([dirty_pkg, "--write-baseline", bl]) == 0
    capsys.readouterr()
    mod = dirty_pkg / "mod.py"
    mod.write_text(mod.read_text() + "\n\nt0 = time.time()\n")
    assert lint([dirty_pkg, "--baseline", bl]) == 1
    out = capsys.readouterr().out
    assert "new finding" in out


def test_cli_baseline_json_reports_counts(dirty_pkg, tmp_path, capsys):
    bl = tmp_path / "bl.json"
    assert lint([dirty_pkg, "--write-baseline", bl]) == 0
    capsys.readouterr()
    assert lint([dirty_pkg, "--baseline", bl, "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"] == []
    assert payload["baselined"] > 0
    assert payload["stale_baseline_entries"] == 0
