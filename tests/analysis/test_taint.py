"""Planted-bug fixtures for the nondeterminism taint pass (REP101–103).

Each positive fixture plants a source flowing ≥2 calls deep into a sink
and asserts both the rule and the provenance: the reported trace must
name the source module/line and every intermediate hop."""

from repro.analysis.callgraph import CallGraph
from repro.analysis.modules import ProjectModel
from repro.analysis import taint


def run(sources):
    model = ProjectModel.from_sources(sources)
    return taint.run(model, CallGraph.build(model))


def rules_of(findings):
    return [f.rule for f in findings]


# -- REP101: scheduling sinks ---------------------------------------------


def test_rep101_wall_clock_two_calls_deep():
    findings = run({
        "pkg.clockutil": (
            "import time\n"
            "\n"
            "def read_clock():\n"
            "    return time.time()\n"
        ),
        "pkg.middle": (
            "from .clockutil import read_clock\n"
            "\n"
            "def pick_delay(scale):\n"
            "    base = read_clock()\n"
            "    return base * scale\n"
        ),
        "pkg.sim": (
            "from .middle import pick_delay\n"
            "\n"
            "def drive(env):\n"
            "    d = pick_delay(2.0)\n"
            "    env.timeout(d)\n"
        ),
    })
    assert rules_of(findings) == ["REP101"]
    f = findings[0]
    assert f.path == "pkg/sim.py"
    assert f.line == 5
    # Provenance: source module/line, both hops, and the sink.
    trace = "\n".join(f.trace)
    assert "pkg/clockutil.py:4: source (wall-clock): time.time()" in trace
    assert "pick_delay" in trace and "read_clock" in trace
    assert "sink: scheduling call timeout" in trace
    # ≥2 calls deep: source line, two propagation steps, sink line.
    assert len(f.trace) >= 4


def test_rep101_unseeded_rng_through_argument():
    findings = run({
        "pkg.entropy": (
            "import random\n"
            "\n"
            "def jitter():\n"
            "    return random.random()\n"
        ),
        "pkg.kernel": (
            "def schedule_at(env, delay):\n"
            "    env.call_later(delay, None)\n"
        ),
        "pkg.sim": (
            "from .entropy import jitter\n"
            "from .kernel import schedule_at\n"
            "\n"
            "def drive(env):\n"
            "    schedule_at(env, jitter())\n"
        ),
    })
    # The tainted argument crosses into schedule_at and reaches the
    # sink there — the sink is 2 calls from the source.
    assert "REP101" in rules_of(findings)
    f = [x for x in findings if x.rule == "REP101"][0]
    assert f.path == "pkg/kernel.py"
    trace = "\n".join(f.trace)
    assert "source (rng): global RNG draw random.random()" in trace
    assert "passed to" in trace


def test_rep101_clean_when_rng_is_seeded():
    findings = run({
        "pkg.sim": (
            "import random\n"
            "\n"
            "def delay():\n"
            "    rng = random.Random(42)\n"
            "    return rng.random()\n"
            "\n"
            "def drive(env):\n"
            "    env.timeout(delay())\n"
        ),
    })
    assert findings == []


def test_rep101_wall_clock_exempt_in_live_scope():
    findings = run({
        "repro.live.loop": (
            "import time\n"
            "\n"
            "def now_s():\n"
            "    return time.time()\n"
            "\n"
            "def drive(env):\n"
            "    env.timeout(now_s())\n"
        ),
    })
    assert findings == []


def test_rep101_suppression_comment():
    findings = run({
        "pkg.sim": (
            "import time\n"
            "\n"
            "def stamp():\n"
            "    return time.time()\n"
            "\n"
            "def drive(env):\n"
            "    env.timeout(stamp())  # simlint: disable=REP101\n"
        ),
    })
    assert findings == []


# -- REP102: SimResult sinks ----------------------------------------------


def test_rep102_entropy_into_simresult():
    findings = run({
        "pkg.ids": (
            "import uuid\n"
            "\n"
            "def run_id():\n"
            "    return str(uuid.uuid4())\n"
        ),
        "pkg.report": (
            "from .ids import run_id\n"
            "\n"
            "def tag():\n"
            "    return run_id()\n"
        ),
        "pkg.sim": (
            "from .report import tag\n"
            "\n"
            "def finish(SimResult):\n"
            "    return SimResult(name=tag())\n"
        ),
    })
    assert rules_of(findings) == ["REP102"]
    trace = "\n".join(findings[0].trace)
    assert "source (entropy): uuid.uuid4()" in trace
    assert "sink: SimResult(...) construction" in trace
    assert len(findings[0].trace) >= 4  # 2-call-deep provenance


def test_rep102_clean_simresult():
    findings = run({
        "pkg.sim": (
            "def finish(SimResult, hits):\n"
            "    return SimResult(hits=hits)\n"
        ),
    })
    assert findings == []


# -- REP103: scenario-generation sinks ------------------------------------


def test_rep103_set_order_into_scenario():
    findings = run({
        "pkg.picker": (
            "def pick_node(nodes):\n"
            "    victims = set(nodes)\n"
            "    for v in victims:\n"
            "        return v\n"
        ),
        "pkg.gen": (
            "from .picker import pick_node\n"
            "\n"
            "def plan(Scenario, nodes):\n"
            "    victim = pick_node(nodes)\n"
            "    return Scenario(node=victim)\n"
        ),
    })
    assert rules_of(findings) == ["REP103"]
    trace = "\n".join(findings[0].trace)
    assert "source (set-order)" in trace
    assert "sink: Scenario(...) scenario construction" in trace


def test_rep103_sorted_launders_set_order():
    findings = run({
        "pkg.picker": (
            "def pick_node(nodes):\n"
            "    victims = set(nodes)\n"
            "    for v in sorted(victims):\n"
            "        return v\n"
        ),
        "pkg.gen": (
            "from .picker import pick_node\n"
            "\n"
            "def plan(Scenario, nodes):\n"
            "    return Scenario(node=pick_node(nodes))\n"
        ),
    })
    assert findings == []


def test_rep103_scenario_generator_method_sink():
    findings = run({
        "pkg.gen": (
            "import os\n"
            "\n"
            "class ScenarioGenerator:\n"
            "    def generate(self, seed):\n"
            "        return seed\n"
            "\n"
            "def entropy_seed():\n"
            "    return os.urandom(8)\n"
            "\n"
            "def drive():\n"
            "    g = ScenarioGenerator()\n"
            "    return g.generate(entropy_seed())\n"
        ),
    })
    assert "REP103" in rules_of(findings)
    trace = "\n".join(findings[0].trace)
    assert "source (entropy): os.urandom()" in trace
