"""Planted-bug fixtures for the async-safety pass (REP105/REP106)."""

from repro.analysis import asyncsafe
from repro.analysis.callgraph import CallGraph
from repro.analysis.modules import ProjectModel


def run(sources):
    model = ProjectModel.from_sources(sources)
    return asyncsafe.run(model, CallGraph.build(model))


def rules_of(findings):
    return [f.rule for f in findings]


# -- REP105: blocking calls reachable from async defs ----------------------


def test_rep105_blocking_two_calls_deep():
    findings = run({
        "pkg.io": (
            "import time\n"
            "\n"
            "def settle():\n"
            "    time.sleep(0.5)\n"
        ),
        "pkg.mid": (
            "from .io import settle\n"
            "\n"
            "def prepare():\n"
            "    settle()\n"
        ),
        "pkg.srv": (
            "from .mid import prepare\n"
            "\n"
            "async def start():\n"
            "    prepare()\n"
        ),
    })
    assert rules_of(findings) == ["REP105"]
    f = findings[0]
    assert f.path == "pkg/io.py"
    assert f.line == 4
    trace = "\n".join(f.trace)
    # Chain from the async root through the sync intermediary.
    assert "start" in trace and "prepare" in trace and "settle" in trace
    assert len(f.trace) >= 3


def test_rep105_bare_open_in_async():
    findings = run({
        "pkg.srv": (
            "async def load(path):\n"
            "    with open(path) as fh:\n"
            "        return fh.read()\n"
        ),
    })
    assert rules_of(findings) == ["REP105"]


def test_rep105_clean_when_not_reachable_from_async():
    findings = run({
        "pkg.io": (
            "import time\n"
            "\n"
            "def settle():\n"
            "    time.sleep(0.5)\n"
            "\n"
            "def sync_main():\n"
            "    settle()\n"
        ),
    })
    assert findings == []


def test_rep105_suppression():
    findings = run({
        "pkg.srv": (
            "import time\n"
            "\n"
            "async def start():\n"
            "    time.sleep(0)  # simlint: disable=REP105\n"
        ),
    })
    assert findings == []


def test_rep105_blocking_probe_sweep():
    # Planted bug in the shape of the live health prober: an async sweep
    # that reaches a *synchronous* socket round-trip through a helper.
    # One blocked probe would stall the whole front-end event loop —
    # exactly what repro.live.faultproxy's await-based probe avoids.
    findings = run({
        "pkg.probe": (
            "import socket\n"
            "\n"
            "def fetch_health(host, port):\n"
            "    with socket.create_connection((host, port)) as sock:\n"
            "        sock.sendall(b'GET /health HTTP/1.1\\r\\n\\r\\n')\n"
            "        return sock.recv(4096)\n"
            "\n"
            "async def probe_all(ports):\n"
            "    for port in ports:\n"
            "        fetch_health('127.0.0.1', port)\n"
        ),
    })
    assert rules_of(findings) == ["REP105"]
    trace = "\n".join(findings[0].trace)
    assert "probe_all" in trace and "fetch_health" in trace


def test_rep105_blocking_proxy_pump():
    # Same trap, proxy-shaped: a relay loop that sleeps synchronously to
    # inject delay stalls every other connection sharing the loop.  The
    # real ChaosProxy awaits asyncio.sleep for its delay/jitter.
    findings = run({
        "pkg.proxy": (
            "import time\n"
            "\n"
            "def inject_delay(seconds):\n"
            "    time.sleep(seconds)\n"
            "\n"
            "async def handle(reader, writer, delay):\n"
            "    if delay:\n"
            "        inject_delay(delay)\n"
            "    data = await reader.read(65536)\n"
            "    writer.write(data)\n"
        ),
    })
    assert rules_of(findings) == ["REP105"]


def test_rep105_clean_await_based_probe():
    # The fixed twin of the probe fixture: awaiting the I/O (and the
    # sleep) keeps the sweep off REP105's radar.
    findings = run({
        "pkg.probe": (
            "import asyncio\n"
            "\n"
            "async def fetch_health(host, port):\n"
            "    reader, writer = await asyncio.open_connection(host, port)\n"
            "    writer.write(b'GET /health HTTP/1.1\\r\\n\\r\\n')\n"
            "    await writer.drain()\n"
            "    payload = await reader.read(4096)\n"
            "    writer.close()\n"
            "    return payload\n"
            "\n"
            "async def probe_all(ports):\n"
            "    for port in ports:\n"
            "        await fetch_health('127.0.0.1', port)\n"
            "        await asyncio.sleep(0.2)\n"
        ),
    })
    assert findings == []


# -- REP106: never-awaited coroutines --------------------------------------


def test_rep106_bare_coroutine_call():
    findings = run({
        "pkg.srv": (
            "async def send(x):\n"
            "    return x\n"
            "\n"
            "async def drive():\n"
            "    send(1)\n"
        ),
    })
    assert rules_of(findings) == ["REP106"]
    assert findings[0].line == 5


def test_rep106_assigned_but_never_used():
    findings = run({
        "pkg.srv": (
            "async def send(x):\n"
            "    return x\n"
            "\n"
            "async def drive():\n"
            "    fut = send(1)\n"
            "    return None\n"
        ),
    })
    assert rules_of(findings) == ["REP106"]


def test_rep106_awaited_is_clean():
    findings = run({
        "pkg.srv": (
            "async def send(x):\n"
            "    return x\n"
            "\n"
            "async def drive():\n"
            "    await send(1)\n"
        ),
    })
    assert findings == []


def test_rep106_create_task_is_clean():
    findings = run({
        "pkg.srv": (
            "import asyncio\n"
            "\n"
            "async def send(x):\n"
            "    return x\n"
            "\n"
            "async def drive():\n"
            "    asyncio.create_task(send(1))\n"
        ),
    })
    assert findings == []


def test_rep106_returned_coroutine_is_clean():
    findings = run({
        "pkg.srv": (
            "async def send(x):\n"
            "    return x\n"
            "\n"
            "def make():\n"
            "    return send(1)\n"
        ),
    })
    assert findings == []


def test_rep106_gathered_is_clean():
    findings = run({
        "pkg.srv": (
            "import asyncio\n"
            "\n"
            "async def send(x):\n"
            "    return x\n"
            "\n"
            "async def drive():\n"
            "    await asyncio.gather(send(1), send(2))\n"
        ),
    })
    assert findings == []
