"""Sanitized runs must be observationally identical to unsanitized runs.

The sanitizer only *observes*: same SimResult field for field, same event
order, on both scheduler backends, on both request lifecycles.  These are
the acceptance tests for `Environment(sanitize=True)` being safe to flip
on in CI smoke runs.
"""

import pytest

from repro.cluster import ClusterConfig
from repro.model import MB
from repro.servers import make_policy
from repro.sim import Simulation
from repro.workload import build_fileset, generate_trace


@pytest.fixture(scope="module")
def trace():
    fs = build_fileset(200, 18 * 1024, 14 * 1024, 0.9, seed=3, name="santrace")
    return generate_trace(fs, 2500, seed=4, name="santrace")


def cfg(nodes=4):
    return ClusterConfig(
        nodes=nodes, cache_bytes=2 * MB, multiprogramming_per_node=8
    )


def run(trace, policy_name, sanitize, **kw):
    sim = Simulation(
        trace, make_policy(policy_name), cfg(), passes=2,
        sanitize=sanitize, **kw
    )
    return sim, sim.run()


@pytest.mark.parametrize("policy_name", ["l2s", "lard", "round-robin"])
def test_sanitized_result_identical(trace, policy_name):
    _, plain = run(trace, policy_name, sanitize=False)
    sim, sanitized = run(trace, policy_name, sanitize=True)
    assert sanitized == plain
    report = sim.env.sanitizer.finish()
    assert report.clean, report.render()
    assert sim.env.sanitizer.violations == []


def test_sanitized_canonical_run_is_leak_free(trace):
    sim, _ = run(trace, "l2s", sanitize=True)
    san = sim.env.sanitizer
    report = san.finish()
    assert report.clean, report.render()
    # The run actually exercised the pools and the fast path.
    assert san.events_tracked > 1000
    assert san.recycles > 0 and san.reuses > 0
    assert san.pops > 1000


def test_sanitized_generator_lifecycle_identical(trace, monkeypatch):
    # The generator lifecycle (interruptible processes) instead of the
    # callback fast path: both must be clean under the sanitizer.
    monkeypatch.setenv("REPRO_SIM_FASTPATH", "0")
    _, plain = run(trace, "l2s", sanitize=False)
    sim, sanitized = run(trace, "l2s", sanitize=True)
    assert sanitized == plain
    assert sim.env.sanitizer.finish().clean


def test_sanitized_calendar_scheduler_identical(trace, monkeypatch):
    monkeypatch.setenv("REPRO_DES_SCHEDULER", "calendar")
    _, plain = run(trace, "l2s", sanitize=False)
    sim, sanitized = run(trace, "l2s", sanitize=True)
    assert sanitized == plain
    assert sim.env.sanitizer.finish().clean


def test_env_var_sanitize_matches_explicit(trace, monkeypatch):
    sim_explicit, explicit = run(trace, "l2s", sanitize=True)
    monkeypatch.setenv("REPRO_DES_SANITIZE", "1")
    sim_env, via_env = run(trace, "l2s", sanitize=None)
    assert sim_env.env.sanitized
    assert via_env == explicit
