"""Planted-bug fixtures for the overload wall-clock pass (REP108)."""

from repro.analysis import wallclock
from repro.analysis.callgraph import CallGraph
from repro.analysis.modules import ProjectModel


def run(sources):
    model = ProjectModel.from_sources(sources)
    return wallclock.run(model, CallGraph.build(model))


def test_time_import_in_overload_module_is_flagged():
    findings = run({
        "pkg.overload.limiter": (
            "import time\n"
            "\n"
            "def observe(latency_s, now):\n"
            "    return time.monotonic()\n"
        ),
    })
    assert [f.rule for f in findings] == ["REP108", "REP108"]
    assert findings[0].line == 1  # the import
    assert "now" in findings[0].message


def test_from_import_and_alias_are_flagged():
    findings = run({
        "pkg.overload.breaker": (
            "from time import monotonic as mono\n"
            "\n"
            "def trip():\n"
            "    return mono()\n"
        ),
        "pkg.overload.admission": (
            "from datetime import datetime\n"
            "\n"
            "def stamp():\n"
            "    return datetime.now()\n"
        ),
    })
    assert all(f.rule == "REP108" for f in findings)
    paths = {f.path for f in findings}
    assert len(paths) == 2  # both modules reported


def test_clock_use_outside_overload_package_is_ignored():
    findings = run({
        "pkg.live.frontend": (
            "import time\n"
            "\n"
            "def now():\n"
            "    return time.monotonic()\n"
        ),
    })
    assert findings == []


def test_clean_overload_module_passes():
    findings = run({
        "pkg.overload.limiter": (
            "def observe(latency_s, now):\n"
            "    return now + latency_s\n"
        ),
    })
    assert findings == []


def test_suppression_comment_is_honored():
    findings = run({
        "pkg.overload.debug": (
            "import time  # simlint: disable=REP108\n"
        ),
    })
    assert findings == []


def test_rule_is_registered_and_explainable():
    from repro.analysis.rules import REGISTRY, rule_ids

    assert "REP108" in rule_ids()
    assert REGISTRY["REP108"].pass_name == "wallclock"
