"""DES sanitizer mutation tests.

Each test seeds the exact buggy kernel state a real defect would create
— recycling a live pooled event, scheduling into the past, double-
succeeding an event, corrupting the queue directly — and asserts the
sanitizer reports it with the offending event's provenance (this file's
name, since the events are created here).
"""

from heapq import heappush

import pytest

from repro.des import Environment, SanitizerError
from repro.des.core import NORMAL, PENDING, URGENT, Event
from repro.des.sanitize import force_recycle

HERE = "test_sanitizer.py"


def make_env(**kw):
    return Environment(sanitize=True, **kw)


def test_environment_flags():
    env = make_env()
    assert env.sanitized
    assert env.sanitizer is not None
    assert not Environment().sanitized


def test_env_var_enables_sanitizer(monkeypatch):
    monkeypatch.setenv("REPRO_DES_SANITIZE", "1")
    assert Environment().sanitized
    monkeypatch.setenv("REPRO_DES_SANITIZE", "0")
    assert not Environment().sanitized


# -- mutation: use-after-recycle ------------------------------------------


def test_recycling_a_live_event_is_caught_at_pop():
    env = make_env()
    t = env.timeout(5)
    force_recycle(env, t)  # the bug: recycled while still scheduled
    with pytest.raises(SanitizerError) as exc:
        env.run()
    v = exc.value.violation
    assert v.kind == "use-after-recycle"
    assert HERE in v.provenance
    assert env.sanitizer.violations == [v]


def test_scheduling_a_pooled_event_is_caught_at_source():
    env = make_env()
    fired = []
    ev = env.call_later(1.0, lambda e: fired.append(env.now))
    env.run()
    assert fired == [1.0]
    # The refcount guard would normally refuse to recycle a handle we
    # still hold; force the recycle to reproduce the guard failing, then
    # re-trigger the stale reference.
    force_recycle(env, ev)
    with pytest.raises(SanitizerError) as exc:
        ev.callbacks = []
        ev._value = PENDING
        ev.succeed()
    assert exc.value.violation.kind == "use-after-recycle"


# -- mutation: scheduling into the past -----------------------------------


def test_negative_delay_schedule_is_caught():
    env = make_env()
    env.timeout(5)
    env.run()
    assert env.now == 5
    ev = Event(env)
    ev._ok = True
    ev._value = None
    with pytest.raises(SanitizerError) as exc:
        env._schedule(ev, NORMAL, delay=-3.0)
    v = exc.value.violation
    assert v.kind == "time-travel"
    assert HERE in v.provenance


def test_queue_injection_behind_the_clock_is_caught_at_pop():
    env = make_env()
    env.timeout(5)
    env.run()
    intruder = Event(env)
    intruder._ok = True
    intruder._value = None
    # Bypass every scheduling entry point: raw heap surgery.
    heappush(env._queue, (1.0, NORMAL, env._eid + 1, intruder))
    with pytest.raises(SanitizerError) as exc:
        env.step()
    assert exc.value.violation.kind == "time-travel"


# -- mutation: double-succeed / double-fail -------------------------------


def test_double_succeed_is_caught():
    env = make_env()
    ev = Event(env)
    ev.succeed(1)
    # The bug: a pool-reset-style direct write re-arms the trigger guard.
    ev._value = PENDING
    with pytest.raises(SanitizerError) as exc:
        ev.succeed(2)
    v = exc.value.violation
    assert v.kind == "double-trigger"
    assert HERE in v.provenance


def test_double_fail_is_caught():
    env = make_env()
    ev = Event(env)
    ev.defused()
    ev.fail(RuntimeError("boom"))
    ev._value = PENDING
    with pytest.raises(SanitizerError) as exc:
        ev.fail(RuntimeError("boom again"))
    assert exc.value.violation.kind == "double-trigger"


def test_repop_of_a_processed_event_is_caught():
    env = make_env()
    ev = Event(env)
    ev.succeed()
    env.run()
    assert ev.callbacks is None  # processed
    heappush(env._queue, (env.now, NORMAL, env._eid + 1, ev))
    with pytest.raises(SanitizerError) as exc:
        env.step()
    assert exc.value.violation.kind == "double-trigger"


# -- mutation: tie-break order --------------------------------------------


def test_out_of_order_pop_is_caught():
    env = make_env()
    env.timeout(5)
    env.run()
    # An event that pretends to have been queued *before* the last pop
    # (eid 0) with a lexically smaller key: a broken scheduler's output.
    intruder = Event(env)
    intruder._ok = True
    intruder._value = None
    heappush(env._queue, (5.0, URGENT, 0, intruder))
    with pytest.raises(SanitizerError) as exc:
        env.step()
    assert exc.value.violation.kind == "order-violation"


def test_urgent_same_time_schedule_is_not_a_false_positive():
    """An URGENT zero-delay event scheduled while processing a same-time
    event legally pops with a smaller (priority, eid) key than earlier
    pops at that time — the sanitizer must accept it (regression test
    for the coexistence exemption)."""
    env = make_env()
    order = []

    def second(_e):
        order.append("urgent")

    def first(_e):
        order.append("first")
        env.call_later(0.0, second, priority=URGENT)

    env.call_later(1.0, first)
    env.call_later(1.0, lambda e: order.append("normal"))
    env.run()
    # The urgent event overtakes the queued same-time normal event; its
    # pop key is lexically *smaller* than the pop that created it.
    assert order == ["first", "urgent", "normal"]
    assert env.sanitizer.violations == []


# -- leak report ------------------------------------------------------------


def test_leak_report_never_triggered_event():
    env = make_env()
    leaked = Event(env)  # noqa: F841 - intentionally abandoned
    env.timeout(1)
    env.run()
    report = env.sanitizer.finish()
    assert not report.clean
    assert len(report.never_triggered) == 1
    assert HERE in report.never_triggered[0]
    assert "LEAKS DETECTED" in report.render()


def test_leak_report_stranded_triggered_event():
    env = make_env()
    ev = Event(env)
    ev.succeed()
    # Run stops before the event is processed.
    report = env.sanitizer.finish()
    assert len(report.stranded) == 1
    assert ev is not None


def test_leak_report_orphaned_process():
    env = make_env()

    def stuck(env):
        yield Event(env)  # never triggered: the generator never resumes

    env.process(stuck(env))
    env.run()
    report = env.sanitizer.finish()
    assert len(report.orphaned_processes) == 1
    # The abandoned wait event is also never triggered.
    assert len(report.never_triggered) == 1


def test_leak_report_clean_run():
    env = make_env()
    done = []

    def worker(env):
        yield env.timeout(1)
        done.append(env.now)

    env.process(worker(env))
    env.run()
    report = env.sanitizer.finish()
    assert done == [1]
    assert report.clean
    assert "no leaks" in report.render()


def test_leak_report_stalled_operation():
    env = make_env()
    san = env.sanitizer
    tok = san.op_begin("fast-request", "request #7, file 3")
    done_tok = san.op_begin("fast-request", "request #8, file 4")
    san.op_end(done_tok)
    report = san.finish()
    assert len(report.stalled_ops) == 1
    assert "request #7" in report.stalled_ops[0]
    assert tok != done_tok


def test_leak_report_separates_undelivered_messages():
    env = make_env()
    san = env.sanitizer
    san.op_begin("interconnect-message", "handoff")
    san.op_begin("fast-request", "request #9, file 1")
    report = san.finish()
    assert not report.clean
    assert len(report.undelivered_messages) == 1
    assert "handoff" in report.undelivered_messages[0]
    # The message leak is not double-reported as a stalled operation.
    assert len(report.stalled_ops) == 1
    assert "request #9" in report.stalled_ops[0]
    assert "undelivered interconnect messages" in report.render()


def test_sanitized_interconnect_tracks_message_delivery():
    from repro.cluster import Cluster, ClusterConfig
    from repro.model import MB

    env = make_env()
    cluster = Cluster(env, ClusterConfig(nodes=2, cache_bytes=1 * MB))
    cluster.net.send_message_cb(0, 1, 64.0, "bulk")
    env.run(until=1e-6)  # stop mid-flight
    report = env.sanitizer.finish()
    assert len(report.undelivered_messages) == 1
    assert "bulk" in report.undelivered_messages[0]


def test_sanitized_interconnect_clean_after_delivery_and_after_drop():
    from repro.cluster import Cluster, ClusterConfig
    from repro.model import MB

    env = make_env()
    cluster = Cluster(env, ClusterConfig(nodes=3, cache_bytes=1 * MB))
    cluster.net.send_message_cb(0, 1, 1.0, "ok")
    cluster.net.send_message_cb(0, 2, 1.0, "doomed")
    cluster.node(2).crash()  # the drop still closes the message's op
    env.run()
    report = env.sanitizer.finish()
    assert report.clean
    assert report.undelivered_messages == []


# -- pool bookkeeping -------------------------------------------------------


def test_pool_draw_of_untracked_event_is_pool_corruption():
    env = make_env()
    ev = Event(env)
    with pytest.raises(SanitizerError) as exc:
        env.sanitizer.on_reuse(ev)
    assert exc.value.violation.kind == "pool-corruption"


def test_pool_roundtrip_is_tracked():
    env = make_env()
    fired = []

    def second(_e):
        fired.append(2)
        # The first handle was recycled after its callbacks ran; this
        # draws it from the pool, exercising on_reuse.
        env.call_later(1.0, lambda e: fired.append(3))

    def first(_e):
        fired.append(1)
        env.call_later(1.0, second)

    env.call_later(1.0, first)
    env.run()
    san = env.sanitizer
    assert fired == [1, 2, 3]
    assert san.recycles >= 1
    assert san.reuses >= 1
    assert san.finish().clean


# -- sanitizer works on both schedulers -------------------------------------


@pytest.mark.parametrize("scheduler", ["heap", "calendar"])
def test_sanitized_run_on_both_schedulers(scheduler):
    env = make_env(scheduler=scheduler)
    log = []

    def clock(env, name, period, beats):
        for _ in range(beats):
            yield env.timeout(period)
            log.append((name, env.now))

    env.process(clock(env, "a", 1.0, 5))
    env.process(clock(env, "b", 2.5, 2))
    env.run()
    assert log == [
        ("a", 1.0), ("a", 2.0), ("b", 2.5), ("a", 3.0), ("a", 4.0),
        ("b", 5.0), ("a", 5.0),
    ]
    assert env.sanitizer.finish().clean


def test_calendar_queue_injection_behind_clock_is_caught():
    env = make_env(scheduler="calendar")
    env.timeout(5)
    env.run()
    intruder = Event(env)
    intruder._ok = True
    intruder._value = None
    env._cal.push((1.0, NORMAL, env._eid + 1, intruder))
    with pytest.raises(SanitizerError) as exc:
        env.step()
    assert exc.value.violation.kind == "time-travel"


def test_calendar_queue_iter_matches_pop_order():
    env = Environment(scheduler="calendar")
    for delay in (5.0, 1.0, 3.0):
        env.timeout(delay)
    items = list(env._cal)
    assert [it[0] for it in items] == [1.0, 3.0, 5.0]
    assert len(items) == len(env._cal)
