"""simlint fixture tests: one positive and one negative per rule, the
suppression syntax, rule scoping by path, and the CLI surface.

The linting entry point is :func:`repro.analysis.lint_source`; ``path``
controls which rules are active (REP001 only fires in simulation
packages, REP003 only in kernel packages).
"""

import json

import pytest

from repro.analysis import RULES, lint_paths, lint_source
from repro.analysis.simlint import main as lint_main

SIM_PATH = "src/repro/sim/fixture.py"
KERNEL_PATH = "src/repro/des/fixture.py"
NEUTRAL_PATH = "tools/fixture.py"


def rules_of(findings):
    return [f.rule for f in findings]


# -- REP001: unseeded global RNG ------------------------------------------


def test_rep001_flags_global_random_module():
    src = "import random\nx = random.random()\n"
    assert rules_of(lint_source(src, SIM_PATH)) == ["REP001"]


def test_rep001_flags_from_import_draws():
    src = "from random import choice\nx = choice([1, 2])\n"
    assert rules_of(lint_source(src, SIM_PATH)) == ["REP001"]


def test_rep001_flags_numpy_global_rng():
    src = "import numpy as np\nx = np.random.rand(3)\n"
    assert rules_of(lint_source(src, SIM_PATH)) == ["REP001"]


def test_rep001_allows_seeded_instances():
    src = (
        "import random\nimport numpy as np\n"
        "rng = random.Random(42)\nx = rng.random()\n"
        "g = np.random.default_rng(42)\ny = g.normal()\n"
    )
    assert lint_source(src, SIM_PATH) == []


def test_rep001_scoped_to_simulation_packages():
    src = "import random\nx = random.random()\n"
    assert lint_source(src, NEUTRAL_PATH) == []


# -- REP002: unordered iteration ------------------------------------------


def test_rep002_flags_for_loop_over_set():
    src = "s = {1, 2, 3}\nfor x in s:\n    print(x)\n"
    assert rules_of(lint_source(src, NEUTRAL_PATH)) == ["REP002"]


def test_rep002_flags_list_over_dict_keys():
    src = "d = {}\nxs = list(d.keys())\n"
    assert rules_of(lint_source(src, NEUTRAL_PATH)) == ["REP002"]


def test_rep002_flags_comprehension_and_min_key():
    src = (
        "s = set()\n"
        "xs = [x for x in s]\n"
        "m = min(s, key=lambda x: x)\n"
    )
    assert rules_of(lint_source(src, NEUTRAL_PATH)) == ["REP002", "REP002"]


def test_rep002_allows_sorted_sets_and_ordered_structures():
    src = (
        "s = {1, 2, 3}\n"
        "for x in sorted(s):\n    print(x)\n"
        "d = {}\n"
        "for k in d:\n    print(k)\n"
        "xs = list(d)\n"
        "m = min(s)\n"  # plain min of a set is order-independent
    )
    assert lint_source(src, NEUTRAL_PATH) == []


# -- REP003: wall-clock reads ---------------------------------------------


def test_rep003_flags_time_time_in_kernel():
    src = "import time\nt = time.time()\n"
    assert rules_of(lint_source(src, KERNEL_PATH)) == ["REP003"]


def test_rep003_flags_datetime_now_in_kernel():
    src = "from datetime import datetime\nt = datetime.now()\n"
    assert rules_of(lint_source(src, KERNEL_PATH)) == ["REP003"]


def test_rep003_allows_wall_clock_outside_kernel():
    # The workload package may timestamp artifacts; only the kernel and
    # the simulation layers are forbidden the wall clock.
    src = "import time\nt = time.time()\n"
    assert lint_source(src, "src/repro/workload/fixture.py") == []


def test_rep003_allows_time_module_constants():
    src = "import time\nz = time.struct_time\n"
    assert lint_source(src, KERNEL_PATH) == []


# -- REP004: id()-based ordering ------------------------------------------


def test_rep004_flags_sort_key_id():
    src = "xs = []\nxs.sort(key=id)\n"
    assert rules_of(lint_source(src, NEUTRAL_PATH)) == ["REP004"]


def test_rep004_flags_id_comparison_and_lambda_key():
    src = (
        "a, b, xs = object(), object(), []\n"
        "flag = id(a) < id(b)\n"
        "ys = sorted(xs, key=lambda o: id(o))\n"
    )
    assert rules_of(lint_source(src, NEUTRAL_PATH)) == ["REP004", "REP004"]


def test_rep004_allows_id_equality_and_plain_keys():
    src = (
        "a, b, xs = object(), object(), []\n"
        "same = id(a) == id(b)\n"  # identity check, not an ordering
        "ys = sorted(xs, key=len)\n"
    )
    assert lint_source(src, NEUTRAL_PATH) == []


# -- REP005: mutable defaults ---------------------------------------------


def test_rep005_flags_mutable_defaults():
    src = "def f(x=[]):\n    return x\n\ndef g(y=dict()):\n    return y\n"
    assert rules_of(lint_source(src, NEUTRAL_PATH)) == ["REP005", "REP005"]


def test_rep005_allows_none_and_immutable_defaults():
    src = "def f(x=None, y=(), z=0):\n    return x, y, z\n"
    assert lint_source(src, NEUTRAL_PATH) == []


# -- REP006: swallowed exceptions -----------------------------------------


def test_rep006_flags_bare_except():
    src = "try:\n    pass\nexcept:\n    pass\n"
    assert rules_of(lint_source(src, NEUTRAL_PATH)) == ["REP006"]


def test_rep006_flags_blanket_pass_handler():
    src = "try:\n    pass\nexcept Exception:\n    pass\n"
    assert rules_of(lint_source(src, NEUTRAL_PATH)) == ["REP006"]


def test_rep006_allows_named_and_handled_exceptions():
    src = (
        "try:\n    pass\nexcept ValueError:\n    pass\n"
        "try:\n    pass\nexcept Exception:\n    raise\n"
    )
    assert lint_source(src, NEUTRAL_PATH) == []


# -- REP007: unseeded instance RNG in fault-injection code ----------------

FAULT_PATH = "src/repro/faults/fixture.py"
NETFAULT_PATH = "src/repro/netfaults/fixture.py"


def test_rep007_flags_zero_arg_random_instance():
    src = "import random\nrng = random.Random()\n"
    assert rules_of(lint_source(src, FAULT_PATH)) == ["REP007"]
    assert rules_of(lint_source(src, NETFAULT_PATH)) == ["REP007"]


def test_rep007_flags_from_import_constructor():
    src = "from random import Random\nrng = Random()\n"
    assert rules_of(lint_source(src, NETFAULT_PATH)) == ["REP007"]


def test_rep007_flags_numpy_constructors():
    src = (
        "import numpy as np\nfrom numpy.random import default_rng\n"
        "a = np.random.default_rng()\n"
        "b = np.random.RandomState()\n"
        "c = default_rng()\n"
    )
    assert rules_of(lint_source(src, NETFAULT_PATH)) == ["REP007"] * 3


def test_rep007_allows_seeded_constructors():
    src = (
        "import random\nimport numpy as np\n"
        "a = random.Random(7)\nb = random.Random(seed)\n"
        "c = np.random.default_rng(seed=3)\n"
    )
    assert lint_source(src, NETFAULT_PATH) == []


def test_rep007_only_fires_in_fault_packages():
    src = "import random\nrng = random.Random()\n"
    assert lint_source(src, NEUTRAL_PATH) == []
    assert lint_source(src, SIM_PATH) == []  # sim scope: REP001 territory


def test_rep007_netfaults_is_also_sim_and_kernel_scope():
    # The netfaults package joined SIM_SCOPE/KERNEL_SCOPE too: global-RNG
    # draws and wall-clock reads are flagged there like everywhere else
    # in the simulator.
    draws = "import random\nx = random.random()\n"
    assert rules_of(lint_source(draws, NETFAULT_PATH)) == ["REP001"]
    clock = "import time\nt = time.time()\n"
    assert rules_of(lint_source(clock, NETFAULT_PATH)) == ["REP003"]


def test_rep007_suppression():
    src = "import random\nrng = random.Random()  # simlint: disable=REP007\n"
    assert lint_source(src, FAULT_PATH) == []


# -- REP008: fragile oracle checks in chaos code ---------------------------

CHAOS_PATH = "src/repro/chaos/fixture.py"


def test_rep008_flags_float_literal_equality():
    src = "if served == 1.0:\n    pass\n"
    assert rules_of(lint_source(src, CHAOS_PATH)) == ["REP008"]


def test_rep008_flags_float_literal_inequality():
    src = "ok = rate != 0.5\n"
    assert rules_of(lint_source(src, CHAOS_PATH)) == ["REP008"]


def test_rep008_allows_ordered_float_comparisons():
    src = "if served < 0.95 or rate > 0.0:\n    pass\n"
    assert lint_source(src, CHAOS_PATH) == []


def test_rep008_allows_integer_equality():
    src = "if failed == 0:\n    pass\n"
    assert lint_source(src, CHAOS_PATH) == []


def test_rep008_flags_wall_clock_assert():
    src = "import time\nassert time.monotonic() < deadline\n"
    assert "REP008" in rules_of(lint_source(src, CHAOS_PATH))


def test_rep008_allows_wall_clock_outside_asserts():
    # chaos soak legitimately budgets real minutes; the chaos package is
    # outside KERNEL_SCOPE so a plain read is fine — only *asserting* on
    # one is fragile.
    src = "import time\ndeadline = time.monotonic() + 60.0\n"
    assert lint_source(src, CHAOS_PATH) == []


def test_rep008_only_fires_in_chaos_scope():
    src = "if served == 1.0:\n    pass\n"
    assert lint_source(src, NEUTRAL_PATH) == []
    assert lint_source(src, SIM_PATH) == []


def test_rep008_suppression():
    src = "ok = x == 0.25  # simlint: disable=REP008\n"
    assert lint_source(src, CHAOS_PATH) == []


# -- LIVE_SCOPE: the repro.live wall-clock exemption ------------------------

LIVE_PATH = "src/repro/live/fixture.py"


def test_live_scope_permits_wall_clock():
    # Wall-clock reads are the point of repro.live: the policies' Clock
    # is real seconds there.
    src = "import time\nt = time.monotonic()\n"
    assert lint_source(src, LIVE_PATH) == []


def test_live_scope_permits_wall_clock_asserts():
    src = "import time\nassert time.monotonic() < deadline\n"
    assert lint_source(src, LIVE_PATH) == []


def test_live_scope_override_beats_kernel_scope():
    # A live package nested under a kernel-scoped directory name stays
    # exempt: the LIVE_SCOPE override wins.
    src = "import time\nt = time.time()\n"
    assert lint_source(src, "src/repro/sim/live/fixture.py") == []
    assert lint_source(src, "src/repro/chaos/live/fixture.py") == []


def test_live_scope_keeps_other_rules_active():
    # Only REP003/REP008 are exempted; live code is still simulation-
    # adjacent for everything else (unseeded RNGs, set iteration, ...).
    src = "import random\nx = random.random()\n"
    assert rules_of(lint_source(src, LIVE_PATH)) == ["REP001"]
    src = "for n in {1, 2}:\n    dispatch(n)\n"
    assert rules_of(lint_source(src, LIVE_PATH)) == ["REP002"]


def test_kernel_scope_still_flags_wall_clock():
    # The exemption is live-only: kernel and chaos scopes keep erroring.
    clock = "import time\nt = time.time()\n"
    assert rules_of(lint_source(clock, KERNEL_PATH)) == ["REP003"]
    fragile = "import time\nassert time.monotonic() < deadline\n"
    assert "REP008" in rules_of(lint_source(fragile, CHAOS_PATH))


# -- suppression -----------------------------------------------------------


def test_suppression_by_rule():
    src = "s = {1}\nfor x in s:  # simlint: disable=REP002\n    print(x)\n"
    assert lint_source(src, NEUTRAL_PATH) == []


def test_suppression_blanket():
    src = "s = {1}\nfor x in s:  # simlint: disable\n    print(x)\n"
    assert lint_source(src, NEUTRAL_PATH) == []


def test_suppression_of_other_rule_does_not_apply():
    src = "s = {1}\nfor x in s:  # simlint: disable=REP001\n    print(x)\n"
    assert rules_of(lint_source(src, NEUTRAL_PATH)) == ["REP002"]


# -- select / syntax errors / sorting --------------------------------------


def test_select_restricts_rules():
    src = "def f(x=[]):\n    s = {1}\n    return [y for y in s]\n"
    assert rules_of(lint_source(src, NEUTRAL_PATH, select={"REP005"})) == [
        "REP005"
    ]


def test_syntax_error_reported_as_rep000():
    findings = lint_source("def f(:\n", NEUTRAL_PATH)
    assert [f.rule for f in findings] == ["REP000"]


def test_findings_sorted_by_location():
    src = "def f(x=[]):\n    return x\n\ns = {1}\nfor y in s:\n    print(y)\n"
    findings = lint_source(src, NEUTRAL_PATH)
    assert [f.line for f in findings] == sorted(f.line for f in findings)


# -- the repo itself + CLI -------------------------------------------------


def test_repo_src_is_lint_clean():
    """The CI gate: simlint has no findings on the shipped sources."""
    findings, files = lint_paths(["src"])
    assert findings == []
    assert files > 40


def test_cli_exit_codes_and_json(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("s = {1}\nfor x in s:\n    pass\n")
    good = tmp_path / "good.py"
    good.write_text("x = 1\n")

    assert lint_main([str(good)]) == 0
    capsys.readouterr()

    assert lint_main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "REP002" in out and "FAIL" in out

    assert lint_main([str(bad), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"] == {"REP002": 1}
    assert payload["files_checked"] == 1
    assert payload["findings"][0]["rule"] == "REP002"


def test_cli_list_rules_and_unknown_select(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule in out
    assert lint_main(["--select", "REP999"]) == 2


def test_cli_statistics(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("s = {1}\nfor x in s:\n    pass\nxs = list(s)\n")
    assert lint_main([str(bad), "--statistics"]) == 1
    out = capsys.readouterr().out
    assert "REP002: 2" in out


@pytest.mark.parametrize("rule", sorted(RULES))
def test_every_rule_has_a_catalog_entry(rule):
    assert RULES[rule]
