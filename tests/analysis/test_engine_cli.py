"""CLI surface of the v2 lint driver: --explain, --select/--ignore
validation, --sarif output shape, and registry/doc sync."""

import json

import pytest

from repro.analysis.engine import main as engine_main
from repro.analysis.rules import REGISTRY, RULES, explain, rule_ids
from repro.analysis.sarif import to_sarif
from repro.analysis.simlint import Finding

CLEAN = "def f(x):\n    return x + 1\n"


@pytest.fixture()
def clean_pkg(tmp_path):
    pkg = tmp_path / "cleanpkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text(CLEAN)
    return pkg


def lint(args):
    return engine_main([str(a) for a in args])


# -- registry ---------------------------------------------------------------


def test_registry_covers_v1_and_v2_rules():
    ids = rule_ids()
    for rid in [f"REP00{i}" for i in range(1, 9)]:
        assert rid in ids
    for rid in [f"REP10{i}" for i in range(1, 8)]:
        assert rid in ids


def test_registry_and_rules_dict_in_sync():
    assert set(RULES) == set(REGISTRY)
    for rid, rule in REGISTRY.items():
        assert rule.id == rid
        assert rule.summary == RULES[rid]
        assert rule.explain.strip(), f"{rid} has no explanation"


def test_explain_every_rule():
    for rid in rule_ids():
        text = explain(rid)
        assert rid in text


# -- CLI flags --------------------------------------------------------------


def test_explain_flag(capsys):
    assert lint(["--explain", "REP104"]) == 0
    out = capsys.readouterr().out
    assert "REP104" in out


def test_explain_unknown_rule(capsys):
    assert lint(["--explain", "REP999"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_list_rules_lists_all(capsys):
    assert lint(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rid in rule_ids():
        assert rid in out


def test_select_unknown_rule_rejected(clean_pkg, capsys):
    assert lint([clean_pkg, "--select", "REP999"]) == 2
    assert "unknown rules" in capsys.readouterr().err


def test_ignore_unknown_rule_rejected(clean_pkg, capsys):
    assert lint([clean_pkg, "--ignore", "NOPE"]) == 2
    assert "unknown rules" in capsys.readouterr().err


def test_ignore_drops_findings(tmp_path, capsys):
    pkg = tmp_path / "sim"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text(
        "import random\n\n\ndef f():\n    return random.random()\n"
    )
    assert lint([pkg]) == 1
    capsys.readouterr()
    assert lint([pkg, "--ignore", "REP001"]) == 0


def test_clean_package_exits_zero(clean_pkg, capsys):
    assert lint([clean_pkg]) == 0
    assert "ok: 0 findings" in capsys.readouterr().out


# -- SARIF ------------------------------------------------------------------


def test_sarif_flag_writes_valid_log(tmp_path, capsys):
    pkg = tmp_path / "sim"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text(
        "import random\n\n\ndef f():\n    return random.random()\n"
    )
    sarif_path = tmp_path / "out.sarif"
    assert lint([pkg, "--sarif", sarif_path]) == 1
    capsys.readouterr()
    log = json.loads(sarif_path.read_text())
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == "simlint"
    results = run["results"]
    assert results and results[0]["ruleId"] == "REP001"
    loc = results[0]["locations"][0]["physicalLocation"]
    assert loc["region"]["startLine"] == 5


def test_sarif_trace_becomes_related_locations():
    f = Finding(
        "pkg/util.py", 5, 4, "REP104", "allocation on hot path",
        trace=(
            "pkg/core.py:4: step (marked hotpath)",
            "pkg/util.py:1: expand (called by step)",
        ),
    )
    log = json.loads(to_sarif([f]))
    result = log["runs"][0]["results"][0]
    related = result["relatedLocations"]
    assert len(related) == 2
    assert related[0]["physicalLocation"]["region"]["startLine"] == 4
    assert "marked hotpath" in related[0]["message"]["text"]


def test_sarif_rules_metadata_present():
    log = json.loads(to_sarif([]))
    rules = log["runs"][0]["tool"]["driver"]["rules"]
    assert {r["id"] for r in rules} == set(rule_ids())
