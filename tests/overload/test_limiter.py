"""AdaptiveConcurrencyLimit unit contracts: AIMD growth, the EWMA-gated
decrease with its one-per-window cooldown, and gradient-mode shape."""

import pytest

from repro.overload.limiter import AdaptiveConcurrencyLimit, LimitConfig


def test_good_latency_grows_additively():
    lim = AdaptiveConcurrencyLimit(LimitConfig(initial=10, target_latency_s=0.1))
    for i in range(10):
        lim.observe(0.01, now=i * 0.01)
    # ~ten increase/limit steps from 10: strictly up, roughly +1 total.
    assert 10 < lim._limit < 12


def test_sustained_slow_latency_shrinks_multiplicatively():
    lim = AdaptiveConcurrencyLimit(
        LimitConfig(initial=100, target_latency_s=0.05, decrease=0.5)
    )
    # Slow samples spaced beyond each cut's cooldown horizon.
    lim.observe(1.0, now=0.0)
    lim.observe(1.0, now=2.0)
    assert lim.limit == 25  # two uncontested halvings


def test_decrease_cooldown_one_cut_per_latency_window():
    lim = AdaptiveConcurrencyLimit(
        LimitConfig(initial=100, target_latency_s=0.05, decrease=0.5)
    )
    lim.observe(1.0, now=0.0)  # cut to 50, holdoff until ~1.0
    for t in (0.1, 0.3, 0.5, 0.9):
        lim.observe(1.0, now=t)  # in-window stragglers: stale evidence
    assert lim.limit == 50
    lim.observe(1.0, now=1.5)  # past the horizon: a real second signal
    assert lim.limit == 25


def test_ewma_gating_tolerates_isolated_tail_samples():
    # A fat-tailed but healthy service: occasional slow samples in a
    # stream of fast ones must not walk the limit down (the raw-sample
    # AIMD failure mode that locks a locality policy at min_limit).
    lim = AdaptiveConcurrencyLimit(
        LimitConfig(initial=50, target_latency_s=0.05, short_alpha=0.1)
    )
    now = 0.0
    for round_ in range(20):
        for _ in range(19):
            now += 0.001
            lim.observe(0.005, now=now)
        now += 0.001
        lim.observe(0.2, now=now)  # 5% tail, 4x over target
    assert lim.limit >= 50


def test_floor_and_ceiling_clamp():
    lim = AdaptiveConcurrencyLimit(
        LimitConfig(min_limit=4, max_limit=8, initial=8, target_latency_s=0.1)
    )
    for i in range(50):
        lim.observe(5.0, now=float(i * 100))
    assert lim.limit == 4
    for i in range(200):
        lim.observe(0.01, now=1e6 + i)
    assert lim.limit == 8


def test_gradient_contracts_on_latency_spike_and_recovers():
    lim = AdaptiveConcurrencyLimit(
        LimitConfig(mode="gradient", initial=64)
    )
    for i in range(50):
        lim.observe(0.01, now=i * 0.01)
    calm = lim.limit
    for i in range(50):
        lim.observe(0.5, now=1.0 + i * 0.01)
    assert lim.limit < calm
    spiked = lim.limit
    for i in range(200):
        lim.observe(0.01, now=2.0 + i * 0.01)
    assert lim.limit > spiked


def test_determinism_same_stream_same_trajectory():
    def run():
        lim = AdaptiveConcurrencyLimit(LimitConfig(target_latency_s=0.05))
        out = []
        for i in range(100):
            lim.observe(0.01 if i % 7 else 0.3, now=i * 0.01)
            out.append(lim.limit)
        return out

    assert run() == run()


def test_config_validation():
    with pytest.raises(ValueError):
        LimitConfig(mode="pid")
    with pytest.raises(ValueError):
        LimitConfig(min_limit=0)
    with pytest.raises(ValueError):
        LimitConfig(min_limit=8, max_limit=4)
    with pytest.raises(ValueError):
        LimitConfig(initial=2, min_limit=4)
    with pytest.raises(ValueError):
        LimitConfig(decrease=1.0)
    with pytest.raises(ValueError):
        LimitConfig(target_latency_s=0.0)


def test_negative_latency_is_ignored():
    lim = AdaptiveConcurrencyLimit(LimitConfig(initial=64))
    lim.observe(-1.0, now=0.0)
    assert lim.observations == 0
    assert lim.limit == 64
