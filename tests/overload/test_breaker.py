"""CircuitBreaker unit contracts: the three-state machine, seeded
jitter determinism, and the stale-probe forfeit."""

from repro.overload.breaker import BreakerBoard, BreakerConfig, CircuitBreaker


def cfg(**kw):
    base = dict(failure_threshold=3, cooldown_s=1.0, jitter=0.0, seed=7)
    base.update(kw)
    return BreakerConfig(**base)


def trip(breaker, now=0.0):
    for _ in range(breaker.config.failure_threshold):
        breaker.record_failure(now)


def test_consecutive_failures_trip_success_resets_the_count():
    b = CircuitBreaker(cfg())
    b.record_failure(0.0)
    b.record_failure(0.0)
    b.record_success(0.0)  # streak broken: counting restarts
    b.record_failure(0.0)
    b.record_failure(0.0)
    assert b.state == "closed"
    b.record_failure(0.0)
    assert b.state == "open"
    assert b.trips == 1


def test_open_refuses_until_cooldown_then_half_open_probe():
    b = CircuitBreaker(cfg())
    trip(b)
    assert not b.allow(0.5)
    assert not b.routable(0.5)
    # Cooldown expired: exactly one probe slot, a second entry refused.
    assert b.allow(1.0)
    assert b.state == "half_open"
    assert not b.allow(1.0)
    # Probe success closes; probe failure would re-trip.
    b.record_success(1.1)
    assert b.state == "closed"


def test_probe_failure_retrips_with_fresh_cooldown():
    b = CircuitBreaker(cfg())
    trip(b)
    assert b.allow(1.0)
    b.record_failure(1.2)
    assert b.state == "open"
    assert b.trips == 2
    assert not b.allow(1.5)  # new cooldown runs from the re-trip
    assert b.allow(2.2)


def test_stale_probe_slot_is_forfeited_after_a_cooldown():
    b = CircuitBreaker(cfg())
    trip(b)
    assert b.allow(1.0)  # probe claimed... and never reports back
    assert not b.allow(1.5)  # slot still held
    assert b.allow(2.1)  # full cooldown later: forfeited, re-offered


def test_jitter_is_deterministic_per_seed_and_node():
    def probe_time(seed, node):
        b = CircuitBreaker(cfg(jitter=0.2, seed=seed), node_id=node)
        trip(b)
        return b._probe_at

    assert probe_time(1, 0) == probe_time(1, 0)
    assert probe_time(1, 0) != probe_time(1, 1)  # decorrelated per node
    assert probe_time(1, 0) != probe_time(2, 0)


def test_board_routable_is_pure_and_allow_counts_rejections():
    board = BreakerBoard(3, cfg())
    for _ in range(3):
        board.record_failure(1, 0.0)
    assert board.states() == "COC"
    assert board.routable(0, 0.0) and not board.routable(1, 0.0)
    assert board.state(1) == "open"  # routable() mutated nothing
    assert not board.allow(1, 0.0)
    assert board.rejections == 1
    snap = board.snapshot()
    assert snap["trips"] == 1 and snap["rejections"] == 1
