"""AdmissionController unit contracts: caps, queue bound, priorities,
deadline drops, and the release bookkeeping both substrates share."""

import pytest

from repro.overload.admission import AdmissionConfig, AdmissionController
from repro.overload.limiter import AdaptiveConcurrencyLimit, LimitConfig


def admit_n(ctrl, n, now=0.0, priority=0):
    return [ctrl.try_admit(now, priority=priority) for _ in range(n)]


def test_admits_up_to_limit_then_queues_then_sheds():
    ctrl = AdmissionController(AdmissionConfig(max_inflight=4, queue_slots=2))
    verdicts = admit_n(ctrl, 7)
    # 4 in service + 2 backlog slots; the 7th sheds.
    assert [v.admitted for v in verdicts] == [True] * 6 + [False]
    assert verdicts[-1].reason == "queue_full"
    assert ctrl.inflight == 6
    assert ctrl.admitted == 6
    assert ctrl.shed_by_reason == {"queue_full": 1}


def test_release_frees_a_slot_for_the_next_arrival():
    ctrl = AdmissionController(AdmissionConfig(max_inflight=2, queue_slots=0))
    admit_n(ctrl, 2)
    assert not ctrl.try_admit(0.0).admitted
    ctrl.release(1.0, 0.01)
    assert ctrl.try_admit(1.0).admitted
    assert ctrl.inflight == 2


def test_queue_bound_is_min_of_slots_and_limit():
    # A collapsed adaptive limit must shrink the backlog allowance with
    # it: a fixed allowance would keep queueing behind the bottleneck
    # and hold the limiter's latency signal above target forever.
    limiter = AdaptiveConcurrencyLimit(
        LimitConfig(min_limit=4, initial=4, target_latency_s=0.05)
    )
    ctrl = AdmissionController(
        AdmissionConfig(queue_slots=64), limiter=limiter
    )
    assert ctrl.limit == 4
    verdicts = admit_n(ctrl, 10)
    # 4 in service + min(64, 4) = 4 backlog; the rest shed.
    assert sum(v.admitted for v in verdicts) == 8
    assert ctrl.shed_by_reason["queue_full"] == 2


def test_low_priority_sheds_before_high_priority():
    ctrl = AdmissionController(
        AdmissionConfig(max_inflight=2, queue_slots=2, classes=2)
    )
    admit_n(ctrl, 2)  # fill the in-service slots
    # Class 1 may only occupy the first half of the queue.
    assert ctrl.try_admit(0.0, priority=1).admitted
    low = ctrl.try_admit(0.0, priority=1)
    assert not low.admitted and low.reason == "queue_full"
    # Class 0 still has the full queue allowance.
    assert ctrl.try_admit(0.0, priority=0).admitted


def test_deadline_drop_uses_the_latency_ewma():
    ctrl = AdmissionController(
        AdmissionConfig(max_inflight=1, queue_slots=8, deadline_s=0.5)
    )
    assert ctrl.try_admit(0.0).admitted
    # Teach the EWMA a 2 s service latency: one queued request would
    # wait ~4 s >> the 0.5 s deadline, so the next arrival fails fast.
    ctrl.release(2.0, 2.0)
    assert ctrl.try_admit(2.0).admitted  # takes the free in-service slot
    shed = ctrl.try_admit(2.0)
    assert not shed.admitted and shed.reason == "deadline"
    assert ctrl.shed_by_reason == {"deadline": 1}


def test_unhealthy_shed_reason_flows_through_the_same_books():
    ctrl = AdmissionController(AdmissionConfig(max_inflight=8))
    verdict = ctrl.try_admit(0.0, capacity_ok=False)
    assert not verdict.admitted and verdict.reason == "unhealthy"
    assert ctrl.shed_total == 1


def test_failure_release_feeds_no_latency():
    limiter = AdaptiveConcurrencyLimit(LimitConfig(initial=64))
    ctrl = AdmissionController(AdmissionConfig(), limiter=limiter)
    ctrl.try_admit(0.0)
    ctrl.release(1.0, None)  # a fault says nothing about service rate
    assert limiter.observations == 0
    assert ctrl.inflight == 0


def test_config_validation():
    with pytest.raises(ValueError):
        AdmissionConfig(max_inflight=0)
    with pytest.raises(ValueError):
        AdmissionConfig(max_inflight=4, deadline_s=0.0)
    with pytest.raises(ValueError):
        AdmissionConfig(max_inflight=4, classes=0)
    with pytest.raises(ValueError):
        AdmissionController(AdmissionConfig())  # no cap and no limiter


def test_snapshot_reports_limit_inflight_and_sheds():
    ctrl = AdmissionController(AdmissionConfig(max_inflight=2, queue_slots=0))
    admit_n(ctrl, 3)
    snap = ctrl.snapshot()
    assert snap["limit"] == 2
    assert snap["inflight"] == 2
    assert snap["shed"] == {"queue_full": 1}
