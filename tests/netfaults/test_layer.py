"""Tests for the runtime fault layer: per-message judgement and state."""

import pytest

from repro.des import Environment
from repro.netfaults import NetFaultConfig, NetFaultLayer, NetFaultSchedule


def make_layer(nodes=4, **cfg):
    env = Environment()
    return env, NetFaultLayer(env, NetFaultConfig(**cfg), nodes)


def test_schedule_is_validated_against_cluster_size():
    with pytest.raises(ValueError):
        make_layer(nodes=2, schedule=NetFaultSchedule.parse("down:0-7@1"))


def test_perfect_fabric_judges_everything_through():
    env, layer = make_layer()
    for _ in range(50):
        assert layer.judge(0, 1, "msg") == (None, 0.0, False)


def test_judgement_is_deterministic_for_a_seed():
    _, a = make_layer(loss_rate=0.3, dup_rate=0.2, jitter_s=1e-4, seed=9)
    _, b = make_layer(loss_rate=0.3, dup_rate=0.2, jitter_s=1e-4, seed=9)
    fates_a = [a.judge(0, 1, "msg") for _ in range(200)]
    fates_b = [b.judge(0, 1, "msg") for _ in range(200)]
    assert fates_a == fates_b
    assert any(f[0] == "loss" for f in fates_a)
    assert any(f[2] for f in fates_a)


def test_zero_rate_knobs_never_touch_the_rng():
    # With every probabilistic knob at zero the RNG is never drawn, so
    # enabling delay (a non-random knob) cannot perturb anything.
    _, layer = make_layer(extra_delay_s=5e-6)
    state = layer.rng.getstate()
    for _ in range(20):
        assert layer.judge(0, 1, "msg") == (None, 5e-6, False)
    assert layer.rng.getstate() == state


def test_jitter_bounds():
    _, layer = make_layer(extra_delay_s=1e-6, jitter_s=1e-5, seed=2)
    for _ in range(100):
        cause, delay, _ = layer.judge(0, 1, "msg")
        assert cause is None
        assert 1e-6 <= delay < 1e-6 + 1e-5


def test_link_down_blocks_both_directions_until_up():
    env, layer = make_layer()
    layer.link_down(2, 0)
    assert layer.blocked(0, 2) == "link"
    assert layer.blocked(2, 0) == "link"
    assert layer.blocked(0, 1) is None
    assert layer.judge(0, 2, "msg")[0] == "link"
    layer.link_up(0, 2)  # endpoint order does not matter
    assert layer.blocked(0, 2) is None
    assert layer.link_downs == 1


def test_partition_blocks_cross_group_traffic_only():
    env, layer = make_layer(nodes=4)
    layer.start_partition((0, 1))
    assert layer.blocked(0, 2) == "partition"
    assert layer.blocked(3, 1) == "partition"
    assert layer.blocked(0, 1) is None  # same minority side
    assert layer.blocked(2, 3) is None  # same majority side
    layer.heal_partition()
    assert layer.blocked(0, 2) is None
    assert layer.partitions == 1 and layer.heals == 1


def test_partition_outranks_link_state_in_cause():
    env, layer = make_layer(nodes=4)
    layer.link_down(0, 2)
    layer.start_partition((0,))
    assert layer.blocked(0, 2) == "partition"
    layer.heal_partition()
    assert layer.blocked(0, 2) == "link"


def test_per_link_loss_composes_with_global_loss():
    _, layer = make_layer(loss_rate=0.5, link_loss=((0, 1, 0.5),), seed=4)
    # Composed rate 0.75 on the hot link, 0.5 elsewhere.
    hot = sum(layer.judge(0, 1, "msg")[0] == "loss" for _ in range(400))
    _, layer2 = make_layer(loss_rate=0.5, link_loss=((0, 1, 0.5),), seed=4)
    cold = sum(layer2.judge(2, 3, "msg")[0] == "loss" for _ in range(400))
    assert hot > cold
    assert 230 < hot < 370  # ~300 expected
    assert 130 < cold < 270  # ~200 expected


def test_duplicate_link_loss_entries_compose():
    _, layer = make_layer(link_loss=((0, 1, 0.5), (1, 0, 0.5)))
    assert layer._link_loss[(0, 1)] == pytest.approx(0.75)


def test_event_log_records_times():
    env, layer = make_layer()
    env.run(until=2.5)
    layer.link_down(0, 1)
    assert layer.event_log == [(2.5, "link_down 0-1")]
