"""Tests for the declarative netfault model: events, schedules, configs."""

import pytest

from repro.netfaults import (
    DEFAULT_RELIABLE_KINDS,
    NetFaultConfig,
    NetFaultEvent,
    NetFaultSchedule,
    RetrySpec,
)


# -- NetFaultEvent ----------------------------------------------------------


def test_event_validation():
    with pytest.raises(ValueError):
        NetFaultEvent("warp", 1.0)
    with pytest.raises(ValueError):
        NetFaultEvent("link_down", -1.0, src=0, dst=1)
    with pytest.raises(ValueError):
        NetFaultEvent("link_down", 1.0)  # missing endpoints
    with pytest.raises(ValueError):
        NetFaultEvent("link_up", 1.0, src=2, dst=2)
    with pytest.raises(ValueError):
        NetFaultEvent("partition", 1.0, group=())


def test_parse_down_up_tokens():
    (down,) = NetFaultEvent.parse("down:0-3@0.5")
    assert (down.kind, down.at, down.src, down.dst) == ("link_down", 0.5, 0, 3)
    (up,) = NetFaultEvent.parse("up:0-3@1.5")
    assert (up.kind, up.at) == ("link_up", 1.5)


def test_parse_link_interval_is_down_then_up():
    events = NetFaultEvent.parse("link:1-2@0.5..1.5")
    assert [e.kind for e in events] == ["link_down", "link_up"]
    assert [e.at for e in events] == [0.5, 1.5]


def test_parse_partition_interval_and_open_ended():
    events = NetFaultEvent.parse("partition:3+0@1..2")
    assert [e.kind for e in events] == ["partition", "heal"]
    assert events[0].group == (0, 3)  # sorted
    (only,) = NetFaultEvent.parse("partition:5@2.0")  # never heals
    assert only.kind == "partition" and only.group == (5,)


def test_parse_rejects_malformed_tokens():
    for bad in (
        "nonsense",
        "down:0-1",  # no time
        "link:0-1@2.0",  # link sugar needs an interval
        "link:0-1@2.0..1.0",  # empty interval
        "down:0@1.0",  # not a pair
        "partition:a+b@1.0",
        "warp:0-1@1.0",
    ):
        with pytest.raises(ValueError):
            NetFaultEvent.parse(bad)


# -- NetFaultSchedule -------------------------------------------------------


def test_schedule_sorts_events_by_time():
    sched = NetFaultSchedule(
        (
            NetFaultEvent("link_up", 2.0, src=0, dst=1),
            NetFaultEvent("link_down", 1.0, src=0, dst=1),
        )
    )
    assert [e.at for e in sched.events] == [1.0, 2.0]
    assert len(sched) == 2 and bool(sched)
    assert not NetFaultSchedule()


def test_schedule_parse_multiple_tokens():
    sched = NetFaultSchedule.parse("link:0-1@0.5..1.5, partition:2@2.0..3.0")
    assert [e.kind for e in sched.events] == [
        "link_down",
        "link_up",
        "partition",
        "heal",
    ]


def test_schedule_validate_node_range_and_group_size():
    sched = NetFaultSchedule.parse("down:0-7@1.0")
    sched.validate(8)
    with pytest.raises(ValueError):
        sched.validate(4)
    whole = NetFaultSchedule.partition((0, 1, 2, 3), 1.0)
    with pytest.raises(ValueError):
        whole.validate(4)  # nobody left on the majority side


def test_partition_helper():
    sched = NetFaultSchedule.partition((2, 0), 1.0, 2.0)
    assert sched.events[0].group == (0, 2)
    assert sched.events[1].kind == "heal"
    open_ended = NetFaultSchedule.partition((1,), 1.0)
    assert [e.kind for e in open_ended.events] == ["partition"]


def test_stochastic_links_deterministic_and_per_link_independent():
    a = NetFaultSchedule.stochastic_links(4, 50.0, mtbf_s=10.0, mttr_s=1.0, seed=3)
    b = NetFaultSchedule.stochastic_links(4, 50.0, mtbf_s=10.0, mttr_s=1.0, seed=3)
    assert a.events == b.events
    assert a.events  # the horizon is long enough to produce cycles
    # Growing the cluster must not perturb the existing links' samples.
    big = NetFaultSchedule.stochastic_links(6, 50.0, mtbf_s=10.0, mttr_s=1.0, seed=3)

    def link01(sched):
        return [e for e in sched.events if (e.src, e.dst) == (0, 1)]

    assert link01(a) == link01(big)
    with pytest.raises(ValueError):
        NetFaultSchedule.stochastic_links(4, 50.0, mtbf_s=0.0, mttr_s=1.0)


# -- RetrySpec --------------------------------------------------------------


def test_retry_spec_validation():
    with pytest.raises(ValueError):
        RetrySpec(timeout_s=0.0)
    with pytest.raises(ValueError):
        RetrySpec(max_retries=-1)
    with pytest.raises(ValueError):
        RetrySpec(base_backoff_s=-1.0)
    with pytest.raises(ValueError):
        RetrySpec(multiplier=0.5)


def test_retry_spec_backoff_is_capped_exponential():
    spec = RetrySpec(base_backoff_s=1e-3, multiplier=2.0, cap_s=3e-3)
    assert spec.backoff(1) == pytest.approx(1e-3)
    assert spec.backoff(2) == pytest.approx(2e-3)
    assert spec.backoff(3) == pytest.approx(3e-3)  # capped, not 4 ms
    assert spec.backoff(10) == pytest.approx(3e-3)
    with pytest.raises(ValueError):
        spec.backoff(0)


# -- NetFaultConfig ---------------------------------------------------------


def test_config_validation():
    with pytest.raises(ValueError):
        NetFaultConfig(loss_rate=1.0)
    with pytest.raises(ValueError):
        NetFaultConfig(dup_rate=-0.1)
    with pytest.raises(ValueError):
        NetFaultConfig(extra_delay_s=-1.0)
    with pytest.raises(ValueError):
        NetFaultConfig(link_loss=((2, 2, 0.1),))
    with pytest.raises(ValueError):
        NetFaultConfig(link_loss=((0, 1, 1.5),))
    with pytest.raises(ValueError):
        NetFaultConfig(handoff_redispatch=-1)


def test_config_active_flags_each_knob():
    assert not NetFaultConfig().active
    assert not NetFaultConfig(schedule=NetFaultSchedule()).active
    assert NetFaultConfig(loss_rate=0.01).active
    assert NetFaultConfig(dup_rate=0.01).active
    assert NetFaultConfig(extra_delay_s=1e-6).active
    assert NetFaultConfig(jitter_s=1e-6).active
    assert NetFaultConfig(link_loss=((0, 1, 0.1),)).active
    assert NetFaultConfig(schedule=NetFaultSchedule.parse("down:0-1@1")).active
    assert NetFaultConfig(always_on=True).active


def test_config_spec_for_per_kind_override():
    custom = RetrySpec(timeout_s=1e-3, max_retries=1)
    cfg = NetFaultConfig(protocol=(("handoff", custom),))
    assert cfg.spec_for("handoff") is custom
    assert cfg.spec_for("dfs_req") is cfg.default_spec


def test_default_reliable_kinds_cover_stateful_traffic():
    assert "handoff" in DEFAULT_RELIABLE_KINDS
    assert "dfs_req" in DEFAULT_RELIABLE_KINDS
    # Load broadcasts stay fire-and-forget by design.
    assert "l2s_load" not in DEFAULT_RELIABLE_KINDS
