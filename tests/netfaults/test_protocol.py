"""Tests for the ack/retry/dedup reliability protocol."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.des import Environment
from repro.model import MB
from repro.netfaults import NetFaultConfig, RetrySpec


def make_cluster(nodes=2, **nf_kwargs):
    nf_kwargs.setdefault("always_on", True)
    env = Environment()
    config = ClusterConfig(
        nodes=nodes, cache_bytes=1 * MB, net_faults=NetFaultConfig(**nf_kwargs)
    )
    return env, Cluster(env, config)


def run(env, gen):
    p = env.process(gen)
    env.run(until=p)
    return p.value


def test_active_config_attaches_layer_and_protocol():
    env, cluster = make_cluster()
    assert cluster.net.netfaults is not None
    assert cluster.net.protocol is not None
    assert cluster.net.protocol.covers("handoff")
    assert not cluster.net.protocol.covers("l2s_load")


def test_inert_config_attaches_nothing():
    env = Environment()
    cluster = Cluster(
        env,
        ClusterConfig(nodes=2, cache_bytes=1 * MB, net_faults=NetFaultConfig()),
    )
    assert cluster.net.netfaults is None
    assert cluster.net.protocol is None


def test_request_gen_perfect_fabric_delivers_and_acks_once():
    env, cluster = make_cluster()
    proto = cluster.net.protocol
    ok = run(env, proto.request_gen(0, 1, 1.0, "handoff"))
    assert ok is True
    assert cluster.net.delivered_counts == {"handoff": 1, "handoff_ack": 1}
    assert proto.acks == {"handoff": 1}
    assert proto.retries == {} and proto.failures == {} and proto.dedups == {}


def test_request_gen_same_node_shortcut():
    env, cluster = make_cluster()
    ok = run(env, cluster.net.protocol.request_gen(0, 0, 1.0, "handoff"))
    assert ok is True
    assert env.now == 0.0
    assert cluster.net.messages_sent == 0


def test_request_gen_gives_up_after_retries_on_a_dead_link():
    spec = RetrySpec(
        timeout_s=1e-3, max_retries=2, base_backoff_s=1e-3, multiplier=2.0,
        cap_s=1e-2,
    )
    env, cluster = make_cluster(default_spec=spec)
    proto = cluster.net.protocol
    cluster.net.netfaults.link_down(0, 1)
    ok = run(env, proto.request_gen(0, 1, 1.0, "handoff"))
    assert ok is False
    assert proto.retries == {"handoff": 2}
    assert proto.failures == {"handoff": 1}
    assert cluster.net.dropped_counts == {"handoff": 3}
    assert cluster.net.drop_causes == {"link": 3}
    # Three 1 ms ack deadlines plus the 1 ms and 2 ms backoff pauses.
    assert env.now == pytest.approx(6e-3, rel=0.05)


def test_request_gen_succeeds_once_the_link_heals():
    spec = RetrySpec(timeout_s=1e-3, max_retries=5, base_backoff_s=0.0, cap_s=0.0)
    env, cluster = make_cluster(default_spec=spec)
    proto = cluster.net.protocol
    cluster.net.netfaults.link_down(0, 1)
    env.call_later(2.5e-3, lambda _e: cluster.net.netfaults.link_up(0, 1))
    ok = run(env, proto.request_gen(0, 1, 1.0, "handoff"))
    assert ok is True
    assert proto.retries.get("handoff", 0) >= 2
    assert proto.failures == {}
    assert cluster.net.delivered_counts["handoff"] == 1


def test_send_cb_perfect_fabric_delivers_once():
    env, cluster = make_cluster()
    proto = cluster.net.protocol
    seen = []
    proto.send_cb(0, 1, 1.0, "l2s_set", deliver=lambda: seen.append(env.now))
    env.run()
    assert len(seen) == 1
    assert proto.acks == {"l2s_set": 1}
    assert proto.failures == {}


def test_send_cb_failure_callback_after_retries_exhaust():
    spec = RetrySpec(timeout_s=1e-3, max_retries=1, base_backoff_s=0.0, cap_s=0.0)
    env, cluster = make_cluster(default_spec=spec)
    proto = cluster.net.protocol
    cluster.net.netfaults.link_down(0, 1)
    delivered, failed = [], []
    proto.send_cb(
        0, 1, 1.0, "l2s_set",
        deliver=lambda: delivered.append(env.now),
        failed=lambda: failed.append(env.now),
    )
    env.run()
    assert delivered == []
    assert len(failed) == 1
    assert proto.retries == {"l2s_set": 1}
    assert proto.failures == {"l2s_set": 1}


def test_send_cb_same_node_shortcut_fires_deliver():
    env, cluster = make_cluster()
    seen = []
    cluster.net.protocol.send_cb(1, 1, 1.0, "l2s_set", deliver=lambda: seen.append(1))
    env.run()
    assert seen == [1]
    assert cluster.net.messages_sent == 0


def test_lossy_protocol_is_deterministic_and_dedups():
    def totals(seed):
        env, cluster = make_cluster(
            loss_rate=0.4,
            seed=seed,
            always_on=False,
            default_spec=RetrySpec(
                timeout_s=1e-3, max_retries=6, base_backoff_s=1e-4,
                multiplier=2.0, cap_s=1e-3,
            ),
        )
        proto = cluster.net.protocol
        outcomes = []

        def driver():
            for i in range(60):
                ok = yield from proto.request_gen(0, 1, 1.0, "handoff")
                outcomes.append(ok)

        run(env, driver())
        return outcomes, dict(proto.retries), dict(proto.dedups), env.now

    a = totals(11)
    b = totals(11)
    assert a == b
    outcomes, retries, dedups, _ = a
    # 40% loss forces retransmissions, and lost acks force deduped
    # retransmissions of already-delivered payloads.
    assert retries.get("handoff", 0) > 0
    assert dedups.get("handoff", 0) > 0
    # An attempt succeeds only when payload AND ack both cross (p=0.36),
    # so a few of the 60 sends may exhaust all 7 attempts and give up.
    assert sum(outcomes) >= 50
    assert totals(12) != a  # a different seed takes a different path


def test_send_control_cb_uses_control_sizing():
    env, cluster = make_cluster()
    proto = cluster.net.protocol
    seen = []
    proto.send_control_cb(0, 1, "l2s_set", deliver=lambda: seen.append(env.now))
    env.run()
    assert len(seen) == 1
    # One-way control latency matches the bare fabric's 19 us budget.
    assert seen[0] == pytest.approx(cluster.config.one_way_message_latency(), rel=1e-6)


def test_reset_accounting_clears_protocol_counters():
    env, cluster = make_cluster()
    proto = cluster.net.protocol
    run(env, proto.request_gen(0, 1, 1.0, "handoff"))
    assert proto.acks
    cluster.net.reset_accounting()
    assert proto.acks == {} and proto.retries == {}
    assert proto.stats() == {
        "retries": {}, "acks": {}, "dedups": {}, "failures": {},
    }
