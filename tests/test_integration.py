"""Cross-module integration tests: conservation laws and consistency
between the workload, the policies, the hardware, and the metrics."""

import pytest

from repro.cluster import ClusterConfig
from repro.model import MB
from repro.servers import make_policy
from repro.sim import Simulation, model_bound_for_trace
from repro.workload import build_fileset, generate_trace


@pytest.fixture(scope="module")
def trace():
    fs = build_fileset(300, 18 * 1024, 14 * 1024, 0.9, seed=3, name="itrace")
    return generate_trace(fs, 4000, seed=4, name="itrace")


def run(trace, policy_name, nodes=4, cache_mb=2, **sim_kwargs):
    cfg = ClusterConfig(
        nodes=nodes, cache_bytes=cache_mb * MB, multiprogramming_per_node=8
    )
    policy = make_policy(policy_name)
    sim = Simulation(trace, policy, cfg, passes=2, **sim_kwargs)
    return sim, sim.run()


ALL_POLICIES = (
    "l2s",
    "lard",
    "lard-ng",
    "traditional",
    "round-robin",
    "consistent-hash",
    "dns-cached",
)


def test_request_conservation(trace):
    for name in ALL_POLICIES:
        sim, result = run(trace, name)
        assert result.requests_measured + result.requests_warmup == 2 * len(trace)
        assert sum(result.node_completions) == result.requests_measured


def test_throughput_definition_consistent(trace):
    sim, result = run(trace, "l2s")
    assert result.throughput_rps == pytest.approx(
        result.requests_measured / result.sim_seconds
    )


def test_no_handoffs_for_local_policies(trace):
    for name in ("traditional", "round-robin"):
        sim, result = run(trace, name)
        assert result.forwarded_fraction == 0.0
        assert "handoff" not in sim.cluster.net.message_counts
        assert all(n.forwarded == 0 for n in sim.cluster.nodes)


def test_lard_hands_off_every_request(trace):
    sim, result = run(trace, "lard")
    # Every measured request was handed off by the front-end.  Message
    # counters reset at the warmup boundary while up to one MPL of
    # requests straddles it, hence the tolerance.
    mpl = sim.config.multiprogramming_per_node * sim.config.nodes
    handoffs = sim.cluster.net.message_counts["handoff"]
    assert abs(handoffs - result.requests_measured) <= mpl
    assert result.forwarded_fraction == 1.0
    # Front-end serviced nothing; its cache never saw a file.
    assert len(sim.cluster.node(0).cache) == 0


def test_l2s_handoffs_match_forwarded_fraction(trace):
    sim, result = run(trace, "l2s")
    handoffs = sim.cluster.net.message_counts.get("handoff", 0)
    expected = result.forwarded_fraction * result.requests_measured
    mpl = sim.config.multiprogramming_per_node * sim.config.nodes
    assert handoffs == pytest.approx(expected, abs=mpl)


def test_l2s_server_sets_are_valid(trace):
    sim, result = run(trace, "l2s")
    policy = sim.policy
    nodes = sim.cluster.num_nodes
    sets = policy._server_sets
    assert len(sets) > 0
    for file_id, sset in sets.items():
        assert len(sset) >= 1
        assert len(set(sset)) == len(sset)  # no duplicates
        assert all(0 <= m < nodes for m in sset)


def test_all_connections_closed_at_end(trace):
    for name in ALL_POLICIES:
        sim, result = run(trace, name)
        assert sim.cluster.connection_counts() == [0] * sim.cluster.num_nodes


def test_lard_ng_dispatcher_serves_nothing(trace):
    sim, result = run(trace, "lard-ng")
    assert result.node_completions[0] == 0
    # Every request pays the query round-trip (counters reset at the
    # warmup boundary, so an in-flight round-trip can split across it).
    counts = sim.cluster.net.message_counts
    assert abs(counts["lardng_query"] - counts["lardng_reply"]) <= 2
    assert counts["lardng_query"] >= result.requests_measured - 100


def test_station_utilizations_reported(trace):
    sim, result = run(trace, "l2s")
    u = result.station_utilizations
    assert set(u) == {"router", "cpu", "disk", "ni_in", "ni_out"}
    assert all(0.0 <= v <= 1.0 for v in u.values())
    assert result.bottleneck_station() in u


def test_cache_capacity_respected_everywhere(trace):
    sim, result = run(trace, "l2s", cache_mb=1)
    for node in sim.cluster.nodes:
        assert node.cache.used_bytes <= node.cache.capacity


def test_simulation_below_model_bound(trace):
    bound = model_bound_for_trace(trace, nodes=4, cache_bytes=2 * MB).throughput
    for name in ("l2s", "lard", "traditional"):
        sim, result = run(trace, name)
        assert result.throughput_rps <= bound * 1.08, name


def test_locality_policies_beat_oblivious_on_big_working_set():
    """The paper's core claim at miniature scale: when the working set
    dwarfs one cache but fits the cluster's combined memory, L2S wins."""
    fs = build_fileset(600, 18 * 1024, 15 * 1024, 0.8, seed=9, name="big")
    trace = generate_trace(fs, 6000, seed=10, name="big")
    # Working set ~10.5 MB; per-node cache 2 MB; combined 16 MB.
    sim_l2s, r_l2s = run(trace, "l2s", nodes=8, cache_mb=2)
    sim_trad, r_trad = run(trace, "traditional", nodes=8, cache_mb=2)
    assert r_l2s.miss_rate < r_trad.miss_rate
    assert r_l2s.throughput_rps > 1.3 * r_trad.throughput_rps


def test_different_seeds_give_different_traces_same_shape():
    fs1 = build_fileset(300, 18 * 1024, 14 * 1024, 0.9, seed=11)
    fs2 = build_fileset(300, 18 * 1024, 14 * 1024, 0.9, seed=12)
    t1 = generate_trace(fs1, 3000, seed=11)
    t2 = generate_trace(fs2, 3000, seed=12)
    _, r1 = run(t1, "l2s")
    _, r2 = run(t2, "l2s")
    assert r1.throughput_rps != r2.throughput_rps
    # Same workload law: results within a broad band of each other.
    assert 0.5 < r1.throughput_rps / r2.throughput_rps < 2.0


def test_more_nodes_more_throughput(trace):
    _, r4 = run(trace, "l2s", nodes=4)
    _, r8 = run(trace, "l2s", nodes=8)
    assert r8.throughput_rps > r4.throughput_rps


def test_message_accounting_nonnegative_and_bounded(trace):
    sim, result = run(trace, "l2s")
    counts = sim.cluster.net.message_counts
    assert all(v >= 0 for v in counts.values())
    assert sim.cluster.net.messages_sent == sum(counts.values())
