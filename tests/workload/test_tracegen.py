"""Tests for synthetic trace generation and Table-2 presets."""

import numpy as np
import pytest

from repro.workload import (
    PRESETS,
    TRACE_ORDER,
    ZipfDistribution,
    build_fileset,
    fit_zipf_alpha,
    generate_trace,
    poisson_timestamps,
    preset,
    synthesize,
    synthesize_trace,
)


def small_fileset(n=500, alpha=0.9, seed=0):
    return build_fileset(n, 20 * 1024, 16 * 1024, alpha, seed=seed)


def test_generate_trace_deterministic():
    fs = small_fileset()
    a = generate_trace(fs, 5000, seed=3)
    b = generate_trace(fs, 5000, seed=3)
    assert (a.file_ids == b.file_ids).all()


def test_generate_trace_respects_population():
    fs = small_fileset(100)
    t = generate_trace(fs, 10_000, seed=1)
    assert t.file_ids.min() >= 0
    assert t.file_ids.max() < 100


def test_generate_trace_zipf_shape():
    fs = small_fileset(200, alpha=1.0)
    t = generate_trace(fs, 100_000, seed=2)
    counts = np.bincount(t.file_ids, minlength=200).astype(np.float64)
    alpha_hat = fit_zipf_alpha(counts)
    assert alpha_hat == pytest.approx(1.0, abs=0.1)


def test_generate_trace_locality_increases_rereference():
    fs = small_fileset(2000, alpha=0.7)

    def rereference_rate(trace, window=32):
        ids = trace.file_ids
        hits = 0
        recent = []
        for fid in ids:
            if fid in recent:
                hits += 1
                recent.remove(fid)
            recent.append(fid)
            if len(recent) > window:
                recent.pop(0)
        return hits / len(ids)

    iid = generate_trace(fs, 20_000, seed=4, locality=0.0)
    loc = generate_trace(fs, 20_000, seed=4, locality=0.4)
    assert rereference_rate(loc) > rereference_rate(iid) + 0.05


def test_generate_trace_validation():
    fs = small_fileset(10)
    with pytest.raises(ValueError):
        generate_trace(fs, -1)
    with pytest.raises(ValueError):
        generate_trace(fs, 10, locality=1.0)
    with pytest.raises(ValueError):
        generate_trace(fs, 10, locality_depth=0)


def test_generate_trace_with_arrivals():
    fs = small_fileset(10)
    t = generate_trace(fs, 100, seed=0, arrival_rate=50.0)
    assert t.timestamps is not None
    assert (np.diff(t.timestamps) >= 0).all()
    # Mean gap should be about 1/50 s.
    assert np.diff(t.timestamps).mean() == pytest.approx(0.02, rel=0.5)


def test_poisson_timestamps_validation():
    with pytest.raises(ValueError):
        poisson_timestamps(10, 0.0)


def test_synthesize_trace_matches_request_moment():
    t = synthesize_trace(
        num_files=3000,
        mean_file_kb=30.0,
        num_requests=60_000,
        mean_request_kb=24.0,
        alpha=0.9,
        seed=0,
    )
    # Empirical requested-size mean within 10% of target.
    assert t.mean_request_bytes() == pytest.approx(24.0 * 1024, rel=0.10)
    assert t.fileset.mean_file_bytes == pytest.approx(30.0 * 1024, rel=0.03)


def test_presets_match_paper_table2():
    assert set(TRACE_ORDER) == set(PRESETS)
    cal = preset("calgary")
    assert cal.num_files == 8397
    assert cal.avg_file_kb == 42.9
    assert cal.num_requests == 567_895
    assert cal.avg_request_kb == 19.7
    assert cal.alpha == 1.08
    assert preset("Clarknet").alpha == 0.78
    assert preset("NASA").avg_request_kb == 47.0
    assert preset("rutgers").num_files == 24098


def test_preset_footprints_in_paper_range():
    """Paper: working sets span roughly 288-717 MB."""
    for name in TRACE_ORDER:
        mb = preset(name).footprint_mb
        assert 250 <= mb <= 760, f"{name}: {mb:.0f} MB out of expected range"


def test_preset_unknown_name():
    with pytest.raises(KeyError):
        preset("unknown")


def test_synthesize_scaled_default():
    t = synthesize("nasa", num_requests=2000, seed=0)
    assert len(t) == 2000
    assert t.name == "nasa"
    assert t.fileset.num_files == 5500


def test_synthesize_respects_full_traces_env(monkeypatch):
    monkeypatch.setenv("REPRO_FULL_TRACES", "0")
    from repro.workload.presets import _default_requests, DEFAULT_REQUESTS

    assert _default_requests() == DEFAULT_REQUESTS
    monkeypatch.setenv("REPRO_FULL_TRACES", "1")
    assert _default_requests() is None


def test_synthesized_trace_empirical_alpha():
    t = synthesize("clarknet", num_requests=150_000, seed=1, locality=0.0)
    counts = np.bincount(t.file_ids, minlength=t.fileset.num_files)
    alpha_hat = fit_zipf_alpha(counts.astype(np.float64))
    assert alpha_hat == pytest.approx(0.78, abs=0.12)
