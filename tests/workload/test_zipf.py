"""Tests for Zipf distributions, including property-based invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import ZipfDistribution, harmonic, zipf_top_mass


def test_harmonic_known_values():
    assert harmonic(1, 1.0) == pytest.approx(1.0)
    assert harmonic(2, 1.0) == pytest.approx(1.5)
    assert harmonic(4, 1.0) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)
    assert harmonic(3, 0.0) == pytest.approx(3.0)
    assert harmonic(0, 1.0) == 0.0


def test_harmonic_alpha2():
    # H_inf(2) = pi^2/6; partial sums approach from below.
    h = harmonic(10_000, 2.0)
    assert h < np.pi**2 / 6
    assert h == pytest.approx(np.pi**2 / 6, abs=1e-3)


def test_harmonic_negative_n_rejected():
    with pytest.raises(ValueError):
        harmonic(-1, 1.0)


def test_zipf_top_mass_basics():
    assert zipf_top_mass(0, 100, 1.0) == 0.0
    assert zipf_top_mass(100, 100, 1.0) == pytest.approx(1.0)
    assert zipf_top_mass(500, 100, 1.0) == pytest.approx(1.0)  # clamped
    # Top 1 of 2 with alpha=1: (1)/(1+0.5) = 2/3.
    assert zipf_top_mass(1, 2, 1.0) == pytest.approx(2 / 3)


def test_zipf_top_mass_invalid_population():
    with pytest.raises(ValueError):
        zipf_top_mass(1, 0, 1.0)


def test_pmf_sums_to_one():
    z = ZipfDistribution(1000, 0.8)
    assert z.pmf.sum() == pytest.approx(1.0)
    assert z.cdf[-1] == 1.0


def test_pmf_monotone_decreasing():
    z = ZipfDistribution(50, 1.1)
    assert (np.diff(z.pmf) <= 0).all()


def test_alpha_zero_is_uniform():
    z = ZipfDistribution(10, 0.0)
    assert np.allclose(z.pmf, 0.1)


def test_probability_bounds():
    z = ZipfDistribution(5, 1.0)
    with pytest.raises(IndexError):
        z.probability(5)
    with pytest.raises(IndexError):
        z.probability(-1)
    assert z.probability(0) > z.probability(4)


def test_invalid_construction():
    with pytest.raises(ValueError):
        ZipfDistribution(0, 1.0)
    with pytest.raises(ValueError):
        ZipfDistribution(10, -0.5)


def test_top_mass_matches_cdf():
    z = ZipfDistribution(100, 0.9)
    for n in (1, 10, 50, 100):
        assert z.top_mass(n) == pytest.approx(z.cdf[n - 1])


def test_ranks_for_mass_roundtrip():
    z = ZipfDistribution(200, 1.0)
    n = z.ranks_for_mass(0.5)
    assert z.top_mass(n) >= 0.5
    assert z.top_mass(n - 1) < 0.5
    assert z.ranks_for_mass(0.0) == 0


def test_ranks_for_mass_validation():
    z = ZipfDistribution(10, 1.0)
    with pytest.raises(ValueError):
        z.ranks_for_mass(1.5)


def test_sampling_is_seed_deterministic():
    z = ZipfDistribution(500, 0.9)
    a = z.sample(1000, np.random.default_rng(7))
    b = z.sample(1000, np.random.default_rng(7))
    assert (a == b).all()


def test_sampling_range_and_dtype():
    z = ZipfDistribution(50, 1.0)
    s = z.sample(10_000, np.random.default_rng(1))
    assert s.dtype == np.int64
    assert s.min() >= 0 and s.max() < 50


def test_sampling_frequency_matches_pmf():
    z = ZipfDistribution(20, 1.0)
    s = z.sample(200_000, np.random.default_rng(3))
    freq = np.bincount(s, minlength=20) / s.size
    assert np.allclose(freq, z.pmf, atol=0.01)


def test_sample_negative_size_rejected():
    z = ZipfDistribution(10, 1.0)
    with pytest.raises(ValueError):
        z.sample(-1)


def test_expected_mean_of():
    z = ZipfDistribution(3, 0.0)  # uniform
    assert z.expected_mean_of(np.array([3.0, 6.0, 9.0])) == pytest.approx(6.0)
    with pytest.raises(ValueError):
        z.expected_mean_of(np.array([1.0, 2.0]))


@given(
    population=st.integers(min_value=1, max_value=2000),
    alpha=st.floats(min_value=0.0, max_value=2.5),
)
@settings(max_examples=60, deadline=None)
def test_property_pmf_valid_distribution(population, alpha):
    z = ZipfDistribution(population, alpha)
    assert z.pmf.shape == (population,)
    assert (z.pmf >= 0).all()
    assert z.pmf.sum() == pytest.approx(1.0, abs=1e-9)
    assert (np.diff(z.pmf) <= 1e-15).all()  # non-increasing


@given(
    population=st.integers(min_value=2, max_value=500),
    alpha=st.floats(min_value=0.1, max_value=2.0),
    n=st.integers(min_value=1, max_value=500),
)
@settings(max_examples=60, deadline=None)
def test_property_top_mass_monotone(population, alpha, n):
    m1 = zipf_top_mass(n, population, alpha)
    m2 = zipf_top_mass(n + 1, population, alpha)
    assert 0.0 <= m1 <= m2 <= 1.0 + 1e-12
