"""Tests for file populations and the two-moment size calibration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import FileSet, build_fileset, lognormal_sizes


def test_lognormal_sizes_hits_mean():
    sizes = lognormal_sizes(20_000, 30 * 1024, rng=np.random.default_rng(0))
    assert sizes.mean() == pytest.approx(30 * 1024, rel=0.01)
    assert (sizes > 0).all()


def test_lognormal_sizes_heavy_tail():
    sizes = lognormal_sizes(50_000, 20 * 1024, rng=np.random.default_rng(1))
    # Heavy tail: the max should dwarf the mean, and the median sit below it.
    assert sizes.max() > 20 * sizes.mean()
    assert np.median(sizes) < sizes.mean()


def test_lognormal_sizes_validation():
    with pytest.raises(ValueError):
        lognormal_sizes(0, 1024)
    with pytest.raises(ValueError):
        lognormal_sizes(10, 10)  # below MIN_FILE_BYTES


def test_fileset_basic_properties():
    fs = FileSet(sizes=np.array([100, 200, 300]), alpha=1.0, name="t")
    assert fs.num_files == 3
    assert fs.total_bytes == 600
    assert fs.mean_file_bytes == pytest.approx(200)
    assert fs.size_of(1) == 200


def test_fileset_validation():
    with pytest.raises(ValueError):
        FileSet(sizes=np.array([]), alpha=1.0)
    with pytest.raises(ValueError):
        FileSet(sizes=np.array([10, 0]), alpha=1.0)
    with pytest.raises(ValueError):
        FileSet(sizes=np.array([[1, 2]]), alpha=1.0)


def test_fileset_mean_request_bytes_uniform():
    fs = FileSet(sizes=np.array([100, 200, 300]), alpha=0.0)
    assert fs.mean_request_bytes() == pytest.approx(200.0)


def test_fileset_mean_request_bytes_skewed():
    # With strong skew, the mean request size approaches the hot file's
    # size: z(1, 100, 3) = 1/H_100(3) ≈ 0.832, so the expected requested
    # size is ≈ 0.832*100 + 0.168*10000 ≈ 1764 — far below the 9901-byte
    # per-file mean.
    fs = FileSet(sizes=np.array([100] + [10_000] * 99), alpha=3.0)
    assert fs.mean_request_bytes() == pytest.approx(1764, rel=0.01)
    assert fs.mean_request_bytes() < 0.2 * fs.mean_file_bytes


def test_build_fileset_matches_both_moments():
    fs = build_fileset(
        num_files=8_397,
        mean_file_bytes=42.9 * 1024,
        mean_request_bytes=19.7 * 1024,
        alpha=1.08,
        seed=0,
        name="calgary-like",
    )
    assert fs.num_files == 8_397
    assert fs.mean_file_bytes == pytest.approx(42.9 * 1024, rel=0.02)
    assert fs.mean_request_bytes() == pytest.approx(19.7 * 1024, rel=0.02)


def test_build_fileset_request_mean_above_file_mean():
    # Clarknet-style: requested files slightly larger than average file.
    fs = build_fileset(
        num_files=35_885,
        mean_file_bytes=11.6 * 1024,
        mean_request_bytes=11.9 * 1024,
        alpha=0.78,
        seed=0,
    )
    assert fs.mean_request_bytes() == pytest.approx(11.9 * 1024, rel=0.02)


def test_build_fileset_unreachable_target_raises():
    with pytest.raises(ValueError):
        build_fileset(
            num_files=100,
            mean_file_bytes=10 * 1024,
            mean_request_bytes=10_000 * 1024,  # absurdly large
            alpha=1.0,
            seed=0,
        )


def test_build_fileset_deterministic():
    a = build_fileset(1000, 20 * 1024, 15 * 1024, 0.9, seed=5)
    b = build_fileset(1000, 20 * 1024, 15 * 1024, 0.9, seed=5)
    assert (a.sizes == b.sizes).all()


def test_build_fileset_seed_changes_population():
    a = build_fileset(1000, 20 * 1024, 15 * 1024, 0.9, seed=5)
    b = build_fileset(1000, 20 * 1024, 15 * 1024, 0.9, seed=6)
    assert not (a.sizes == b.sizes).all()


@given(
    num_files=st.integers(min_value=200, max_value=3000),
    mean_kb=st.floats(min_value=5.0, max_value=80.0),
    ratio=st.floats(min_value=0.5, max_value=1.3),
    alpha=st.floats(min_value=0.5, max_value=1.2),
)
@settings(max_examples=25, deadline=None)
def test_property_build_fileset_two_moments(num_files, mean_kb, ratio, alpha):
    """Whenever calibration succeeds, both size moments are within 3%."""
    mean_bytes = mean_kb * 1024
    target_req = ratio * mean_bytes
    try:
        fs = build_fileset(num_files, mean_bytes, target_req, alpha, seed=1)
    except ValueError:
        return  # target outside the achievable range: acceptable, documented
    assert fs.mean_file_bytes == pytest.approx(mean_bytes, rel=0.03)
    assert fs.mean_request_bytes() == pytest.approx(target_req, rel=0.03)
