"""Tests for Trace containers, persistence, and CLF parsing."""

import numpy as np
import pytest

from repro.workload import (
    FileSet,
    Trace,
    fit_zipf_alpha,
    parse_common_log,
    trace_from_log_entries,
)


def make_fileset(n=10, alpha=1.0):
    return FileSet(sizes=np.arange(1, n + 1) * 1000, alpha=alpha, name="fs")


def test_trace_basics():
    fs = make_fileset()
    t = Trace("t", fs, np.array([0, 1, 0, 2]))
    assert len(t) == 4
    assert t.num_requests == 4
    assert list(t.request_sizes()) == [1000, 2000, 1000, 3000]
    assert t.mean_request_bytes() == pytest.approx(1750.0)
    assert t.unique_files_touched() == 3


def test_trace_validation_out_of_range():
    fs = make_fileset(3)
    with pytest.raises(ValueError):
        Trace("t", fs, np.array([0, 3]))
    with pytest.raises(ValueError):
        Trace("t", fs, np.array([-1]))


def test_trace_timestamps_must_align_and_be_sorted():
    fs = make_fileset()
    with pytest.raises(ValueError):
        Trace("t", fs, np.array([0, 1]), timestamps=np.array([0.0]))
    with pytest.raises(ValueError):
        Trace("t", fs, np.array([0, 1]), timestamps=np.array([2.0, 1.0]))
    t = Trace("t", fs, np.array([0, 1]), timestamps=np.array([1.0, 2.0]))
    assert t.timestamps is not None


def test_trace_head():
    fs = make_fileset()
    t = Trace("t", fs, np.arange(5), timestamps=np.arange(5.0))
    h = t.head(2)
    assert len(h) == 2
    assert list(h.file_ids) == [0, 1]
    assert list(h.timestamps) == [0.0, 1.0]
    with pytest.raises(ValueError):
        t.head(-1)


def test_trace_stats_row():
    fs = make_fileset(4)
    t = Trace("t", fs, np.array([0, 0, 1]))
    s = t.stats()
    assert s.num_files == 4
    assert s.num_requests == 3
    assert s.alpha == 1.0
    assert s.total_footprint_mb == pytest.approx(fs.total_bytes / 2**20)
    assert len(s.as_row()) == 5


def test_trace_save_load_roundtrip(tmp_path):
    fs = make_fileset(8, alpha=0.9)
    t = Trace("rt", fs, np.array([0, 3, 5]), timestamps=np.array([0.0, 1.5, 2.5]))
    path = tmp_path / "trace.npz"
    t.save(path)
    t2 = Trace.load(path)
    assert t2.name == "rt"
    assert t2.fileset.alpha == 0.9
    assert (t2.file_ids == t.file_ids).all()
    assert np.allclose(t2.timestamps, t.timestamps)
    assert (t2.fileset.sizes == fs.sizes).all()


def test_trace_save_load_without_timestamps(tmp_path):
    fs = make_fileset()
    t = Trace("nt", fs, np.array([1, 2]))
    path = tmp_path / "nt.npz"
    t.save(path)
    assert Trace.load(path).timestamps is None


CLF_LINES = [
    'host1 - - [01/Mar/2000:00:00:01 -0500] "GET /index.html HTTP/1.0" 200 5120',
    'host2 - - [01/Mar/2000:00:00:02 -0500] "GET /img/logo.gif HTTP/1.0" 200 2048',
    'host1 - - [01/Mar/2000:00:00:03 -0500] "GET /index.html HTTP/1.0" 200 5120',
    'host3 - - [01/Mar/2000:00:00:04 -0500] "GET /missing.html HTTP/1.0" 404 512',
    'host4 - - [01/Mar/2000:00:00:05 -0500] "GET /partial.bin HTTP/1.0" 200 -',
    "totally not a log line",
    'host5 - - [01/Mar/2000:00:00:06 -0500] "OPTIONS * HTTP/1.0" 200 17',
]


def test_parse_common_log_filters_incomplete():
    entries = parse_common_log(CLF_LINES)
    assert entries == [
        ("/index.html", 5120),
        ("/img/logo.gif", 2048),
        ("/index.html", 5120),
    ]


def test_parse_common_log_keep_unsuccessful():
    entries = parse_common_log(CLF_LINES, successful_only=False)
    paths = [p for p, _ in entries]
    assert "/missing.html" in paths
    assert "/partial.bin" in paths


def test_trace_from_log_entries():
    entries = parse_common_log(CLF_LINES)
    t = trace_from_log_entries(entries, name="mini")
    assert t.name == "mini"
    assert t.fileset.num_files == 2
    # /index.html requested twice -> rank 0.
    assert t.fileset.size_of(0) == 5120
    assert list(t.file_ids) == [0, 1, 0]


def test_trace_from_log_entries_empty_raises():
    with pytest.raises(ValueError):
        trace_from_log_entries([])


def test_fit_zipf_alpha_recovers_exponent():
    ranks = np.arange(1, 2001, dtype=np.float64)
    counts = 1e6 * ranks**-0.9
    assert fit_zipf_alpha(counts) == pytest.approx(0.9, abs=0.01)


def test_fit_zipf_alpha_degenerate_inputs():
    assert fit_zipf_alpha(np.array([5.0])) == 1.0
    with pytest.raises(ValueError):
        fit_zipf_alpha(np.array([]))
