"""Tests for LRU stack-distance analysis, including a reference-model
property check against the real LRU cache implementation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import LRUFileCache
from repro.workload import FileSet, Trace, build_fileset, generate_trace
from repro.workload.analysis import (
    miss_rate_curve,
    model_vs_lru_hit_rate,
    stack_distances,
    working_set_bytes,
)


def make_trace(ids, sizes):
    fs = FileSet(sizes=np.asarray(sizes, dtype=np.int64), alpha=1.0, name="t")
    return Trace("t", fs, np.asarray(ids, dtype=np.int64))


def test_stack_distances_cold_misses():
    t = make_trace([0, 1, 2], [100, 100, 100])
    assert list(stack_distances(t)) == [-1, -1, -1]


def test_stack_distances_immediate_rereference():
    t = make_trace([0, 0, 0], [100, 999])
    # Re-references with nothing in between: distance = own size.
    assert list(stack_distances(t)) == [-1, 100, 100]


def test_stack_distances_classic_pattern():
    # a b c a : distance of the second 'a' = |{a,b,c}| bytes.
    t = make_trace([0, 1, 2, 0], [10, 20, 30])
    assert list(stack_distances(t)) == [-1, -1, -1, 60]


def test_stack_distances_only_counts_distinct_files():
    # a b b b a : 'b' repeated must count once.
    t = make_trace([0, 1, 1, 1, 0], [10, 20])
    d = list(stack_distances(t))
    assert d == [-1, -1, 20, 20, 30]


def test_miss_rate_curve_monotone_in_cache_size():
    fs = build_fileset(200, 10 * 1024, 8 * 1024, 0.9, seed=0)
    t = generate_trace(fs, 5000, seed=1)
    curve = miss_rate_curve(t, [2**14, 2**17, 2**20, 2**24])
    rates = [m for _, m in curve]
    assert all(a >= b - 1e-12 for a, b in zip(rates, rates[1:]))
    # A cache as big as the working set only leaves cold misses.
    big = curve[-1][1]
    cold_only = t.unique_files_touched() / len(t)
    assert big == pytest.approx(cold_only, abs=1e-9)


def test_miss_rate_curve_exclude_cold():
    t = make_trace([0, 1, 0, 1], [100, 100])
    # With a big cache there are no capacity misses at all.
    assert miss_rate_curve(t, [10_000], include_cold=False)[0][1] == 0.0
    assert miss_rate_curve(t, [10_000], include_cold=True)[0][1] == 0.5


def test_miss_rate_curve_validation():
    t = make_trace([0], [100])
    with pytest.raises(ValueError):
        miss_rate_curve(t, [0])
    with pytest.raises(ValueError):
        miss_rate_curve(t.head(0), [100])


def test_working_set_bytes():
    t = make_trace([0, 0, 2], [100, 999, 300])
    assert working_set_bytes(t) == 400


@given(
    n_files=st.integers(min_value=2, max_value=30),
    n_reqs=st.integers(min_value=1, max_value=150),
    file_size=st.integers(min_value=10, max_value=100),
    slots=st.integers(min_value=1, max_value=20),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=40, deadline=None)
def test_property_distances_agree_with_real_lru_uniform(
    n_files, n_reqs, file_size, slots, seed
):
    """Mattson's inclusion property, exact for uniform file sizes: a
    request misses an LRU cache of capacity C iff its stack distance is
    -1 or > C.  Checked against the simulator's actual LRUFileCache.
    (With variable sizes byte-LRU is not a stack algorithm; see the
    tolerance test below.)"""
    rng = np.random.default_rng(seed)
    sizes = np.full(n_files, file_size)
    ids = rng.integers(0, n_files, size=n_reqs)
    capacity = slots * file_size
    t = make_trace(ids, sizes)
    dist = stack_distances(t)

    cache = LRUFileCache(capacity)
    for k, fid in enumerate(ids):
        fid = int(fid)
        predicted_miss = dist[k] < 0 or dist[k] > capacity
        actual_miss = not cache.lookup(fid)
        assert actual_miss == predicted_miss, (k, dist[k], capacity)
        if actual_miss:
            cache.insert(fid, int(sizes[fid]))


def test_distances_close_to_real_lru_variable_sizes():
    """With variable sizes the stack approximation stays within a small
    margin of the real byte-LRU cache's measured miss rate."""
    fs = build_fileset(300, 12 * 1024, 10 * 1024, 0.9, seed=5)
    t = generate_trace(fs, 8000, seed=6)
    capacity = 1 * 1024 * 1024
    predicted = dict(miss_rate_curve(t, [capacity]))[capacity]

    cache = LRUFileCache(capacity)
    misses = 0
    for fid in t.file_ids:
        fid = int(fid)
        if not cache.lookup(fid):
            misses += 1
            cache.insert(fid, int(t.fileset.sizes[fid]))
    actual = misses / len(t)
    assert predicted == pytest.approx(actual, abs=0.02)


def test_model_vs_lru_hit_rate_reasonable_agreement():
    fs = build_fileset(2000, 12 * 1024, 10 * 1024, 1.0, seed=2)
    t = generate_trace(fs, 40_000, seed=3)
    predicted, actual = model_vs_lru_hit_rate(t, 4 * 1024 * 1024)
    assert 0.0 < predicted < 1.0
    assert 0.0 < actual < 1.0
    # The model's perfect-frequency caching is an upper-ish bound; LRU
    # lands within a moderate band of it on an i.i.d. Zipf stream.
    assert abs(predicted - actual) < 0.15


def test_model_vs_lru_validation():
    t = make_trace([0], [100])
    with pytest.raises(ValueError):
        model_vs_lru_hit_rate(t, 0)
