"""Tests for persistent-connection sessionization."""

import numpy as np
import pytest

from repro.workload import FileSet, Trace, sessionize
from repro.workload.sessions import SessionTrace


def make_trace(n=100):
    fs = FileSet(sizes=np.arange(1, 11) * 1000, alpha=1.0, name="s")
    return Trace("s", fs, np.arange(n) % 10)


def test_sessionize_mean_one_is_http10():
    t = make_trace(50)
    s = sessionize(t, mean_requests_per_connection=1.0)
    assert s.num_connections == 50
    assert (s.connection_lengths() == 1).all()
    assert s.mean_connection_length() == 1.0


def test_sessionize_partitions_the_whole_trace():
    t = make_trace(500)
    s = sessionize(t, mean_requests_per_connection=4.0, seed=1)
    lengths = s.connection_lengths()
    assert lengths.sum() == 500
    assert (lengths >= 1).all()
    spans = [s.connection_span(k) for k in range(s.num_connections)]
    assert spans[0][0] == 0
    assert spans[-1][1] == 500
    for (a, b), (c, d) in zip(spans, spans[1:]):
        assert b == c


def test_sessionize_mean_length_approximate():
    t = make_trace(20_000)
    s = sessionize(t, mean_requests_per_connection=5.0, seed=2)
    assert s.mean_connection_length() == pytest.approx(5.0, rel=0.15)


def test_sessionize_deterministic():
    t = make_trace(300)
    a = sessionize(t, 3.0, seed=9)
    b = sessionize(t, 3.0, seed=9)
    assert (a.starts == b.starts).all()


def test_sessionize_validation():
    t = make_trace(10)
    with pytest.raises(ValueError):
        sessionize(t.head(0), 2.0)
    with pytest.raises(ValueError):
        sessionize(t, 0.5)


def test_session_trace_validation():
    t = make_trace(10)
    with pytest.raises(ValueError):
        SessionTrace(t, np.array([1, 5]))  # must start at 0
    with pytest.raises(ValueError):
        SessionTrace(t, np.array([0, 5, 5]))  # strictly increasing
    with pytest.raises(ValueError):
        SessionTrace(t, np.array([0, 20]))  # past the end
    with pytest.raises(IndexError):
        SessionTrace(t, np.array([0, 5])).connection_span(2)


def test_iter_connections():
    t = make_trace(10)
    s = SessionTrace(t, np.array([0, 4, 7]))
    assert list(s.iter_connections()) == [(0, 0, 4), (1, 4, 7), (2, 7, 10)]
