"""Tests for access-log ingestion (plain and gzip)."""

import gzip

import pytest

from repro.workload import ingest_log, open_log

LOG_LINES = [
    'h1 - - [01/Mar/2000:00:00:01 -0500] "GET /a.html HTTP/1.0" 200 1000',
    'h2 - - [01/Mar/2000:00:00:02 -0500] "GET /b.gif HTTP/1.0" 200 2000',
    'h1 - - [01/Mar/2000:00:00:03 -0500] "GET /a.html HTTP/1.0" 200 1000',
    'h3 - - [01/Mar/2000:00:00:04 -0500] "GET /miss HTTP/1.0" 404 100',
    "garbage line",
    'h4 - - [01/Mar/2000:00:00:05 -0500] "GET /c.txt HTTP/1.0" 200 -',
    'h1 - - [01/Mar/2000:00:00:06 -0500] "GET /a.html HTTP/1.0" 200 1000',
]


@pytest.fixture
def plain_log(tmp_path):
    p = tmp_path / "access.log"
    p.write_text("\n".join(LOG_LINES) + "\n")
    return p


@pytest.fixture
def gz_log(tmp_path):
    p = tmp_path / "access.log.gz"
    with gzip.open(p, "wt") as fh:
        fh.write("\n".join(LOG_LINES) + "\n")
    return p


def test_open_log_plain(plain_log):
    assert len(list(open_log(plain_log))) == len(LOG_LINES)


def test_open_log_gzip(gz_log):
    assert len(list(open_log(gz_log))) == len(LOG_LINES)


def test_open_log_missing():
    with pytest.raises(FileNotFoundError):
        list(open_log("/nonexistent/access.log"))


def test_ingest_drops_incomplete_and_garbage(plain_log):
    trace = ingest_log(plain_log)
    # Only the 4 complete 200-status requests survive.
    assert len(trace) == 4
    assert trace.fileset.num_files == 2  # /a.html and /b.gif
    # /a.html requested 3x -> rank 0.
    assert trace.fileset.size_of(0) == 1000


def test_ingest_gzip_equivalent(plain_log, gz_log):
    a = ingest_log(plain_log)
    b = ingest_log(gz_log)
    assert len(a) == len(b)
    assert (a.file_ids == b.file_ids).all()


def test_ingest_name_default_and_override(plain_log):
    assert ingest_log(plain_log).name == "access"
    assert ingest_log(plain_log, name="mysite").name == "mysite"


def test_ingest_max_requests(plain_log):
    trace = ingest_log(plain_log, max_requests=2)
    assert len(trace) == 2
    with pytest.raises(ValueError):
        ingest_log(plain_log, max_requests=0)


def test_ingest_empty_log(tmp_path):
    p = tmp_path / "empty.log"
    p.write_text("nothing useful\n")
    with pytest.raises(ValueError):
        ingest_log(p)


def test_ingest_cli_roundtrip(tmp_path, plain_log, capsys):
    from repro.cli import main
    from repro.workload import Trace

    out = tmp_path / "trace.npz"
    assert main(["ingest", str(plain_log), "-o", str(out)]) == 0
    assert "4 requests" in capsys.readouterr().out
    t = Trace.load(out)
    assert len(t) == 4
    # And it feeds straight into analyze.
    assert main(["analyze", str(out), "--memories", "1"]) == 0
