"""Resilience-layer unit tests — no sockets, no subprocesses.

The health monitor, fault injector, and timeline are exercised against
fake engines/clusters so the state machines (mark-down/mark-up,
incarnation flush, progress-triggered fault firing) are pinned as tier-1
logic; the socket paths ride in the live-marked smoke/chaos tests.
"""

import asyncio
import json

import pytest

from repro.faults.schedule import RetryPolicy
from repro.live import (
    HealthMonitor,
    LiveAvailabilityTimeline,
    LiveFaultInjector,
    PolicyEngine,
    ResilienceConfig,
)
from repro.servers import make_policy


class FakeEngine:
    """Records the membership hook calls the monitor fires."""

    def __init__(self):
        self.calls = []

    def fail_node(self, node):
        self.calls.append(("fail", node))

    def recover_node(self, node):
        self.calls.append(("recover", node))


def make_monitor(nodes=3, **config_kw):
    engine = FakeEngine()
    config = ResilienceConfig(**config_kw)
    return HealthMonitor(engine, ports=[0] * nodes, config=config), engine


# -- ResilienceConfig -----------------------------------------------------


def test_resilience_config_defaults_reuse_sim_retry_policy():
    config = ResilienceConfig()
    assert isinstance(config.retry, RetryPolicy)
    # Capped exponential, 1-based attempts — the sim's exact schedule.
    sim = RetryPolicy()
    assert [config.retry.backoff(a) for a in range(1, 5)] == [
        sim.backoff(a) for a in range(1, 5)
    ]


@pytest.mark.parametrize("kw", [
    {"request_timeout_s": 0.0},
    {"probe_interval_s": -1.0},
    {"probe_timeout_s": 0.0},
    {"fail_threshold": 0},
    {"min_healthy": -1},
])
def test_resilience_config_rejects_bad_knobs(kw):
    with pytest.raises(ValueError):
        ResilienceConfig(**kw)


# -- HealthMonitor --------------------------------------------------------


def test_suspect_marks_down_once():
    monitor, engine = make_monitor()
    assert monitor.healthy_count() == 3
    monitor.suspect(1)
    monitor.suspect(1)  # already down: no second transition
    assert engine.calls == [("fail", 1)]
    assert not monitor.is_up(1)
    assert monitor.healthy_count() == 2
    assert monitor.stats()["markdowns"] == 1


def test_probe_streak_marks_down_then_single_success_marks_up():
    monitor, engine = make_monitor(fail_threshold=2)
    healthy = {0, 1, 2}

    async def fetch(node):
        if node not in healthy:
            raise ConnectionError("refused")
        return {"node": node, "incarnation": 0}

    monitor._fetch_health = fetch

    async def drive():
        await monitor.probe_all()  # all healthy: no transitions
        healthy.discard(2)
        await monitor.probe_all()  # strike 1: still up
        assert monitor.is_up(2)
        await monitor.probe_all()  # strike 2: mark-down
        assert not monitor.is_up(2)
        healthy.add(2)
        await monitor.probe_all()  # one success: mark-up
        assert monitor.is_up(2)

    asyncio.run(drive())
    assert engine.calls == [("fail", 2), ("recover", 2)]
    stats = monitor.stats()
    assert stats["markdowns"] == 1
    assert stats["markups"] == 1
    assert stats["probe_failures"] == 2


def test_probe_timeout_counts_as_failure():
    monitor, engine = make_monitor(fail_threshold=1)

    async def fetch(node):
        raise asyncio.TimeoutError()

    monitor._fetch_health = fetch
    asyncio.run(monitor.probe_all())
    assert engine.calls == [("fail", 0), ("fail", 1), ("fail", 2)]
    assert monitor.healthy_count() == 0


def test_incarnation_flip_while_up_forces_fail_recover_cycle():
    monitor, engine = make_monitor()
    incarnation = {"value": 0}

    async def fetch(node):
        return {"node": node, "incarnation": incarnation["value"]}

    monitor._fetch_health = fetch

    async def drive():
        await monitor.probe_all()  # learns incarnation 0
        incarnation["value"] = 1  # node 0..2 respawned between sweeps
        await monitor.probe_all()

    asyncio.run(drive())
    # Policies must flush per-node state even though no probe ever saw
    # the node down: a fail/recover pair per node, node stays up.
    assert engine.calls == [
        ("fail", 0), ("recover", 0),
        ("fail", 1), ("recover", 1),
        ("fail", 2), ("recover", 2),
    ]
    assert monitor.healthy_count() == 3
    assert monitor.stats()["incarnation_flips"] == 3


def test_engine_membership_hooks_are_idempotent():
    engine = PolicyEngine(make_policy("round-robin"), num_nodes=4)
    engine.fail_node(2)
    engine.fail_node(2)  # probe and suspicion racing to one conclusion
    assert engine.down_nodes == [2]
    assert engine.policy.failed_nodes == {2}
    assert engine.policy.usable_nodes() == 3
    engine.recover_node(2)
    engine.recover_node(2)
    assert engine.down_nodes == []
    assert engine.policy.usable_nodes() == 4
    assert engine.stats()["down_nodes"] == []


# -- LiveFaultInjector ----------------------------------------------------


class FakeProxy:
    def __init__(self):
        self.link_down = False


class FakeCluster:
    def __init__(self, nodes=4):
        self.calls = []
        self.proxies = {n: FakeProxy() for n in range(nodes)}

    async def kill_backend(self, node):
        self.calls.append(("kill", node))

    async def respawn_backend(self, node):
        self.calls.append(("respawn", node))

    def suspend_backend(self, node):
        self.calls.append(("suspend", node))

    def resume_backend(self, node):
        self.calls.append(("resume", node))


def test_injector_fires_actions_as_progress_crosses_triggers():
    cluster = FakeCluster()
    progress = {"value": 0.0}
    events = []
    schedule = [
        (0.25, "kill", {"node": 1}),
        (0.75, "respawn", {"node": 1}),
    ]
    injector = LiveFaultInjector(
        cluster, schedule, lambda: progress["value"],
        poll_interval_s=0.005, on_event=lambda a, n: events.append((a, n)),
    )

    async def drive():
        injector.start()
        await asyncio.sleep(0.02)
        assert cluster.calls == []  # progress 0: nothing crossed
        progress["value"] = 0.3
        await asyncio.sleep(0.02)
        assert cluster.calls == [("kill", 1)]
        assert not injector.done
        await injector.finish()  # forces the straggling respawn

    asyncio.run(drive())
    assert cluster.calls == [("kill", 1), ("respawn", 1)]
    assert injector.executed == [(0.25, "kill", 1), (0.75, "respawn", 1)]
    assert events == [("kill", 1), ("respawn", 1)]
    assert injector.done


def test_injector_link_actions_toggle_the_proxy():
    cluster = FakeCluster()
    schedule = [
        (0.1, "link_down", {"node": 2}),
        (0.9, "link_up", {"node": 2}),
    ]
    injector = LiveFaultInjector(cluster, schedule, lambda: 1.0)

    async def drive():
        injector.start()
        await injector.finish()

    asyncio.run(drive())
    assert not cluster.proxies[2].link_down  # downed at 0.1, restored at 0.9
    assert [a for _, a, _ in injector.executed] == ["link_down", "link_up"]


def test_injector_suspend_resume_and_unknown_action():
    cluster = FakeCluster()
    injector = LiveFaultInjector(
        cluster,
        [(0.2, "suspend", {"node": 3}), (0.6, "resume", {"node": 3})],
        lambda: 1.0,
    )

    async def drive():
        injector.start()
        await injector.finish()

    asyncio.run(drive())
    assert cluster.calls == [("suspend", 3), ("resume", 3)]

    bad = LiveFaultInjector(cluster, [], lambda: 1.0)
    with pytest.raises(ValueError):
        asyncio.run(bad._execute(0.5, "explode", {"node": 0}))


# -- LiveAvailabilityTimeline ---------------------------------------------


class FakeNode:
    def __init__(self, node_id, open_connections=0):
        self.id = node_id
        self.open_connections = open_connections


class FakeMembership:
    def __init__(self, nodes):
        self.nodes = nodes


class FakeMonitor:
    def __init__(self, down=()):
        self.down = set(down)

    def is_up(self, node):
        return node not in self.down


class TimelineCluster:
    def __init__(self, nodes=3, down=()):
        class _E:
            pass

        self.engine = _E()
        self.engine.membership = FakeMembership(
            [FakeNode(i, open_connections=i) for i in range(nodes)]
        )
        self.monitor = FakeMonitor(down)


def test_live_timeline_samples_states_and_shed_column():
    cluster = TimelineCluster(nodes=3, down={1})
    timeline = LiveAvailabilityTimeline(cluster, interval_s=10.0)

    async def drive():
        timeline.start()
        timeline.mark_event("kill", 1)
        timeline.record_completion(was_miss=False)
        timeline.record_completion(was_miss=True)
        timeline.record_failure()
        timeline.record_retry()
        timeline.record_shed()
        await asyncio.sleep(0.01)
        await timeline.stop()  # closes the partial window

    asyncio.run(drive())
    assert len(timeline.samples) == 1
    sample = timeline.samples[0]
    assert sample.completions == 2
    assert sample.failures == 1
    assert sample.retries == 1
    assert sample.shed == 1
    assert sample.node_states == "UDU"
    assert sample.open_connections == 3  # 0 + 1 + 2
    assert timeline.events == [(timeline.events[0][0], "kill", 1)]
    lines = timeline.to_csv().splitlines()
    assert lines[0].startswith("t,goodput_rps,")
    assert lines[0].endswith(",shed")  # appended last: old readers unaffected
    assert lines[1].endswith(",1")


def test_live_timeline_rejects_bad_interval():
    with pytest.raises(ValueError):
        LiveAvailabilityTimeline(TimelineCluster(), interval_s=0.0)


def test_health_payload_shape_matches_backend_contract():
    # The monitor parses {"node", "incarnation"}; pin the shape the
    # backend's /health emits so the two ends cannot drift silently.
    payload = json.loads(json.dumps({"node": 2, "incarnation": 5}))
    monitor, engine = make_monitor()
    monitor.note_incarnation(payload["node"], payload["incarnation"])
    assert monitor._incarnation[2] == 5
    assert engine.calls == []  # first observation is never a flip
