"""Marked ``live`` integration tests: real sockets, real subprocesses.

Deselected from tier-1 by ``addopts = "-m 'not live'"``; CI's
``live-smoke`` job runs them with ``-m live``.  Two contracts live here:

* the 4-node process-mode cluster boots, replays a trace, conserves
  every request, shows a nonzero cache hit rate, and shuts down cleanly
  (every worker exits 0);
* the ISSUE acceptance point — ``repro live compare --policy lard
  --nodes 4 --trace <fixture>`` — completes end-to-end with live cache
  hit ratio and hand-off fraction within thresholds of the sim.
"""

import asyncio

import pytest

from repro.cli import main as repro_main
from repro.live import LiveCluster, LiveClusterConfig, LoadTestConfig, run_loadtest
from repro.servers import make_policy
from repro.workload import synthesize

pytestmark = pytest.mark.live


def small_trace(requests=600, seed=0):
    return synthesize("calgary", num_requests=requests, seed=seed)


@pytest.mark.parametrize("policy_name", ["traditional", "lard"])
def test_four_node_process_cluster_smoke(tmp_path, policy_name):
    trace = small_trace()
    cluster = LiveCluster(
        make_policy(policy_name),
        trace,
        LiveClusterConfig(nodes=4, backend_mode="process", root=tmp_path),
    )

    async def run():
        await cluster.start()
        procs = list(cluster._procs)
        assert len(procs) == 4
        try:
            result = await run_loadtest(
                cluster, trace, LoadTestConfig(concurrency=8, passes=2)
            )
        finally:
            await cluster.stop()
        return result, procs

    result, procs = asyncio.run(run())
    # Request conservation: generated == warmed + measured + failed.
    assert result.verify() == []
    assert result.requests_measured == len(trace)
    assert result.requests_failed == 0
    # Second pass over a cached working set must hit.
    assert 1.0 - result.miss_rate > 0.0
    # Clean shutdown: every worker exited voluntarily (exit code 0).
    assert [p.returncode for p in procs] == [0, 0, 0, 0]


def test_inline_cluster_serves_and_conserves(tmp_path):
    # The hermetic deployment shape used by the loadtest CLI's
    # --backend-mode inline: same conservation contract, no subprocesses.
    trace = small_trace(requests=300)
    cluster = LiveCluster(
        make_policy("round-robin"),
        trace,
        LiveClusterConfig(nodes=4, backend_mode="inline", root=tmp_path),
    )

    async def run():
        await cluster.start()
        try:
            result = await run_loadtest(
                cluster, trace, LoadTestConfig(concurrency=8, passes=2)
            )
            backends = await cluster.backend_stats()
        finally:
            await cluster.stop()
        return result, backends

    result, backends = asyncio.run(run())
    assert result.verify() == []
    # Every measured completion is attributable to exactly one backend.
    assert sum(b["served"] for b in backends) == result.requests_measured
    assert sum(b["cache_hits"] for b in backends) > 0


def test_acceptance_compare_lard_4_nodes_within_thresholds(tmp_path):
    """ISSUE acceptance: ``repro live compare --policy lard --nodes 4
    --trace <fixture>`` exits 0 with both structural metrics in band."""
    fixture = tmp_path / "fixture.npz"
    small_trace(requests=800, seed=1).save(fixture)
    exit_code = repro_main(
        [
            "live",
            "compare",
            "--policy",
            "lard",
            "--nodes",
            "4",
            "--trace",
            str(fixture),
            "--requests",
            "800",
            "--root",
            str(tmp_path / "files"),
        ]
    )
    assert exit_code == 0  # within thresholds, conservation clean
