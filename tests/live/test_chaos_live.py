"""Marked ``live``: a back-end is SIGKILLed mid-loadtest and the run
survives.

The satellite acceptance contract: with the front-end's resilience layer
on (probes, retries, redispatch), killing and respawning a worker while
the client replays the trace must leave zero unaccounted requests
(``SimResult.verify()`` passes), land the retried requests on surviving
nodes, and keep measured availability within the sim's prediction.  Also
pins the shutdown-escalation fix: ``stop()`` reaps suspended and killed
workers instead of orphaning them.
"""

import asyncio
import dataclasses
import os
from pathlib import Path

import pytest

from repro.chaos.spec import Scenario
from repro.live import (
    LiveCluster,
    LiveClusterConfig,
    LoadTestConfig,
    run_live_scenario,
    run_loadtest,
)
from repro.live.cli import main as live_main
from repro.servers import make_policy
from repro.workload import synthesize

pytestmark = pytest.mark.live

FIXTURE = Path(__file__).parent / "data" / "kill_recover.json"
RAMP_FIXTURE = Path(__file__).parent / "data" / "ramp.json"


def test_kill_recover_scenario_survives_and_conserves(tmp_path):
    scenario = dataclasses.replace(
        Scenario.load(FIXTURE), requests=1200
    )
    outcome = run_live_scenario(scenario, root=tmp_path, concurrency=16)

    # The faults really fired mid-run, in plan order, on the plan's node.
    assert [(a, n) for _, a, n in outcome.executed] == [
        ("kill", 1), ("respawn", 1),
    ]
    live = outcome.live
    summary = live.netfault_summary["live"]
    assert summary["kills"] == 1
    assert summary["respawns"] == 1
    assert summary["incarnations"][1] == 1  # node 1 is on its 2nd life

    # Zero unaccounted requests despite the mid-run SIGKILL.
    assert live.verify() == []
    assert live.requests_generated == scenario.requests
    assert live.requests_measured > 0

    # Retries landed on survivors: the requests that hit the dead node
    # were re-routed and completed, not failed.
    assert live.requests_retried >= 1
    assert live.requests_failed <= live.requests_generated * 0.15

    # Measured availability within the sim's prediction (the ISSUE's
    # +/- 0.15 acceptance band), and the whole scorecard passes.
    assert abs(outcome.report.availability_delta) <= 0.15
    assert outcome.passed
    # The render must not blow up (CI prints it on failure).
    assert "live actions executed" in outcome.render()


def test_ramp_scenario_scores_shed_and_goodput(tmp_path):
    """The overload acceptance: a flash-ramp scenario runs on both
    substrates with the same AdmissionController spec, and the live
    shed fraction and goodput (availability) land within +/- 0.15 of
    the sim's prediction."""
    scenario = dataclasses.replace(Scenario.load(RAMP_FIXTURE), requests=1200)
    assert scenario.admission_limit is not None  # overload really armed
    outcome = run_live_scenario(scenario, root=tmp_path, concurrency=16)

    live, report = outcome.live, outcome.report
    assert live.verify() == []
    assert live.requests_generated == scenario.requests
    # Both substrates ran the identical ramp-rewritten arrival sequence.
    assert outcome.sim.trace.endswith("+ramp")
    assert live.trace.endswith("+ramp")
    # The scored acceptance bands.
    assert report.shed_threshold is not None
    assert abs(report.shed_delta) <= 0.15
    assert abs(report.availability_delta) <= 0.15
    assert outcome.passed
    rendered = report.render()
    assert "shed fraction" in rendered


def test_chaos_cli_exits_zero_on_the_committed_fixture(tmp_path, capsys):
    rc = live_main([
        "chaos", "--spec", str(FIXTURE),
        "--root", str(tmp_path),
        "--csv", str(tmp_path / "timeline.csv"),
    ])
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "WITHIN THRESHOLDS" in out
    csv = (tmp_path / "timeline.csv").read_text()
    assert csv.splitlines()[0].startswith("t,goodput_rps,")


def chaos_cluster(tmp_path, nodes=2, requests=200, resilience=None):
    trace = synthesize("calgary", num_requests=requests, seed=1)
    cluster = LiveCluster(
        make_policy("round-robin"),
        trace,
        LiveClusterConfig(nodes=nodes, backend_mode="process", root=tmp_path),
    )
    cluster.enable_chaos(seed=1, resilience=resilience)
    return cluster, trace


def test_stop_reaps_suspended_and_killed_workers(tmp_path):
    cluster, _ = chaos_cluster(tmp_path)

    async def run():
        await cluster.start()
        procs = list(cluster._procs)
        cluster.suspend_backend(0)  # SIGSTOP: ignores /shutdown until CONT
        await cluster.kill_backend(1)  # SIGKILL, never respawned
        # The escalation path must finish bounded: SIGCONT the stopped
        # worker, time-boxed /shutdown, then reap everything.
        await asyncio.wait_for(cluster.stop(), timeout=20.0)
        return procs

    procs = asyncio.run(run())
    assert all(p.returncode is not None for p in procs), "orphaned worker"
    # No zombies: the pids are really gone.
    for p in procs:
        with pytest.raises(ProcessLookupError):
            os.kill(p.pid, 0)


def test_loadtest_counts_client_timeouts_as_failed(tmp_path):
    # Probes too slow to matter: passive suspicion (a timed-out request)
    # must be the discovery path, so at least one request really fails.
    from repro.live import ResilienceConfig

    cluster, trace = chaos_cluster(
        tmp_path, requests=120,
        resilience=ResilienceConfig(
            probe_interval_s=60.0, fail_threshold=1000,
            request_timeout_s=0.3,
        ),
    )

    async def run():
        await cluster.start()
        try:
            # Suspend a worker and give the front-end no retry headroom:
            # requests routed to it must time out, be counted failed,
            # and still satisfy the conservation identity.
            cluster.frontend.resilience.retry = dataclasses.replace(
                cluster.frontend.resilience.retry, max_retries=0
            )
            cluster.suspend_backend(1)
            return await run_loadtest(
                cluster, trace,
                LoadTestConfig(
                    concurrency=4, passes=1, warmup_fraction=0.0,
                    request_timeout_s=2.0, prewarm=False,
                ),
            )
        finally:
            await asyncio.wait_for(cluster.stop(), timeout=20.0)

    result = asyncio.run(run())
    assert result.verify() == []  # conservation holds under faults
    assert result.requests_failed >= 1
    live = result.netfault_summary["live"]
    assert live["frontend_timeouts"] >= 1 or live["client_timeouts"] >= 1
