"""PolicyEngine unit tests — no sockets, no subprocesses.

The engine is the tentpole's contract: any ``DistributionPolicy`` runs
against a live membership with the same hook order the simulator fires.
A recording stub policy pins that order; the real policies exercise the
membership/control-plane surface.
"""

import pytest

from repro.servers import (
    Decision,
    DistributionPolicy,
    ServiceUnavailable,
    make_policy,
)
from repro.live import LiveUnsupported, PolicyEngine
from repro.live.clock import WallClock


class RecordingPolicy(DistributionPolicy):
    """Routes everything to node (file_id % n); records every hook."""

    name = "recording"

    def __init__(self):
        super().__init__()
        self.calls = []

    def initial_node(self, index, file_id):
        self.calls.append(("initial_node", index, file_id))
        return index % self.cluster.num_nodes

    def decide(self, initial, file_id):
        self.calls.append(("decide", initial, file_id))
        target = file_id % self.cluster.num_nodes
        return Decision(target=target, forwarded=target != initial)

    def on_connection_change(self, node_id):
        self.calls.append(("on_connection_change", node_id))

    def on_complete(self, node_id, file_id):
        self.calls.append(("on_complete", node_id, file_id))

    def on_connection_end(self, node_id):
        self.calls.append(("on_connection_end", node_id))

    def on_request_aborted(self, node_id, opened):
        self.calls.append(("on_request_aborted", node_id, opened))

    def on_handoff_failed(self, initial, target):
        self.calls.append(("on_handoff_failed", initial, target))


def test_engine_fires_hooks_in_sim_lifecycle_order():
    policy = RecordingPolicy()
    engine = PolicyEngine(policy, num_nodes=4)
    outcome = engine.route(0, 7)
    assert (outcome.initial, outcome.target) == (0, 3)
    assert outcome.forwarded
    engine.connection_opened(outcome.target)
    engine.request_completed(outcome.target, outcome.file_id)
    # Exactly the simulator's order: initial_node, decide, the open-path
    # connection change, then the close path (change, complete, end).
    assert policy.calls == [
        ("initial_node", 0, 7),
        ("decide", 0, 7),
        ("on_connection_change", 3),
        ("on_connection_change", 3),
        ("on_complete", 3, 7),
        ("on_connection_end", 3),
    ]


def test_engine_tracks_open_connections():
    engine = PolicyEngine(RecordingPolicy(), num_nodes=2)
    engine.connection_opened(1)
    engine.connection_opened(1)
    assert engine.membership.node(1).open_connections == 2
    engine.request_completed(1, 0)
    assert engine.membership.node(1).open_connections == 1
    assert engine.check_invariants() == []


def test_engine_abort_fires_close_hooks_when_opened():
    policy = RecordingPolicy()
    engine = PolicyEngine(policy, num_nodes=2)
    engine.route(0, 1)
    engine.connection_opened(1)
    policy.calls.clear()
    engine.request_aborted(0, opened=True, target=1)
    assert policy.calls == [
        ("on_connection_change", 1),
        ("on_connection_end", 1),
        ("on_request_aborted", 0, True),
    ]
    assert engine.membership.node(1).open_connections == 0
    assert engine.aborted == 1


def test_engine_abort_without_open_skips_close_hooks():
    policy = RecordingPolicy()
    engine = PolicyEngine(policy, num_nodes=2)
    engine.request_aborted(0, opened=False)
    assert policy.calls == [("on_request_aborted", 0, False)]


def test_engine_handoff_failed_reaches_policy():
    policy = RecordingPolicy()
    engine = PolicyEngine(policy, num_nodes=4)
    engine.handoff_failed(0, 3)
    assert policy.calls == [("on_handoff_failed", 0, 3)]
    assert engine.handoffs_failed == 1


def test_engine_rejects_async_decide_policies():
    with pytest.raises(LiveUnsupported):
        PolicyEngine(make_policy("lard-ng"), num_nodes=4)


def test_engine_counts_service_unavailable():
    class DeadPolicy(RecordingPolicy):
        def decide(self, initial, file_id):
            raise ServiceUnavailable("all dead")

    engine = PolicyEngine(DeadPolicy(), num_nodes=2)
    with pytest.raises(ServiceUnavailable):
        engine.route(0, 0)
    assert engine.unavailable == 1
    assert engine.routed == 0


def test_engine_control_plane_counts_and_delivers():
    engine = PolicyEngine(RecordingPolicy(), num_nodes=4)
    seen = []
    engine.net.send_control_cb(0, 1, kind="test_kind", done=lambda: seen.append(1))
    engine.net.broadcast_control(2, kind="bcast")
    assert seen == [1]  # synchronous delivery
    assert engine.net.messages_sent == 1 + 3  # point-to-point + n-1
    assert engine.net.messages_by_kind == {"test_kind": 1, "bcast": 3}
    assert engine.net.protocol is None


def test_engine_reset_meters_keeps_policy_state():
    engine = PolicyEngine(make_policy("lard"), num_nodes=4)
    for i in range(8):
        outcome = engine.route(i, i % 3)
        engine.connection_opened(outcome.target)
        engine.request_completed(outcome.target, outcome.file_id)
    before = engine.stats()
    assert before["routed"] == 8
    engine.reset_meters()
    after = engine.stats()
    assert after["routed"] == 0
    assert after["control_messages"] == 0
    # Policy *state* survives: the same file routes to the same backend.
    outcome_a = engine.route(100, 0)
    assert not outcome_a.replicated  # file 0 already has a server


@pytest.mark.parametrize("name", ["traditional", "round-robin", "lard", "l2s",
                                  "consistent-hash", "dns-cached"])
def test_real_policies_run_on_the_live_membership(name):
    engine = PolicyEngine(make_policy(name), num_nodes=4)
    for i in range(50):
        outcome = engine.route(i, i % 7)
        assert 0 <= outcome.target < 4
        engine.connection_opened(outcome.target)
        engine.request_completed(outcome.target, outcome.file_id)
    assert engine.completed == 50
    assert engine.check_invariants() == []
    assert all(n.open_connections == 0 for n in engine.membership.nodes)


def test_engine_uses_wall_clock_by_default():
    engine = PolicyEngine(make_policy("lard"), num_nodes=2)
    assert isinstance(engine.clock, WallClock)
    assert engine.policy.clock is engine.clock
    t0 = engine.clock.now
    assert t0 >= 0.0
    assert engine.clock.now >= t0


def test_engine_failure_hooks_update_membership():
    engine = PolicyEngine(make_policy("l2s"), num_nodes=4)
    engine.fail_node(2)
    for i in range(20):
        outcome = engine.route(i, i)
        assert outcome.target != 2
        engine.connection_opened(outcome.target)
        engine.request_completed(outcome.target, outcome.file_id)
    engine.recover_node(2)
    assert engine.check_invariants() == []
