"""Materialized file sets: sparse files, manifest, idempotency."""

import json

import numpy as np

from repro.live.fileset import (
    MANIFEST_NAME,
    file_name,
    load_manifest,
    materialize_fileset,
)
from repro.workload import FileSet, Trace


def make_trace(file_ids, sizes):
    fileset = FileSet(
        sizes=np.asarray(sizes, dtype=np.int64), alpha=1.0, name="t"
    )
    return Trace(name="t", fileset=fileset, file_ids=np.asarray(file_ids))


def test_materialize_writes_only_touched_files(tmp_path):
    trace = make_trace([0, 2, 0], [100, 200, 300, 400])
    root = materialize_fileset(trace, tmp_path)
    names = sorted(p.name for p in root.iterdir())
    assert names == [file_name(0), file_name(2), MANIFEST_NAME]
    assert (root / file_name(0)).stat().st_size == 100
    assert (root / file_name(2)).stat().st_size == 300


def test_manifest_maps_fid_to_size(tmp_path):
    trace = make_trace([1, 3], [10, 20, 30, 40])
    materialize_fileset(trace, tmp_path)
    assert load_manifest(tmp_path) == {1: 20, 3: 40}
    raw = json.loads((tmp_path / MANIFEST_NAME).read_text())
    assert set(raw) == {"1", "3"}


def test_materialize_is_idempotent(tmp_path):
    trace = make_trace([0, 1], [50, 60])
    materialize_fileset(trace, tmp_path)
    first = {p.name: p.stat().st_mtime_ns for p in tmp_path.iterdir()
             if p.name != MANIFEST_NAME}
    materialize_fileset(trace, tmp_path)
    second = {p.name: p.stat().st_mtime_ns for p in tmp_path.iterdir()
              if p.name != MANIFEST_NAME}
    assert first == second  # right-sized files untouched


def test_sparse_files_read_as_zeros(tmp_path):
    trace = make_trace([0], [64])
    materialize_fileset(trace, tmp_path, sparse=True)
    assert (tmp_path / file_name(0)).read_bytes() == b"\x00" * 64


def test_non_sparse_writes_real_blocks(tmp_path):
    trace = make_trace([0], [64])
    materialize_fileset(trace, tmp_path, sparse=False)
    assert (tmp_path / file_name(0)).read_bytes() == b"\x00" * 64
