"""Hand-rolled HTTP/1.1 layer: parse/render round-trips over in-memory
asyncio streams (no sockets)."""

import asyncio

import pytest

from repro.live import http11


def parse(parser, data: bytes):
    """Run a stream parser against in-memory bytes inside one loop."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await parser(reader)

    return asyncio.run(go())


def test_request_roundtrip():
    raw = http11.render_request("GET", "/f/42", {"X-Forward-Port": "9000"})
    req = parse(http11.read_request, raw)
    assert req.method == "GET"
    assert req.path == "/f/42"
    assert req.headers["x-forward-port"] == "9000"
    assert req.headers["connection"] == "close"
    assert req.body == b""


def test_request_roundtrip_with_body():
    raw = http11.render_request("POST", "/warm", body=b"[1, 2, 3]")
    req = parse(http11.read_request, raw)
    assert req.method == "POST"
    assert req.body == b"[1, 2, 3]"


def test_response_roundtrip():
    raw = http11.render_response(200, b"hello", {"X-Cache": "HIT"})
    resp = parse(http11.read_response, raw)
    assert resp.status == 200
    assert resp.body == b"hello"
    assert resp.headers["x-cache"] == "HIT"
    assert resp.headers["content-length"] == "5"


def test_response_roundtrip_empty_body():
    raw = http11.render_response(404, b"")
    resp = parse(http11.read_response, raw)
    assert resp.status == 404
    assert resp.body == b""


def test_read_request_none_on_clean_eof():
    assert parse(http11.read_request, b"") is None


def test_read_request_rejects_truncated_head():
    with pytest.raises(http11.HTTPError):
        parse(http11.read_request, b"GET /f/1 HTTP/1.1\r\n")


def test_read_request_rejects_malformed_request_line():
    with pytest.raises(http11.HTTPError):
        parse(http11.read_request, b"GET /f/1\r\n\r\n")


def test_read_request_rejects_non_http():
    with pytest.raises(http11.HTTPError):
        parse(http11.read_request, b"GET /f/1 SPDY/3\r\n\r\n")


def test_read_response_rejects_garbage_status():
    with pytest.raises(http11.HTTPError):
        parse(http11.read_response, b"HTTP/1.1 abc Nope\r\n\r\n")


def test_malformed_header_line_rejected():
    with pytest.raises(http11.HTTPError):
        parse(http11.read_request, b"GET / HTTP/1.1\r\nbad header\r\n\r\n")


def test_response_body_read_exactly_content_length():
    # Extra bytes after the body must not leak into the parse.
    raw = http11.render_response(200, b"abc") + b"TRAILING"
    resp = parse(http11.read_response, raw)
    assert resp.body == b"abc"


def test_unknown_status_gets_generic_reason():
    raw = http11.render_response(599, b"")
    assert raw.startswith(b"HTTP/1.1 599 Unknown\r\n")
