"""Arrival-sequence parity: sim driver and live loadtest replay the
identical (arrival order, file_id) stream.

Both substrates consume ``Trace.replay_ids(passes)`` — the sim driver
indexes it in ``_spawn_index``, the live loadtest in ``_one_request``.
These tests pin the contract from three directions:

* property test over synthetic traces (hypothesis): the sequence the sim
  driver actually *injects* equals ``replay_ids`` equals the sequence the
  live replay generator issues;
* a Common Log Format fixture: the same holds for a trace parsed from a
  real-format access log;
* ``replay_ids`` semantics (tiling, validation).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import ClusterConfig
from repro.servers import make_policy
from repro.sim.driver import Simulation
from repro.workload import FileSet, Trace, synthesize
from repro.workload.traces import parse_common_log, trace_from_log_entries


def make_trace(file_ids, num_files, name="t"):
    sizes = np.full(num_files, 2048, dtype=np.int64)
    fileset = FileSet(sizes=sizes, alpha=1.0, name=name)
    return Trace(name=name, fileset=fileset, file_ids=np.asarray(file_ids))


def sim_injection_order(trace, passes, policy="round-robin"):
    """The (arrival index, file_id) pairs the sim driver actually injects."""
    sim = Simulation(
        trace,
        make_policy(policy),
        ClusterConfig(nodes=2, cache_bytes=1 << 20),
        passes=passes,
    )
    injected = []
    original = sim._spawn_index

    def record(i):
        injected.append((i, int(sim._ids[i])))
        original(i)

    sim._spawn_index = record
    sim.run()
    return injected


def live_generation_order(trace, passes):
    """The (arrival index, file_id) pairs the live replay issues.

    Exercises the real loadtest indexing (``ids[i]`` against the shared
    ``replay_ids`` array) without sockets.
    """
    ids = trace.replay_ids(passes)
    return [(i, int(ids[i])) for i in range(ids.size)]


# -- property test over synthetic traces ------------------------------------


@settings(max_examples=25, deadline=None)
@given(
    file_ids=st.lists(st.integers(min_value=0, max_value=19), min_size=1, max_size=60),
    passes=st.integers(min_value=1, max_value=3),
)
def test_sim_and_live_replay_identical_sequences(file_ids, passes):
    trace = make_trace(file_ids, num_files=20)
    expected = [
        (i, int(fid))
        for i, fid in enumerate(np.tile(trace.file_ids, passes))
    ]
    assert live_generation_order(trace, passes) == expected
    assert sorted(sim_injection_order(trace, passes)) == expected


def test_sim_injects_in_arrival_index_order_single_slot():
    # With MPL 1 the closed loop is strictly sequential, so even the
    # injection *order* (not just the index->fid pairing) matches.
    trace = make_trace([3, 1, 4, 1, 5, 9, 2, 6], num_files=10)
    sim = Simulation(
        trace,
        make_policy("round-robin"),
        ClusterConfig(nodes=2, cache_bytes=1 << 20, multiprogramming_per_node=1),
        passes=2,
    )
    injected = []
    original = sim._spawn_index
    sim._spawn_index = lambda i: (injected.append((i, int(sim._ids[i]))), original(i))[1]
    sim.run()
    assert injected == live_generation_order(trace, 2)


# -- Common Log Format fixture ----------------------------------------------

CLF_LOG = """\
host1 - - [01/Aug/1995:00:00:01 -0400] "GET /index.html HTTP/1.0" 200 7074
host2 - - [01/Aug/1995:00:00:02 -0400] "GET /images/logo.gif HTTP/1.0" 200 2624
host1 - - [01/Aug/1995:00:00:03 -0400] "GET /index.html HTTP/1.0" 200 7074
host3 - - [01/Aug/1995:00:00:04 -0400] "GET /missing.html HTTP/1.0" 404 -
host2 - - [01/Aug/1995:00:00:05 -0400] "GET /docs/paper.ps HTTP/1.0" 200 301045
host4 - - [01/Aug/1995:00:00:06 -0400] "GET /index.html HTTP/1.0" 200 7074
host1 - - [01/Aug/1995:00:00:07 -0400] "GET /images/logo.gif HTTP/1.0" 200 2624
garbage line that does not parse
host5 - - [01/Aug/1995:00:00:08 -0400] "POST /cgi/form HTTP/1.0" 200 512
"""


def test_clf_trace_replays_identically_in_both_worlds():
    entries = parse_common_log(CLF_LOG.splitlines())
    assert len(entries) == 7  # 404 and garbage dropped
    trace = trace_from_log_entries(entries, name="clf-fixture")
    for passes in (1, 2):
        expected = live_generation_order(trace, passes)
        assert sorted(sim_injection_order(trace, passes)) == expected


def test_clf_trace_through_preset_synthesis_matches():
    # Synthetic presets flow through the same contract.
    trace = synthesize("calgary", num_requests=120, seed=3)
    assert sorted(sim_injection_order(trace, 2)) == live_generation_order(trace, 2)


# -- replay_ids semantics ----------------------------------------------------


def test_replay_ids_single_pass_is_the_trace():
    trace = make_trace([0, 2, 1], num_files=3)
    assert np.array_equal(trace.replay_ids(1), trace.file_ids)


def test_replay_ids_tiles_passes():
    trace = make_trace([0, 2, 1], num_files=3)
    assert trace.replay_ids(3).tolist() == [0, 2, 1] * 3


def test_replay_ids_rejects_bad_passes():
    trace = make_trace([0], num_files=1)
    with pytest.raises(ValueError):
        trace.replay_ids(0)
