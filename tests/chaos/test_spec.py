"""Scenario spec: canonical round-trip and field-naming validation."""

import json
import os

import pytest

from repro.chaos.spec import ChaosSpecError, PlanItem, Scenario

DATA = os.path.join(os.path.dirname(__file__), "data")


def _scenario(**overrides):
    kwargs = dict(
        name="spec-test",
        seed=99,
        trace="calgary",
        requests=400,
        policy="lard",
        nodes=4,
        cache_mb=8,
        horizon_s=1.5,
        retries=2,
        plan=(
            PlanItem("crash", node=2, start=0.3, end=0.9),
            PlanItem("slow", node=1, start=0.2, end=0.4, factor=0.5),
            PlanItem("link_out", src=0, dst=3, start=0.1, end=0.2),
            PlanItem("partition", group=(2, 3), start=0.5, end=0.7),
            PlanItem("loss", rate=0.01),
            PlanItem("dup", rate=0.005),
            PlanItem("jitter", seconds=1e-4),
            PlanItem("flash", start=0.2, end=0.6, share=0.3, rank=1),
        ),
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


class TestRoundTrip:
    def test_json_round_trips_byte_identically(self):
        s = _scenario()
        text = s.to_json()
        assert Scenario.from_json(text).to_json() == text

    def test_canonical_form(self):
        text = _scenario().to_json()
        assert text.endswith("\n")
        assert text == json.dumps(json.loads(text), indent=2,
                                  sort_keys=True) + "\n"

    def test_save_load_round_trip(self, tmp_path):
        s = _scenario()
        path = str(tmp_path / "s.json")
        s.save(path)
        assert Scenario.load(path) == s

    def test_compact_items_omit_defaults(self):
        d = PlanItem("loss", rate=0.02).to_dict()
        assert d == {"kind": "loss", "rate": 0.02}

    def test_stored_fixtures_round_trip(self):
        for fname in ("planted.json", "smoke.json"):
            path = os.path.join(DATA, fname)
            with open(path, encoding="utf-8") as fh:
                text = fh.read()
            assert Scenario.from_json(text).to_json() == text


class TestValidation:
    def test_error_names_the_plan_field(self):
        with pytest.raises(ChaosSpecError) as exc:
            _scenario(plan=(PlanItem("crash", node=9, start=0.1),))
        assert str(exc.value).startswith("plan[0].node:")
        assert exc.value.field == "plan[0].node"

    def test_unknown_kind(self):
        with pytest.raises(ChaosSpecError, match=r"plan\[0\]\.kind"):
            _scenario(plan=(PlanItem("meteor"),))

    def test_window_must_end_after_start(self):
        with pytest.raises(ChaosSpecError, match=r"plan\[0\]\.end"):
            _scenario(plan=(PlanItem("crash", node=1, start=0.5, end=0.5),))

    def test_partition_group_sorted_unique(self):
        with pytest.raises(ChaosSpecError, match=r"plan\[0\]\.group"):
            _scenario(plan=(PlanItem("partition", group=(3, 2), start=0.1),))

    def test_unknown_scenario_field_rejected(self):
        obj = json.loads(_scenario().to_json())
        obj["warp_factor"] = 9
        with pytest.raises(ChaosSpecError, match="warp_factor"):
            Scenario.from_dict(obj)

    def test_unknown_item_field_rejected(self):
        obj = json.loads(_scenario().to_json())
        obj["plan"][0]["blast_radius"] = 3
        with pytest.raises(ChaosSpecError, match=r"plan\[0\]\.blast_radius"):
            Scenario.from_dict(obj)

    def test_unknown_policy_and_trace(self):
        with pytest.raises(ChaosSpecError, match="policy"):
            _scenario(policy="quantum")
        with pytest.raises(ChaosSpecError, match="trace"):
            _scenario(trace="berkeley")


class TestDerived:
    def test_fault_schedule_pairs_crash_with_recover(self):
        sched = _scenario().fault_schedule()
        kinds = [(e.kind, e.node) for e in sched.events]
        assert ("crash", 2) in kinds and ("recover", 2) in kinds

    def test_netfault_config_carries_rates_and_events(self):
        nf = _scenario().netfault_config()
        assert nf.loss_rate == pytest.approx(0.01)
        assert nf.dup_rate == pytest.approx(0.005)
        kinds = [e.kind for e in nf.schedule.events]
        assert "link_down" in kinds and "partition" in kinds

    def test_clean_plan_yields_no_schedules(self):
        s = _scenario(plan=())
        assert s.fault_schedule() is None
        assert s.netfault_config() is None

    def test_event_count_matches_legacy_grammar(self):
        # crash+recover=2, slow=2, link_out=2, partition=2, loss/dup/
        # jitter=1 each, flash=1.
        assert _scenario().event_count() == 12
