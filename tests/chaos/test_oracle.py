"""Invariant oracles: the clean case, strict mode, floors, dedup."""

import os

import pytest

from repro.chaos.oracle import ChaosOracle, OracleConfig, availability_floor
from repro.chaos.runner import render_report, run_scenario
from repro.chaos.spec import PlanItem, Scenario

DATA = os.path.join(os.path.dirname(__file__), "data")


def _clean_scenario(**overrides):
    kwargs = dict(
        name="oracle-clean",
        seed=5,
        trace="calgary",
        requests=200,
        policy="traditional",
        nodes=2,
        cache_mb=8,
        horizon_s=0.6,
        retries=2,
        plan=(),
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


class TestCleanRun:
    def test_clean_run_passes_every_oracle(self):
        outcome = run_scenario(_clean_scenario())
        assert outcome.passed, [v.render() for v in outcome.violations]
        assert outcome.result is not None
        assert outcome.result.verify() == []

    def test_oracle_sampler_actually_sampled(self):
        scenario = _clean_scenario()
        outcome = run_scenario(scenario)
        assert outcome.passed
        # The mid-run sampler is part of the contract, not dead code:
        # the report mentions no violations precisely because it ran.
        assert "oracles: all passed" in render_report(outcome)

    def test_replay_is_deterministic(self):
        scenario = _clean_scenario()
        a = run_scenario(scenario)
        b = run_scenario(scenario)
        assert render_report(a) == render_report(b)
        assert a.result.throughput_rps == b.result.throughput_rps
        assert a.result.requests_measured == b.result.requests_measured


class TestStrictMode:
    def test_planted_fixture_fails_strict_only(self):
        planted = Scenario.load(os.path.join(DATA, "planted.json"))
        strict = run_scenario(planted, OracleConfig(strict=True))
        assert not strict.passed
        assert "strict_service" in {v.check for v in strict.violations}

    def test_clean_run_passes_strict(self):
        outcome = run_scenario(_clean_scenario(), OracleConfig(strict=True))
        assert outcome.passed, [v.render() for v in outcome.violations]


class TestAvailabilityFloor:
    def test_non_disruptive_plan_has_sharp_floor(self):
        s = _clean_scenario(plan=(
            PlanItem("jitter", seconds=1e-4),
            PlanItem("dup", rate=0.01),
            PlanItem("slow", node=1, start=0.1, end=0.2, factor=0.5),
        ))
        # The sharp case returns exactly 1.0 (the oracle then demands
        # zero failures); >= keeps the check float-identity-free.
        assert availability_floor(s) >= 1.0

    def test_crash_lowers_the_floor(self):
        s = _clean_scenario(
            nodes=4,
            plan=(PlanItem("crash", node=1, start=0.1, end=0.3),),
        )
        assert availability_floor(s) < 1.0

    def test_spof_policies_get_a_deeper_floor(self):
        plan = (PlanItem("crash", node=0, start=0.1, end=0.3),)
        spof = _clean_scenario(nodes=4, policy="lard", plan=plan)
        dist = _clean_scenario(nodes=4, policy="l2s", plan=plan)
        assert availability_floor(spof) < availability_floor(dist)


class TestViolationBookkeeping:
    def test_duplicate_findings_are_recorded_once(self):
        oracle = ChaosOracle(_clean_scenario())
        oracle._record("policy_invariant", "same problem")
        oracle._record("policy_invariant", "same problem")
        oracle._record("policy_invariant", "different problem")
        assert len(oracle.violations) == 2

    def test_finish_requires_attachment(self):
        oracle = ChaosOracle(_clean_scenario())
        with pytest.raises(RuntimeError):
            oracle.finish()


class TestFaultedRuns:
    def test_crash_with_retries_passes_default_oracles(self):
        s = _clean_scenario(
            name="oracle-crash",
            nodes=4,
            requests=300,
            policy="l2s",
            retries=4,
            plan=(PlanItem("crash", node=2, start=0.1, end=0.3),),
        )
        outcome = run_scenario(s)
        assert outcome.passed, [v.render() for v in outcome.violations]

    def test_lard_backend_crash_keeps_view_non_negative(self):
        # Regression: zeroing the front-end's view entry on back-end
        # recovery double-credited connections that straddled the reboot
        # and drove the view negative (policy_invariant violations).
        s = _clean_scenario(
            name="oracle-lard-crash",
            nodes=4,
            requests=400,
            policy="lard",
            retries=4,
            plan=(
                PlanItem("dup", rate=0.01),
                PlanItem("crash", node=3, start=0.15, end=0.3),
            ),
        )
        outcome = run_scenario(s)
        checks = {v.check for v in outcome.violations}
        assert "policy_invariant" not in checks, [
            v.render() for v in outcome.violations
        ]
