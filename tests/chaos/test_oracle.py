"""Invariant oracles: the clean case, strict mode, floors, dedup."""

import os

import pytest

from repro.chaos.oracle import ChaosOracle, OracleConfig, availability_floor
from repro.chaos.runner import render_report, run_scenario
from repro.chaos.spec import PlanItem, Scenario

DATA = os.path.join(os.path.dirname(__file__), "data")


def _clean_scenario(**overrides):
    kwargs = dict(
        name="oracle-clean",
        seed=5,
        trace="calgary",
        requests=200,
        policy="traditional",
        nodes=2,
        cache_mb=8,
        horizon_s=0.6,
        retries=2,
        plan=(),
    )
    kwargs.update(overrides)
    return Scenario(**kwargs)


class TestCleanRun:
    def test_clean_run_passes_every_oracle(self):
        outcome = run_scenario(_clean_scenario())
        assert outcome.passed, [v.render() for v in outcome.violations]
        assert outcome.result is not None
        assert outcome.result.verify() == []

    def test_oracle_sampler_actually_sampled(self):
        scenario = _clean_scenario()
        outcome = run_scenario(scenario)
        assert outcome.passed
        # The mid-run sampler is part of the contract, not dead code:
        # the report mentions no violations precisely because it ran.
        assert "oracles: all passed" in render_report(outcome)

    def test_replay_is_deterministic(self):
        scenario = _clean_scenario()
        a = run_scenario(scenario)
        b = run_scenario(scenario)
        assert render_report(a) == render_report(b)
        assert a.result.throughput_rps == b.result.throughput_rps
        assert a.result.requests_measured == b.result.requests_measured


class TestStrictMode:
    def test_planted_fixture_fails_strict_only(self):
        planted = Scenario.load(os.path.join(DATA, "planted.json"))
        strict = run_scenario(planted, OracleConfig(strict=True))
        assert not strict.passed
        assert "strict_service" in {v.check for v in strict.violations}

    def test_clean_run_passes_strict(self):
        outcome = run_scenario(_clean_scenario(), OracleConfig(strict=True))
        assert outcome.passed, [v.render() for v in outcome.violations]


class TestAvailabilityFloor:
    def test_non_disruptive_plan_has_sharp_floor(self):
        s = _clean_scenario(plan=(
            PlanItem("jitter", seconds=1e-4),
            PlanItem("dup", rate=0.01),
            PlanItem("slow", node=1, start=0.1, end=0.2, factor=0.5),
        ))
        # The sharp case returns exactly 1.0 (the oracle then demands
        # zero failures); >= keeps the check float-identity-free.
        assert availability_floor(s) >= 1.0

    def test_crash_lowers_the_floor(self):
        s = _clean_scenario(
            nodes=4,
            plan=(PlanItem("crash", node=1, start=0.1, end=0.3),),
        )
        assert availability_floor(s) < 1.0

    def test_spof_policies_get_a_deeper_floor(self):
        plan = (PlanItem("crash", node=0, start=0.1, end=0.3),)
        spof = _clean_scenario(nodes=4, policy="lard", plan=plan)
        dist = _clean_scenario(nodes=4, policy="l2s", plan=plan)
        assert availability_floor(spof) < availability_floor(dist)


class TestViolationBookkeeping:
    def test_duplicate_findings_are_recorded_once(self):
        oracle = ChaosOracle(_clean_scenario())
        oracle._record("policy_invariant", "same problem")
        oracle._record("policy_invariant", "same problem")
        oracle._record("policy_invariant", "different problem")
        assert len(oracle.violations) == 2

    def test_finish_requires_attachment(self):
        oracle = ChaosOracle(_clean_scenario())
        with pytest.raises(RuntimeError):
            oracle.finish()


class TestFaultedRuns:
    def test_crash_with_retries_passes_default_oracles(self):
        s = _clean_scenario(
            name="oracle-crash",
            nodes=4,
            requests=300,
            policy="l2s",
            retries=4,
            plan=(PlanItem("crash", node=2, start=0.1, end=0.3),),
        )
        outcome = run_scenario(s)
        assert outcome.passed, [v.render() for v in outcome.violations]

    def test_lard_backend_crash_keeps_view_non_negative(self):
        # Regression: zeroing the front-end's view entry on back-end
        # recovery double-credited connections that straddled the reboot
        # and drove the view negative (policy_invariant violations).
        s = _clean_scenario(
            name="oracle-lard-crash",
            nodes=4,
            requests=400,
            policy="lard",
            retries=4,
            plan=(
                PlanItem("dup", rate=0.01),
                PlanItem("crash", node=3, start=0.15, end=0.3),
            ),
        )
        outcome = run_scenario(s)
        checks = {v.check for v in outcome.violations}
        assert "policy_invariant" not in checks, [
            v.render() for v in outcome.violations
        ]


class _StubClusterConfig:
    multiprogramming_per_node = 16
    nodes = 4


class _StubSim:
    """Just enough Simulation surface for the metastable check."""

    def __init__(self, times, warmup_count=100, total=None):
        self.completion_times = list(times)
        self._warmup_count = warmup_count
        self._total = (
            total if total is not None else warmup_count + len(times)
        )
        self.config = _StubClusterConfig()


def _ramp_scenario():
    return _clean_scenario(
        name="oracle-metastable",
        plan=(PlanItem("ramp", start=0.3, end=0.5, share=0.5),),
    )


def _uniform(n, spacing):
    return [i * spacing for i in range(n)]


def _collapsing(n, split_fraction, fast, slow):
    split = int(n * split_fraction)
    times = [i * fast for i in range(split)]
    t = times[-1]
    for _ in range(n - split):
        t += slow
        times.append(t)
    return times


class TestMetastableCheck:
    """The metastable check against synthetic completion series.

    Driving `_metastable` directly keeps the fixtures exact: a genuine
    collapse (tail 50x below both yardsticks) must fire, and each
    exoneration — healthy tail, recovering cache re-warm, missing
    baseline — must not.
    """

    def _violations(self, times, baseline):
        oracle = ChaosOracle(_ramp_scenario())
        oracle._metastable(_StubSim(times), baseline)
        return [v for v in oracle.violations if v.check == "metastable_failure"]

    def test_collapse_below_both_yardsticks_fires(self):
        # 1000/s before the window, 20/s ever after; baseline 1000/s.
        perturbed = _collapsing(1000, 0.45, fast=1e-3, slow=5e-2)
        baseline = _uniform(1000, 1e-3)
        assert self._violations(perturbed, baseline)

    def test_healthy_tail_passes(self):
        assert self._violations(_uniform(1000, 1e-3), _uniform(1000, 1e-3)) == []

    def test_rewarming_run_is_exonerated_by_its_own_pre_rate(self):
        # The whole perturbed run serves at 100/s (cache still warming,
        # tail no worse than before the crowd) while the baseline runs
        # at 1000/s: trailing the counterfactual is not collapse.
        assert self._violations(_uniform(1000, 1e-2), _uniform(1000, 1e-3)) == []

    def test_missing_baseline_skips_the_check(self):
        perturbed = _collapsing(1000, 0.45, fast=1e-3, slow=5e-2)
        assert self._violations(perturbed, None) == []

    def test_ratio_zero_disables(self):
        perturbed = _collapsing(1000, 0.45, fast=1e-3, slow=5e-2)
        oracle = ChaosOracle(_ramp_scenario(), OracleConfig(metastable_ratio=0.0))
        oracle._metastable(_StubSim(perturbed), _uniform(1000, 1e-3))
        assert oracle.violations == []

    def test_end_to_end_ramp_scenario_passes(self):
        # A realistic seeded ramp through the full runner: counterfactual
        # baseline and all, the oracle must hold on a healthy cluster.
        s = _clean_scenario(
            name="oracle-ramp-e2e",
            nodes=4,
            requests=600,
            policy="lard",
            retries=4,
            plan=(PlanItem("ramp", start=0.3, end=0.55, share=0.6),),
        )
        outcome = run_scenario(s)
        assert outcome.passed, [v.render() for v in outcome.violations]
