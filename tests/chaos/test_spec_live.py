"""Scenario -> live-cluster expansion (tier-1: pure spec logic)."""

import pytest

from repro.chaos.spec import LIVE_KINDS, PLAN_KINDS, PlanItem, Scenario


def scenario(plan=(), policy="lard", nodes=4, horizon_s=2.0, **kw):
    return Scenario(
        name="t", seed=7, nodes=nodes, policy=policy,
        horizon_s=horizon_s, plan=tuple(plan), **kw,
    )


def test_live_kinds_is_a_subset_of_plan_kinds():
    assert set(LIVE_KINDS) <= set(PLAN_KINDS)
    # Exactly partition and dup have no live equivalent.
    assert set(PLAN_KINDS) - set(LIVE_KINDS) == {"partition", "dup"}


def test_crash_expands_to_kill_and_respawn_at_horizon_fractions():
    sc = scenario([PlanItem(kind="crash", node=1, start=0.5, end=1.5)])
    assert sc.live_schedule() == [
        (0.25, "kill", {"node": 1}),
        (0.75, "respawn", {"node": 1}),
    ]


def test_crash_without_recovery_has_no_respawn():
    sc = scenario([PlanItem(kind="crash", node=2, start=1.0)])
    assert sc.live_schedule() == [(0.5, "kill", {"node": 2})]


def test_slow_expands_to_suspend_resume():
    sc = scenario([PlanItem(kind="slow", node=3, start=0.2, end=0.6,
                            factor=0.25)])
    assert sc.live_schedule() == [
        (0.1, "suspend", {"node": 3}),
        (0.3, "resume", {"node": 3}),
    ]


def test_link_out_maps_to_dst_proxy():
    # The live topology is a star through the front-end: link_out(src,
    # dst) becomes "dst's inbound proxy refuses"; src has no live role.
    sc = scenario([PlanItem(kind="link_out", src=0, dst=2, start=0.4,
                            end=1.0)])
    assert sc.live_schedule() == [
        (0.2, "link_down", {"node": 2}),
        (0.5, "link_up", {"node": 2}),
    ]


def test_live_schedule_is_sorted_and_clamped():
    sc = scenario([
        PlanItem(kind="crash", node=1, start=1.5, end=5.0),  # end > horizon
        PlanItem(kind="slow", node=0, start=0.2, end=0.8),
    ])
    actions = sc.live_schedule()
    fracs = [a[0] for a in actions]
    assert fracs == sorted(fracs)
    assert actions[-1] == (1.0, "respawn", {"node": 1})  # clamped to 1.0


def test_live_rates_collects_runwide_fabric_knobs():
    sc = scenario([
        PlanItem(kind="loss", rate=0.05),
        PlanItem(kind="delay", seconds=0.002),
        PlanItem(kind="jitter", seconds=0.001),
    ])
    assert sc.live_rates() == {
        "loss": 0.05, "delay_s": 0.002, "jitter_s": 0.001,
    }
    # Rates don't produce injector actions; they configure the proxies.
    assert sc.live_schedule() == []


def test_live_rates_defaults_to_zero():
    assert scenario().live_rates() == {
        "loss": 0.0, "delay_s": 0.0, "jitter_s": 0.0,
    }


def test_clean_supported_scenario_reports_nothing():
    sc = scenario([
        PlanItem(kind="crash", node=1, start=0.5, end=1.5),
        PlanItem(kind="loss", rate=0.01),
        PlanItem(kind="flash", start=0.2, end=0.4, share=0.5),
    ])
    assert sc.live_unsupported() == []


def test_lard_ng_policy_is_live_unsupported():
    sc = scenario(policy="lard-ng")
    problems = sc.live_unsupported()
    assert len(problems) == 1
    assert "lard-ng" in problems[0]
    assert "async_decide" in problems[0]


def test_partition_and_dup_items_are_live_unsupported():
    sc = scenario([
        PlanItem(kind="crash", node=0, start=0.1, end=0.5),
        PlanItem(kind="partition", group=(0, 1), start=0.2, end=0.6),
        PlanItem(kind="dup", rate=0.1),
    ])
    problems = sc.live_unsupported()
    assert len(problems) == 2
    assert problems[0].startswith("plan[1]")
    assert "star" in problems[0]
    assert problems[1].startswith("plan[2]")
    assert "TCP" in problems[1]


@pytest.mark.parametrize("kind", ["crash", "slow", "link_out"])
def test_every_windowed_live_kind_produces_paired_actions(kind):
    if kind == "crash":
        item = PlanItem(kind=kind, node=1, start=0.5, end=1.5)
    elif kind == "slow":
        item = PlanItem(kind=kind, node=1, start=0.5, end=1.5, factor=0.5)
    else:
        item = PlanItem(kind=kind, src=0, dst=1, start=0.5, end=1.5)
    actions = scenario([item]).live_schedule()
    assert len(actions) == 2
    assert actions[0][0] < actions[1][0]
    assert all(a[2] == {"node": 1} for a in actions)
