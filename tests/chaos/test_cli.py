"""The ``repro chaos`` CLI: run/replay/shrink/soak surfaces."""

import os

import pytest

from repro.chaos.cli import main as chaos_main
from repro.chaos.spec import Scenario
from repro.cli import main as repro_main

DATA = os.path.join(os.path.dirname(__file__), "data")
PLANTED = os.path.join(DATA, "planted.json")
SMOKE = os.path.join(DATA, "smoke.json")


def test_run_small_sweep_passes(capsys):
    assert chaos_main([
        "run", "--trials", "2", "--seed", "11", "--requests", "200",
        "--policies", "traditional,l2s", "--quiet",
    ]) == 0
    out = capsys.readouterr().out
    assert "2/2 trials passed" in out


def test_run_reports_are_deterministic(capsys):
    args = ["run", "--trials", "1", "--seed", "13", "--requests", "200",
            "--policies", "l2s"]
    assert chaos_main(args) == 0
    first = capsys.readouterr().out
    assert chaos_main(args) == 0
    assert capsys.readouterr().out == first


def test_replay_passing_scenario(capsys):
    assert chaos_main(["replay", SMOKE]) == 0
    out = capsys.readouterr().out
    assert "oracles: all passed" in out


def test_replay_strict_planted_fails(capsys):
    assert chaos_main(["replay", PLANTED, "--strict"]) == 1
    out = capsys.readouterr().out
    assert "strict_service" in out


def test_replay_missing_file_is_exit_2(capsys):
    assert chaos_main(["replay", "/nonexistent/scenario.json"]) == 2


def test_replay_invalid_scenario_is_exit_2(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"name": "x", "seed": 1, "policy": "quantum"}\n')
    assert chaos_main(["replay", str(bad)]) == 2
    assert "invalid scenario" in capsys.readouterr().err


def test_shrink_writes_minimal_reproducer(tmp_path, capsys):
    out = str(tmp_path / "planted.min.json")
    assert chaos_main(["shrink", PLANTED, "--strict", "--out", out]) == 0
    minimal = Scenario.load(out)
    assert minimal.event_count() <= 3
    text = capsys.readouterr().out
    assert f"repro chaos replay {out}" in text


def test_shrink_rejects_passing_scenario(capsys):
    assert chaos_main(["shrink", SMOKE]) == 2
    assert "does not fail" in capsys.readouterr().err


def test_soak_bounded_run(tmp_path, capsys):
    # A tiny wall-clock budget still runs at least the trial cap check;
    # --max-trials keeps it deterministic-ish and fast.
    assert chaos_main([
        "soak", "--minutes", "0.2", "--max-trials", "2", "--seed", "17",
        "--requests", "200", "--policies", "traditional",
        "--out", str(tmp_path / "soak"),
    ]) == 0
    out = capsys.readouterr().out
    assert "chaos soak:" in out


def test_main_cli_delegates_chaos(capsys):
    assert repro_main(["chaos", "replay", SMOKE]) == 0
    assert "oracles: all passed" in capsys.readouterr().out


def test_chaos_requires_subcommand():
    with pytest.raises(SystemExit):
        chaos_main([])
