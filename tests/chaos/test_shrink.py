"""Delta-debugging shrinker: minimality, determinism, budget honesty.

The expensive end-to-end property — the planted fixture shrinking to
the same byte-identical <= 3-event reproducer under both DES schedulers
and both request lifecycles — is the contract that makes soak-produced
reproducers trustworthy.
"""

import os

import pytest

from repro.chaos.oracle import OracleConfig
from repro.chaos.shrink import ShrinkResult, shrink_scenario
from repro.chaos.spec import PlanItem, Scenario

DATA = os.path.join(os.path.dirname(__file__), "data")
STRICT = OracleConfig(strict=True)


def _planted():
    return Scenario.load(os.path.join(DATA, "planted.json"))


@pytest.fixture(scope="module")
def reference_minimal():
    """The minimal reproducer under the default engine configuration."""
    return shrink_scenario(_planted(), oracle_config=STRICT)


class TestPlantedFixture:
    def test_shrinks_to_a_tiny_reproducer(self):
        result = shrink_scenario(_planted(), oracle_config=STRICT)
        assert result.scenario.event_count() <= 3
        assert [i.kind for i in result.scenario.plan] == ["crash"]
        assert result.events_after < result.events_before
        assert not result.budget_exhausted

    def test_shrink_is_deterministic(self):
        a = shrink_scenario(_planted(), oracle_config=STRICT)
        b = shrink_scenario(_planted(), oracle_config=STRICT)
        assert a.scenario.to_json() == b.scenario.to_json()
        assert a.runs == b.runs

    @pytest.mark.parametrize("scheduler", ["heap", "calendar"])
    @pytest.mark.parametrize("fastpath", ["0", "1"])
    def test_minimal_reproducer_is_engine_independent(
        self, monkeypatch, scheduler, fastpath, reference_minimal
    ):
        monkeypatch.setenv("REPRO_DES_SCHEDULER", scheduler)
        monkeypatch.setenv("REPRO_SIM_FASTPATH", fastpath)
        result = shrink_scenario(_planted(), oracle_config=STRICT)
        expected = reference_minimal.scenario.to_json()
        assert result.scenario.to_json() == expected
        assert result.scenario.event_count() <= 3

    def test_minimal_scenario_still_fails(self, reference_minimal):
        from repro.chaos.runner import run_scenario

        outcome = run_scenario(reference_minimal.scenario, STRICT)
        assert not outcome.passed


class TestContracts:
    def test_passing_scenario_is_rejected(self):
        smoke = Scenario.load(os.path.join(DATA, "smoke.json"))
        with pytest.raises(ValueError, match="does not fail"):
            shrink_scenario(smoke)

    def test_predicate_is_memoized(self):
        planted = _planted()
        evaluated = []

        def predicate(scenario):
            evaluated.append(scenario.to_json())
            # Fails iff the crash item survives.
            return any(i.kind == "crash" for i in scenario.plan)

        result = shrink_scenario(planted, predicate=predicate)
        assert [i.kind for i in result.scenario.plan] == ["crash"]
        assert len(evaluated) == len(set(evaluated))

    def test_budget_exhaustion_is_reported(self):
        planted = _planted()

        def predicate(scenario):
            return any(i.kind == "crash" for i in scenario.plan)

        result = shrink_scenario(planted, predicate=predicate, max_runs=2)
        assert isinstance(result, ShrinkResult)
        assert result.budget_exhausted
        # Whatever survived the tiny budget must still be a failure.
        assert any(i.kind == "crash" for i in result.scenario.plan)

    def test_magnitudes_shrink_toward_benign(self):
        scenario = Scenario(
            name="mag",
            seed=3,
            trace="calgary",
            requests=150,
            policy="traditional",
            nodes=2,
            cache_mb=8,
            horizon_s=0.5,
            retries=1,
            plan=(
                PlanItem("loss", rate=0.4),
                PlanItem("slow", node=1, start=0.1, end=0.2, factor=0.2),
            ),
        )

        def predicate(s):
            # "Fails" while the loss rate stays above 10%.
            return any(
                i.kind == "loss" and i.rate > 0.1 for i in s.plan
            )

        result = shrink_scenario(scenario, predicate=predicate)
        (loss,) = [i for i in result.scenario.plan if i.kind == "loss"]
        assert 0.1 < loss.rate <= 0.2  # halved as far as still failing
