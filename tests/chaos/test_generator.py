"""Scenario generator: determinism and plan well-formedness."""

from repro.chaos.generator import DEFAULT_POLICIES, ScenarioGenerator
from repro.chaos.spec import PLAN_KINDS, RATE_KINDS


class TestDeterminism:
    def test_same_seed_same_trial_is_byte_identical(self):
        a = ScenarioGenerator(42).generate(7)
        b = ScenarioGenerator(42).generate(7)
        assert a.to_json() == b.to_json()

    def test_trials_are_independent_of_generation_order(self):
        gen = ScenarioGenerator(42)
        forward = [gen.generate(t).to_json() for t in range(6)]
        gen2 = ScenarioGenerator(42)
        backward = [gen2.generate(t).to_json() for t in reversed(range(6))]
        assert forward == list(reversed(backward))

    def test_different_seeds_differ(self):
        a = ScenarioGenerator(1).generate(0)
        b = ScenarioGenerator(2).generate(0)
        assert a.to_json() != b.to_json()


class TestPlans:
    def test_plans_validate_and_cover_kinds(self):
        gen = ScenarioGenerator(11)
        seen = set()
        for trial in range(60):
            s = gen.generate(trial)  # __post_init__ validates
            seen.update(item.kind for item in s.plan)
            assert s.policy in DEFAULT_POLICIES
        assert seen <= set(PLAN_KINDS)
        assert "crash" in seen  # weighted up; 60 trials must sample it

    def test_rate_kinds_appear_at_most_once_per_plan(self):
        gen = ScenarioGenerator(13)
        for trial in range(40):
            counts = gen.generate(trial).counts()
            for kind in RATE_KINDS + ("flash",):
                assert counts.get(kind, 0) <= 1

    def test_windows_stay_inside_the_horizon(self):
        gen = ScenarioGenerator(17)
        for trial in range(40):
            s = gen.generate(trial)
            for item in s.plan:
                if item.kind in ("crash", "slow", "link_out", "partition"):
                    assert 0.0 <= item.start < s.horizon_s
                    if item.end is not None:
                        assert item.start < item.end <= s.horizon_s
