"""Tests for Store / FilterStore."""

import pytest

from repro.des import Environment, FilterStore, Store


def test_store_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env, store):
        for i in range(3):
            yield store.put(i)
            yield env.timeout(1)

    def consumer(env, store):
        for _ in range(3):
            item = yield store.get()
            got.append((item, env.now))

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert [i for i, _ in got] == [0, 1, 2]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env, store):
        item = yield store.get()
        got.append((item, env.now))

    def producer(env, store):
        yield env.timeout(5)
        yield store.put("msg")

    env.process(consumer(env, store))
    env.process(producer(env, store))
    env.run()
    assert got == [("msg", 5)]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer(env, store):
        yield store.put("a")
        times.append(("a", env.now))
        yield store.put("b")
        times.append(("b", env.now))

    def consumer(env, store):
        yield env.timeout(4)
        yield store.get()

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert times == [("a", 0), ("b", 4)]


def test_store_len_and_items():
    env = Environment()
    store = Store(env)

    def producer(env, store):
        yield store.put(1)
        yield store.put(2)

    env.process(producer(env, store))
    env.run()
    assert len(store) == 2
    assert store.items == [1, 2]


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_filter_store_matches_predicate():
    env = Environment()
    store = FilterStore(env)
    got = []

    def producer(env, store):
        yield store.put({"kind": "x", "n": 1})
        yield store.put({"kind": "y", "n": 2})

    def consumer(env, store):
        item = yield store.get(lambda m: m["kind"] == "y")
        got.append(item["n"])

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert got == [2]
    assert store.items == [{"kind": "x", "n": 1}]


def test_filter_store_blocked_head_does_not_starve_others():
    env = Environment()
    store = FilterStore(env)
    got = []

    def want(env, store, kind):
        item = yield store.get(lambda m: m == kind)
        got.append((kind, env.now))

    def producer(env, store):
        yield env.timeout(1)
        yield store.put("b")  # matches the *second* waiter only
        yield env.timeout(1)
        yield store.put("a")

    env.process(want(env, store, "a"))
    env.process(want(env, store, "b"))
    env.process(producer(env, store))
    env.run()
    assert got == [("b", 1), ("a", 2)]


def test_filter_store_default_filter_accepts_all():
    env = Environment()
    store = FilterStore(env)
    got = []

    def consumer(env, store):
        got.append((yield store.get()))

    def producer(env, store):
        yield store.put(42)

    env.process(consumer(env, store))
    env.process(producer(env, store))
    env.run()
    assert got == [42]


def test_store_many_producers_consumers():
    env = Environment()
    store = Store(env, capacity=4)
    consumed = []

    def producer(env, store, base):
        for i in range(10):
            yield store.put(base + i)
            yield env.timeout(0.5)

    def consumer(env, store):
        while True:
            item = yield store.get()
            consumed.append(item)
            yield env.timeout(0.25)

    env.process(producer(env, store, 0))
    env.process(producer(env, store, 100))
    env.process(consumer(env, store))
    env.run(until=100)
    assert sorted(consumed) == sorted(list(range(10)) + list(range(100, 110)))
