"""Calendar-queue resize hysteresis (kernel v3).

A grow doubles the buckets and leaves the queue at ``size == 2 * nb_old
== nb_new``; with the old ``size < nb // 2`` shrink trigger, a workload
whose population sawtooths around a resize boundary could pay a full
O(n) rebuild on every swing.  The shrink trigger now sits at ``nb // 4``
— a 2x dead band below what a grow leaves behind — so oscillation around
either boundary never causes back-to-back resizes.  Resize thresholds
only affect cost, never pop order, so these tests pin the *count* of
rebuilds via the ``resizes`` counter.
"""

from __future__ import annotations

import itertools
import random

from repro.des.calendar import CalendarQueue, _GROW_FACTOR, _MIN_BUCKETS, _SHRINK_DIV

_eid = itertools.count()


def _item(t: float):
    return (t, 1, next(_eid), None)


def _fill(q: CalendarQueue, n: int, rng: random.Random):
    for _ in range(n):
        q.push(_item(rng.uniform(0.0, 100.0)))


def test_resizes_counter_counts_grows():
    q = CalendarQueue()
    rng = random.Random(1)
    assert q.resizes == 0
    # Pushing past GROW_FACTOR * nb triggers a grow.
    _fill(q, _GROW_FACTOR * _MIN_BUCKETS + 1, rng)
    assert q.resizes == 1
    assert q._nb == 2 * _MIN_BUCKETS


def test_oscillation_at_grow_boundary_does_not_thrash():
    q = CalendarQueue()
    rng = random.Random(2)
    _fill(q, _GROW_FACTOR * _MIN_BUCKETS + 1, rng)  # one grow
    before = q.resizes
    # Sawtooth push/pop right where the grow fired: the post-grow
    # population (2 * nb_old == nb_new) sits far above the nb_new // 4
    # shrink trigger, so neither direction resizes again.
    for _ in range(200):
        q.popmin()
        q.push(_item(rng.uniform(0.0, 100.0)))
    assert q.resizes == before


def test_no_shrink_until_quarter_occupancy():
    q = CalendarQueue()
    rng = random.Random(3)
    # Grow twice: nb = 4 * _MIN_BUCKETS.
    _fill(q, _GROW_FACTOR * 2 * _MIN_BUCKETS + 1, rng)
    assert q._nb == 4 * _MIN_BUCKETS
    grows = q.resizes
    nb = q._nb
    # Drain down to the old (half-occupancy) trigger: no shrink yet.
    while len(q) >= nb // 2:
        q.popmin()
    assert q.resizes == grows
    # Keep draining: the shrink fires only below nb // _SHRINK_DIV.
    while len(q) >= nb // _SHRINK_DIV:
        q.popmin()
    q.popmin()
    assert q.resizes == grows + 1
    assert q._nb == nb // 2


def test_oscillation_at_shrink_boundary_does_not_thrash():
    q = CalendarQueue()
    rng = random.Random(4)
    _fill(q, _GROW_FACTOR * 2 * _MIN_BUCKETS + 1, rng)
    # Drain until a shrink fires.
    base = q.resizes
    while q.resizes == base:
        q.popmin()
    after_shrink = q.resizes
    # Sawtooth around the point the shrink fired: the halved bucket
    # count puts the population back in the dead band, so neither the
    # grow (needs 2x) nor another shrink (needs /2 again) can trigger.
    for _ in range(200):
        q.push(_item(rng.uniform(0.0, 100.0)))
        q.popmin()
    assert q.resizes == after_shrink


def test_pop_order_unchanged_by_resizes():
    import heapq

    q = CalendarQueue()
    oracle: list = []
    rng = random.Random(5)
    # Interleave pushes and pops to force grows and shrinks mid-stream;
    # every popmin must match a binary-heap oracle exactly.
    for _ in range(300):
        it = _item(rng.uniform(0.0, 50.0))
        q.push(it)
        heapq.heappush(oracle, it)
        if rng.random() < 0.3:
            assert q.popmin() == heapq.heappop(oracle)
    while q:
        assert q.popmin() == heapq.heappop(oracle)
    assert not oracle
    assert q.resizes > 0
