"""Unit tests for the DES kernel core: environment, events, processes."""

import pytest

from repro.des import (
    EmptySchedule,
    Environment,
    Event,
    Interrupt,
    StopProcess,
)


def test_environment_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_environment_initial_time():
    env = Environment(initial_time=42.5)
    assert env.now == 42.5


def test_timeout_advances_clock():
    env = Environment()
    seen = []

    def proc(env):
        yield env.timeout(3)
        seen.append(env.now)
        yield env.timeout(4)
        seen.append(env.now)

    env.process(proc(env))
    env.run()
    assert seen == [3, 7]


def test_timeout_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_timeout_carries_value():
    env = Environment()
    result = []

    def proc(env):
        value = yield env.timeout(1, value="hello")
        result.append(value)

    env.process(proc(env))
    env.run()
    assert result == ["hello"]


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(10)

    env.process(proc(env))
    env.run(until=25)
    assert env.now == 25


def test_run_until_time_excludes_boundary_events():
    """Events scheduled exactly at `until` are not processed (simpy semantics)."""
    env = Environment()
    seen = []

    def proc(env):
        yield env.timeout(5)
        seen.append(env.now)

    env.process(proc(env))
    env.run(until=5)
    assert seen == []
    env.run(until=6)
    assert seen == [5]


def test_run_until_past_time_raises():
    env = Environment()
    env.run(until=10)
    with pytest.raises(ValueError):
        env.run(until=5)


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2)
        return "done"

    p = env.process(proc(env))
    assert env.run(until=p) == "done"
    assert env.now == 2


def test_run_until_event_already_processed():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        return 7

    p = env.process(proc(env))
    env.run()
    assert env.run(until=p) == 7


def test_run_until_untriggered_event_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(RuntimeError, match="drained"):
        env.run(until=ev)


def test_event_succeed_value():
    env = Environment()
    ev = env.event()
    got = []

    def waiter(env, ev):
        got.append((yield ev))

    def firer(env, ev):
        yield env.timeout(1)
        ev.succeed(99)

    env.process(waiter(env, ev))
    env.process(firer(env, ev))
    env.run()
    assert got == [99]
    assert ev.triggered and ev.processed and ev.ok
    assert ev.value == 99


def test_event_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(AttributeError):
        _ = ev.value


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)
    with pytest.raises(RuntimeError):
        ev.fail(ValueError())


def test_event_fail_propagates_into_process():
    env = Environment()
    caught = []

    def waiter(env, ev):
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    ev = env.event()
    env.process(waiter(env, ev))

    def firer(env, ev):
        yield env.timeout(1)
        ev.fail(ValueError("boom"))

    env.process(firer(env, ev))
    env.run()
    assert caught == ["boom"]


def test_unhandled_failure_escapes_run():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("unhandled"))
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_defused_failure_is_silent():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("nope"))
    ev.defused()
    env.run()  # must not raise


def test_fail_requires_exception():
    env = Environment()
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_process_exception_propagates_to_waiter():
    env = Environment()
    caught = []

    def child(env):
        yield env.timeout(1)
        raise KeyError("inside child")

    def parent(env):
        try:
            yield env.process(child(env))
        except KeyError as exc:
            caught.append(exc.args[0])

    env.process(parent(env))
    env.run()
    assert caught == ["inside child"]


def test_process_unhandled_exception_escapes_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise ZeroDivisionError

    env.process(bad(env))
    with pytest.raises(ZeroDivisionError):
        env.run()


def test_process_return_value_via_stopiteration():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        return 123

    values = []

    def parent(env):
        values.append((yield env.process(child(env))))

    env.process(parent(env))
    env.run()
    assert values == [123]


def test_stop_process_exits_with_value():
    env = Environment()

    def child(env):
        yield env.timeout(1)
        raise StopProcess("early")
        yield env.timeout(100)  # never reached

    p = env.process(child(env))
    assert env.run(until=p) == "early"
    assert env.now == 1


def test_process_is_alive_lifecycle():
    env = Environment()

    def proc(env):
        yield env.timeout(5)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_yield_non_event_fails_process():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="non-event"):
        env.run()


def test_interrupt_delivers_cause():
    env = Environment()
    causes = []

    def victim(env):
        try:
            yield env.timeout(100)
        except Interrupt as exc:
            causes.append(exc.cause)
            causes.append(env.now)

    def attacker(env, p):
        yield env.timeout(3)
        p.interrupt("stop that")

    p = env.process(victim(env))
    env.process(attacker(env, p))
    env.run()
    assert causes == ["stop that", 3]


def test_interrupt_leaves_target_pending_and_reyieldable():
    env = Environment()
    log = []

    def victim(env):
        to = env.timeout(10)
        try:
            yield to
        except Interrupt:
            log.append(("interrupted", env.now))
            yield to  # resume waiting on the same timeout
            log.append(("fired", env.now))

    def attacker(env, p):
        yield env.timeout(4)
        p.interrupt()

    p = env.process(victim(env))
    env.process(attacker(env, p))
    env.run()
    assert log == [("interrupted", 4), ("fired", 10)]


def test_interrupt_terminated_process_raises():
    env = Environment()

    def proc(env):
        yield env.timeout(1)

    p = env.process(proc(env))
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_process_cannot_interrupt_itself():
    env = Environment()
    errors = []

    def proc(env):
        yield env.timeout(1)
        try:
            env.active_process.interrupt()
        except RuntimeError as exc:
            errors.append(str(exc))

    env.process(proc(env))
    env.run()
    assert errors and "itself" in errors[0]


def test_active_process_tracking():
    env = Environment()
    seen = []

    def proc(env):
        seen.append(env.active_process)
        yield env.timeout(1)

    p = env.process(proc(env))
    assert env.active_process is None
    env.run()
    assert seen == [p]
    assert env.active_process is None


def test_deterministic_fifo_ordering_at_same_time():
    env = Environment()
    order = []

    def proc(env, name):
        yield env.timeout(5)
        order.append(name)

    for name in "abcde":
        env.process(proc(env, name))
    env.run()
    assert order == list("abcde")


def test_step_empty_schedule_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_peek():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(7)
    assert env.peek() == 7


def test_schedule_callback():
    env = Environment()
    hits = []
    env.schedule_callback(2.5, lambda: hits.append(env.now))
    env.run()
    assert hits == [2.5]


def test_nested_process_chains():
    env = Environment()

    def level3(env):
        yield env.timeout(1)
        return 3

    def level2(env):
        v = yield env.process(level3(env))
        yield env.timeout(1)
        return v + 2

    def level1(env):
        v = yield env.process(level2(env))
        return v + 1

    p = env.process(level1(env))
    assert env.run(until=p) == 6
    assert env.now == 2


def test_many_processes_complete():
    env = Environment()
    done = []

    def proc(env, i):
        yield env.timeout(i % 7)
        done.append(i)

    for i in range(500):
        env.process(proc(env, i))
    env.run()
    assert sorted(done) == list(range(500))
