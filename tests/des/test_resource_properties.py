"""Property tests: Resource semantics against a reference model.

Random workloads of request/hold/release cycles are checked against an
oracle: at no instant do more than ``capacity`` holders exist, grants
are FIFO among waiting requests, and total busy time matches the union
of holding intervals.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Environment, Resource


@given(
    capacity=st.integers(min_value=1, max_value=4),
    jobs=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=20.0),  # arrival
            st.floats(min_value=0.01, max_value=5.0),  # hold
        ),
        min_size=1,
        max_size=25,
    ),
)
@settings(max_examples=60, deadline=None)
def test_property_capacity_never_exceeded(capacity, jobs):
    env = Environment()
    res = Resource(env, capacity=capacity)
    holding = [0]
    max_holding = [0]
    grants = []

    def job(env, jid, arrival, hold):
        yield env.timeout(arrival)
        with res.request() as req:
            yield req
            grants.append((env.now, jid))
            holding[0] += 1
            max_holding[0] = max(max_holding[0], holding[0])
            yield env.timeout(hold)
            holding[0] -= 1

    for jid, (arrival, hold) in enumerate(jobs):
        env.process(job(env, jid, arrival, hold))
    env.run()

    assert max_holding[0] <= capacity
    assert len(grants) == len(jobs)
    assert holding[0] == 0
    assert res.count == 0 and res.queue_length == 0
    # Grant times never decrease (the log is in processing order).
    times = [t for t, _ in grants]
    assert all(b >= a for a, b in zip(times, times[1:]))


@given(
    holds=st.lists(
        st.floats(min_value=0.01, max_value=3.0), min_size=2, max_size=12
    )
)
@settings(max_examples=40, deadline=None)
def test_property_fifo_grant_order_same_arrival(holds):
    """Requests created in order at the same instant are granted in order."""
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def job(env, jid, hold):
        with res.request() as req:
            yield req
            order.append(jid)
            yield env.timeout(hold)

    for jid, hold in enumerate(holds):
        env.process(job(env, jid, hold))
    env.run()
    assert order == list(range(len(holds)))


@given(
    jobs=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=10.0),
            st.floats(min_value=0.05, max_value=2.0),
        ),
        min_size=1,
        max_size=15,
    )
)
@settings(max_examples=40, deadline=None)
def test_property_busy_time_matches_interval_union(jobs):
    """For capacity 1, busy time equals the sum of actual holds."""
    env = Environment()
    res = Resource(env, capacity=1)
    total_hold = [0.0]

    def job(env, arrival, hold):
        yield env.timeout(arrival)
        with res.request() as req:
            yield req
            start = env.now
            yield env.timeout(hold)
            total_hold[0] += env.now - start

    for arrival, hold in jobs:
        env.process(job(env, arrival, hold))
    env.run()
    assert abs(res.busy_time() - total_hold[0]) < 1e-9
