"""Tests for composite events (AllOf / AnyOf / operator composition)."""

import pytest

from repro.des import AllOf, AnyOf, Environment


def test_all_of_waits_for_every_event():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(1, value="a")
        t2 = env.timeout(5, value="b")
        got = yield AllOf(env, [t1, t2])
        results.append((env.now, list(got.values())))

    env.process(proc(env))
    env.run()
    assert results == [(5, ["a", "b"])]


def test_any_of_fires_on_first():
    env = Environment()
    results = []

    def proc(env):
        t1 = env.timeout(1, value="fast")
        t2 = env.timeout(5, value="slow")
        got = yield AnyOf(env, [t1, t2])
        results.append((env.now, list(got.values())))

    env.process(proc(env))
    env.run()
    assert results == [(1, ["fast"])]


def test_and_operator():
    env = Environment()
    hit = []

    def proc(env):
        yield env.timeout(2) & env.timeout(3)
        hit.append(env.now)

    env.process(proc(env))
    env.run()
    assert hit == [3]


def test_or_operator():
    env = Environment()
    hit = []

    def proc(env):
        yield env.timeout(2) | env.timeout(3)
        hit.append(env.now)

    env.process(proc(env))
    env.run()
    assert hit == [2]


def test_empty_all_of_triggers_immediately():
    env = Environment()
    hit = []

    def proc(env):
        yield AllOf(env, [])
        hit.append(env.now)

    env.process(proc(env))
    env.run()
    assert hit == [0]


def test_condition_value_mapping_protocol():
    env = Environment()
    captured = {}

    def proc(env):
        t1 = env.timeout(1, value=10)
        t2 = env.timeout(2, value=20)
        got = yield AllOf(env, [t1, t2])
        captured["len"] = len(got)
        captured["contains"] = t1 in got
        captured["getitem"] = got[t1]
        captured["dict"] = got.todict()
        captured["items"] = list(got.items())
        # ConditionValue.keys() is ordered (list-backed), not a dict.
        captured["keys"] = list(got.keys())  # simlint: disable=REP002

    env.process(proc(env))
    env.run()
    assert captured["len"] == 2
    assert captured["contains"] is True
    assert captured["getitem"] == 10
    assert set(captured["dict"].values()) == {10, 20}
    assert len(captured["items"]) == 2
    assert len(captured["keys"]) == 2


def test_condition_value_missing_key_raises():
    env = Environment()

    def proc(env):
        t1 = env.timeout(1)
        t2 = env.timeout(2)
        got = yield AllOf(env, [t1])
        with pytest.raises(KeyError):
            got[t2]

    env.process(proc(env))
    env.run()


def test_nested_conditions_flatten():
    env = Environment()
    values = []

    def proc(env):
        a = env.timeout(1, value="a")
        b = env.timeout(2, value="b")
        c = env.timeout(3, value="c")
        got = yield (a & b) & c
        values.extend(got.values())

    env.process(proc(env))
    env.run()
    assert values == ["a", "b", "c"]


def test_any_of_includes_simultaneous_events():
    env = Environment()
    counts = []

    def proc(env):
        a = env.timeout(1, value="a")
        b = env.timeout(1, value="b")
        got = yield AnyOf(env, [a, b])
        counts.append(len(got))

    env.process(proc(env))
    env.run()
    # Only the first has been *processed* when the condition fires, but
    # ConditionValue exposes everything already *triggered*.
    assert counts[0] >= 1


def test_condition_failure_propagates():
    env = Environment()
    caught = []

    def proc(env):
        good = env.timeout(5)
        bad = env.event()
        try:
            yield good & bad
        except ValueError as exc:
            caught.append(str(exc))

    def failer(env, get_bad):
        yield env.timeout(1)
        get_bad().fail(ValueError("part failed"))

    bad_holder = []

    def proc2(env):
        good = env.timeout(5)
        bad = env.event()
        bad_holder.append(bad)
        try:
            yield good & bad
        except ValueError as exc:
            caught.append(str(exc))

    env.process(proc2(env))

    def failer2(env):
        yield env.timeout(1)
        bad_holder[0].fail(ValueError("part failed"))

    env.process(failer2(env))
    env.run()
    assert caught == ["part failed"]


def test_condition_rejects_foreign_env():
    env1 = Environment()
    env2 = Environment()
    t1 = env1.timeout(1)
    t2 = env2.timeout(1)
    with pytest.raises(ValueError):
        AllOf(env1, [t1, t2])
    # Drain env2's queue so nothing dangles.
    env2.run()
    env1.run()


def test_all_of_with_already_processed_event():
    env = Environment()
    hits = []

    def proc(env):
        t1 = env.timeout(1, value=1)
        yield t1
        # t1 is processed now; combine it with a fresh timeout.
        got = yield AllOf(env, [t1, env.timeout(2, value=2)])
        hits.append((env.now, sorted(got.values())))

    env.process(proc(env))
    env.run()
    assert hits == [(3, [1, 2])]
