"""Cross-variant equivalence: every kernel configuration must agree.

The kernel ships two schedulers (binary heap and calendar queue), an
event free-list pool, and a callback-chain request fast path.  All are
pure optimizations: for a fixed seed, every combination must produce the
*same simulation* — identical event orderings on randomized storms,
identical SimResults, and byte-identical ``repro reproduce`` reports.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.cluster import ClusterConfig
from repro.des import Environment, Interrupt, Resource
from repro.servers import make_policy
from repro.sim.driver import Simulation
from repro.workload import build_fileset, generate_trace

#: (scheduler, pooling) kernel variants.
KERNEL_VARIANTS = list(itertools.product(["heap", "calendar"], [True, False]))


# -- randomized event storms -------------------------------------------------


def _storm(scheduler: str, pooling: bool, seed: int):
    """A seeded blizzard of timeouts, ties, priorities, resource contention,
    interrupts and failures; returns the processed-event log."""
    rng = random.Random(seed)
    env = Environment(scheduler=scheduler, pool_events=pooling)
    res = Resource(env, capacity=2)
    log = []

    def worker(wid):
        for step in range(rng.randint(3, 12)):
            # Integer delays force heavy (time, priority) ties.
            delay = rng.choice([0, 0, 1, 1, 2, 5])
            try:
                yield env.timeout(delay, value=(wid, step))
            except Interrupt as i:
                log.append((env.now, "interrupted", wid, step, str(i.cause)))
                continue
            log.append((env.now, "tick", wid, step))
            if rng.random() < 0.4:
                try:
                    with res.request() as req:
                        yield req
                        log.append((env.now, "hold", wid, step))
                        yield env.timeout(rng.choice([0, 1, 3]))
                    log.append((env.now, "release", wid, step))
                except Interrupt as i:
                    log.append((env.now, "interrupted-res", wid, step, str(i.cause)))

    def chaos(procs):
        for _ in range(10):
            yield env.timeout(rng.choice([1, 2, 3]))
            victim = rng.choice(procs)
            if victim.is_alive and victim is not env.active_process:
                victim.interrupt(cause=f"chaos@{env.now}")
                log.append((env.now, "interrupt-sent"))

    def late_caller():
        for i in range(8):
            env.call_later(
                rng.choice([0.0, 1.0, 2.5]),
                lambda _e, i=i: log.append((env.now, "call_later", i)),
                priority=rng.choice([0, 1]),
            )
            yield env.timeout(1)

    def failer():
        yield env.timeout(7)
        ev = env.event()
        ev.callbacks.append(lambda e: log.append((env.now, "failed-seen")))
        ev.defused()
        ev.fail(RuntimeError("storm failure"))
        yield env.timeout(1)

    procs = [env.process(worker(w)) for w in range(6)]
    env.process(chaos(procs))
    env.process(late_caller())
    env.process(failer())
    env.run()
    return log


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 17])
def test_storm_identical_across_variants(seed):
    reference = _storm("heap", True, seed)
    assert reference, "storm produced no events"
    for scheduler, pooling in KERNEL_VARIANTS[1:]:
        assert _storm(scheduler, pooling, seed) == reference, (
            f"scheduler={scheduler} pooling={pooling} diverged from "
            "heap+pool on the same seed"
        )


def test_storm_final_state_identical():
    """Beyond ordering: clocks and event counts agree too."""
    for seed in (5, 6):
        finals = set()
        for scheduler, pooling in KERNEL_VARIANTS:
            env = Environment(scheduler=scheduler, pool_events=pooling)
            rng = random.Random(seed)

            def burst():
                for _ in range(200):
                    yield env.timeout(rng.choice([0, 1, 1, 2, 7]))

            env.process(burst())
            env.run()
            finals.add((env.now, env.event_count))
        assert len(finals) == 1, f"final states diverged: {finals}"


# -- full simulations --------------------------------------------------------


def _sim_result(monkeypatch, scheduler, pooling, fastpath, failures=None):
    monkeypatch.setenv("REPRO_DES_SCHEDULER", scheduler)
    monkeypatch.setenv("REPRO_DES_POOL", "1" if pooling else "0")
    monkeypatch.setenv("REPRO_SIM_FASTPATH", "1" if fastpath else "0")
    fs = build_fileset(120, 15 * 1024, 12 * 1024, 0.9, seed=3, name="eq")
    trace = generate_trace(fs, 1200, seed=4, name="eq")
    sim = Simulation(
        trace,
        make_policy("l2s"),
        ClusterConfig(nodes=4),
        passes=2,
        failures=failures,
    )
    return sim.run()


@pytest.mark.parametrize("failures", [None, [(1, 300)]], ids=["healthy", "crash"])
def test_simulation_identical_across_all_variants(monkeypatch, failures):
    """SimResult equality across scheduler x pooling x fastpath (8 ways),
    healthy and with a mid-run node crash."""
    reference = None
    for scheduler, pooling in KERNEL_VARIANTS:
        for fastpath in (True, False):
            r = _sim_result(monkeypatch, scheduler, pooling, fastpath, failures)
            if reference is None:
                reference = r
            else:
                assert r == reference, (
                    f"scheduler={scheduler} pooling={pooling} "
                    f"fastpath={fastpath} changed the simulation"
                )


@pytest.mark.parametrize("policy", ["traditional", "lard"])
def test_other_policies_fastpath_equivalence(monkeypatch, policy):
    fs = build_fileset(120, 15 * 1024, 12 * 1024, 0.9, seed=3, name="eq")
    trace = generate_trace(fs, 1000, seed=4, name="eq")
    results = []
    for fastpath in ("1", "0"):
        monkeypatch.setenv("REPRO_SIM_FASTPATH", fastpath)
        sim = Simulation(
            trace, make_policy(policy), ClusterConfig(nodes=4), passes=2
        )
        results.append(sim.run())
    assert results[0] == results[1]


# -- end-to-end report bytes -------------------------------------------------


@pytest.mark.slow
def test_reproduce_report_byte_identical_across_kernels(monkeypatch, tmp_path):
    """`repro reproduce --workers 2` output must not depend on the kernel
    variant (workers inherit the variant through the environment)."""
    from repro.experiments.reproduce import write_report

    texts = {}
    for scheduler in ("heap", "calendar"):
        monkeypatch.setenv("REPRO_DES_SCHEDULER", scheduler)
        monkeypatch.setenv("REPRO_DES_POOL", "1" if scheduler == "heap" else "0")
        out = tmp_path / f"report-{scheduler}.md"
        write_report(
            str(out),
            num_requests=800,
            traces=("calgary",),
            node_counts=(2, 4),
            workers=2,
            timing_footer=False,
        )
        texts[scheduler] = out.read_bytes()
    assert texts["heap"] == texts["calendar"]
