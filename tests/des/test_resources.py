"""Tests for Resource / PriorityResource / Container."""

import pytest

from repro.des import Container, Environment, PriorityResource, Resource


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    granted = []

    def user(env, res, name, hold):
        with res.request() as req:
            yield req
            granted.append((name, env.now))
            yield env.timeout(hold)

    env.process(user(env, res, "a", 10))
    env.process(user(env, res, "b", 10))
    env.process(user(env, res, "c", 10))
    env.run()
    assert granted == [("a", 0), ("b", 0), ("c", 10)]


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(env, res, name):
        with res.request() as req:
            yield req
            order.append(name)
            yield env.timeout(1)

    for name in "abcd":
        env.process(user(env, res, name))
    env.run()
    assert order == list("abcd")


def test_resource_counts_and_queue_length():
    env = Environment()
    res = Resource(env, capacity=1)
    snapshots = []

    def user(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(5)

    def observer(env, res):
        yield env.timeout(1)
        snapshots.append((res.count, res.queue_length))

    env.process(user(env, res))
    env.process(user(env, res))
    env.process(user(env, res))
    env.process(observer(env, res))
    env.run()
    assert snapshots == [(1, 2)]
    assert res.count == 0
    assert res.total_served == 3


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_release_without_hold_raises():
    env = Environment()
    res = Resource(env, capacity=1)

    def bad(env, res):
        req = res.request()
        yield req
        req.release()
        with pytest.raises(RuntimeError):
            req.release()

    env.process(bad(env, res))
    env.run()


def test_cancel_queued_request():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(10)

    def impatient(env, res):
        req = res.request()
        result = yield req | env.timeout(2)
        if req not in result:
            req.cancel()
            order.append(("gave up", env.now))

    def patient(env, res):
        with res.request() as req:
            yield req
            order.append(("patient", env.now))

    env.process(holder(env, res))
    env.process(impatient(env, res))
    env.process(patient(env, res))
    env.run()
    assert ("gave up", 2) in order
    assert ("patient", 10) in order


def test_resource_busy_time_accounting():
    env = Environment()
    res = Resource(env, capacity=1)

    def user(env, res, start, hold):
        yield env.timeout(start)
        with res.request() as req:
            yield req
            yield env.timeout(hold)

    env.process(user(env, res, 0, 3))
    env.process(user(env, res, 5, 2))
    env.run()
    assert res.busy_time() == pytest.approx(5.0)
    assert res.utilization(env.now) == pytest.approx(5.0 / 7.0)


def test_resource_reset_accounting():
    env = Environment()
    res = Resource(env, capacity=1)

    def user(env, res, hold):
        with res.request() as req:
            yield req
            yield env.timeout(hold)

    env.process(user(env, res, 4))
    env.run()
    res.reset_accounting()
    assert res.busy_time() == 0.0
    assert res.total_served == 0

    def user2(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(1)

    env.process(user2(env, res))
    env.run()
    assert res.busy_time() == pytest.approx(1.0)


def test_reset_accounting_while_busy():
    env = Environment()
    res = Resource(env, capacity=1)

    def user(env, res):
        with res.request() as req:
            yield req
            yield env.timeout(10)

    def resetter(env, res):
        yield env.timeout(4)
        res.reset_accounting()

    env.process(user(env, res))
    env.process(resetter(env, res))
    env.run()
    # Busy from t=4 (reset) to t=10.
    assert res.busy_time() == pytest.approx(6.0)


def test_priority_resource_orders_by_priority():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder(env, res):
        with res.request(priority=0) as req:
            yield req
            yield env.timeout(5)

    def user(env, res, name, prio, delay):
        yield env.timeout(delay)
        with res.request(priority=prio) as req:
            yield req
            order.append(name)
            yield env.timeout(1)

    env.process(holder(env, res))
    env.process(user(env, res, "low", 5, 1))
    env.process(user(env, res, "high", 1, 2))
    env.process(user(env, res, "mid", 3, 3))
    env.run()
    assert order == ["high", "mid", "low"]


def test_priority_resource_fifo_within_priority():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder(env, res):
        with res.request(priority=0) as req:
            yield req
            yield env.timeout(5)

    def user(env, res, name, delay):
        yield env.timeout(delay)
        with res.request(priority=2) as req:
            yield req
            order.append(name)
            yield env.timeout(1)

    env.process(holder(env, res))
    env.process(user(env, res, "first", 1))
    env.process(user(env, res, "second", 2))
    env.run()
    assert order == ["first", "second"]


def test_container_put_get():
    env = Environment()
    tank = Container(env, capacity=100, init=50)
    levels = []

    def producer(env, tank):
        yield tank.put(30)
        levels.append(("after put", tank.level))

    def consumer(env, tank):
        yield env.timeout(1)
        yield tank.get(70)
        levels.append(("after get", tank.level))

    env.process(producer(env, tank))
    env.process(consumer(env, tank))
    env.run()
    assert levels == [("after put", 80), ("after get", 10)]


def test_container_get_blocks_until_available():
    env = Environment()
    tank = Container(env, capacity=10, init=0)
    times = []

    def consumer(env, tank):
        yield tank.get(5)
        times.append(env.now)

    def producer(env, tank):
        yield env.timeout(3)
        yield tank.put(5)

    env.process(consumer(env, tank))
    env.process(producer(env, tank))
    env.run()
    assert times == [3]


def test_container_put_blocks_when_full():
    env = Environment()
    tank = Container(env, capacity=10, init=10)
    times = []

    def producer(env, tank):
        yield tank.put(4)
        times.append(env.now)

    def consumer(env, tank):
        yield env.timeout(2)
        yield tank.get(6)

    env.process(producer(env, tank))
    env.process(consumer(env, tank))
    env.run()
    assert times == [2]


def test_container_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=0)
    with pytest.raises(ValueError):
        Container(env, capacity=5, init=6)
    tank = Container(env, capacity=5)
    with pytest.raises(ValueError):
        tank.put(0)
    with pytest.raises(ValueError):
        tank.get(-1)
