"""Tests for simulation measurement helpers."""

import pytest

from repro.des import Environment, RateMeter, Tally, TimeWeightedValue


def test_time_weighted_mean_piecewise():
    env = Environment()
    tw = TimeWeightedValue(env, initial=0)

    def proc(env):
        yield env.timeout(2)
        tw.set(10)  # value 0 for [0,2)
        yield env.timeout(3)
        tw.set(4)  # value 10 for [2,5)
        yield env.timeout(5)  # value 4 for [5,10)

    env.process(proc(env))
    env.run()
    # area = 0*2 + 10*3 + 4*5 = 50 over 10
    assert tw.mean() == pytest.approx(5.0)
    assert tw.value == 4
    assert tw.maximum == 10


def test_time_weighted_add():
    env = Environment()
    tw = TimeWeightedValue(env, initial=1)
    tw.add(2)
    assert tw.value == 3
    tw.add(-1)
    assert tw.value == 2


def test_time_weighted_mean_at_t0():
    env = Environment()
    tw = TimeWeightedValue(env, initial=7)
    assert tw.mean() == 7


def test_time_weighted_reset():
    env = Environment()
    tw = TimeWeightedValue(env, initial=0)

    def proc(env):
        yield env.timeout(5)
        tw.set(100)
        yield env.timeout(5)
        tw.reset()
        yield env.timeout(10)

    env.process(proc(env))
    env.run()
    # After reset at t=10 with value 100, mean over [10,20) is 100.
    assert tw.mean() == pytest.approx(100.0)
    assert tw.maximum == 100


def test_tally_statistics():
    t = Tally()
    for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
        t.record(x)
    assert t.count == 8
    assert t.mean == pytest.approx(5.0)
    assert t.total == pytest.approx(40.0)
    assert t.minimum == 2.0
    assert t.maximum == 9.0
    # Sample variance of this classic dataset is 32/7.
    assert t.variance == pytest.approx(32.0 / 7.0)
    assert t.stdev == pytest.approx((32.0 / 7.0) ** 0.5)


def test_tally_empty():
    t = Tally()
    assert t.count == 0
    assert t.mean == 0.0
    assert t.variance == 0.0
    assert t.minimum == 0.0
    assert t.maximum == 0.0


def test_tally_reset():
    t = Tally()
    t.record(5)
    t.reset()
    assert t.count == 0
    assert t.mean == 0.0


def test_tally_reset_restores_every_accumulator():
    """Reset returns every field to its initial state — min/max sentinels
    included — and post-reset statistics match a fresh Tally exactly."""
    t = Tally()
    for x in [1.0, -3.0, 12.0]:
        t.record(x)
    t.reset()
    assert t.count == 0
    assert t.total == 0.0
    assert t.variance == 0.0
    assert t.minimum == 0.0
    assert t.maximum == 0.0
    fresh = Tally()
    for x in [2.0, 6.0]:
        t.record(x)
        fresh.record(x)
    assert t.mean == fresh.mean
    assert t.variance == fresh.variance
    assert (t.minimum, t.maximum) == (fresh.minimum, fresh.maximum)


def test_reset_semantics_identical_across_meters():
    """At a warmup boundary all three meters restart their window at the
    current time; a measurement made over the post-reset window alone is
    unaffected by anything recorded before it."""
    env = Environment()
    tw = TimeWeightedValue(env, initial=0)
    tally = Tally()
    meter = RateMeter(env)

    def warmup(env):
        # Warmup phase: noisy values that must leave no trace.
        yield env.timeout(3)
        tw.set(999)
        tally.record(999.0)
        meter.tick(50)
        yield env.timeout(2)
        # --- warmup boundary (t=5) ---
        tw.set(10)
        tw.reset()
        tally.reset()
        meter.reset()
        # Measured phase: constant level 10, one observation, 5 ticks
        # over 5 seconds.
        yield env.timeout(5)
        tally.record(7.0)
        meter.tick(5)

    env.process(warmup(env))
    env.run()
    assert tw.mean() == pytest.approx(10.0)
    assert tw.maximum == 10
    assert tally.count == 1 and tally.mean == pytest.approx(7.0)
    assert meter.rate() == pytest.approx(1.0)


def test_rate_meter():
    env = Environment()
    meter = RateMeter(env)

    def proc(env):
        for _ in range(10):
            yield env.timeout(2)
            meter.tick()

    env.process(proc(env))
    env.run()
    assert meter.count == 10
    assert meter.rate() == pytest.approx(0.5)


def test_rate_meter_reset_discards_warmup():
    env = Environment()
    meter = RateMeter(env)

    def proc(env):
        for _ in range(4):
            yield env.timeout(1)
            meter.tick()
        meter.reset()
        for _ in range(10):
            yield env.timeout(2)
            meter.tick()

    env.process(proc(env))
    env.run()
    assert meter.count == 10
    assert meter.rate() == pytest.approx(0.5)


def test_rate_meter_keep_times():
    env = Environment()
    meter = RateMeter(env, keep_times=True)

    def proc(env):
        yield env.timeout(1)
        meter.tick()
        yield env.timeout(1)
        meter.tick(2)

    env.process(proc(env))
    env.run()
    assert meter.times == [1, 2]


def test_rate_meter_zero_elapsed():
    env = Environment()
    meter = RateMeter(env)
    meter.tick()
    assert meter.rate() == 0.0
