"""Property test: the DES kernel is fully deterministic.

Random process graphs (timeouts, resources, stores, interrupts) must
produce byte-identical event traces across repeated runs — the
foundation of the simulator's reproducibility guarantees.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Environment, Resource, Store


def build_and_run(seed: int):
    """A randomized mini-simulation; returns its event log."""
    rng = random.Random(seed)
    env = Environment()
    log = []
    res = Resource(env, capacity=rng.randint(1, 3))
    store = Store(env, capacity=rng.randint(1, 5))

    def worker(env, name):
        for step in range(rng_local.randint(1, 4)):
            choice = rng_local.random()
            if choice < 0.4:
                with res.request() as req:
                    yield req
                    log.append(("res", name, env.now))
                    yield env.timeout(rng_local.uniform(0, 2))
            elif choice < 0.7:
                yield store.put((name, step))
                log.append(("put", name, env.now))
            else:
                yield env.timeout(rng_local.uniform(0, 1))
                log.append(("tick", name, env.now))

    def consumer(env):
        while True:
            item = yield store.get()
            log.append(("got", item[0], env.now))

    # A dedicated RNG whose draws happen deterministically at process
    # creation order (generator bodies draw lazily, so give each its
    # own pre-seeded stream).
    global rng_local
    rng_local = random.Random(seed + 1)

    env.process(consumer(env))
    for i in range(rng.randint(2, 6)):
        env.process(worker(env, f"w{i}"))
    env.run(until=50)
    return log


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_property_identical_runs(seed):
    assert build_and_run(seed) == build_and_run(seed)
