"""Unit tests for the request lifecycle against hand-built clusters."""

import numpy as np
import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.des import Environment
from repro.model import MB
from repro.servers import RoundRobinPolicy, make_policy
from repro.sim.lifecycle import NodeFailedError, client_request


def setup(nodes=2, policy_name="round-robin", cache_mb=1):
    env = Environment()
    cluster = Cluster(env, ClusterConfig(nodes=nodes, cache_bytes=cache_mb * MB))
    policy = make_policy(policy_name)
    policy.bind(cluster)
    return env, cluster, policy


def run_one(env, cluster, policy, index=0, file_id=0, size=10 * 1024):
    done = []
    env.process(
        client_request(
            cluster,
            policy,
            index,
            file_id,
            size,
            lambda i, t, fwd, miss: done.append((i, t, fwd, miss)),
        )
    )
    env.run()
    return done


def test_single_request_completes_and_reports():
    env, cluster, policy = setup()
    done = run_one(env, cluster, policy)
    assert len(done) == 1
    index, start, forwarded, miss = done[0]
    assert index == 0
    assert start == 0.0
    assert not forwarded
    assert miss  # cold cache


def test_request_time_breakdown_local_miss():
    """End-to-end time of an uncontended local-miss request is the sum of
    its stage times (Table 1)."""
    env, cluster, policy = setup()
    size = 10 * 1024
    run_one(env, cluster, policy, size=size)
    hw = cluster.config.hardware
    kb = 10.0
    expected = (
        hw.route_time(hw.request_kb)
        + hw.ni_message_time(hw.request_kb)
        + hw.parse_time()
        + hw.disk_time(kb)
        + hw.reply_time(kb)
        + hw.ni_reply_time(kb)
        + hw.route_time(kb)
    )
    assert env.now == pytest.approx(expected, rel=1e-9)


def test_second_request_hits_cache():
    env, cluster, policy = setup(nodes=1)
    run_one(env, cluster, policy, index=0, file_id=7)
    t1 = env.now
    done = run_one(env, cluster, policy, index=1, file_id=7)
    assert not done[0][3]  # no miss
    # Hit path is faster than the miss path by the disk time.
    assert env.now - t1 < t1


def test_forwarded_request_charges_handoff():
    env, cluster, policy = setup(nodes=4, policy_name="consistent-hash")
    # Find a file whose owner differs from the arrival node of index 0.
    owner0 = policy.owner_of(0)
    arrival = policy.initial_node(0, 0)
    fid = 0
    while policy.owner_of(fid) == arrival:
        fid += 1
    done = run_one(env, cluster, policy, index=0, file_id=fid)
    assert done[0][2]  # forwarded
    target = policy.owner_of(fid)
    assert cluster.node(target).completed == 1
    assert cluster.node(arrival).forwarded == 1
    assert cluster.net.message_counts.get("handoff") == 1
    # Forward CPU work happened at the arrival node.
    assert cluster.node(arrival).cpu.busy_time() > 0


def test_connection_opens_and_closes_at_service_node():
    env, cluster, policy = setup(nodes=1)
    states = []

    def watcher(env, node):
        while True:
            yield env.timeout(0.001)
            states.append(node.open_connections)

    node = cluster.node(0)
    env.process(watcher(env, node))
    env.process(
        client_request(cluster, policy, 0, 0, 100 * 1024)
    )
    env.run(until=0.05)
    assert max(states) == 1
    assert node.open_connections == 0
    assert node.completed == 1


def test_connection_closed_even_on_failure():
    """The finally block must close the connection if a stage fails."""
    env, cluster, policy = setup(nodes=1)

    # Sabotage the disk so fetch_file raises.
    def broken(node_id, file_id, size_bytes):
        raise RuntimeError("disk on fire")
        yield  # pragma: no cover

    cluster.fetch_file = broken
    env.process(client_request(cluster, policy, 0, 0, 1024))
    with pytest.raises(RuntimeError, match="disk on fire"):
        env.run()
    assert cluster.node(0).open_connections == 0


# -- abort paths (fault-injection runs) ---------------------------------------


def run_one_abortable(env, cluster, policy, index=0, file_id=0, size=10 * 1024):
    done, failed = [], []
    proc = env.process(
        client_request(
            cluster,
            policy,
            index,
            file_id,
            size,
            lambda i, t, fwd, miss: done.append(i),
            lambda i: failed.append(i),
        )
    )
    return proc, done, failed


def test_service_crash_aborts_and_fires_on_failed():
    env, cluster, policy = setup(nodes=1)
    proc, done, failed = run_one_abortable(env, cluster, policy)
    node = cluster.node(0)
    env.schedule_callback(1e-4, node.crash)
    env.run()
    assert failed == [0]
    assert done == []
    # The finally block released any connection the request held.
    assert node.open_connections == 0
    assert node.completed == 0


def test_incarnation_mismatch_aborts_after_quick_reboot():
    """A request dispatched against incarnation 0 must abort even if the
    node has already rebooted (as incarnation 1) by the time the request
    reaches its next stage boundary: its connection died with the old
    incarnation."""
    env, cluster, policy = setup(nodes=1)
    proc, done, failed = run_one_abortable(env, cluster, policy)
    node = cluster.node(0)
    env.schedule_callback(1e-4, node.crash)
    env.schedule_callback(2e-4, node.recover)
    env.run()
    assert not node.failed and node.incarnation == 1
    assert failed == [0]
    assert done == []


def test_abort_without_handler_propagates():
    env, cluster, policy = setup(nodes=1)
    env.process(client_request(cluster, policy, 0, 0, 10 * 1024))
    env.schedule_callback(1e-4, cluster.node(0).crash)
    with pytest.raises(NodeFailedError):
        env.run()
    assert cluster.node(0).open_connections == 0


def test_client_timeout_interrupt_aborts_request():
    """The driver models client timeouts by interrupting the request
    process; the lifecycle treats that exactly like a node failure."""
    env, cluster, policy = setup(nodes=1)
    proc, done, failed = run_one_abortable(env, cluster, policy)
    env.schedule_callback(1e-4, lambda: proc.interrupt("client timeout"))
    env.run()
    assert failed == [0]
    assert done == []
    assert cluster.node(0).open_connections == 0


def test_traditional_abort_balances_dispatcher_view():
    """An aborted request must not leave a phantom connection in the
    traditional dispatcher's assigned-connections view, whether it died
    before or after the service node opened the connection."""
    env, cluster, policy = setup(nodes=2, policy_name="traditional")
    proc, done, failed = run_one_abortable(env, cluster, policy)
    mid_flight = []

    def crash():
        mid_flight.append(list(policy.stats()["dispatcher_view"]))
        cluster.node(0).crash()
        policy.on_node_failed(0)

    env.schedule_callback(1e-4, crash)
    env.run()
    assert mid_flight == [[1, 0]]  # assignment was counted while in flight
    assert failed == [0]
    assert policy.stats()["dispatcher_view"] == [0, 0]


def test_router_contention_serializes_big_replies():
    env, cluster, policy = setup(nodes=2, cache_mb=64)
    big = 5000 * 1024  # 5 MB replies: 10 ms each through the router
    done = []
    for i in range(2):
        env.process(
            client_request(
                cluster, policy, i, i, big, lambda i, t, f, m: done.append(env.now)
            )
        )
    env.run()
    # The second reply's router transfer must wait for the first.
    assert done[1] - done[0] == pytest.approx(
        cluster.config.hardware.route_time(5000.0), rel=0.2
    )
