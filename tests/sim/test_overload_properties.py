"""Property tests: request conservation under admission shedding and
circuit breakers, across every scheduler x lifecycle variant.

The conservation identity is the overload layer's hardest contract:
every generated request resolves exactly once — completed, failed, or
shed at the front door — no matter how the admission controller, the
adaptive limit, and the breakers interleave with the DES's two request
lifecycles (callback fast path / generator path) and two event
schedulers (binary heap / calendar queue).  Hypothesis drives the
shape (rate, cap, deadline, trace seed); the variants are exercised
explicitly so a failure names its (fastpath, scheduler) cell.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig
from repro.model import MB
from repro.overload import OverloadControl
from repro.servers import make_policy
from repro.sim import Simulation
from repro.workload import build_fileset, generate_trace

VARIANTS = [
    ("1", "heap"),
    ("0", "heap"),
    ("1", "calendar"),
    ("0", "calendar"),
]


def make_trace(seed):
    fs = build_fileset(120, 12 * 1024, 10 * 1024, 0.9, seed=seed, name="ovp")
    return generate_trace(fs, 400, seed=seed + 1, name="ovp")


def run_variant(fastpath, scheduler, trace, rate, overload, policy):
    before = {
        k: os.environ.get(k)
        for k in ("REPRO_SIM_FASTPATH", "REPRO_DES_SCHEDULER")
    }
    os.environ["REPRO_SIM_FASTPATH"] = fastpath
    os.environ["REPRO_DES_SCHEDULER"] = scheduler
    try:
        sim = Simulation(
            trace,
            make_policy(policy),
            ClusterConfig(
                nodes=3, cache_bytes=2 * MB, multiprogramming_per_node=8
            ),
            passes=2,
            arrival_rate=rate,
            overload=overload,
            seed=3,
        )
        result = sim.run()
        return sim, result
    finally:
        for key, value in before.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def check_conservation(sim, result, trace):
    total = 2 * len(trace)
    assert result.requests_generated == total
    # Every request resolved exactly once; front-door sheds are a
    # subset of the failures and never go negative or exceed them.
    resolved = sim._completed + sim._failed
    assert resolved == total
    assert 0 <= sim._shed_front <= sim._failed
    assert result.requests_shed >= sim._shed_front
    # The admission books close: inflight drained, every admitted
    # request released its slot.
    admission = sim.overload.admission
    assert admission.inflight == 0
    assert not sim._admitted_idx
    assert admission.admitted + admission.shed_total >= admission.shed_total


@pytest.mark.parametrize("fastpath,scheduler", VARIANTS)
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=40),
    cap=st.integers(min_value=2, max_value=24),
    rate_x=st.floats(min_value=0.5, max_value=4.0),
)
def test_conservation_under_static_admission(fastpath, scheduler, seed, cap, rate_x):
    trace = make_trace(seed)
    overload = OverloadControl.default(
        3, max_inflight=cap, limiter_mode=None, deadline_s=0.05, seed=seed
    )
    sim, result = run_variant(
        fastpath, scheduler, trace, 800.0 * rate_x, overload, "round-robin"
    )
    check_conservation(sim, result, trace)


@pytest.mark.parametrize("fastpath,scheduler", VARIANTS)
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=40),
    mode=st.sampled_from(["aimd", "gradient"]),
    target_ms=st.floats(min_value=1.0, max_value=100.0),
)
def test_conservation_under_adaptive_limit_and_breakers(
    fastpath, scheduler, seed, mode, target_ms
):
    trace = make_trace(seed)
    overload = OverloadControl.default(
        3,
        limiter_mode=mode,
        target_latency_s=target_ms / 1000.0,
        deadline_s=0.1,
        seed=seed,
    )
    sim, result = run_variant(
        fastpath, scheduler, trace, 2500.0, overload, "lard"
    )
    check_conservation(sim, result, trace)
    # Sheds never feed the breakers: an overloaded-but-healthy cluster
    # must not trip a single breaker.
    assert sim.overload.breakers.trips == 0


@pytest.mark.parametrize("fastpath,scheduler", VARIANTS)
def test_variants_agree_on_the_books(fastpath, scheduler):
    """Same scenario, every variant: identical shed/complete totals
    (the lifecycle/scheduler choice must be invisible to the books)."""
    trace = make_trace(9)
    overload = OverloadControl.default(
        3, max_inflight=8, limiter_mode=None, deadline_s=0.05, seed=9
    )
    sim, result = run_variant(
        fastpath, scheduler, trace, 3000.0, overload, "round-robin"
    )
    check_conservation(sim, result, trace)
    books = (result.requests_shed, sim._completed, sim._failed)
    baseline = getattr(test_variants_agree_on_the_books, "_books", None)
    if baseline is None:
        test_variants_agree_on_the_books._books = books
    else:
        assert books == baseline, (fastpath, scheduler)
