"""Edge-case tests for the simulation driver."""

import pytest

from repro.cluster import ClusterConfig
from repro.model import MB
from repro.servers import make_policy
from repro.sim import Simulation
from repro.workload import FileSet, Trace, build_fileset, generate_trace

import numpy as np


def tiny_trace(n=5):
    fs = FileSet(sizes=np.full(10, 8 * 1024), alpha=1.0, name="tiny")
    return Trace("tiny", fs, np.arange(n) % 10)


def cfg(nodes=2, mpl=8):
    return ClusterConfig(
        nodes=nodes, cache_bytes=1 * MB, multiprogramming_per_node=mpl
    )


def test_single_request_trace():
    trace = tiny_trace(1)
    r = Simulation(trace, make_policy("round-robin"), cfg(), warmup_fraction=0.0).run()
    assert r.requests_measured == 1
    assert r.throughput_rps > 0


def test_trace_shorter_than_mpl():
    trace = tiny_trace(3)  # MPL is 16
    r = Simulation(trace, make_policy("l2s"), cfg(), warmup_fraction=0.0).run()
    assert r.requests_measured == 3


def test_zero_warmup_measures_everything():
    trace = tiny_trace(50)
    r = Simulation(trace, make_policy("l2s"), cfg(), warmup_fraction=0.0).run()
    assert r.requests_warmup == 0
    assert r.requests_measured == 50


def test_many_passes():
    trace = tiny_trace(30)
    sim = Simulation(trace, make_policy("l2s"), cfg(), passes=3)
    r = sim.run()
    assert r.requests_warmup == 60
    assert r.requests_measured == 30


def test_failure_trigger_beyond_total_never_fires():
    trace = tiny_trace(20)
    sim = Simulation(
        trace,
        make_policy("l2s"),
        cfg(),
        warmup_fraction=0.0,
        failures=[(1, 10_000)],
    )
    r = sim.run()
    assert not sim.cluster.node(1).failed
    assert r.requests_failed == 0


def test_fail_node_idempotent():
    trace = tiny_trace(20)
    sim = Simulation(trace, make_policy("l2s"), cfg(), warmup_fraction=0.0)
    sim.fail_node(1)
    sim.fail_node(1)  # second call is a no-op
    r = sim.run()
    assert sim.cluster.node(1).failed
    assert r.requests_measured + r.requests_failed == 20


def test_mismatched_policy_reuse_rejected_cleanly():
    """A policy instance is bound to one cluster; reusing it reflects the
    new cluster after rebinding (documented single-use semantics)."""
    trace = tiny_trace(10)
    policy = make_policy("l2s")
    Simulation(trace, policy, cfg(nodes=2), warmup_fraction=0.0).run()
    # Rebinding to a new simulation resets the policy state.
    r = Simulation(trace, policy, cfg(nodes=2), warmup_fraction=0.0).run()
    assert r.requests_measured == 10


def test_big_file_never_cached_still_served():
    """A file larger than the whole cache streams from disk every time."""
    fs = FileSet(sizes=np.array([4 * MB, 8 * 1024]), alpha=1.0, name="big")
    trace = Trace("big", fs, np.array([0, 0, 1, 0]))
    sim = Simulation(trace, make_policy("round-robin"), cfg(nodes=1), warmup_fraction=0.0)
    r = sim.run()
    assert r.requests_measured == 4
    # Three requests for the uncacheable file -> three misses.
    assert sim.cluster.node(0).cache.misses >= 3
