"""Tests for open-loop (Poisson) arrivals and latency recording."""

import pytest

from repro.cluster import ClusterConfig
from repro.model import MB
from repro.servers import make_policy
from repro.sim import Simulation
from repro.workload import build_fileset, generate_trace


@pytest.fixture(scope="module")
def trace():
    fs = build_fileset(200, 15 * 1024, 12 * 1024, 0.9, seed=21, name="otrace")
    return generate_trace(fs, 3000, seed=22, name="otrace")


def cfg(nodes=4):
    return ClusterConfig(nodes=nodes, cache_bytes=4 * MB, multiprogramming_per_node=8)


def run_open(trace, rate, policy="round-robin", passes=2, **kw):
    sim = Simulation(
        trace,
        make_policy(policy),
        cfg(),
        passes=passes,
        arrival_rate=rate,
        record_latencies=True,
        **kw,
    )
    return sim, sim.run()


def test_arrival_rate_validation(trace):
    with pytest.raises(ValueError):
        Simulation(trace, make_policy("l2s"), cfg(), arrival_rate=0.0)


def test_throughput_tracks_arrival_rate_below_saturation(trace):
    _, r = run_open(trace, rate=400.0)
    # Far below capacity: measured throughput ~ offered rate.
    assert r.throughput_rps == pytest.approx(400.0, rel=0.15)


def test_all_requests_complete_open_loop(trace):
    sim, r = run_open(trace, rate=500.0)
    assert r.requests_measured + r.requests_warmup == 2 * len(trace)


def test_latency_grows_with_load(trace):
    _, lo = run_open(trace, rate=300.0)
    _, hi = run_open(trace, rate=1200.0)
    assert hi.mean_response_s > lo.mean_response_s


def test_percentiles_recorded_and_ordered(trace):
    _, r = run_open(trace, rate=600.0)
    p = r.latency_percentiles
    assert set(p) == {"p50", "p90", "p95", "p99", "max"}
    assert p["p50"] <= p["p90"] <= p["p95"] <= p["p99"] <= p["max"]
    assert p["p50"] > 0


def test_percentiles_absent_without_recording(trace):
    sim = Simulation(trace, make_policy("round-robin"), cfg(), passes=2)
    r = sim.run()
    assert r.latency_percentiles == {}


def test_open_loop_latency_near_service_time_at_low_load(trace):
    """At trivial load there is no queueing: the mean response is close
    to the bare service-time sum (parse + reply + NI + router)."""
    _, r = run_open(trace, rate=50.0)
    hw = cfg().hardware
    size_kb = trace.mean_request_bytes() / 1024.0
    floor = (
        hw.route_time(hw.request_kb)
        + hw.ni_message_time(hw.request_kb)
        + hw.parse_time()
        + hw.reply_time(size_kb)
        + hw.ni_reply_time(size_kb)
        + hw.route_time(size_kb)
    )
    assert r.mean_response_s >= floor * 0.8
    assert r.mean_response_s < floor * 4.0


def test_open_loop_deterministic(trace):
    _, a = run_open(trace, rate=600.0, seed=5)
    _, b = run_open(trace, rate=600.0, seed=5)
    assert a.mean_response_s == b.mean_response_s
    _, c = run_open(trace, rate=600.0, seed=6)
    assert c.mean_response_s != a.mean_response_s


def test_open_loop_no_warmup(trace):
    sim, r = run_open(trace, rate=500.0, passes=1, warmup_fraction=0.0)
    assert r.requests_warmup == 0
    assert r.requests_measured == len(trace)
