"""Full-simulation behaviour on an unreliable interconnect."""

from dataclasses import asdict

import pytest

from repro.cluster import ClusterConfig
from repro.experiments import run_netfault_simulation
from repro.model import MB
from repro.netfaults import NetFaultConfig, NetFaultSchedule, RetrySpec
from repro.servers import make_policy
from repro.sim import Simulation
from repro.workload import build_fileset, generate_trace


@pytest.fixture(scope="module")
def trace():
    fs = build_fileset(250, 15 * 1024, 12 * 1024, 0.9, seed=13, name="nftrace")
    return generate_trace(fs, 4000, seed=14, name="nftrace")


def cfg(nodes=4, **kw):
    kw.setdefault("cache_bytes", 2 * MB)
    kw.setdefault("multiprogramming_per_node", 8)
    return ClusterConfig(nodes=nodes, **kw)


def result_of(trace, policy, config, **kw):
    sim = run_netfault_simulation(trace, policy, config, **kw)
    return sim, sim._result


def test_inert_config_is_byte_identical_to_no_config(trace):
    """Zero-knob guarantee: an inert NetFaultConfig changes nothing."""
    _, base = result_of(trace, "lard", cfg(net_faults=None))
    _, inert = result_of(trace, "lard", cfg(net_faults=NetFaultConfig()))
    assert asdict(base) == asdict(inert)


def test_inert_identity_holds_on_the_generator_lifecycle(trace, monkeypatch):
    monkeypatch.setenv("REPRO_SIM_FASTPATH", "0")
    _, base = result_of(trace, "l2s", cfg(net_faults=None))
    _, inert = result_of(trace, "l2s", cfg(net_faults=NetFaultConfig()))
    assert asdict(base) == asdict(inert)


def test_lossy_run_is_deterministic_for_a_seed(trace):
    nf = NetFaultConfig(loss_rate=0.01, dup_rate=0.002, seed=3)
    _, a = result_of(trace, "l2s", cfg(net_faults=nf))
    _, b = result_of(trace, "l2s", cfg(net_faults=nf))
    assert asdict(a) == asdict(b)
    assert a.message_stats  # per-kind counters present on netfault runs
    assert sum(
        row.get("dropped", 0) for row in a.message_stats.values()
    ) > 0


def test_lossy_run_reconciliation_books_close(trace):
    nf = NetFaultConfig(loss_rate=0.02, dup_rate=0.005, seed=5)
    _, r = result_of(trace, "lard", cfg(net_faults=nf))
    recon = r.message_reconciliation()
    assert recon and all(v == 0 for v in recon.values())
    assert r.netfault_summary["drop_causes"].get("loss", 0) > 0


def test_partition_heal_triggers_l2s_reannounce(trace):
    # Calibration twin: protocol on, fabric perfect — learns where the
    # measured window of the partition run will land.
    calib, _ = result_of(
        trace,
        "l2s",
        cfg(net_faults=NetFaultConfig(always_on=True)),
        view_max_age_s=0.2,
    )
    boundary = calib._measure_start
    span = calib._last_completion - boundary
    assert span > 0
    sched = NetFaultSchedule.partition(
        (0,), boundary + 0.3 * span, boundary + 0.6 * span
    )
    sim, r = result_of(
        trace,
        "l2s",
        cfg(net_faults=NetFaultConfig(schedule=sched)),
        view_max_age_s=0.2,
    )
    summary = r.netfault_summary
    assert summary["partitions"] == 1
    assert summary["heals"] == 1
    assert r.policy_stats["heal_reannounces"] >= 1
    assert summary["drop_causes"].get("partition", 0) > 0


def test_admission_control_sheds_under_netfaults(trace):
    config = cfg(
        net_faults=NetFaultConfig(always_on=True),
        admission_threshold=1,
        multiprogramming_per_node=16,
    )
    sim, r = result_of(trace, "l2s", config)
    assert r.requests_shed > 0
    assert r.requests_shed == sum(n.shed for n in sim.cluster.nodes)


def test_partitioned_dfs_falls_back_to_local_replica(trace):
    nf = NetFaultConfig(
        loss_rate=0.3,
        seed=2,
        default_spec=RetrySpec(
            timeout_s=1e-3, max_retries=1, base_backoff_s=0.0, cap_s=0.0
        ),
    )
    sim, r = result_of(
        trace, "traditional", cfg(net_faults=nf, replicated_disks=False)
    )
    assert sim.cluster.dfs.local_fallbacks > 0
    assert r.netfault_summary["dfs_local_fallbacks"] > 0
    # Degraded reads, not client-visible errors.
    assert r.requests_measured > 0


def test_partitioned_dfs_without_fallback_fails_requests(trace):
    nf = NetFaultConfig(
        loss_rate=0.3,
        seed=2,
        dfs_local_fallback=False,
        default_spec=RetrySpec(
            timeout_s=1e-3, max_retries=1, base_backoff_s=0.0, cap_s=0.0
        ),
    )
    sim, r = result_of(
        trace, "traditional", cfg(net_faults=nf, replicated_disks=False)
    )
    assert sim.cluster.dfs.remote_failures > 0
    assert r.requests_failed > 0


def test_netfault_run_forces_generator_lifecycle(trace):
    nf = NetFaultConfig(loss_rate=0.01)
    sim = Simulation(trace, make_policy("lard"), cfg(net_faults=nf), passes=2)
    assert not sim._fastpath
    base = Simulation(trace, make_policy("lard"), cfg(), passes=2)
    assert base._fastpath
