"""Tests for the persistent-connection (HTTP/1.1) simulation."""

import pytest

from repro.cluster import ClusterConfig
from repro.model import MB
from repro.servers import make_policy
from repro.sim import PersistentSimulation, Simulation, run_persistent_simulation
from repro.workload import build_fileset, generate_trace, sessionize


@pytest.fixture(scope="module")
def trace():
    fs = build_fileset(250, 15 * 1024, 12 * 1024, 0.9, seed=7, name="ptrace")
    return generate_trace(fs, 3000, seed=8, name="ptrace")


def cfg(nodes=4):
    return ClusterConfig(nodes=nodes, cache_bytes=2 * MB, multiprogramming_per_node=8)


def run_p(trace, policy_name, k, nodes=4, passes=2):
    sessions = sessionize(trace, k, seed=1)
    sim = PersistentSimulation(
        sessions, make_policy(policy_name), cfg(nodes), passes=passes
    )
    return sim, sim.run()


def test_all_requests_complete(trace):
    for policy in ("l2s", "lard", "traditional", "consistent-hash"):
        sim, r = run_p(trace, policy, 4.0)
        assert r.requests_measured + r.requests_warmup == 2 * len(trace)
        assert sum(r.node_completions) == r.requests_measured


def test_mean_one_equivalent_to_http10_driver(trace):
    """k=1 persistent mode must match the per-request driver closely."""
    _, persistent = run_p(trace, "l2s", 1.0)
    plain = Simulation(trace, make_policy("l2s"), cfg(), passes=2).run()
    assert persistent.throughput_rps == pytest.approx(
        plain.throughput_rps, rel=0.05
    )
    # Connection accounting differs slightly: the persistent driver
    # counts the connection at the accepting node until hand-off, which
    # nudges L2S's load views and with them a few forwarding decisions.
    assert persistent.forwarded_fraction == pytest.approx(
        plain.forwarded_fraction, abs=0.15
    )


def test_migrations_per_request_fall_with_connection_length(trace):
    _, r1 = run_p(trace, "l2s", 1.0)
    _, r8 = run_p(trace, "l2s", 8.0)
    assert r8.forwarded_fraction < r1.forwarded_fraction


def test_lard_relays_do_not_redecide(trace):
    sim, r = run_p(trace, "lard", 6.0)
    counts = sim.cluster.net.message_counts
    # Handoffs happen once per connection, relays for the rest.
    assert counts.get("handoff", 0) > 0
    assert counts.get("relay", 0) > counts.get("handoff", 0)
    # Migration fraction ~ 1/k.
    assert r.forwarded_fraction < 0.4


def test_lard_front_end_serves_nothing_persistent(trace):
    sim, r = run_p(trace, "lard", 4.0)
    assert r.node_completions[0] == 0
    assert len(sim.cluster.node(0).cache) == 0


def test_traditional_never_migrates(trace):
    sim, r = run_p(trace, "traditional", 4.0)
    assert r.forwarded_fraction == 0.0
    assert "handoff" not in sim.cluster.net.message_counts


def test_connections_all_closed(trace):
    sim, _ = run_p(trace, "l2s", 4.0)
    assert sim.cluster.connection_counts() == [0] * 4


def test_deterministic(trace):
    _, a = run_p(trace, "l2s", 4.0)
    _, b = run_p(trace, "l2s", 4.0)
    assert a.throughput_rps == b.throughput_rps


def test_passes_validation(trace):
    sessions = sessionize(trace, 2.0)
    with pytest.raises(ValueError):
        PersistentSimulation(sessions, make_policy("l2s"), cfg(), passes=0)


def test_runner_helper(trace):
    r = run_persistent_simulation(
        trace,
        make_policy("l2s"),
        nodes=2,
        mean_requests_per_connection=3.0,
        cache_bytes=2 * MB,
        passes=1,
    )
    assert r.throughput_rps > 0
    assert r.nodes == 2
