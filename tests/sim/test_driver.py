"""Tests for the closed-loop saturation driver and runner API."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig
from repro.model import MB
from repro.servers import make_policy
from repro.sim import Simulation, model_bound_for_trace, run_simulation
from repro.workload import FileSet, Trace, generate_trace, build_fileset


def small_trace(requests=2000, files=200, seed=0, name="small"):
    fs = build_fileset(files, 15 * 1024, 12 * 1024, 0.9, seed=seed, name=name)
    return generate_trace(fs, requests, seed=seed + 1, name=name)


def small_config(nodes=2, mpl=8):
    return ClusterConfig(
        nodes=nodes, cache_bytes=1 * MB, multiprogramming_per_node=mpl
    )


def test_simulation_completes_all_requests():
    trace = small_trace()
    sim = Simulation(trace, make_policy("round-robin"), small_config())
    result = sim.run()
    assert result.requests_measured + result.requests_warmup == len(trace)
    assert result.throughput_rps > 0
    assert result.sim_seconds > 0


def test_simulation_validation():
    trace = small_trace()
    with pytest.raises(ValueError):
        Simulation(trace.head(0), make_policy("round-robin"), small_config())
    with pytest.raises(ValueError):
        Simulation(trace, make_policy("round-robin"), small_config(), warmup_fraction=1.0)
    with pytest.raises(ValueError):
        Simulation(trace, make_policy("round-robin"), small_config(), passes=0)


def test_simulation_deterministic():
    a = Simulation(small_trace(), make_policy("l2s"), small_config()).run()
    b = Simulation(small_trace(), make_policy("l2s"), small_config()).run()
    assert a.throughput_rps == b.throughput_rps
    assert a.miss_rate == b.miss_rate
    assert a.node_completions == b.node_completions


def test_two_pass_mode_measures_second_pass():
    trace = small_trace(requests=1500)
    sim = Simulation(trace, make_policy("l2s"), small_config(), passes=2)
    result = sim.run()
    assert result.requests_warmup == 1500
    assert result.requests_measured == 1500


def test_two_pass_reduces_first_touch_misses():
    # Combined cache (4 x 4 MB) comfortably holds the ~6 MB working set,
    # so pass-2 misses are (nearly) only replication-induced.
    cfg = ClusterConfig(nodes=4, cache_bytes=4 * MB, multiprogramming_per_node=8)
    one = Simulation(
        small_trace(requests=3000, files=400),
        make_policy("l2s"),
        cfg,
        warmup_fraction=0.0,
    ).run()
    two = Simulation(
        small_trace(requests=3000, files=400),
        make_policy("l2s"),
        cfg,
        passes=2,
    ).run()
    assert two.miss_rate < one.miss_rate
    assert two.miss_rate < 0.05


def test_warmup_fraction_mode():
    trace = small_trace(requests=2000)
    sim = Simulation(
        trace, make_policy("round-robin"), small_config(), warmup_fraction=0.5
    )
    result = sim.run()
    assert result.requests_warmup == 1000
    assert result.requests_measured == 1000


def test_prewarm_enabled_for_local_policies_only():
    trace = small_trace()
    cfg = small_config()
    assert Simulation(trace, make_policy("round-robin"), cfg).prewarm_local_caches
    assert Simulation(trace, make_policy("traditional"), cfg).prewarm_local_caches
    assert not Simulation(trace, make_policy("l2s"), cfg).prewarm_local_caches
    assert not Simulation(trace, make_policy("lard"), cfg).prewarm_local_caches


def test_result_metrics_sane():
    trace = small_trace(requests=3000)
    result = Simulation(
        trace, make_policy("l2s"), small_config(nodes=4), passes=2
    ).run()
    assert 0.0 <= result.miss_rate <= 1.0
    assert 0.0 <= result.forwarded_fraction <= 1.0
    assert len(result.cpu_utilizations) == 4
    assert all(0.0 <= u <= 1.0 for u in result.cpu_utilizations)
    assert result.mean_response_s > 0
    assert result.messages_per_request >= 0
    assert sum(result.node_completions) == result.requests_measured
    assert result.load_imbalance >= 1.0
    assert 0.0 <= result.mean_cpu_idle <= 1.0
    assert "l2s" == result.policy
    assert isinstance(result.summary_row(), str)


def test_lard_result_front_end_serves_nothing():
    trace = small_trace(requests=2000)
    result = Simulation(
        trace, make_policy("lard"), small_config(nodes=4), passes=2
    ).run()
    assert result.node_completions[0] == 0
    assert result.forwarded_fraction == 1.0


def test_run_simulation_with_preset_and_policy_names():
    r = run_simulation(
        "calgary", "round-robin", nodes=2, num_requests=1500, passes=1,
        warmup_fraction=0.2,
    )
    assert r.trace == "calgary"
    assert r.policy == "round-robin"
    assert r.nodes == 2


def test_run_simulation_policy_kwargs():
    r = run_simulation(
        "calgary",
        "l2s",
        nodes=2,
        num_requests=1000,
        passes=1,
        overload_threshold=30,
    )
    assert r.policy == "l2s"
    trace = small_trace()
    with pytest.raises(ValueError):
        run_simulation(trace, make_policy("l2s"), nodes=2, overload_threshold=30)


def test_model_bound_for_trace_accepts_trace_and_name():
    by_name = model_bound_for_trace("calgary", nodes=8)
    assert by_name.throughput > 0
    trace = small_trace()
    by_trace = model_bound_for_trace(trace, nodes=8)
    assert by_trace.throughput > 0


def test_model_bound_scales_with_nodes_for_trace():
    t4 = model_bound_for_trace("rutgers", nodes=4).throughput
    t16 = model_bound_for_trace("rutgers", nodes=16).throughput
    assert t16 > t4
