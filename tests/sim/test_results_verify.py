"""SimResult.verify: the opt-in book-balancing check."""

import dataclasses

import pytest

from repro.model import MB
from repro.sim import SimResult, Simulation
from repro.workload import synthesize


def _result(**overrides):
    kwargs = dict(
        policy="l2s",
        trace="test",
        nodes=2,
        cache_bytes=8 * MB,
        requests_measured=90,
        requests_warmup=10,
        sim_seconds=1.0,
        throughput_rps=90.0,
        miss_rate=0.1,
        forwarded_fraction=0.2,
        cpu_utilizations=[0.5, 0.5],
        mean_response_s=0.01,
        messages_per_request=1.0,
        node_completions=[45, 45],
        requests_generated=100,
    )
    kwargs.update(overrides)
    return SimResult(**kwargs)


class TestConservation:
    def test_balanced_books_pass(self):
        assert _result().verify() == []

    def test_generated_zero_skips_the_identity(self):
        # Results built by older code paths carry no generated count.
        assert _result(requests_generated=0).verify() == []

    def test_missing_requests_are_reported(self):
        problems = _result(requests_measured=80).verify()
        assert any("request conservation" in p for p in problems)

    def test_warmup_failures_are_not_double_counted(self):
        # 5 requests failed before the boundary: they sit inside
        # requests_warmup (the boundary counts finished requests) AND
        # inside the run-wide requests_failed.
        r = _result(
            requests_warmup=15,
            requests_failed=5,
            requests_failed_warmup=5,
            requests_generated=105,
        )
        assert r.verify() == []

    def test_warmup_failures_cannot_exceed_totals(self):
        r = _result(requests_failed_warmup=3, requests_failed=1,
                    requests_generated=98)
        assert any("warmup failures" in p for p in r.verify())


class TestSanity:
    def test_negative_counters_are_reported(self):
        problems = _result(requests_retried=-1,
                           requests_generated=0).verify()
        assert problems == ["negative counter: requests_retried = -1"]

    def test_negative_window_is_reported(self):
        problems = _result(sim_seconds=-0.5, requests_generated=0).verify()
        assert any("negative measurement window" in p for p in problems)

    def test_message_residuals_are_reported(self):
        stats = {
            "handoff": {"sent": 10, "delivered": 8, "dropped": 1,
                        "in_flight": 0},
        }
        problems = _result(message_stats=stats,
                           requests_generated=0).verify()
        assert problems == [
            "message books for kind 'handoff': sent - delivered - "
            "dropped - in_flight = 1"
        ]


class TestDriverIntegration:
    @pytest.fixture(scope="class")
    def result(self):
        trace = synthesize("calgary", num_requests=300, seed=9)
        from repro.cluster import ClusterConfig
        from repro.servers import make_policy

        sim = Simulation(
            trace,
            make_policy("l2s"),
            ClusterConfig(nodes=2, cache_bytes=8 * MB),
            warmup_fraction=0.1,
            passes=1,
            seed=9,
        )
        return sim.run()

    def test_driver_results_verify_clean(self, result):
        assert result.verify() == []

    def test_driver_populates_generated(self, result):
        assert result.requests_generated == 300
        assert dataclasses.replace(
            result, requests_generated=299
        ).verify() != []
