"""Tests for node-failure injection and policy failover behaviour."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.des import Environment
from repro.model import MB
from repro.servers import make_policy
from repro.servers.base import ServiceUnavailable
from repro.sim import Simulation
from repro.workload import build_fileset, generate_trace


@pytest.fixture(scope="module")
def trace():
    fs = build_fileset(250, 15 * 1024, 12 * 1024, 0.9, seed=13, name="ftrace")
    return generate_trace(fs, 4000, seed=14, name="ftrace")


def cfg(nodes=4):
    return ClusterConfig(nodes=nodes, cache_bytes=2 * MB, multiprogramming_per_node=8)


def run_with_failure(trace, policy_name, node, trigger, nodes=4):
    sim = Simulation(
        trace,
        make_policy(policy_name),
        cfg(nodes),
        passes=2,
        failures=[(node, trigger)],
        record_timeline=True,
    )
    return sim, sim.run()


def test_failure_validation(trace):
    with pytest.raises(ValueError):
        Simulation(trace, make_policy("l2s"), cfg(), failures=[(9, 100)])
    with pytest.raises(ValueError):
        Simulation(trace, make_policy("l2s"), cfg(), failures=[(0, -1)])


def test_all_requests_accounted_for_after_failure(trace):
    for policy in ("l2s", "traditional", "round-robin", "consistent-hash"):
        sim, r = run_with_failure(trace, policy, node=2, trigger=5000)
        # Conservation: every injected request either completed or failed.
        assert sim._completed + sim._failed == 2 * len(trace)
        assert r.requests_failed == sim._failed >= 0


def test_failed_node_serves_nothing_after_crash(trace):
    sim, r = run_with_failure(trace, "l2s", node=2, trigger=4500)
    node = sim.cluster.node(2)
    assert node.failed
    assert node.open_connections == 0
    # The node completed nothing after the crash: its busy time stops.
    assert sim.cluster.connection_counts() == [0, 0, 0, 0]


def test_survivors_absorb_the_load(trace):
    sim, r = run_with_failure(trace, "l2s", node=1, trigger=4500)
    # Completions continue well past the crash.
    assert sim._completed > 4500 + 1000
    # The dead node stops completing.
    post = [n.completed for n in sim.cluster.nodes]
    assert post[1] < max(post)


def test_lard_front_end_death_is_total_outage(trace):
    sim, r = run_with_failure(trace, "lard", node=0, trigger=4500)
    # Every request after the crash fails.
    assert r.requests_failed > 0.3 * len(trace)


def test_lard_back_end_death_is_survivable(trace):
    sim, r = run_with_failure(trace, "lard", node=3, trigger=4500)
    assert r.requests_failed < 100
    assert sim._completed > 2 * len(trace) - 100


def test_policy_next_alive_helper():
    env = Environment()
    cluster = Cluster(env, ClusterConfig(nodes=3, cache_bytes=1 * MB))
    p = make_policy("round-robin")
    p.bind(cluster)
    p.on_node_failed(1)
    assert p._next_alive(1) == 2
    assert p._next_alive(0) == 0
    p.on_node_failed(2)
    assert p._next_alive(1) == 0
    p.on_node_failed(0)
    with pytest.raises(ServiceUnavailable):
        p._next_alive(0)


def test_l2s_prunes_server_sets_on_failure():
    env = Environment()
    cluster = Cluster(env, ClusterConfig(nodes=4, cache_bytes=1 * MB))
    p = make_policy("l2s")
    p.bind(cluster)
    p.decide(1, 10)  # node 1 serves file 10
    p.decide(2, 20)  # node 2 serves file 20
    p.on_node_failed(1)
    assert p.server_set(10) == []  # sole-server file resets
    assert p.server_set(20) == [2]
    # Nothing routes to node 1 anymore.
    d = p.decide(1, 30)
    assert d.target != 1


def test_chash_ring_remaps_failed_node():
    env = Environment()
    cluster = Cluster(env, ClusterConfig(nodes=4, cache_bytes=1 * MB))
    p = make_policy("consistent-hash")
    p.bind(cluster)
    owners_before = {f: p.owner_of(f) for f in range(300)}
    p.on_node_failed(2)
    moved = 0
    for f, old in owners_before.items():
        new = p.owner_of(f)
        assert new != 2
        if old != 2 and new != old:
            moved += 1
    # Only the failed node's files move (ring stability).
    assert moved == 0


def test_completion_timeline_recorded(trace):
    sim, r = run_with_failure(trace, "l2s", node=2, trigger=5000)
    assert len(sim.completion_times) == r.requests_measured
    assert all(b >= a for a, b in zip(sim.completion_times, sim.completion_times[1:]))
