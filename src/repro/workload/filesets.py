"""File populations: ids, sizes, and size-popularity correlation.

A :class:`FileSet` is the static content a simulated server stores: ``F``
files indexed by popularity rank (0 = hottest) with a size in bytes each.

Real WWW traces show heavy-tailed file sizes whose *request-weighted* mean
differs from the plain mean (Table 2: Calgary stores 42.9 KB files on
average but the average *requested* size is only 19.7 KB — hot files tend
to be small).  :func:`build_fileset` reproduces both moments: sizes are
drawn from a bounded lognormal matching the per-file mean, then assigned
to popularity ranks with a tilt chosen by bisection so that the
Zipf-weighted mean matches the requested-size target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .zipf import ZipfDistribution

__all__ = ["FileSet", "lognormal_sizes", "build_fileset"]

KB = 1024
#: Smallest file we generate (a bare HTTP response still has a body).
MIN_FILE_BYTES = 64


@dataclass(frozen=True)
class FileSet:
    """Static content of a server: per-rank file sizes in bytes.

    ``sizes[r]`` is the size of the file with popularity rank ``r``.
    """

    sizes: np.ndarray
    alpha: float
    name: str = "fileset"

    def __post_init__(self) -> None:
        sizes = np.ascontiguousarray(self.sizes, dtype=np.int64)
        if sizes.ndim != 1 or sizes.size == 0:
            raise ValueError("sizes must be a non-empty 1-D array")
        if (sizes <= 0).any():
            raise ValueError("all file sizes must be positive")
        object.__setattr__(self, "sizes", sizes)

    @property
    def num_files(self) -> int:
        return int(self.sizes.size)

    @property
    def total_bytes(self) -> int:
        """Total footprint (the server's working set size)."""
        return int(self.sizes.sum())

    @property
    def mean_file_bytes(self) -> float:
        return float(self.sizes.mean())

    def popularity(self) -> ZipfDistribution:
        """The Zipf popularity distribution over this population."""
        return ZipfDistribution(self.num_files, self.alpha)

    def mean_request_bytes(self) -> float:
        """Expected size of a *requested* file under the Zipf popularity."""
        return self.popularity().expected_mean_of(self.sizes.astype(np.float64))

    def size_of(self, rank: int) -> int:
        return int(self.sizes[rank])


def lognormal_sizes(
    num_files: int,
    mean_bytes: float,
    sigma: float = 1.6,
    rng: Optional[np.random.Generator] = None,
    max_bytes: Optional[float] = None,
) -> np.ndarray:
    """Draw a heavy-tailed (lognormal) file-size population.

    The lognormal ``mu`` is solved from the target ``mean_bytes`` given
    ``sigma`` (``mean = exp(mu + sigma^2/2)``); the sample is then rescaled
    to hit the mean exactly, clipped to ``[MIN_FILE_BYTES, max_bytes]``.

    ``sigma = 1.6`` yields coefficient-of-variation ≈ 3.4, in line with
    published WWW file-size characterizations (Arlitt & Williamson [2]).
    """
    if num_files <= 0:
        raise ValueError(f"num_files must be positive, got {num_files}")
    if mean_bytes <= MIN_FILE_BYTES:
        raise ValueError(f"mean_bytes must exceed {MIN_FILE_BYTES}, got {mean_bytes}")
    if rng is None:
        rng = np.random.default_rng()
    if max_bytes is None:
        # Bound the tail so no single file dwarfs the cache; the paper's
        # traces have multi-MB maxima against ~tens-of-KB means.
        max_bytes = 400.0 * mean_bytes
    mu = np.log(mean_bytes) - 0.5 * sigma * sigma
    sizes = rng.lognormal(mean=mu, sigma=sigma, size=num_files)
    sizes = np.clip(sizes, MIN_FILE_BYTES, max_bytes)
    # Iteratively rescale: clipping biases the mean, a couple of rounds fix it.
    for _ in range(8):
        current = sizes.mean()
        if abs(current - mean_bytes) / mean_bytes < 1e-6:
            break
        sizes = np.clip(sizes * (mean_bytes / current), MIN_FILE_BYTES, max_bytes)
    return np.maximum(1, np.round(sizes)).astype(np.int64)


def _tilted_assignment(
    sizes_sorted: np.ndarray,
    theta: float,
    noise: np.ndarray,
) -> np.ndarray:
    """Assign sorted sizes to popularity ranks with tilt ``theta``.

    Each file gets a score ``theta * log(size) + noise``; files are ranked
    by ascending score, so positive ``theta`` puts *small* files at hot
    ranks (low scores → low ranks) and negative ``theta`` puts big files
    there.  ``theta = 0`` is a random assignment.
    """
    scores = theta * np.log(sizes_sorted) + noise
    order = np.argsort(scores, kind="stable")
    ranked = np.empty_like(sizes_sorted)
    ranked[:] = sizes_sorted[order]
    return ranked


def build_fileset(
    num_files: int,
    mean_file_bytes: float,
    mean_request_bytes: float,
    alpha: float,
    seed: int = 0,
    sigma: float = 1.6,
    name: str = "fileset",
    tolerance: float = 0.02,
) -> FileSet:
    """Build a :class:`FileSet` matching both size moments of a trace.

    Parameters mirror one row of the paper's Table 2: file count, average
    stored-file size, average *requested* size, and Zipf alpha.  The
    size-vs-popularity tilt is found by bisection so the Zipf-weighted mean
    size lands within ``tolerance`` (relative) of ``mean_request_bytes``.
    """
    rng = np.random.default_rng(seed)
    sizes = np.sort(lognormal_sizes(num_files, mean_file_bytes, sigma, rng))
    noise = rng.standard_normal(num_files) * 1.0
    zipf = ZipfDistribution(num_files, alpha)
    pmf = zipf.pmf

    def weighted_mean(theta: float) -> float:
        ranked = _tilted_assignment(sizes, theta, noise)
        return float(pmf @ ranked)

    target = float(mean_request_bytes)
    # weighted_mean is monotone non-increasing in theta: positive theta
    # ranks small files hot, pulling the request-weighted mean down.
    lo, hi = -8.0, 8.0
    mlo, mhi = weighted_mean(lo), weighted_mean(hi)
    if not (mhi <= target <= mlo):
        raise ValueError(
            f"mean_request_bytes={target:.0f} unreachable: the achievable "
            f"range for this population is [{mhi:.0f}, {mlo:.0f}]"
        )
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if weighted_mean(mid) > target:
            lo = mid
        else:
            hi = mid

    # The permutation search is discrete: the weighted mean jumps at every
    # rank swap, so the bisection brackets the target between two
    # assignments rather than hitting it.  A convex blend of the two
    # bracket assignments interpolates the weighted mean *exactly* while
    # preserving the total byte count (both are permutations of the same
    # multiset) and keeping every size positive.
    r_lo = _tilted_assignment(sizes, lo, noise).astype(np.float64)
    r_hi = _tilted_assignment(sizes, hi, noise).astype(np.float64)
    m_lo, m_hi = float(pmf @ r_lo), float(pmf @ r_hi)
    if abs(m_lo - m_hi) < 1e-12:
        w = 0.0
    else:
        w = min(1.0, max(0.0, (m_lo - target) / (m_lo - m_hi)))
    ranked = (1.0 - w) * r_lo + w * r_hi

    ranked = np.maximum(1, np.round(ranked)).astype(np.int64)
    achieved = float(pmf @ ranked)
    if abs(achieved - target) / target > tolerance:
        raise ValueError(
            f"calibration failed to match mean request size: wanted "
            f"{target:.0f}, achieved {achieved:.0f} (population too small or "
            f"skew too strong for this target)"
        )
    return FileSet(sizes=ranked, alpha=alpha, name=name)
