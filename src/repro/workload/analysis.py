"""Trace analysis: LRU stack distances, miss-rate curves, working sets.

The paper parameterizes its model by cache hit rate and reports the
traces' working-set sizes; this module computes those quantities exactly
from a trace:

* :func:`stack_distances` — Mattson's LRU stack distances in *bytes*
  (one pass, Fenwick tree, O(n log u)), from which the exact LRU miss
  rate for **every** cache size falls out at once;
* :func:`miss_rate_curve` — miss rate vs cache size (the inclusion
  property of LRU makes this a single threshold query per size);

  Note: with *variable* file sizes, byte-granular LRU is not a strict
  stack algorithm (an eviction can strand a recently-used large file
  while older small ones stay), so the curve is Mattson's stack
  approximation — exact for uniform sizes, and within a small margin of
  a direct cache simulation otherwise (see the tests);
* :func:`working_set_bytes` — footprint of the files touched;
* :func:`model_vs_lru_hit_rate` — the validation the model leans on:
  compare the Zipf accumulation prediction ``z(C/S, F)`` against the
  exact LRU hit rate on a real request stream.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..model.zipfmath import zipf_mass
from .traces import Trace

__all__ = [
    "stack_distances",
    "miss_rate_curve",
    "working_set_bytes",
    "model_vs_lru_hit_rate",
]


class _Fenwick:
    """Fenwick (binary indexed) tree over int64 values."""

    __slots__ = ("n", "tree")

    def __init__(self, n: int):
        self.n = n
        self.tree = np.zeros(n + 1, dtype=np.int64)

    def add(self, i: int, delta: int) -> None:
        i += 1
        tree = self.tree
        n = self.n
        while i <= n:
            tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, i: int) -> int:
        """Sum of values at positions [0, i)."""
        tree = self.tree
        total = 0
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return int(total)


def stack_distances(trace: Trace) -> np.ndarray:
    """Byte-weighted LRU stack distance of every request.

    The distance of a request is the number of *bytes* of distinct files
    referenced since the previous reference to the same file (inclusive
    of that file).  A first reference gets distance ``-1`` (cold miss).
    An LRU cache of capacity ``C`` misses a request iff its distance is
    ``-1`` or greater than ``C`` — Mattson's inclusion property.
    """
    ids = trace.file_ids
    sizes = trace.fileset.sizes
    n = len(ids)
    out = np.empty(n, dtype=np.int64)
    # Position axis: each request occupies one slot; a file's weight sits
    # at its most recent reference slot.
    fen = _Fenwick(n)
    last_pos: Dict[int, int] = {}
    for k in range(n):
        fid = int(ids[k])
        size = int(sizes[fid])
        prev = last_pos.get(fid)
        if prev is None:
            out[k] = -1
        else:
            # Bytes of files referenced strictly after prev, plus this file.
            out[k] = fen.prefix_sum(n) - fen.prefix_sum(prev + 1) + size
            fen.add(prev, -size)
        fen.add(k, size)
        last_pos[fid] = k
    return out


def miss_rate_curve(
    trace: Trace,
    cache_sizes: Sequence[int],
    include_cold: bool = True,
) -> List[Tuple[int, float]]:
    """Exact LRU miss rate for each cache size, from one distance pass.

    ``include_cold=False`` reports only capacity misses (the steady-state
    regime the paper's warmed measurements capture).
    """
    if len(trace) == 0:
        raise ValueError("trace is empty")
    sizes = sorted(set(int(c) for c in cache_sizes))
    if any(c <= 0 for c in sizes):
        raise ValueError("cache sizes must be positive")
    dist = stack_distances(trace)
    cold = dist < 0
    n_cold = int(cold.sum())
    warm = dist[~cold]
    total = len(dist) if include_cold else len(dist) - n_cold
    out = []
    for c in sizes:
        capacity_misses = int((warm > c).sum())
        misses = capacity_misses + (n_cold if include_cold else 0)
        out.append((c, misses / total if total else 0.0))
    return out


def working_set_bytes(trace: Trace) -> int:
    """Total bytes of the distinct files the trace touches."""
    unique = np.unique(trace.file_ids)
    return int(trace.fileset.sizes[unique].sum())


def model_vs_lru_hit_rate(
    trace: Trace,
    cache_bytes: int,
) -> Tuple[float, float]:
    """(model-predicted, exact-LRU) steady-state hit rate for one cache.

    The model predicts ``Hlo = z(C / S, F)`` with ``S`` the mean
    requested size; the LRU number is the exact warm (capacity-only) hit
    rate of the request stream.  Their gap quantifies how optimistic the
    model's perfect-frequency caching assumption is for a given trace.
    """
    if cache_bytes <= 0:
        raise ValueError("cache_bytes must be positive")
    mean_req = trace.mean_request_bytes()
    if mean_req <= 0:
        raise ValueError("trace has no requests")
    files_cached = cache_bytes / mean_req
    population = trace.unique_files_touched()
    predicted = zipf_mass(files_cached, population, trace.fileset.alpha)
    (_, miss) = miss_rate_curve(trace, [cache_bytes], include_cold=False)[0]
    return predicted, 1.0 - miss
