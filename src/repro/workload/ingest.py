"""Ingest real access logs into simulator traces.

The paper's four logs (Calgary, Clarknet, NASA, Rutgers-style) were
Common Log Format files, typically gzip-compressed in the public
archives.  :func:`ingest_log` streams such a file (plain or ``.gz``),
applies the paper's preprocessing (drop incomplete transfers), and
builds a :class:`~repro.workload.traces.Trace` ready for
:func:`~repro.sim.runner.run_simulation` — exposed as ``repro ingest``.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Iterator, Optional, Union

from .traces import Trace, parse_common_log, trace_from_log_entries

__all__ = ["open_log", "ingest_log"]


def open_log(path: Union[str, Path]) -> Iterator[str]:
    """Iterate a log file's lines, transparently decompressing ``.gz``.

    Uses latin-1 decoding with replacement — real 1990s logs contain
    bytes that are not valid in any consistent encoding.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    if path.suffix == ".gz":
        fh = gzip.open(path, "rt", encoding="latin-1", errors="replace")
    else:
        fh = open(path, "rt", encoding="latin-1", errors="replace")
    with fh:
        yield from fh


def ingest_log(
    path: Union[str, Path],
    name: Optional[str] = None,
    max_requests: Optional[int] = None,
    alpha: Optional[float] = None,
) -> Trace:
    """Parse an access log into a trace.

    Parameters
    ----------
    path:
        Common Log Format file, optionally gzip-compressed.
    name:
        Trace name (defaults to the file's stem).
    max_requests:
        Stop after this many *complete* requests (streaming-friendly).
    alpha:
        Zipf exponent override; fitted from the rank-frequency curve
        when omitted.
    """
    if max_requests is not None and max_requests < 1:
        raise ValueError("max_requests must be >= 1")
    lines = open_log(path)
    entries = []
    batch: list = []
    for line in lines:
        batch.append(line)
        if len(batch) >= 8192:
            entries.extend(parse_common_log(batch))
            batch.clear()
            if max_requests is not None and len(entries) >= max_requests:
                break
    if batch:
        entries.extend(parse_common_log(batch))
    if max_requests is not None:
        entries = entries[:max_requests]
    if not entries:
        raise ValueError(f"no complete requests found in {path}")
    trace_name = name or Path(path).stem.replace(".log", "")
    return trace_from_log_entries(entries, name=trace_name, alpha=alpha)
