"""``repro.workload`` — file populations, Zipf popularity, and traces.

Reproduces the workload side of the paper: Zipf-like request popularity
(Breslau et al.), heavy-tailed file-size populations whose stored and
requested size moments can be matched independently, synthetic traces for
the paper's four logs (Table 2), and a Common Log Format parser for
replaying real logs.
"""

from .analysis import (
    miss_rate_curve,
    model_vs_lru_hit_rate,
    stack_distances,
    working_set_bytes,
)
from .filesets import FileSet, build_fileset, lognormal_sizes
from .ingest import ingest_log, open_log
from .sessions import SessionTrace, sessionize
from .presets import (
    DEFAULT_REQUESTS,
    PRESETS,
    TRACE_ORDER,
    TracePreset,
    preset,
    synthesize,
)
from .tracegen import generate_trace, poisson_timestamps, synthesize_trace
from .traces import (
    Trace,
    TraceStats,
    fit_zipf_alpha,
    parse_common_log,
    trace_from_log_entries,
)
from .zipf import ZipfDistribution, harmonic, zipf_top_mass

__all__ = [
    "ZipfDistribution",
    "harmonic",
    "zipf_top_mass",
    "FileSet",
    "build_fileset",
    "lognormal_sizes",
    "Trace",
    "TraceStats",
    "parse_common_log",
    "trace_from_log_entries",
    "fit_zipf_alpha",
    "generate_trace",
    "synthesize_trace",
    "poisson_timestamps",
    "TracePreset",
    "PRESETS",
    "TRACE_ORDER",
    "preset",
    "synthesize",
    "DEFAULT_REQUESTS",
    "stack_distances",
    "miss_rate_curve",
    "working_set_bytes",
    "model_vs_lru_hit_rate",
    "SessionTrace",
    "sessionize",
    "ingest_log",
    "open_log",
]
