"""The paper's four trace workloads as synthesizable presets (Table 2).

Each preset pins the published characteristics of one source log:

============ ========= ============= ============== ============= =====
Log          Num files Avg file size Num requests   Avg req size  alpha
============ ========= ============= ============== ============= =====
Calgary      8 397     42.9 KB       567 895        19.7 KB       1.08
Clarknet     35 885    11.6 KB       3 053 525      11.9 KB       0.78
NASA         5 500     53.7 KB       3 147 719      47.0 KB       0.91
Rutgers      24 098    30.5 KB       535 021        26.2 KB       0.79
============ ========= ============= ============== ============= =====

Synthesizing the full request counts is supported but slow in a pure-
Python DES; :func:`synthesize` therefore scales the request count down by
default (the simulated quantity is a *rate*, which converges long before
paper-scale counts).  Set ``REPRO_FULL_TRACES=1`` or pass
``num_requests`` explicitly to override.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .tracegen import synthesize_trace
from .traces import Trace

__all__ = ["TracePreset", "PRESETS", "preset", "synthesize", "DEFAULT_REQUESTS"]

#: Default synthetic request count per trace (paper-scale counts are only
#: needed for rate convergence, which happens far earlier).
DEFAULT_REQUESTS = 60_000


@dataclass(frozen=True)
class TracePreset:
    """Published characteristics of one of the paper's traces (Table 2)."""

    name: str
    num_files: int
    avg_file_kb: float
    num_requests: int
    avg_request_kb: float
    alpha: float

    @property
    def footprint_mb(self) -> float:
        """Approximate working-set size implied by the characteristics."""
        return self.num_files * self.avg_file_kb / 1024.0

    def as_table_row(self) -> Tuple[str, int, float, int, float, float]:
        return (
            self.name,
            self.num_files,
            self.avg_file_kb,
            self.num_requests,
            self.avg_request_kb,
            self.alpha,
        )


PRESETS: Dict[str, TracePreset] = {
    "calgary": TracePreset("calgary", 8_397, 42.9, 567_895, 19.7, 1.08),
    "clarknet": TracePreset("clarknet", 35_885, 11.6, 3_053_525, 11.9, 0.78),
    "nasa": TracePreset("nasa", 5_500, 53.7, 3_147_719, 47.0, 0.91),
    "rutgers": TracePreset("rutgers", 24_098, 30.5, 535_021, 26.2, 0.79),
}

#: Paper ordering for figures 7-10.
TRACE_ORDER = ("calgary", "clarknet", "nasa", "rutgers")


def preset(name: str) -> TracePreset:
    """Look up a preset by (case-insensitive) name."""
    try:
        return PRESETS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown trace preset {name!r}; available: {sorted(PRESETS)}"
        ) from None


def _default_requests() -> Optional[int]:
    if os.environ.get("REPRO_FULL_TRACES", "") not in ("", "0"):
        return None  # use the paper's full counts
    return DEFAULT_REQUESTS


def synthesize(
    name: str,
    num_requests: Optional[int] = None,
    seed: int = 0,
    locality: float = 0.15,
) -> Trace:
    """Synthesize a trace matching one of the paper's presets.

    ``num_requests=None`` uses :data:`DEFAULT_REQUESTS` unless
    ``REPRO_FULL_TRACES`` is set, in which case the paper's full request
    count is generated.  A mild default ``locality`` reflects the
    short-term re-reference behaviour of real logs.
    """
    p = preset(name)
    if num_requests is None:
        num_requests = _default_requests() or p.num_requests
    return synthesize_trace(
        num_files=p.num_files,
        mean_file_kb=p.avg_file_kb,
        num_requests=num_requests,
        mean_request_kb=p.avg_request_kb,
        alpha=p.alpha,
        seed=seed,
        locality=locality,
        name=p.name,
    )
