"""Trace containers and access-log parsing.

A :class:`Trace` is a sequence of requests against a :class:`FileSet`:
for each request, the popularity rank of the requested file and its size.
Traces can be synthesized (:mod:`repro.workload.tracegen`) or parsed from
real Common Log Format access logs (:func:`parse_common_log`), which is
the format the paper's four source logs (Calgary, Clarknet, NASA, Rutgers)
were distributed in.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from .filesets import FileSet

__all__ = [
    "Trace",
    "TraceStats",
    "parse_common_log",
    "trace_from_log_entries",
    "fit_zipf_alpha",
]


@dataclass(frozen=True)
class TraceStats:
    """Summary characteristics of a trace — the columns of Table 2."""

    num_files: int
    avg_file_kb: float
    num_requests: int
    avg_request_kb: float
    alpha: float
    total_footprint_mb: float

    def as_row(self) -> Tuple[int, float, int, float, float]:
        return (
            self.num_files,
            self.avg_file_kb,
            self.num_requests,
            self.avg_request_kb,
            self.alpha,
        )


@dataclass(frozen=True)
class Trace:
    """A request stream over a file population.

    ``file_ids[k]`` is the popularity rank of the file requested by the
    ``k``-th request; ``fileset.sizes[file_ids[k]]`` its size in bytes.
    ``timestamps`` (seconds, optional) are ignored by saturation-mode
    simulations, matching the paper's methodology.
    """

    name: str
    fileset: FileSet
    file_ids: np.ndarray
    timestamps: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        ids = np.ascontiguousarray(self.file_ids, dtype=np.int64)
        if ids.ndim != 1:
            raise ValueError("file_ids must be 1-D")
        if ids.size and (ids.min() < 0 or ids.max() >= self.fileset.num_files):
            raise ValueError("file_ids reference files outside the fileset")
        object.__setattr__(self, "file_ids", ids)
        if self.timestamps is not None:
            ts = np.ascontiguousarray(self.timestamps, dtype=np.float64)
            if ts.shape != ids.shape:
                raise ValueError("timestamps must align with file_ids")
            if ids.size and (np.diff(ts) < 0).any():
                raise ValueError("timestamps must be non-decreasing")
            object.__setattr__(self, "timestamps", ts)

    def __len__(self) -> int:
        return int(self.file_ids.size)

    @property
    def num_requests(self) -> int:
        return len(self)

    def request_sizes(self) -> np.ndarray:
        """Size in bytes of every requested file (vectorized gather)."""
        return self.fileset.sizes[self.file_ids]

    def mean_request_bytes(self) -> float:
        if len(self) == 0:
            return 0.0
        return float(self.request_sizes().mean())

    def unique_files_touched(self) -> int:
        return int(np.unique(self.file_ids).size)

    def stats(self) -> TraceStats:
        """Empirical Table-2 style characteristics of this trace."""
        return TraceStats(
            num_files=self.fileset.num_files,
            avg_file_kb=self.fileset.mean_file_bytes / 1024.0,
            num_requests=len(self),
            avg_request_kb=self.mean_request_bytes() / 1024.0,
            alpha=self.fileset.alpha,
            total_footprint_mb=self.fileset.total_bytes / (1024.0 * 1024.0),
        )

    def head(self, n: int) -> "Trace":
        """A new trace containing only the first ``n`` requests."""
        if n < 0:
            raise ValueError("n must be non-negative")
        ts = self.timestamps[:n] if self.timestamps is not None else None
        return Trace(self.name, self.fileset, self.file_ids[:n], ts)

    def replay_ids(self, passes: int = 1) -> np.ndarray:
        """File id of every request a ``passes``-pass replay injects.

        This is THE arrival sequence contract shared by the simulation
        driver and the live loadtest: request ``i`` (0-based arrival
        order) asks for ``replay_ids(passes)[i]``.  Both substrates
        consume this one function, so a sim-vs-live comparison is
        guaranteed to drive both worlds with the identical (arrival
        order, file_id) stream — the parity tests in ``tests/live``
        assert it stays that way.
        """
        if passes < 1:
            raise ValueError(f"passes must be >= 1, got {passes}")
        if passes == 1:
            return self.file_ids
        return np.tile(self.file_ids, passes)

    # -- persistence -------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Serialize to a compressed ``.npz`` file."""
        path = Path(path)
        arrays = {
            "file_ids": self.file_ids,
            "sizes": self.fileset.sizes,
            "alpha": np.float64(self.fileset.alpha),
            "name": np.bytes_(self.name.encode()),
        }
        if self.timestamps is not None:
            arrays["timestamps"] = self.timestamps
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        """Load a trace previously written by :meth:`save`."""
        with np.load(Path(path)) as data:
            fileset = FileSet(
                sizes=data["sizes"],
                alpha=float(data["alpha"]),
                name=str(data["name"].tobytes().decode()),
            )
            return cls(
                name=fileset.name,
                fileset=fileset,
                file_ids=data["file_ids"],
                timestamps=data["timestamps"] if "timestamps" in data else None,
            )


# Common Log Format:
#   host ident authuser [date] "METHOD /path PROTO" status bytes
_CLF_RE = re.compile(
    r'^(?P<host>\S+)\s+\S+\s+\S+\s+\[(?P<date>[^\]]+)\]\s+'
    r'"(?P<method>\S+)\s+(?P<path>\S+)(?:\s+(?P<proto>[^"]*))?"\s+'
    r"(?P<status>\d{3})\s+(?P<bytes>\d+|-)\s*$"
)


def parse_common_log(
    lines: Iterable[str],
    successful_only: bool = True,
) -> List[Tuple[str, int]]:
    """Parse Common Log Format lines into ``(path, bytes)`` entries.

    Mirrors the paper's preprocessing: incomplete transfers (non-2xx
    status or missing byte counts) are dropped when ``successful_only``.
    Malformed lines are skipped silently (real logs contain garbage).
    """
    entries: List[Tuple[str, int]] = []
    for line in lines:
        m = _CLF_RE.match(line.strip())
        if m is None:
            continue
        nbytes = m.group("bytes")
        status = int(m.group("status"))
        if nbytes == "-" or int(nbytes) <= 0:
            if successful_only:
                continue
            nbytes = "0"
        if successful_only and not (200 <= status < 300):
            continue
        if m.group("method").upper() not in ("GET", "HEAD", "POST"):
            continue
        entries.append((m.group("path"), int(nbytes)))
    return entries


def trace_from_log_entries(
    entries: List[Tuple[str, int]],
    name: str = "log",
    alpha: Optional[float] = None,
) -> Trace:
    """Build a :class:`Trace` from parsed ``(path, bytes)`` log entries.

    Files are identified by path; each file's size is the *largest* byte
    count observed for it (smaller counts are partial transfers).  Files
    are ranked by observed request count so rank order approximates
    popularity order.  ``alpha`` defaults to a least-squares fit of the
    observed rank-frequency curve.
    """
    if not entries:
        raise ValueError("no log entries")
    counts: Dict[str, int] = {}
    sizes: Dict[str, int] = {}
    for path, nbytes in entries:
        counts[path] = counts.get(path, 0) + 1
        if nbytes > sizes.get(path, 0):
            sizes[path] = nbytes
    # Popularity order: most requested first.
    paths = sorted(counts, key=lambda p: (-counts[p], p))
    rank_of = {p: r for r, p in enumerate(paths)}
    size_arr = np.array([max(1, sizes[p]) for p in paths], dtype=np.int64)
    ids = np.array([rank_of[p] for p, _ in entries], dtype=np.int64)

    if alpha is None:
        alpha = fit_zipf_alpha(np.array([counts[p] for p in paths], dtype=np.float64))
    fileset = FileSet(sizes=size_arr, alpha=alpha, name=name)
    return Trace(name=name, fileset=fileset, file_ids=ids)


def fit_zipf_alpha(rank_counts: np.ndarray) -> float:
    """Least-squares Zipf exponent from a rank-ordered frequency vector.

    Fits ``log(count) = c - alpha * log(rank)`` over all ranks with at
    least one request, which is how trace studies (e.g. Breslau et al.)
    report their alphas.
    """
    rank_counts = np.asarray(rank_counts, dtype=np.float64)
    if rank_counts.ndim != 1 or rank_counts.size == 0:
        raise ValueError("rank_counts must be a non-empty 1-D array")
    mask = rank_counts > 0
    counts = rank_counts[mask]
    if counts.size < 2:
        return 1.0
    ranks = np.arange(1, rank_counts.size + 1, dtype=np.float64)[mask]
    x = np.log(ranks)
    y = np.log(counts)
    slope, _ = np.polyfit(x, y, 1)
    return float(max(0.0, -slope))
