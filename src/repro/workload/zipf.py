"""Zipf-like popularity distributions.

The paper (following Breslau et al. [7]) models WWW file popularity as
Zipf-like: the probability of a request for the *i*-th most popular of
``F`` files is proportional to ``1 / i**alpha`` with ``alpha`` typically
below 1 (Table 2 lists per-trace alphas between 0.78 and 1.08).

:class:`ZipfDistribution` provides exact pmf/cdf computation on a finite
population plus fast vectorized sampling (inverse-CDF via binary search on
a precomputed cumulative array).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["ZipfDistribution", "harmonic", "zipf_top_mass"]


def harmonic(n: int, alpha: float) -> float:
    """Generalized harmonic number ``H_n(alpha) = sum_{i=1..n} i**-alpha``.

    Exact vectorized sum; for the model's *continuous* large-``n`` variant
    see :func:`repro.model.zipfmath.harmonic_continuous`.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if n == 0:
        return 0.0
    return float(np.sum(np.arange(1, n + 1, dtype=np.float64) ** -alpha))


def zipf_top_mass(n: int, population: int, alpha: float) -> float:
    """``z(n, F)``: probability mass of the ``n`` most popular of ``F`` files.

    This is the paper's accumulated-probability function used to define
    cache hit rates (Section 3.1).  ``n`` is clamped to ``population``.
    """
    if population <= 0:
        raise ValueError(f"population must be positive, got {population}")
    n = min(n, population)
    if n <= 0:
        return 0.0
    return harmonic(n, alpha) / harmonic(population, alpha)


class ZipfDistribution:
    """Finite Zipf-like distribution over ranks ``0 .. population-1``.

    Rank 0 is the most popular item.  ``alpha`` is the Zipf exponent.
    """

    def __init__(self, population: int, alpha: float):
        if population <= 0:
            raise ValueError(f"population must be positive, got {population}")
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self.population = int(population)
        self.alpha = float(alpha)
        weights = np.arange(1, self.population + 1, dtype=np.float64) ** -self.alpha
        self._pmf = weights / weights.sum()
        self._cdf = np.cumsum(self._pmf)
        # Guard against floating-point drift at the top end.
        self._cdf[-1] = 1.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ZipfDistribution(population={self.population}, alpha={self.alpha})"

    @property
    def pmf(self) -> np.ndarray:
        """Probability of each rank (most popular first); read-only view."""
        v = self._pmf.view()
        v.flags.writeable = False
        return v

    @property
    def cdf(self) -> np.ndarray:
        """Cumulative probability by rank; read-only view."""
        v = self._cdf.view()
        v.flags.writeable = False
        return v

    def probability(self, rank: int) -> float:
        """Probability of the item with popularity ``rank`` (0-based)."""
        if not 0 <= rank < self.population:
            raise IndexError(f"rank {rank} out of range [0, {self.population})")
        return float(self._pmf[rank])

    def top_mass(self, n: int) -> float:
        """Accumulated probability of the ``n`` most popular items: z(n, F)."""
        if n <= 0:
            return 0.0
        n = min(n, self.population)
        return float(self._cdf[n - 1])

    def ranks_for_mass(self, mass: float) -> int:
        """Smallest ``n`` such that the top-``n`` items carry ≥ ``mass``."""
        if not 0.0 <= mass <= 1.0:
            raise ValueError(f"mass must be in [0, 1], got {mass}")
        if mass == 0.0:
            return 0
        return int(np.searchsorted(self._cdf, mass, side="left")) + 1

    def sample(
        self,
        size: int,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Draw ``size`` i.i.d. ranks (0-based, int64) via inverse CDF."""
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        if rng is None:
            rng = np.random.default_rng()
        u = rng.random(size)
        return np.searchsorted(self._cdf, u, side="right").astype(np.int64)

    def expected_mean_of(self, values: np.ndarray) -> float:
        """Popularity-weighted mean of per-rank ``values``.

        E.g. the expected *requested* file size when ``values`` holds the
        per-rank file sizes.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.population,):
            raise ValueError(
                f"values must have shape ({self.population},), got {values.shape}"
            )
        return float(self._pmf @ values)
