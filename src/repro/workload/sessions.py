"""Persistent-connection (HTTP/1.1) structure over a trace.

The paper's algorithms target non-persistent HTTP/1.0 ("each client
request represents a different connection") and note that persistent
connections need slight modifications, per Aron et al.  To evaluate that
regime, :func:`sessionize` groups a trace's consecutive requests into
connections with geometrically distributed lengths — mean length 1
recovers the paper's HTTP/1.0 setup exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from .traces import Trace

__all__ = ["SessionTrace", "sessionize"]


@dataclass(frozen=True)
class SessionTrace:
    """A trace plus its grouping into persistent connections.

    ``starts[k]`` is the index of connection ``k``'s first request; the
    connection spans ``[starts[k], starts[k+1])`` (the last connection
    runs to the end of the trace).
    """

    trace: Trace
    starts: np.ndarray

    def __post_init__(self) -> None:
        starts = np.ascontiguousarray(self.starts, dtype=np.int64)
        if starts.ndim != 1 or starts.size == 0:
            raise ValueError("starts must be a non-empty 1-D array")
        if starts[0] != 0:
            raise ValueError("the first connection must start at index 0")
        if (np.diff(starts) <= 0).any():
            raise ValueError("starts must be strictly increasing")
        if starts[-1] >= len(self.trace):
            raise ValueError("a connection starts past the end of the trace")
        object.__setattr__(self, "starts", starts)

    @property
    def num_connections(self) -> int:
        return int(self.starts.size)

    @property
    def num_requests(self) -> int:
        return len(self.trace)

    def connection_span(self, k: int) -> Tuple[int, int]:
        """[first, last) request indices of connection ``k``."""
        if not 0 <= k < self.num_connections:
            raise IndexError(f"connection {k} out of range")
        first = int(self.starts[k])
        last = (
            int(self.starts[k + 1])
            if k + 1 < self.num_connections
            else len(self.trace)
        )
        return first, last

    def connection_lengths(self) -> np.ndarray:
        ends = np.append(self.starts[1:], len(self.trace))
        return ends - self.starts

    def mean_connection_length(self) -> float:
        return len(self.trace) / self.num_connections

    def iter_connections(self) -> Iterator[Tuple[int, int, int]]:
        """Yield (connection_index, first_request, last_request_excl)."""
        for k in range(self.num_connections):
            first, last = self.connection_span(k)
            yield k, first, last


def sessionize(
    trace: Trace,
    mean_requests_per_connection: float = 4.0,
    seed: int = 0,
) -> SessionTrace:
    """Group a trace into persistent connections.

    Connection lengths are geometric with the given mean (HTTP/1.1
    keep-alive closes after an idle timeout or a max-requests cap, which
    field studies found roughly geometric).  ``mean = 1`` produces one
    request per connection — the HTTP/1.0 regime.
    """
    if len(trace) == 0:
        raise ValueError("trace is empty")
    if mean_requests_per_connection < 1.0:
        raise ValueError("mean_requests_per_connection must be >= 1")
    if mean_requests_per_connection == 1.0:
        return SessionTrace(trace, np.arange(len(trace), dtype=np.int64))
    rng = np.random.default_rng(seed)
    p = 1.0 / mean_requests_per_connection
    # Draw generously, then cut at the trace length.
    est = int(len(trace) / mean_requests_per_connection * 2) + 16
    lengths = rng.geometric(p, size=est)
    ends = np.cumsum(lengths)
    starts = np.concatenate([[0], ends[ends < len(trace)]])
    while ends[-1] < len(trace):  # pragma: no cover - astronomically rare
        lengths = rng.geometric(p, size=est)
        more = ends[-1] + np.cumsum(lengths)
        starts = np.concatenate([starts, more[more < len(trace)]])
        ends = more
    return SessionTrace(trace, starts.astype(np.int64))
