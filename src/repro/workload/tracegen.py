"""Synthetic trace generation.

The paper drives its simulator with four real WWW access logs.  Those logs
are not redistributable, so this module synthesizes request streams whose
*measured* characteristics match the published ones (Table 2): Zipf-like
popularity with the trace's alpha, the trace's file-size moments (via
:func:`repro.workload.filesets.build_fileset`), and optional short-term
temporal locality.

Temporal locality matters for LRU caches: real logs re-reference recently
requested files more than an i.i.d. Zipf stream does.  We expose it as a
``locality`` knob implementing a simple LRU-stack model: with probability
``locality`` the next request is drawn from the most recent distinct
references; otherwise it is an independent Zipf draw.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

import numpy as np

from .filesets import FileSet, build_fileset
from .traces import Trace

__all__ = ["generate_trace", "synthesize_trace", "poisson_timestamps"]


def poisson_timestamps(
    num_requests: int,
    rate_per_sec: float,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Cumulative Poisson arrival times (seconds) at ``rate_per_sec``."""
    if rate_per_sec <= 0:
        raise ValueError("rate_per_sec must be positive")
    if rng is None:
        # A zero-argument default_rng() seeds from OS entropy, so bare
        # calls would yield different arrival times run to run (simlint
        # REP103 traced this into chaos scenario generation).  Fall back
        # to a fixed seed instead; callers wanting variation pass an rng.
        rng = np.random.default_rng(0)
    gaps = rng.exponential(1.0 / rate_per_sec, size=num_requests)
    return np.cumsum(gaps)


def generate_trace(
    fileset: FileSet,
    num_requests: int,
    seed: int = 0,
    locality: float = 0.0,
    locality_depth: int = 64,
    arrival_rate: Optional[float] = None,
    name: Optional[str] = None,
) -> Trace:
    """Generate a request stream over ``fileset``.

    Parameters
    ----------
    fileset:
        The file population (sizes indexed by popularity rank).
    num_requests:
        Number of requests to generate.
    seed:
        RNG seed — a given (fileset, seed) pair always yields the same trace.
    locality:
        Probability in [0, 1) that a request re-references one of the
        ``locality_depth`` most recently touched distinct files instead of
        being an independent Zipf draw.  0 gives an i.i.d. Zipf stream.
    locality_depth:
        Size of the recent-reference stack used by the locality model.
    arrival_rate:
        If given, attach Poisson timestamps at this many requests/second.
    """
    if num_requests < 0:
        raise ValueError("num_requests must be non-negative")
    if not 0.0 <= locality < 1.0:
        raise ValueError("locality must be in [0, 1)")
    if locality_depth <= 0:
        raise ValueError("locality_depth must be positive")

    rng = np.random.default_rng(seed)
    zipf = fileset.popularity()
    base = zipf.sample(num_requests, rng)

    if locality > 0.0 and num_requests > 0:
        # LRU-stack rewrite: replace a fraction of draws with recent refs.
        take_recent = rng.random(num_requests) < locality
        stack_pick = rng.random(num_requests)  # position within the stack
        recent: "OrderedDict[int, None]" = OrderedDict()
        out = base.copy()
        for k in range(num_requests):
            fid = int(out[k])
            if take_recent[k] and recent:
                keys = list(recent)
                # Bias towards the top of the stack (most recent first).
                idx = int(len(keys) * stack_pick[k] ** 2)
                fid = keys[len(keys) - 1 - min(idx, len(keys) - 1)]
                out[k] = fid
            recent.pop(fid, None)
            recent[fid] = None
            if len(recent) > locality_depth:
                recent.popitem(last=False)
        base = out

    timestamps = None
    if arrival_rate is not None:
        timestamps = poisson_timestamps(num_requests, arrival_rate, rng)

    return Trace(
        name=name or fileset.name,
        fileset=fileset,
        file_ids=base,
        timestamps=timestamps,
    )


def synthesize_trace(
    num_files: int,
    mean_file_kb: float,
    num_requests: int,
    mean_request_kb: float,
    alpha: float,
    seed: int = 0,
    locality: float = 0.0,
    name: str = "synthetic",
) -> Trace:
    """One-call synthesis from Table-2 style characteristics.

    Builds the file population (matching file count, both size moments and
    alpha) and generates the request stream in one step.
    """
    fileset = build_fileset(
        num_files=num_files,
        mean_file_bytes=mean_file_kb * 1024.0,
        mean_request_bytes=mean_request_kb * 1024.0,
        alpha=alpha,
        seed=seed,
        name=name,
    )
    return generate_trace(
        fileset,
        num_requests=num_requests,
        seed=seed + 1,
        locality=locality,
        name=name,
    )
