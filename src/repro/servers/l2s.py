"""L2S — the Locality and Load balancing Server (Section 4).

Fully distributed locality-conscious request distribution:

* Client connections reach nodes by **round-robin DNS**.
* Every file has a **server set** — the nodes allowed to cache it.  The
  initial node services a request itself if it is not overloaded (open
  connections ≤ ``T``) and either already serves the file or the file was
  never requested; otherwise the request goes to the least-loaded member
  of the file's server set; a node outside the set is chosen (and added
  to the set, replicating the file) only when both the initial node and
  the least-loaded member are overloaded.
* Server sets **shrink** when the chosen node is underloaded (< ``t``),
  the set has more than one member, and the set has not been modified for
  ``set_age_s`` — bounding replication.
* **Load dissemination**: every node keeps its own estimate of everyone's
  open-connection counts; a node broadcasts its count when it drifts by
  ``broadcast_delta`` (default 4) from the last broadcast value.  The
  broadcasts are real simulated messages — estimates at other nodes
  update only when the message is delivered, so decisions run on stale
  data exactly as in the real system.
* **Server-set changes** are likewise broadcast (rare in steady state).

Fidelity note: the server-set *table* is applied globally at decision
time while its dissemination cost is charged; per-node load views are
fully per-node and message-delayed.  Set changes are orders of magnitude
rarer than load changes, so the staleness that matters (load) is modeled
faithfully.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .base import Decision, DistributionPolicy, ShuffledRoundRobin
from .base import least_loaded as _least_loaded

__all__ = ["L2SPolicy"]


class L2SPolicy(DistributionPolicy):
    """The paper's distributed locality + load-balancing algorithm."""

    name = "l2s"

    def __init__(
        self,
        overload_threshold: int = 20,
        underload_threshold: int = 10,
        broadcast_delta: int = 4,
        set_age_s: float = 20.0,
        eager_local_replication: bool = True,
        view_max_age_s: Optional[float] = None,
    ):
        super().__init__()
        if overload_threshold <= 0 or underload_threshold <= 0:
            raise ValueError("thresholds must be positive")
        if underload_threshold > overload_threshold:
            raise ValueError("underload threshold must not exceed overload threshold")
        if broadcast_delta < 1:
            raise ValueError("broadcast_delta must be >= 1")
        if set_age_s < 0:
            raise ValueError("set_age_s must be non-negative")
        #: T — a node with more open connections than this is overloaded.
        self.overload_threshold = overload_threshold
        #: t — below this the service node is underloaded (sets may shrink).
        self.underload_threshold = underload_threshold
        #: Broadcast load when it drifts this far from the last broadcast.
        self.broadcast_delta = broadcast_delta
        #: Minimum age of a server set before it may be shrunk.
        self.set_age_s = set_age_s
        #: When the file's whole server set is overloaded but the initial
        #: node is not, serve locally and join the set (replicate) instead
        #: of queueing on an overloaded member.  The paper's prose only
        #: covers the both-overloaded case explicitly; without this
        #: extension a round-robin arrival stream almost never sees an
        #: overloaded *initial* node and hot files never replicate,
        #: contradicting the measured L2S behaviour (see DESIGN.md).
        self.eager_local_replication = eager_local_replication
        if view_max_age_s is not None and view_max_age_s <= 0:
            raise ValueError("view_max_age_s must be positive (or None)")
        #: Staleness bound on remote load-view entries (unreliable-fabric
        #: hardening): an entry not refreshed within this many seconds is
        #: distrusted — excluded from least-loaded selection — and when a
        #: file's entire server set has gone stale the request is served
        #: locally instead of handed off on fossil data.  None (default)
        #: trusts every entry forever, the paper's behaviour.
        self.view_max_age_s = view_max_age_s
        # Statistics.
        self.replications = 0
        self.shrinks = 0
        self.load_broadcasts = 0
        self.set_broadcasts = 0
        self.rejoins = 0
        self.stale_local_dispatches = 0
        self.heal_reannounces = 0

    def _setup(self) -> None:
        cluster = self._require_cluster()
        n = cluster.num_nodes
        self._rr = ShuffledRoundRobin(n)
        #: server_sets[file_id] -> list of node ids serving that file.
        self._server_sets: Dict[int, List[int]] = {}
        #: Last time each file's server set changed.
        self._set_modified: Dict[int, float] = {}
        #: views[i][j] — node i's estimate of node j's open connections.
        self._views: List[List[int]] = [[0] * n for _ in range(n)]
        #: view_age[i][j] — when node i's estimate of j last updated.
        self._view_age: List[List[float]] = [[0.0] * n for _ in range(n)]
        #: Connection count each node last broadcast.
        self._last_broadcast: List[int] = [0] * n

    # -- arrival ---------------------------------------------------------------

    def initial_node(self, index: int, file_id: int) -> int:
        """Round-robin DNS (block-shuffled — see ShuffledRoundRobin).

        Dead nodes' turns pass to the next alive node, modeling DNS
        failover / client retry.
        """
        return self._next_alive(self._rr.node_for(index))

    # -- the distribution algorithm ---------------------------------------------

    def decide(self, initial: int, file_id: int) -> Decision:
        cluster = self._require_cluster()
        now = self.clock.now
        view = self._views[initial]
        failed = self.failed_nodes
        # A node always knows its own load exactly (unless it is the one
        # that died, in which case keep it poisoned).
        if initial not in failed:
            view[initial] = cluster.node(initial).open_connections
        t_high = self.overload_threshold
        max_age = self.view_max_age_s
        ages = self._view_age[initial] if max_age is not None else None

        def fresh(node: int) -> bool:
            # A node's estimate of itself is always current; with no
            # staleness bound configured everything counts as fresh.
            return ages is None or node == initial or now - ages[node] <= max_age

        def overloaded(node: int) -> bool:
            return node in failed or view[node] > t_high

        def least_loaded_globally() -> int:
            alive = [i for i in range(len(view)) if i not in failed]
            if ages is not None:
                usable = [i for i in alive if fresh(i)]
                if usable:
                    alive = usable
                elif initial not in failed:
                    # Every remote estimate is fossil data: serve locally
                    # rather than hand off on it.
                    self.stale_local_dispatches += 1
                    return initial
            return _least_loaded(view, self.routable_nodes(alive))

        sset = self._server_sets.get(file_id)
        replicated = False
        modified = False
        target: Optional[int] = None

        if not sset:
            # First request for this file.
            target = initial if not overloaded(initial) else least_loaded_globally()
            sset = [target]
            self._server_sets[file_id] = sset
            modified = True
        elif initial in sset and not overloaded(initial):
            target = initial
        else:
            members = sset
            if ages is not None:
                usable = [i for i in sset if i not in failed and fresh(i)]
                if usable:
                    members = usable
                elif initial not in failed:
                    # The whole server set is stale (or dead): fall back
                    # to local dispatch, joining the set so the file's
                    # bytes are actually here next time.
                    self.stale_local_dispatches += 1
                    target = initial
                    if initial not in sset:
                        sset.append(initial)
                        replicated = True
                        modified = True
                        self.replications += 1
            if target is None:
                least_in_set = _least_loaded(view, self.routable_nodes(members))
                if not overloaded(least_in_set):
                    target = least_in_set
                else:
                    # The file's whole server set is overloaded: replicate.
                    if self.eager_local_replication and not overloaded(initial):
                        target = initial
                    elif overloaded(initial) or self.eager_local_replication:
                        target = least_loaded_globally()
                    else:
                        # Strict reading: replication needs the initial node
                        # overloaded too; queue on the set's least member.
                        target = least_in_set
                    if target not in sset:
                        sset.append(target)
                        replicated = True
                        modified = True
                        self.replications += 1

        # Replication control: shrink old, multi-member sets whose chosen
        # node is underloaded.  A set modified by this very decision is by
        # definition not "old".
        if (
            not modified
            and len(sset) > 1
            and view[target] < self.underload_threshold
            and now - self._set_modified.get(file_id, -float("inf")) >= self.set_age_s
        ):
            victim = max((n for n in sset if n != target), key=lambda i: (view[i], i))
            sset.remove(victim)
            modified = True
            self.shrinks += 1

        if modified:
            self._set_modified[file_id] = now
            self._broadcast_set_change(initial)

        # Optimistic local update: the initial node knows it just sent
        # this connection to `target`.
        view[target] += 1
        return Decision(
            target=target, forwarded=target != initial, replicated=replicated
        )

    # -- dissemination -----------------------------------------------------------

    def on_node_failed(self, node_id: int) -> None:
        """Repair distributed state after a crash.

        The survivors drop the dead node from every server set (files it
        alone served fall back to first-request handling) and from their
        load views.  Fully decentralized — no coordinator involved —
        which is exactly the availability property the paper claims
        for L2S.
        """
        super().on_node_failed(node_id)
        empty = [f for f, s in self._server_sets.items() if s == [node_id]]
        for f in empty:
            del self._server_sets[f]
            self._set_modified.pop(f, None)
        for sset in self._server_sets.values():
            if node_id in sset:
                sset.remove(node_id)
        # Nobody should ever pick it again.
        for view in self._views:
            view[node_id] = 1 << 30

    def on_node_recovered(self, node_id: int) -> None:
        """Rejoin after a cold reboot — again fully decentralized.

        The restarted node lost all soft state: it starts with a fresh
        (all-zero) view of everyone's load and belongs to no server set
        (its cache is empty; files replicate back onto it through the
        normal overload path, which is the reheat transient the
        availability timeline shows).  It announces itself by
        broadcasting its (zero) load; each survivor un-poisons its view
        entry only when that message is delivered, so rejoin — like
        every other L2S view change — propagates at message speed.
        """
        super().on_node_recovered(node_id)
        cluster = self._require_cluster()
        n = cluster.num_nodes
        self._views[node_id] = [0] * n
        self._view_age[node_id] = [self.clock.now] * n
        self._last_broadcast[node_id] = 0
        self.rejoins += 1
        self.load_broadcasts += 1
        for other in range(n):
            if other == node_id or other in self.failed_nodes:
                continue
            self._deliver_load(node_id, other, 0, kind="l2s_load")

    def on_connection_change(self, node_id: int) -> None:
        """Broadcast a node's load when it drifts past the delta."""
        if node_id in self.failed_nodes:
            return
        cluster = self._require_cluster()
        actual = cluster.node(node_id).open_connections
        if abs(actual - self._last_broadcast[node_id]) < self.broadcast_delta:
            return
        self._last_broadcast[node_id] = actual
        self.load_broadcasts += 1
        for other in range(cluster.num_nodes):
            if other == node_id:
                continue
            self._deliver_load(node_id, other, actual)

    def _deliver_load(
        self, src: int, dst: int, value: int, kind: str = "l2s_load"
    ) -> None:
        """Fire-and-forget load message; the estimate updates on delivery.

        Rides the interconnect's callback-chain fast path — the dominant
        message source in an L2S run (one broadcast per connection-count
        drift), so not paying a process per message matters.
        """
        cluster = self._require_cluster()
        clock = self.clock
        views = self._views
        ages = self._view_age

        def apply() -> None:
            views[dst][src] = value
            ages[dst][src] = clock.now

        cluster.net.send_control_cb(src, dst, kind, done=apply)

    def _broadcast_set_change(self, src: int) -> None:
        """Charge the (rare) server-set modification broadcast.

        Set updates are hard state compared to load samples, so they opt
        into the ack/retry protocol when one is active; load broadcasts
        never do — staleness detection (``view_max_age_s``) is the
        defense there.
        """
        self.set_broadcasts += 1
        cluster = self._require_cluster()
        net = cluster.net
        proto = net.protocol
        if proto is not None and proto.covers("l2s_set"):
            for other in range(cluster.num_nodes):
                if other != src:
                    proto.send_control_cb(src, other, "l2s_set")
        else:
            net.broadcast_control(src, kind="l2s_set")

    def on_handoff_failed(self, initial: int, target: int) -> None:
        """Roll back the optimistic view charge of an abandoned hand-off."""
        self._views[initial][target] -= 1

    def on_partition_healed(self) -> None:
        """Re-announce soft state once the partition heals.

        Each side kept gossiping internally while cross-partition
        messages died, so the survivors' views of the far side are
        fossils.  Every alive node re-broadcasts its server-set table
        and its current load — all charged as real messages.
        """
        cluster = self._require_cluster()
        n = cluster.num_nodes
        self.heal_reannounces += 1
        for node in range(n):
            if node in self.failed_nodes:
                continue
            self._broadcast_set_change(node)
            actual = cluster.node(node).open_connections
            self._last_broadcast[node] = actual
            self.load_broadcasts += 1
            for other in range(n):
                if other == node or other in self.failed_nodes:
                    continue
                self._deliver_load(node, other, actual)

    # -- reporting ----------------------------------------------------------------

    def server_set(self, file_id: int) -> List[int]:
        """Current server set of a file (empty if never requested)."""
        return list(self._server_sets.get(file_id, []))

    def mean_server_set_size(self) -> float:
        if not self._server_sets:
            return 0.0
        return sum(len(s) for s in self._server_sets.values()) / len(self._server_sets)

    def reset_stats(self) -> None:
        self.replications = 0
        self.shrinks = 0
        self.load_broadcasts = 0
        self.set_broadcasts = 0
        self.rejoins = 0
        self.stale_local_dispatches = 0
        self.heal_reannounces = 0

    def stats(self) -> Dict[str, Any]:
        return {
            "replications": self.replications,
            "shrinks": self.shrinks,
            "load_broadcasts": self.load_broadcasts,
            "set_broadcasts": self.set_broadcasts,
            "rejoins": self.rejoins,
            "stale_local_dispatches": self.stale_local_dispatches,
            "heal_reannounces": self.heal_reannounces,
            "mean_server_set_size": self.mean_server_set_size(),
            "files_with_server_sets": len(self._server_sets),
        }

    def check_invariants(self) -> List[str]:
        """Structural bounds on L2S's distributed state.

        Checked: thresholds ordered (t <= T), every server set non-empty
        and duplicate-free with members that are in-range alive nodes,
        and each alive node's view of *itself* non-negative.  Remote
        view entries are deliberately unchecked: the optimistic
        charge/rollback protocol can legitimately push a remote estimate
        transiently negative when a broadcast overwrite races a
        hand-off rollback — staleness, not corruption.
        """
        problems: List[str] = []
        n = self._require_cluster().num_nodes
        if self.underload_threshold > self.overload_threshold:
            problems.append(
                f"l2s: underload threshold {self.underload_threshold} "
                f"exceeds overload threshold {self.overload_threshold}"
            )
        for file_id, sset in self._server_sets.items():
            if not sset:
                problems.append(
                    f"l2s: file {file_id} has an empty server set"
                )
            if len(set(sset)) != len(sset):
                problems.append(
                    f"l2s: file {file_id} server set has duplicates: {sset}"
                )
            for member in sset:
                if not 0 <= member < n:
                    problems.append(
                        f"l2s: file {file_id} server set names node "
                        f"{member}, outside the {n}-node cluster"
                    )
                elif member in self.failed_nodes:
                    problems.append(
                        f"l2s: file {file_id} server set names failed "
                        f"node {member}"
                    )
        for i in range(n):
            if i not in self.failed_nodes and self._views[i][i] < 0:
                problems.append(
                    f"l2s: node {i} sees its own load as {self._views[i][i]}"
                )
        return problems
