"""Request-distribution policy interface.

A policy answers two questions the simulator asks for every request:

1. :meth:`DistributionPolicy.initial_node` — which node does the client's
   connection land on?  (Round-robin DNS for L2S, an idealized
   fewest-connections switch for the traditional server, always the
   front-end for LARD.)
2. :meth:`DistributionPolicy.decide` — which node services the request?
   If it differs from the initial node, the request is handed off and the
   simulator charges the forwarding CPU work plus the message costs.

Policies also get hooks for connection-count changes (L2S piggybacks its
load broadcasts there) and request completions (LARD back-ends batch
completion notices to the front-end there).  Policies emit their control
traffic themselves through ``cluster.net`` so every message they need is
charged to the simulated hardware.

Policies are substrate-neutral: they read time only through the injected
:class:`Clock` (``self.clock.now``) and talk to the world only through
the bound cluster's ``net``/``node``/``num_nodes`` surface.  The DES
driver binds them to the simulated cluster with the DES environment as
the clock; :class:`repro.live.PolicyEngine` binds the *same objects* to
a live asyncio cluster with a wall clock — which is what makes
sim-vs-live divergence a meaningful bug finder.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    runtime_checkable,
)

from ..cluster import Cluster

__all__ = [
    "Clock",
    "Decision",
    "DistributionPolicy",
    "ShuffledRoundRobin",
    "ServiceUnavailable",
    "least_loaded",
]


def least_loaded(view: Sequence[int], nodes: Iterable[int]) -> int:
    """Node with the smallest ``(view[i], i)`` — i.e. ``min`` with that
    key, minus the per-node lambda/tuple cost.  Every dispatch decision
    runs this scan (often several times per request), which made the
    ``min(..., key=lambda ...)`` idiom one of the hottest non-kernel
    lines in a profile (see ``docs/KERNEL.md``)."""
    it = iter(nodes)
    best = next(it)
    load = view[best]
    for i in it:
        li = view[i]
        if li < load or (li == load and i < best):
            load = li
            best = i
    return best


@runtime_checkable
class Clock(Protocol):
    """Where a policy's notion of "now" comes from.

    Policies age server sets and timestamp load views, but they must not
    care *whose* seconds they are counting: inside the simulator the
    clock is the DES :class:`~repro.des.Environment` (simulated seconds),
    inside :mod:`repro.live` it is a wall clock (real seconds).  Anything
    with a ``now`` attribute/property returning a monotonically
    non-decreasing float satisfies the protocol — the DES ``Environment``
    does so natively, which is why binding without an explicit clock is
    byte-identical to the historical behaviour.
    """

    @property
    def now(self) -> float:  # pragma: no cover - protocol declaration
        ...


class ServiceUnavailable(Exception):
    """The policy cannot service requests at all (e.g. LARD's front-end
    died).  The simulation driver counts such requests as failed."""


class ShuffledRoundRobin:
    """Balanced but aperiodic arrival sequence (round-robin DNS model).

    Plain ``index % N`` assignment is perfectly periodic: when a trace is
    replayed, every node receives *exactly* the same request subsequence
    each pass, which lets per-node caches memorize their slice — an
    artifact real DNS round-robin does not have (client- and resolver-side
    translation caching randomizes which node a given request reaches).
    This helper deals each consecutive block of N requests to the N nodes
    in a seeded, per-block-shuffled order: still exactly balanced, never
    periodic.
    """

    def __init__(self, nodes: int, seed: int = 0x5EED):
        if nodes < 1:
            raise ValueError("nodes must be >= 1")
        self.nodes = nodes
        self.seed = seed
        self._block = -1
        self._perm: list = []

    def node_for(self, index: int) -> int:
        if self.nodes == 1:
            return 0
        block, pos = divmod(index, self.nodes)
        if block != self._block:
            rng = random.Random((self.seed << 24) ^ block)
            self._perm = list(range(self.nodes))
            rng.shuffle(self._perm)
            self._block = block
        return self._perm[pos]


@dataclass(frozen=True)
class Decision:
    """Outcome of a distribution decision for one request."""

    #: Node that will service the request.
    target: int
    #: True when the request is handed off away from the initial node.
    forwarded: bool
    #: True when the decision replicated the file onto a new server
    #: (metrics for the replication ablation).
    replicated: bool = False


class DistributionPolicy(ABC):
    """Base class for request-distribution policies."""

    #: Human-readable policy name (used in reports and benchmarks).
    name: str = "base"

    def __init__(self) -> None:
        self.cluster: Optional[Cluster] = None
        #: Time source (see :class:`Clock`); set by :meth:`bind`.
        self.clock: Optional[Clock] = None
        #: Nodes known dead; populated by :meth:`on_node_failed`.
        self.failed_nodes: set = set()
        #: Optional :class:`~repro.overload.BreakerBoard` consulted by
        #: routing; set by :meth:`attach_breakers` (overload runs only).
        self.breakers = None

    # -- lifecycle wiring ----------------------------------------------------

    def bind(self, cluster: Cluster, clock: Optional[Clock] = None) -> None:
        """Attach to a cluster.  Called once by the driving substrate.

        ``clock`` is the policy's time source.  The default (``None``)
        uses the cluster's DES environment, preserving the historical
        simulator behaviour exactly; :class:`repro.live.PolicyEngine`
        passes a wall clock instead.  Policies must read time *only*
        through ``self.clock`` — reaching into ``cluster.env`` directly
        couples them to the simulator and blocks reuse in the live
        substrate.
        """
        self.cluster = cluster
        self.clock = clock if clock is not None else cluster.env
        self._setup()

    def _setup(self) -> None:
        """Policy-specific state initialization after binding."""

    def _require_cluster(self) -> Cluster:
        if self.cluster is None:
            raise RuntimeError(f"policy {self.name!r} is not bound to a cluster")
        return self.cluster

    # -- required decisions ----------------------------------------------------

    @abstractmethod
    def initial_node(self, index: int, file_id: int) -> int:
        """Node on which the ``index``-th client connection arrives."""

    @abstractmethod
    def decide(self, initial: int, file_id: int) -> Decision:
        """Pick the service node for a request parsed at ``initial``."""

    # -- optional hooks ---------------------------------------------------------

    def on_connection_change(self, node_id: int) -> None:
        """Called after a node's open-connection count changes."""

    def on_complete(self, node_id: int, file_id: int) -> None:
        """Called after a request finishes at its service node."""

    def on_connection_end(self, node_id: int) -> None:
        """Called when a client connection closes at ``node_id``.

        Under HTTP/1.0 this fires once per request (connection ==
        request); under persistent connections once per connection.
        Policies whose dispatcher counts *connections* (the traditional
        fewest-connections switch) hook their decrement here.
        """

    def on_node_failed(self, node_id: int) -> None:
        """A node crashed: stop routing anything to it.

        Subclasses extend this to repair their own structures (server
        sets, load views, hash rings).  Availability semantics per
        design: the distributed policies keep serving on the survivors;
        LARD survives back-end deaths but not its front-end's.

        Callers: the sim's :class:`~repro.faults.injector.FaultInjector`
        fires this at the crash instant; live, the
        :class:`~repro.live.faultproxy.HealthMonitor` fires it on the
        mark-down transition (a failed probe streak or a suspected
        request failure) — both through an idempotent guard, so a
        policy sees exactly one call per down-transition either way.
        """
        self.failed_nodes.add(node_id)

    def on_node_recovered(self, node_id: int) -> None:
        """A crashed node rebooted and rejoined (cold cache, no state).

        The base behaviour re-admits it to routing; subclasses extend
        this to rebuild their distributed views of the node (L2S resets
        and rebroadcasts its load, LARD re-admits the back-end or
        restarts the front-end's tables cold, consistent hashing
        restores the ring points).

        Live, a respawned worker is a *new incarnation*: the health
        monitor fires ``on_node_failed``/``on_node_recovered`` as a
        pair even when the restart was too fast for any probe to miss,
        so policy state tied to the dead incarnation is always flushed
        (mirroring the sim's incarnation counter).
        """
        self.failed_nodes.discard(node_id)

    def usable_nodes(self) -> int:
        """How many nodes the policy currently routes to."""
        cluster = self._require_cluster()
        return cluster.num_nodes - len(self.failed_nodes)

    def on_request_aborted(self, node_id: int, opened: bool) -> None:
        """A request aborted mid-flight (crash or client timeout).

        ``node_id`` is the initial node; ``opened`` says whether a
        service connection had been opened (in which case the normal
        ``on_connection_end`` hook already fired from the close path).
        Policies whose dispatcher counts assignments from arrival (the
        traditional fewest-connections switch) decrement here when the
        request died before opening a connection.
        """

    def on_handoff_failed(self, initial: int, target: int) -> None:
        """A hand-off from ``initial`` to ``target`` was abandoned — the
        message (and its retries, if a reliability protocol is active)
        never arrived.  Policies that optimistically charged ``target``
        in a load view at decide time roll that charge back here; the
        lifecycle then either re-runs :meth:`decide` (bounded by
        ``NetFaultConfig.handoff_redispatch``) or aborts the request.
        """

    def on_partition_healed(self) -> None:
        """The network partition just healed (all links restored).

        Soft state exchanged over the fabric diverged while the sides
        were apart; policies that gossip state (L2S) re-announce their
        server sets and load vectors here.  Fired by the
        :class:`~repro.netfaults.injector.NetFaultInjector`.
        """

    def attach_breakers(self, board) -> None:
        """Attach a :class:`~repro.overload.BreakerBoard` so routing can
        steer around open breakers.  Called by the driving substrate
        (not by :meth:`bind` — overload control is per-run opt-in, like
        fault injection)."""
        self.breakers = board

    def routable_nodes(self, nodes: Sequence[int]) -> Sequence[int]:
        """Filter candidate nodes through the breaker board.

        Open-breaker nodes are dropped *unless that would empty the
        candidate set* — when every breaker is open, routing somewhere
        beats refusing everywhere (the service-entry breaker gate will
        shed, and its half-open probes are what discover recovery).
        Without a board this is the identity, costing one attribute
        check on the hot path.
        """
        board = self.breakers
        if board is None:
            return nodes
        now = self.clock.now
        allowed = [i for i in nodes if board.routable(i, now)]
        return allowed if allowed else nodes

    def _next_alive(self, node_id: int) -> int:
        """The given node, or the next alive one after it (wrap-around).

        With a breaker board attached, alive nodes whose breakers are
        open are passed over too — falling back to the first alive node
        when every alive breaker is open (same degrade-don't-refuse rule
        as :meth:`routable_nodes`).
        """
        cluster = self._require_cluster()
        n = cluster.num_nodes
        if len(self.failed_nodes) >= n:
            raise ServiceUnavailable("every node has failed")
        board = self.breakers
        if board is None:
            for step in range(n):
                candidate = (node_id + step) % n
                if candidate not in self.failed_nodes:
                    return candidate
            raise AssertionError("unreachable")  # pragma: no cover
        now = self.clock.now
        first_alive = -1
        for step in range(n):
            candidate = (node_id + step) % n
            if candidate in self.failed_nodes:
                continue
            if board.routable(candidate, now):
                return candidate
            if first_alive < 0:
                first_alive = candidate
        return first_alive

    def reset_stats(self) -> None:
        """Discard warmup-phase statistics (policy state is kept)."""

    def stats(self) -> Dict[str, Any]:
        """Policy-specific statistics for reports."""
        return {}

    def check_invariants(self) -> List[str]:
        """Structural invariants of the policy's internal state.

        Returns a list of problem descriptions (empty = healthy).  The
        chaos oracle calls this both mid-run and post-run, so the checks
        must be cheap and must only assert properties that hold at
        *every* quiescent instant — not merely at the end of a clean
        run.  Base policies keep no distributed state; subclasses with
        load views or server sets (LARD, L2S) override.
        """
        return []
