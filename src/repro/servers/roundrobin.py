"""Round-robin locality-oblivious server (DNS-style baseline).

The simplest external distribution scheme the paper discusses: round-
robin DNS hands connections to nodes cyclically with no load or locality
information.  Useful as a floor baseline and as the arrival mechanism
other policies (L2S) reuse.
"""

from __future__ import annotations

from .base import Decision, DistributionPolicy, ShuffledRoundRobin

__all__ = ["RoundRobinPolicy"]


class RoundRobinPolicy(DistributionPolicy):
    """Cyclic (block-shuffled) assignment, strictly local service."""

    name = "round-robin"

    def _setup(self) -> None:
        self._rr = ShuffledRoundRobin(self._require_cluster().num_nodes)

    def initial_node(self, index: int, file_id: int) -> int:
        # Failover LB semantics: a dead node's turn passes to the next
        # alive node.
        return self._next_alive(self._rr.node_for(index))

    def decide(self, initial: int, file_id: int) -> Decision:
        return Decision(target=initial, forwarded=False)
