"""Round-robin locality-oblivious server (DNS-style baseline).

The simplest external distribution scheme the paper discusses: round-
robin DNS hands connections to nodes cyclically with no load or locality
information.  Useful as a floor baseline and as the arrival mechanism
other policies (L2S) reuse.
"""

from __future__ import annotations

from typing import List

from .base import Decision, DistributionPolicy, ShuffledRoundRobin

__all__ = ["RoundRobinPolicy"]


class RoundRobinPolicy(DistributionPolicy):
    """Cyclic (block-shuffled) assignment, strictly local service."""

    name = "round-robin"

    def _setup(self) -> None:
        self._rr = ShuffledRoundRobin(self._require_cluster().num_nodes)

    def initial_node(self, index: int, file_id: int) -> int:
        # Failover LB semantics: a dead node's turn passes to the next
        # alive node.
        return self._next_alive(self._rr.node_for(index))

    def decide(self, initial: int, file_id: int) -> Decision:
        return Decision(target=initial, forwarded=False)

    def check_invariants(self) -> List[str]:
        """The dealer's current block must be a true permutation of the
        node ids — a corrupted shuffle would silently unbalance arrivals
        while every per-request answer still looks plausible."""
        problems: List[str] = []
        if self.cluster is None:
            return problems
        n = self.cluster.num_nodes
        if self._rr.nodes != n:
            problems.append(
                f"round-robin: dealer sized for {self._rr.nodes} nodes, "
                f"cluster has {n}"
            )
        if self._rr._perm and sorted(self._rr._perm) != list(range(n)):
            problems.append(
                f"round-robin: block permutation {self._rr._perm} is not "
                f"a permutation of 0..{n - 1}"
            )
        return problems
