"""Round-robin DNS with translation caching (the §2 imbalance claim).

Section 2: "Round-robin DNS is the simplest scheme ... The translation
is then cached by intermediate name servers and possibly clients.  This
caching of translations can cause significant load imbalance."  The
ideal round-robin arrival used elsewhere hides that effect; this policy
models it: requests come from a Zipf-skewed population of resolvers
(big ISPs issue many more requests than small ones), and each resolver
re-resolves the server's name only every ``ttl_requests`` of its own
requests, pinning all its traffic to one node in between.

Service is strictly local (a traditional-style server), so comparing
this policy against :class:`~repro.servers.roundrobin.RoundRobinPolicy`
isolates what translation caching alone costs.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List

from ..workload.zipf import ZipfDistribution
from .base import Decision, DistributionPolicy

__all__ = ["CachedDNSPolicy"]


class CachedDNSPolicy(DistributionPolicy):
    """DNS round-robin as clients actually experience it."""

    name = "dns-cached"

    def __init__(
        self,
        num_resolvers: int = 100,
        resolver_alpha: float = 1.0,
        ttl_requests: int = 200,
        seed: int = 0xD15,
    ):
        super().__init__()
        if num_resolvers < 1:
            raise ValueError("num_resolvers must be >= 1")
        if resolver_alpha < 0:
            raise ValueError("resolver_alpha must be non-negative")
        if ttl_requests < 1:
            raise ValueError("ttl_requests must be >= 1")
        #: Intermediate name servers / large clients issuing requests.
        self.num_resolvers = num_resolvers
        #: Skew of request volume across resolvers (1.0 ~ ISP-sized tail).
        self.resolver_alpha = resolver_alpha
        #: A resolver re-resolves after this many of its own requests
        #: (a request-count proxy for the DNS TTL).
        self.ttl_requests = ttl_requests
        self.seed = seed
        self.resolutions = 0

    def _setup(self) -> None:
        self._rng = random.Random(self.seed)
        self._zipf = ZipfDistribution(self.num_resolvers, self.resolver_alpha)
        self._cdf = self._zipf.cdf
        #: resolver -> [cached_node, remaining_ttl]
        self._cache: Dict[int, List[int]] = {}
        self._rr_next = 0

    def _draw_resolver(self) -> int:
        import bisect

        return bisect.bisect_right(self._cdf, self._rng.random())

    def _resolve(self) -> int:
        """The authoritative DNS answers round-robin over alive nodes."""
        cluster = self._require_cluster()
        n = cluster.num_nodes
        for _ in range(n):
            node = self._rr_next % n
            self._rr_next += 1
            if node not in self.failed_nodes:
                self.resolutions += 1
                return node
        from .base import ServiceUnavailable

        raise ServiceUnavailable("every node has failed")

    def initial_node(self, index: int, file_id: int) -> int:
        resolver = min(self._draw_resolver(), self.num_resolvers - 1)
        entry = self._cache.get(resolver)
        if (
            entry is None
            or entry[1] <= 0
            or entry[0] in self.failed_nodes
        ):
            entry = [self._resolve(), self.ttl_requests]
            self._cache[resolver] = entry
        entry[1] -= 1
        return entry[0]

    def decide(self, initial: int, file_id: int) -> Decision:
        return Decision(target=initial, forwarded=False)

    def stats(self) -> Dict[str, Any]:
        return {
            "resolutions": self.resolutions,
            "resolvers_seen": len(self._cache),
        }

    def check_invariants(self) -> List[str]:
        """Translation-cache sanity: every entry names a real node and a
        TTL within [0, ttl_requests], and entries never outnumber the
        resolutions that created them.  (A cached entry *may* point at a
        failed node — stale translations are the behaviour under study —
        so liveness is deliberately not asserted.)"""
        problems: List[str] = []
        if self.cluster is None:
            return problems
        n = self.cluster.num_nodes
        for resolver, entry in self._cache.items():
            node, remaining = entry[0], entry[1]
            if not 0 <= node < n:
                problems.append(
                    f"dns-cached: resolver {resolver} caches node {node}, "
                    f"outside 0..{n - 1}"
                )
            if not 0 <= remaining <= self.ttl_requests:
                problems.append(
                    f"dns-cached: resolver {resolver} TTL {remaining} "
                    f"outside [0, {self.ttl_requests}]"
                )
        if len(self._cache) > self.resolutions:
            problems.append(
                f"dns-cached: {len(self._cache)} cache entries but only "
                f"{self.resolutions} resolutions ever performed"
            )
        return problems
