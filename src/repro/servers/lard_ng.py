"""Dispatcher-based "scalable LARD" (Aron et al. 2000; paper §6).

The LARD authors' follow-up design, which this paper's related-work
section analyzes: client connections are accepted by *all* serving
nodes (a load-balancing switch or round-robin DNS), the accepting node
queries a dedicated **dispatcher** that runs the LARD/R algorithm, and
then hands the connection off to whichever node the dispatcher chose —
possibly itself, saving the hand-off.

Relative to front-end LARD this moves the per-request cost from
"parse + hand-off at one node" to "a query/reply message pair + a small
decision", so the saturation point is much higher; but, as the paper
argues, (a) the dispatcher is still a single point of failure, (b) its
cache space is still wasted, and (c) every request pays a two-way
communication.  L2S has none of these.  This policy exists to check
that analysis.
"""

from __future__ import annotations

from typing import Generator

from .base import Decision, ServiceUnavailable, ShuffledRoundRobin
from .lard import LARDPolicy

__all__ = ["DispatcherLARDPolicy"]


class DispatcherLARDPolicy(LARDPolicy):
    """LARD/R run at a dedicated dispatcher, queried per request."""

    name = "lard-ng"
    #: The simulator must obtain decisions through
    #: :meth:`decide_process`, which charges the query round-trip.
    async_decide = True

    def __init__(self, decision_cpu_s: float = 20e-6, **kwargs):
        super().__init__(**kwargs)
        if decision_cpu_s < 0:
            raise ValueError("decision_cpu_s must be non-negative")
        #: Dispatcher CPU time per distribution decision (a table lookup
        #: plus bookkeeping; Aron et al. measured tens of microseconds).
        self.decision_cpu_s = decision_cpu_s
        self.queries = 0

    @property
    def dispatcher(self) -> int:
        return 0

    def _setup(self) -> None:
        super()._setup()
        self._rr = ShuffledRoundRobin(max(1, self._require_cluster().num_nodes - 1))

    def initial_node(self, index: int, file_id: int) -> int:
        """Connections land directly on serving nodes (1..N-1)."""
        if self._single_node:
            return 0
        # Round-robin over the serving nodes, skipping the dispatcher.
        node = 1 + self._rr.node_for(index)
        return self._next_alive_serving(node)

    def _next_alive_serving(self, node: int) -> int:
        cluster = self._require_cluster()
        n = cluster.num_nodes
        for step in range(n - 1):
            candidate = 1 + (node - 1 + step) % (n - 1)
            if candidate not in self.failed_nodes:
                return candidate
        raise ServiceUnavailable("every serving node has failed")

    def decide_process(self, initial: int, file_id: int) -> Generator:
        """Query round-trip to the dispatcher, then the LARD/R decision.

        Charged: control message initial -> dispatcher, decision CPU at
        the dispatcher, control message back.  Returns the
        :class:`Decision` (``forwarded`` only when the dispatcher picked
        a different node than the accepting one).
        """
        cluster = self._require_cluster()
        if self._single_node:
            return Decision(target=0, forwarded=False)
        if self.dispatcher in self.failed_nodes:
            raise ServiceUnavailable("the dispatcher has failed")
        self.queries += 1
        yield from cluster.net.send_control(initial, self.dispatcher, kind="lardng_query")
        if self.decision_cpu_s > 0:
            yield from cluster.node(self.dispatcher).use_cpu(self.decision_cpu_s)
        decision = super().decide(initial, file_id)
        yield from cluster.net.send_control(self.dispatcher, initial, kind="lardng_reply")
        return decision

    def decide(self, initial: int, file_id: int) -> Decision:
        raise RuntimeError(
            "lard-ng decisions require the messaging round-trip; drive it "
            "through decide_process (async_decide=True)"
        )

    def stats(self):
        s = super().stats()
        s["queries"] = self.queries
        return s
