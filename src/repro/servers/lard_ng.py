"""Dispatcher-based "scalable LARD" (Aron et al. 2000; paper §6).

The LARD authors' follow-up design, which this paper's related-work
section analyzes: client connections are accepted by *all* serving
nodes (a load-balancing switch or round-robin DNS), the accepting node
queries a dedicated **dispatcher** that runs the LARD/R algorithm, and
then hands the connection off to whichever node the dispatcher chose —
possibly itself, saving the hand-off.

Relative to front-end LARD this moves the per-request cost from
"parse + hand-off at one node" to "a query/reply message pair + a small
decision", so the saturation point is much higher; but, as the paper
argues, (a) the dispatcher is still a single point of failure, (b) its
cache space is still wasted, and (c) every request pays a two-way
communication.  L2S has none of these.  This policy exists to check
that analysis.

Failover extension (fault-injection runs): with ``failover_s`` set, a
dispatcher crash triggers an **election** after that delay — the
lowest-id alive serving node promotes itself to dispatcher, rebuilding
the LARD tables from scratch (they died with the old dispatcher's
memory), and announces the result with a broadcast.  Until the election
completes every request fails, which is the outage window the
availability timeline measures.  Without ``failover_s`` a dispatcher
crash is a total outage until the node itself recovers — the paper's
single-point-of-failure claim in its starkest form.
"""

from __future__ import annotations

from typing import Generator, Optional

from .base import Decision, DistributionPolicy, ServiceUnavailable, ShuffledRoundRobin
from .lard import LARDPolicy

__all__ = ["DispatcherLARDPolicy"]


class DispatcherLARDPolicy(LARDPolicy):
    """LARD/R run at a dedicated dispatcher, queried per request."""

    name = "lard-ng"
    #: The simulator must obtain decisions through
    #: :meth:`decide_process`, which charges the query round-trip.
    async_decide = True

    def __init__(
        self,
        decision_cpu_s: float = 20e-6,
        failover_s: Optional[float] = None,
        **kwargs,
    ):
        super().__init__(**kwargs)
        if decision_cpu_s < 0:
            raise ValueError("decision_cpu_s must be non-negative")
        if failover_s is not None and failover_s < 0:
            raise ValueError("failover_s must be non-negative")
        #: Dispatcher CPU time per distribution decision (a table lookup
        #: plus bookkeeping; Aron et al. measured tens of microseconds).
        self.decision_cpu_s = decision_cpu_s
        #: Election delay after a dispatcher crash (None = no failover).
        self.failover_s = failover_s
        self.queries = 0
        self.elections = 0

    @property
    def dispatcher(self) -> int:
        return self._dispatcher

    @property
    def front_end(self) -> int:
        """The current dispatcher — keeps the inherited LARD notice and
        recovery paths pointed at whoever holds the tables now."""
        return self._dispatcher

    def _setup(self) -> None:
        self._dispatcher = 0
        super()._setup()
        self._rr = ShuffledRoundRobin(max(1, self._require_cluster().num_nodes - 1))

    def initial_node(self, index: int, file_id: int) -> int:
        """Connections land directly on serving nodes (1..N-1)."""
        if self._single_node:
            return 0
        # Round-robin over the serving nodes, skipping the original
        # dispatcher slot (an elected dispatcher keeps its arrivals).
        node = 1 + self._rr.node_for(index)
        return self._next_alive_serving(node)

    def _next_alive_serving(self, node: int) -> int:
        cluster = self._require_cluster()
        n = cluster.num_nodes
        for step in range(n - 1):
            candidate = 1 + (node - 1 + step) % (n - 1)
            if candidate not in self.failed_nodes:
                return candidate
        raise ServiceUnavailable("every serving node has failed")

    # -- failure / failover -----------------------------------------------------

    def on_node_failed(self, node_id: int) -> None:
        """Prune the dead node from the serving structures and, if it was
        the dispatcher and failover is enabled, schedule an election.

        Unlike front-end LARD, the dispatcher here may itself be a
        serving node (after a previous election), so the serving-pool
        repair runs unconditionally.
        """
        DistributionPolicy.on_node_failed(self, node_id)
        if self._single_node:
            return
        if node_id in self._back_ends:
            self._back_ends.remove(node_id)
        for file_id in list(self._server_sets):
            sset = self._server_sets[file_id]
            if node_id in sset:
                sset.remove(node_id)
            if not sset:
                del self._server_sets[file_id]
                self._set_modified.pop(file_id, None)
        if node_id == self._dispatcher and self.failover_s is not None:
            self._require_cluster().env.schedule_callback(
                self.failover_s, self._elect
            )

    def _elect(self) -> None:
        """Promote the lowest-id alive serving node to dispatcher.

        The promoted node rebuilds the LARD tables from scratch — the
        old ones died with the old dispatcher's memory — and announces
        the election with a (charged) broadcast.  A no-op if the old
        dispatcher already recovered, or if nobody is left to elect.
        """
        if self._dispatcher not in self.failed_nodes:
            return
        cluster = self._require_cluster()
        n = cluster.num_nodes
        alive = [i for i in range(1, n) if i not in self.failed_nodes]
        if not alive:
            return
        self._dispatcher = alive[0]
        self._view = [0] * n
        self._server_sets.clear()
        self._set_modified.clear()
        self._pending_notice = [0] * n
        self._table_gen += 1
        self.elections += 1
        cluster.net.broadcast_control(self._dispatcher, kind="lardng_elect")

    # -- decisions ---------------------------------------------------------------

    def decide_process(self, initial: int, file_id: int) -> Generator:
        """Query round-trip to the dispatcher, then the LARD/R decision.

        Charged: control message initial -> dispatcher, decision CPU at
        the dispatcher, control message back (both messages skipped when
        the accepting node *is* the dispatcher — possible after an
        election).  Returns the :class:`Decision` (``forwarded`` only
        when the dispatcher picked a different node than the accepting
        one).
        """
        cluster = self._require_cluster()
        if self._single_node:
            return Decision(target=0, forwarded=False)
        if self._dispatcher in self.failed_nodes:
            raise ServiceUnavailable("the dispatcher has failed")
        self.queries += 1
        proto = cluster.net.protocol
        if initial != self._dispatcher:
            if proto is not None and proto.covers("lardng_query"):
                ok = yield from proto.request_gen(
                    initial,
                    self._dispatcher,
                    cluster.config.control_kb,
                    "lardng_query",
                    ni_time_s=cluster.config.ni_control_time(),
                )
            else:
                ok = yield from cluster.net.send_control(
                    initial, self._dispatcher, kind="lardng_query"
                )
            if not ok:
                # The dispatcher is unreachable (lost query after
                # retries, crash, partition): the accepting node times
                # out and the client retries — the request aborts.
                raise ServiceUnavailable("dispatcher query timed out")
        if self.decision_cpu_s > 0:
            yield from cluster.node(self._dispatcher).use_cpu(self.decision_cpu_s)
        decision = super().decide(initial, file_id)
        if initial != self._dispatcher:
            if proto is not None and proto.covers("lardng_reply"):
                ok = yield from proto.request_gen(
                    self._dispatcher,
                    initial,
                    cluster.config.control_kb,
                    "lardng_reply",
                    ni_time_s=cluster.config.ni_control_time(),
                )
            else:
                ok = yield from cluster.net.send_control(
                    self._dispatcher, initial, kind="lardng_reply"
                )
            if not ok:
                # The decision never reached the accepting node: undo
                # the dispatcher's optimistic view charge and abort.
                self.on_handoff_failed(initial, decision.target)
                raise ServiceUnavailable("dispatcher reply timed out")
        return decision

    def decide(self, initial: int, file_id: int) -> Decision:
        raise RuntimeError(
            "lard-ng decisions require the messaging round-trip; drive it "
            "through decide_process (async_decide=True)"
        )

    def stats(self):
        s = super().stats()
        s["queries"] = self.queries
        s["elections"] = self.elections
        s["dispatcher"] = self._dispatcher
        return s
