"""``repro.servers`` — request-distribution policies.

The paper's three systems, the §6 follow-up, and three extension
baselines:

* :class:`TraditionalPolicy` — fewest-connections, locality-oblivious;
* :class:`LARDPolicy` — Pai et al.'s front-end LARD/R;
* :class:`L2SPolicy` — the paper's fully distributed locality +
  load-balancing server (the contribution);
* :class:`DispatcherLARDPolicy` — the dispatcher-based "scalable LARD"
  the paper's related-work section analyzes;
* :class:`RoundRobinPolicy` — DNS round-robin floor baseline (extension);
* :class:`ConsistentHashPolicy` — hash-partitioning locality without load
  awareness (extension);
* :class:`CachedDNSPolicy` — DNS round-robin as resolver caching actually
  delivers it, reproducing §2's load-imbalance claim (extension).
"""

from .base import Clock, Decision, DistributionPolicy, ServiceUnavailable
from .chash import ConsistentHashPolicy
from .l2s import L2SPolicy
from .dnscache import CachedDNSPolicy
from .lard import LARDPolicy
from .lard_ng import DispatcherLARDPolicy
from .roundrobin import RoundRobinPolicy
from .traditional import TraditionalPolicy

__all__ = [
    "Clock",
    "Decision",
    "DistributionPolicy",
    "ServiceUnavailable",
    "TraditionalPolicy",
    "RoundRobinPolicy",
    "LARDPolicy",
    "DispatcherLARDPolicy",
    "L2SPolicy",
    "ConsistentHashPolicy",
    "CachedDNSPolicy",
]

#: Registry used by the CLI and benchmark harness.
POLICIES = {
    "traditional": TraditionalPolicy,
    "round-robin": RoundRobinPolicy,
    "lard": LARDPolicy,
    "lard-ng": DispatcherLARDPolicy,
    "l2s": L2SPolicy,
    "consistent-hash": ConsistentHashPolicy,
    "dns-cached": CachedDNSPolicy,
}


def make_policy(name: str, **kwargs) -> DistributionPolicy:
    """Instantiate a policy by registry name."""
    try:
        cls = POLICIES[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; available: {sorted(POLICIES)}"
        ) from None
    return cls(**kwargs)
