"""The traditional, locality-oblivious server.

Requests are assigned to the node with the fewest open connections (all
nodes equally powerful) by an idealized dispatcher — e.g. a L4 switch —
and every node services its own requests independently.  The memories
behave as N independent caches of the same hot content, which is exactly
the pathology the paper sets out to quantify.

The dispatcher's view counts a connection from *assignment* (not from the
moment the node starts parsing), mirroring a real connection-counting
switch and avoiding herding at simulation start.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .base import Decision, DistributionPolicy, least_loaded

__all__ = ["TraditionalPolicy"]


class TraditionalPolicy(DistributionPolicy):
    """Fewest-connections dispatch, strictly local service."""

    name = "traditional"

    def _setup(self) -> None:
        n = self._require_cluster().num_nodes
        #: Connections as seen by the dispatcher: assigned minus completed.
        self._assigned: List[int] = [0] * n

    def initial_node(self, index: int, file_id: int) -> int:
        self._require_cluster()
        view = self._assigned
        failed = self.failed_nodes
        if failed or self.breakers is not None:
            from .base import ServiceUnavailable

            alive = [i for i in range(len(view)) if i not in failed]
            if not alive:
                raise ServiceUnavailable("every node has failed")
            node = least_loaded(view, self.routable_nodes(alive))
        else:
            # Hot path (no failures): scan in place, no node list, no
            # key tuples.  Strict ``<`` keeps min()'s tie-break — the
            # lowest-id node among the minima.
            node = 0
            best = view[0]
            for i in range(1, len(view)):
                load = view[i]
                if load < best:
                    best = load
                    node = i
        view[node] += 1
        return node

    def decide(self, initial: int, file_id: int) -> Decision:
        return Decision(target=initial, forwarded=False)

    def on_connection_end(self, node_id: int) -> None:
        self._assigned[node_id] -= 1

    def on_request_aborted(self, node_id: int, opened: bool) -> None:
        """Balance the dispatcher view for requests that died between
        assignment and connection open (the open path decrements through
        ``on_connection_end`` as usual)."""
        if not opened and node_id >= 0:
            self._assigned[node_id] -= 1

    def stats(self) -> Dict[str, Any]:
        return {"dispatcher_view": list(self._assigned)}

    def check_invariants(self) -> List[str]:
        """The dispatcher view must never drift negative: every decrement
        (connection end, unopened abort) pairs with exactly one earlier
        assignment, so a negative count means double-accounting — the
        same bug class chaos fuzzing caught in LARD's front-end view."""
        problems: List[str] = []
        if self.cluster is None:
            return problems
        if len(self._assigned) != self.cluster.num_nodes:
            problems.append(
                f"traditional: dispatcher view has {len(self._assigned)} "
                f"entries for {self.cluster.num_nodes} nodes"
            )
        for i, count in enumerate(self._assigned):
            if count < 0:
                problems.append(
                    f"traditional: dispatcher view of node {i} is "
                    f"negative ({count})"
                )
        return problems
