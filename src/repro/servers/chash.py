"""Consistent-hashing request distribution (extension baseline).

Not part of the paper, but the locality mechanism that later became
standard in load balancers: each file maps to a node through a consistent
hash ring, giving perfect cache partitioning with no load awareness and
no coordination traffic.  Comparing it against L2S isolates the value of
L2S's load-balancing half (server sets, thresholds, broadcasts).

Connections still arrive round-robin (DNS), so a request lands on an
arbitrary node and is handed off to the ring owner when different —
the same forwarding path L2S uses.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Any, Dict, List, Tuple

from .base import Decision, DistributionPolicy, ShuffledRoundRobin

__all__ = ["ConsistentHashPolicy"]


def _hash64(key: str) -> int:
    """Stable 64-bit hash (Python's builtin hash is salted per-process)."""
    return int.from_bytes(hashlib.blake2b(key.encode(), digest_size=8).digest(), "big")


class ConsistentHashPolicy(DistributionPolicy):
    """Hash-ring file-to-node mapping with round-robin arrivals."""

    name = "consistent-hash"

    def __init__(self, virtual_nodes: int = 64):
        super().__init__()
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        self.virtual_nodes = virtual_nodes

    def _setup(self) -> None:
        n = self._require_cluster().num_nodes
        self._rr = ShuffledRoundRobin(n)
        self._build_ring()

    def _build_ring(self) -> None:
        n = self._require_cluster().num_nodes
        points: List[Tuple[int, int]] = []
        for node in range(n):
            if node in self.failed_nodes:
                continue
            for replica in range(self.virtual_nodes):
                points.append((_hash64(f"node:{node}:{replica}"), node))
        points.sort()
        self._ring_hashes = [h for h, _ in points]
        self._ring_owners = [o for _, o in points]

    def on_node_failed(self, node_id: int) -> None:
        """Remove the node's ring points; its files remap to neighbours —
        the classic consistent-hashing failover (only ~1/N moves)."""
        super().on_node_failed(node_id)
        self._build_ring()

    def on_node_recovered(self, node_id: int) -> None:
        """Restore the node's ring points: its files remap straight back
        (the ring is deterministic), hitting a now-cold cache."""
        super().on_node_recovered(node_id)
        self._build_ring()

    def owner_of(self, file_id: int) -> int:
        """The ring owner of a file."""
        h = _hash64(f"file:{file_id}")
        idx = bisect_right(self._ring_hashes, h) % len(self._ring_hashes)
        return self._ring_owners[idx]

    def initial_node(self, index: int, file_id: int) -> int:
        return self._next_alive(self._rr.node_for(index))

    def decide(self, initial: int, file_id: int) -> Decision:
        target = self.owner_of(file_id)
        return Decision(target=target, forwarded=target != initial)

    def stats(self) -> Dict[str, Any]:
        n = self._require_cluster().num_nodes
        counts = [0] * n
        for owner in self._ring_owners:
            counts[owner] += 1
        return {"virtual_nodes": self.virtual_nodes, "ring_points_per_node": counts}

    def check_invariants(self) -> List[str]:
        """Ring structure: sorted point hashes aligned with owners, no
        dead node owning points, and exactly ``virtual_nodes`` points per
        alive node.  A stale ring after a membership change would route
        requests to crashed back-ends with no error until the hand-off
        times out."""
        problems: List[str] = []
        if self.cluster is None:
            return problems
        n = self.cluster.num_nodes
        if len(self._ring_hashes) != len(self._ring_owners):
            problems.append(
                f"chash: {len(self._ring_hashes)} ring hashes vs "
                f"{len(self._ring_owners)} owners"
            )
            return problems
        if any(
            self._ring_hashes[i] > self._ring_hashes[i + 1]
            for i in range(len(self._ring_hashes) - 1)
        ):
            problems.append("chash: ring hashes are not sorted")
        alive = [i for i in range(n) if i not in self.failed_nodes]
        counts = [0] * n
        for owner in self._ring_owners:
            if not 0 <= owner < n:
                problems.append(f"chash: ring owner {owner} out of range")
                continue
            counts[owner] += 1
        for node in range(n):
            expect = self.virtual_nodes if node in alive else 0
            if counts[node] != expect:
                state = "alive" if node in alive else "failed"
                problems.append(
                    f"chash: {state} node {node} owns {counts[node]} ring "
                    f"points, expected {expect}"
                )
        return problems
