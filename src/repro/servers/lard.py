"""The LARD server (Pai et al., ASPLOS-8) as simulated in the paper.

One cluster node (id 0) is the dedicated **front-end**: it accepts and
parses every client request, runs the LARD/R distribution algorithm over
its view of the back-end loads, and hands the connection off to a
back-end, which replies to the client directly.  The front-end neither
caches nor services content — the cache-space waste and the single
choke point the paper criticizes.

Algorithm (LARD with replication, 'LARD/R'):

* an unknown target goes to the least-loaded back-end, which becomes its
  server set;
* otherwise the request goes to the least-loaded member of the target's
  server set, unless that member is loaded above ``t_high`` while some
  back-end sits below ``t_low`` (or it exceeds ``2*t_high``), in which
  case the overall least-loaded back-end is added to the set and used;
* a multi-member set older than ``set_age_s`` since its last change
  drops its most-loaded member.

Defaults ``t_low=25``, ``t_high=65``, 20 s aging follow Pai et al., whose
settings this paper reuses ("they produce the best results for our
traces as well").

Load view: the front-end counts a back-end connection from hand-off
until the back-end's *completion notice* arrives.  Back-ends batch
notices: one control message per ``completion_batch`` finished requests
(4, the value the paper found best), so the view is stale exactly as in
the real system.

A single-node "cluster" degenerates to a sequential server (the node
serves everything locally); the paper's figures likewise start LARD's
curves at more than one node.
"""

from __future__ import annotations

from bisect import insort
from typing import Any, Dict, List

from .base import Decision, DistributionPolicy, ServiceUnavailable
from .base import least_loaded as _least_loaded

__all__ = ["LARDPolicy"]


class LARDPolicy(DistributionPolicy):
    """Front-end LARD/R request distribution."""

    name = "lard"

    def __init__(
        self,
        t_low: int = 25,
        t_high: int = 65,
        set_age_s: float = 20.0,
        completion_batch: int = 4,
        replication: bool = True,
    ):
        super().__init__()
        if t_low <= 0 or t_high <= 0:
            raise ValueError("thresholds must be positive")
        if t_low > t_high:
            raise ValueError("t_low must not exceed t_high")
        if completion_batch < 1:
            raise ValueError("completion_batch must be >= 1")
        if set_age_s < 0:
            raise ValueError("set_age_s must be non-negative")
        self.t_low = t_low
        self.t_high = t_high
        self.set_age_s = set_age_s
        self.completion_batch = completion_batch
        #: False gives plain LARD (single-node server sets, no replication).
        self.replication = replication
        self.replications = 0
        self.shrinks = 0
        self.completion_notices = 0
        self.front_end_restarts = 0
        #: Notice debits discarded because the table that held their
        #: charges was lost in a restart (dropped stale notices plus
        #: post-restart acknowledgements clamped at zero).
        self.stale_acks = 0

    @property
    def front_end(self) -> int:
        return 0

    def _setup(self) -> None:
        cluster = self._require_cluster()
        n = cluster.num_nodes
        self._single_node = n == 1
        #: Back-end node ids (everything but the front-end).
        self._back_ends: List[int] = list(range(1, n))
        #: Front-end's load view: handed-off minus acknowledged, per node.
        self._view: List[int] = [0] * n
        self._server_sets: Dict[int, List[int]] = {}
        self._set_modified: Dict[int, float] = {}
        #: Completions at each back-end not yet covered by a notice.
        self._pending_notice: List[int] = [0] * n
        #: Incremented whenever the view table restarts cold (front-end
        #: reboot, dispatcher re-election).  Completion notices delivered
        #: across a table restart must not debit the fresh table: the
        #: hand-offs they acknowledge were charged to the *old* table.
        self._table_gen = 0

    # -- arrival: everything lands on the front-end ------------------------------

    def initial_node(self, index: int, file_id: int) -> int:
        if self.front_end in self.failed_nodes:
            # The single point of failure the paper criticizes: no
            # front-end, no service.
            raise ServiceUnavailable("LARD front-end has failed")
        return self.front_end

    def on_node_failed(self, node_id: int) -> None:
        """A back-end death is survivable: the front-end drops it from
        its view and every server set.  A front-end death is not."""
        super().on_node_failed(node_id)
        if node_id == self.front_end or self._single_node:
            return
        if node_id in self._back_ends:
            self._back_ends.remove(node_id)
        for file_id in list(self._server_sets):
            sset = self._server_sets[file_id]
            if node_id in sset:
                sset.remove(node_id)
            if not sset:
                del self._server_sets[file_id]
                self._set_modified.pop(file_id, None)

    def on_node_recovered(self, node_id: int) -> None:
        """Rejoin semantics per role.

        A rebooted **back-end** re-enters the pool with an empty cache
        and no server-set membership — LARD re-replicates hot files onto
        it through the normal t_high/t_low path.  Its view entry is *not*
        forced to zero: the view is front-end memory, and every
        connection charged to the dead incarnation still closes through
        the normal abort path (possibly after the reboot) and sends its
        completion notice, so the entry drains to zero on its own — the
        same drain-through contract :meth:`Node.recover` keeps for the
        node's connection count.  Zeroing it here would double-credit
        those connections and drive the view negative.

        A rebooted **front-end** resumes service, but its LARD tables
        (views, server sets, pending notices) restart cold: the state
        lived in the front-end's memory, which is exactly why the paper
        calls it a single point of failure.
        """
        super().on_node_recovered(node_id)
        if self._single_node:
            return
        n = self._require_cluster().num_nodes
        if node_id == self.front_end:
            self._view = [0] * n
            self._server_sets.clear()
            self._set_modified.clear()
            self._pending_notice = [0] * n
            self._table_gen += 1
            self.front_end_restarts += 1
        else:
            if node_id not in self._back_ends:
                insort(self._back_ends, node_id)

    # -- LARD/R -------------------------------------------------------------------

    def decide(self, initial: int, file_id: int) -> Decision:
        cluster = self._require_cluster()
        if self._single_node:
            return Decision(target=0, forwarded=False)
        if not self._back_ends:
            raise ServiceUnavailable("no LARD back-ends remain")
        now = self.clock.now
        view = self._view

        sset = self._server_sets.get(file_id)
        replicated = False
        modified = False

        if not sset:
            target = _least_loaded(view, self.routable_nodes(self._back_ends))
            sset = [target]
            self._server_sets[file_id] = sset
            modified = True
        else:
            target = _least_loaded(view, self.routable_nodes(sset))
            if self.replication:
                cold = _least_loaded(view, self.routable_nodes(self._back_ends))
                if (
                    view[target] > self.t_high and view[cold] < self.t_low
                ) or view[target] > 2 * self.t_high:
                    if cold not in sset:
                        sset.append(cold)
                        replicated = True
                        modified = True
                        self.replications += 1
                    target = cold
            if (
                len(sset) > 1
                and now - self._set_modified.get(file_id, -float("inf"))
                >= self.set_age_s
            ):
                victim = max(sset, key=lambda i: (view[i], i))
                if victim != target:
                    sset.remove(victim)
                    modified = True
                    self.shrinks += 1

        if modified:
            self._set_modified[file_id] = now
        view[target] += 1
        # From the front-end (never a back-end) this is always a hand-off;
        # the dispatcher subclass can land on the initial node itself.
        return Decision(
            target=target, forwarded=target != initial, replicated=replicated
        )

    # -- completion notices ----------------------------------------------------------

    def on_connection_end(self, node_id: int) -> None:
        """Batch a completion notice towards the front-end.

        The front-end's view counts *connections* (one increment per
        decide), so the decrement must also be per connection — under
        persistent connections ``on_complete`` fires once per request
        and would drive the view negative.
        """
        if self._single_node:
            return
        self._pending_notice[node_id] += 1
        if self._pending_notice[node_id] < self.completion_batch:
            return
        batch = self._pending_notice[node_id]
        self._pending_notice[node_id] = 0
        self._deliver_notice(node_id, batch)

    def _deliver_notice(self, back_end: int, batch: int) -> None:
        """Back-end -> front-end message; the view updates on delivery.

        Rides the callback-chain fast path (no per-notice process).  An
        elected lard-ng dispatcher also serves; its own notices are a
        local table update, not a network message — ``send_control_cb``'s
        ``src == dst`` shortcut applies the update synchronously.
        """
        cluster = self._require_cluster()
        gen = self._table_gen

        def apply() -> None:
            if self._table_gen != gen:
                # The table restarted cold (front-end reboot, dispatcher
                # election) while the notice was in flight; the charges
                # it acknowledges died with the old table, and debiting
                # the fresh one would drive the view negative.
                self.stale_acks += batch
                return
            view = self._view
            debit = batch
            if self._table_gen and debit > view[back_end]:
                # Post-restart notices can acknowledge hand-offs charged
                # to the lost table (connections that straddled the
                # restart).  A restarted front-end has no record of them:
                # it ignores the excess rather than going negative.
                self.stale_acks += debit - view[back_end]
                debit = view[back_end]
            view[back_end] -= debit
            self.completion_notices += 1

        proto = cluster.net.protocol
        if proto is not None and proto.covers("lard_done"):
            # A lost notice permanently inflates the front-end's view of
            # this back-end, so notices ride the ack/retry protocol on an
            # unreliable fabric (the view still updates at first delivery
            # only — at-most-once).
            proto.send_control_cb(
                back_end, self.front_end, "lard_done", deliver=apply
            )
        else:
            cluster.net.send_control_cb(
                back_end, self.front_end, kind="lard_done", done=apply
            )

    def on_handoff_failed(self, initial: int, target: int) -> None:
        """Roll back the view charge of a hand-off that never opened a
        connection — lost in the fabric, dead on arrival, or shed by
        admission control.

        Clamped at zero: if the table restarted cold between the charge
        and the failure, there is nothing left to roll back.
        """
        if self._single_node:
            return
        if self._view[target] > 0:
            self._view[target] -= 1
        else:
            self.stale_acks += 1

    # -- reporting ----------------------------------------------------------------------

    def server_set(self, file_id: int) -> List[int]:
        return list(self._server_sets.get(file_id, []))

    def reset_stats(self) -> None:
        self.replications = 0
        self.shrinks = 0
        self.completion_notices = 0

    def stats(self) -> Dict[str, Any]:
        return {
            "replications": self.replications,
            "shrinks": self.shrinks,
            "completion_notices": self.completion_notices,
            "front_end_restarts": self.front_end_restarts,
            "stale_acks": self.stale_acks,
            "front_end_view": list(self._view),
            "files_with_server_sets": len(self._server_sets),
        }

    def check_invariants(self) -> List[str]:
        problems: List[str] = []
        if self._single_node:
            return problems
        for i, load in enumerate(self._view):
            if load < 0:
                problems.append(
                    f"lard: front-end view of node {i} is negative ({load})"
                )
        alive = set(self._back_ends)
        for file_id, sset in self._server_sets.items():
            if not sset:
                problems.append(
                    f"lard: file {file_id} has an empty server set"
                )
            if len(set(sset)) != len(sset):
                problems.append(
                    f"lard: file {file_id} server set has duplicates: {sset}"
                )
            for member in sset:
                if member not in alive:
                    problems.append(
                        f"lard: file {file_id} server set names node "
                        f"{member}, which is not an alive back-end"
                    )
        for i, pending in enumerate(self._pending_notice):
            if not 0 <= pending < self.completion_batch:
                problems.append(
                    f"lard: node {i} pending-notice count {pending} "
                    f"outside [0, {self.completion_batch})"
                )
        return problems
