"""One-call simulation entry points.

:func:`run_simulation` is the main public API: give it a trace (or a
preset name), a policy, and a cluster size, and get a
:class:`~repro.sim.results.SimResult` back.  :func:`model_bound_for_trace`
produces the matching analytic upper bound (the "model" curve of
figures 7–10).
"""

from __future__ import annotations

from typing import Optional, Union

from ..cluster import ClusterConfig
from ..model import MB, ModelParameters, ServerModelResult, bound_for_population
from ..servers import DistributionPolicy, make_policy
from ..workload import Trace, synthesize
from .driver import Simulation
from .results import SimResult

__all__ = ["run_simulation", "model_bound_for_trace", "DEFAULT_SIM_CACHE_BYTES"]

#: The paper's simulations use 32 MB node memories (Section 5.1).
DEFAULT_SIM_CACHE_BYTES = 32 * MB


def run_simulation(
    trace: Union[Trace, str],
    policy: Union[DistributionPolicy, str],
    nodes: int = 16,
    cache_bytes: int = DEFAULT_SIM_CACHE_BYTES,
    num_requests: Optional[int] = None,
    warmup_fraction: float = 0.3,
    passes: int = 2,
    config: Optional[ClusterConfig] = None,
    seed: int = 0,
    sanitize: Optional[bool] = None,
    record_latencies: bool = False,
    overload=None,
    **policy_kwargs,
) -> SimResult:
    """Simulate one server design on one workload at saturation.

    Parameters
    ----------
    trace:
        A :class:`~repro.workload.Trace` or a preset name
        ("calgary", "clarknet", "nasa", "rutgers").
    policy:
        A policy instance or registry name
        ("traditional", "round-robin", "lard", "l2s", "consistent-hash").
    nodes, cache_bytes:
        Cluster size and per-node memory (paper default: 16 x 32 MB).
    num_requests:
        Synthetic request count when ``trace`` is a preset name.
    passes:
        Trace replay count; the default 2 measures the second pass with
        the first as cache/state warmup — the paper's methodology.
    config:
        Full :class:`~repro.cluster.ClusterConfig` override; ``nodes`` and
        ``cache_bytes`` are ignored when given.
    sanitize:
        Run under the DES sanitizer (see :mod:`repro.des.sanitize`).
        ``None`` defers to the ``REPRO_DES_SANITIZE`` environment
        variable.  Results are identical either way; sanitized runs are
        a few times slower.
    record_latencies:
        Keep per-request latencies for the measured window so the
        result carries p50/p95/p99 (``SimResult.latency_percentiles``).
    overload:
        An :class:`~repro.overload.OverloadControl` to wire in front of
        the cluster (admission control + per-node circuit breakers).
        Fresh instance per run, like policy objects.
    """
    if isinstance(trace, str):
        trace = synthesize(trace, num_requests=num_requests, seed=seed)
    if isinstance(policy, str):
        policy = make_policy(policy, **policy_kwargs)
    elif policy_kwargs:
        raise ValueError("policy kwargs are only valid with a policy name")
    if config is None:
        config = ClusterConfig(nodes=nodes, cache_bytes=cache_bytes)
    sim = Simulation(
        trace,
        policy,
        config,
        warmup_fraction=warmup_fraction,
        passes=passes,
        sanitize=sanitize,
        record_latencies=record_latencies,
        overload=overload,
    )
    return sim.run()


def model_bound_for_trace(
    trace: Union[Trace, str],
    nodes: int = 16,
    cache_bytes: int = DEFAULT_SIM_CACHE_BYTES,
    replication: float = 0.15,
) -> ServerModelResult:
    """Analytic locality-conscious bound for a trace's characteristics.

    This is the "model" curve of figures 7–10: the paper plots the bound
    assuming 15% replication alongside the simulated servers.

    Given a preset *name*, the published Table-2 characteristics are
    used.  Given a :class:`~repro.workload.Trace` instance, the bound
    uses the trace's *effective* population (files actually touched) so
    that bounds for scaled-down synthetic traces stay comparable to what
    the simulator exercised.
    """
    if isinstance(trace, str):
        from ..workload import preset

        p = preset(trace)
        size_kb, num_files, alpha = p.avg_request_kb, p.num_files, p.alpha
    else:
        size_kb = trace.mean_request_bytes() / 1024.0
        num_files = trace.unique_files_touched()
        alpha = trace.fileset.alpha
    params = ModelParameters(
        nodes=nodes,
        replication=replication,
        alpha=alpha,
        cache_bytes=cache_bytes,
    )
    return bound_for_population("conscious", params, size_kb, num_files)
