"""``repro.sim`` — trace-driven simulation of cluster-based servers.

Ties the substrates together: a :class:`~repro.workload.Trace` drives
closed-loop saturation injection (:class:`Simulation`) of requests whose
lifecycle (:mod:`repro.sim.lifecycle`) exercises the simulated hardware
(:mod:`repro.cluster`) under a distribution policy
(:mod:`repro.servers`), yielding a :class:`SimResult`.
"""

from .driver import Simulation
from .lifecycle import client_request
from .persistent import PersistentSimulation, run_persistent_simulation
from .results import SimResult
from .runner import (
    DEFAULT_SIM_CACHE_BYTES,
    model_bound_for_trace,
    run_simulation,
)

__all__ = [
    "Simulation",
    "SimResult",
    "client_request",
    "run_simulation",
    "model_bound_for_trace",
    "DEFAULT_SIM_CACHE_BYTES",
    "PersistentSimulation",
    "run_persistent_simulation",
]
