"""Persistent-connection (HTTP/1.1) simulation.

Extends the paper's HTTP/1.0 evaluation to keep-alive connections, the
regime its Section 4 defers to Aron et al.:

* **L2S / traditional / round-robin / consistent hashing** — the
  connection lives on one node at a time; each request is decided at the
  node currently holding it, and a differing target *migrates* the
  connection (one hand-off message + forwarding CPU work).  Mean
  connection length 1 reduces exactly to the HTTP/1.0 lifecycle.
* **LARD** — the front-end decides where a connection lives when it
  arrives (by its first request) and hands it off once; subsequent
  requests still enter through the front-end, which relays them to the
  owning back-end at L4 (NI + message cost, no distribution decision).
  The back-end serves every relayed request locally, so locality decays
  with connection length — the effect that motivated Aron et al.'s
  PHTTP work.

The load metric stays "open connections", so L2S's T/t thresholds and
LARD's view keep their meaning; the closed-loop multiprogramming level
now counts *connections* in flight.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..cluster import Cluster, ClusterConfig
from ..des import Environment, Tally
from ..servers import DistributionPolicy
from ..workload import Trace
from ..workload.sessions import SessionTrace, sessionize
from .results import SimResult

__all__ = ["PersistentSimulation", "run_persistent_simulation"]


class PersistentSimulation:
    """Closed-loop saturation run over persistent connections."""

    def __init__(
        self,
        sessions: SessionTrace,
        policy: DistributionPolicy,
        config: ClusterConfig,
        passes: int = 2,
    ):
        if passes < 1:
            raise ValueError(f"passes must be >= 1, got {passes}")
        self.sessions = sessions
        self.trace = sessions.trace
        self.policy = policy
        self.config = config
        self.passes = passes

        self.env = Environment()
        self.cluster = Cluster(self.env, config)
        policy.bind(self.cluster, clock=self.env)

        self._conns_per_pass = sessions.num_connections
        self._total_conns = self._conns_per_pass * passes
        self._reqs_per_pass = len(self.trace)
        self._total_reqs = self._reqs_per_pass * passes
        self._warmup_reqs = self._reqs_per_pass * (passes - 1)
        self._next_conn = 0
        self._completed_reqs = 0
        self._completed_conns = 0
        self._measured = 0
        self._measured_migrations = 0
        self._measure_start: Optional[float] = None
        self._last_completion = 0.0
        self._response = Tally()
        #: Per-node measured request completions (per-request, unlike the
        #: nodes' own per-connection counters).
        self._node_requests = [0] * config.nodes

    # -- connection lifecycle -------------------------------------------------

    def _connection(self, conn_index: int) -> Generator:
        cluster = self.cluster
        policy = self.policy
        env = self.env
        hw = self.config.hardware
        k = conn_index % self._conns_per_pass
        first, last = self.sessions.connection_span(k)
        ids = self.trace.file_ids
        sizes = self.trace.fileset.sizes

        is_lard = policy.name == "lard" and cluster.num_nodes > 1
        front_end = 0

        current = policy.initial_node(conn_index, int(ids[first]))
        entry = current  # where client packets enter (LARD: front-end)
        owner: Optional[int] = None  # LARD: back-end holding the connection

        cluster.node(current).connection_opened()
        policy.on_connection_change(current)
        try:
            for r in range(first, last):
                fid = int(ids[r])
                size_kb = int(sizes[fid]) / 1024.0
                start = env.now

                # The request reaches the entry node.
                yield from cluster.net.route(hw.request_kb)
                yield from cluster.node(entry).use_ni_in(
                    hw.ni_message_time(hw.request_kb)
                )

                migrated = False
                if is_lard:
                    if owner is None:
                        # First request: the front-end parses and decides.
                        yield from cluster.node(front_end).parse_request()
                        decision = policy.decide(front_end, fid)
                        owner = decision.target
                        cluster.node(front_end).forwarded += 1
                        yield from cluster.node(front_end).forward_work()
                        yield from cluster.net.send_message(
                            front_end, owner, hw.request_kb, kind="handoff"
                        )
                        self._move_connection(current, owner)
                        current = owner
                        migrated = True
                    else:
                        # Relay: L4 forward through the front-end, no
                        # distribution decision.
                        yield from cluster.node(front_end).use_cpu(
                            self.config.cpu_msg_overhead_s
                        )
                        yield from cluster.net.send_message(
                            front_end, owner, hw.request_kb, kind="relay"
                        )
                        yield from cluster.node(owner).parse_request()
                        migrated = False
                else:
                    yield from cluster.node(current).parse_request()
                    if getattr(policy, "async_decide", False):
                        decision = yield from policy.decide_process(current, fid)
                    else:
                        decision = policy.decide(current, fid)
                    if decision.target != current:
                        cluster.node(current).forwarded += 1
                        yield from cluster.node(current).forward_work()
                        yield from cluster.net.send_message(
                            current, decision.target, hw.request_kb, kind="handoff"
                        )
                        self._move_connection(current, decision.target)
                        current = decision.target
                        entry = current
                        migrated = True

                node = cluster.node(current)
                yield from cluster.fetch_file(current, fid, int(sizes[fid]))
                yield from node.reply_work(size_kb)
                yield from node.use_ni_out(hw.ni_reply_time(size_kb))
                yield from cluster.net.route(size_kb)
                policy.on_complete(current, fid)
                self._request_done(start, migrated, current)
        finally:
            cluster.node(current).connection_closed()
            policy.on_connection_change(current)
            policy.on_connection_end(current)
            self._connection_done()

    def _move_connection(self, src: int, dst: int) -> None:
        cluster = self.cluster
        cluster.node(src).connection_closed()
        self.policy.on_connection_change(src)
        # Moving away is not a completed request; undo the per-connection
        # completion tick (per-request counts live in _node_requests).
        cluster.node(src).completed -= 1
        cluster.node(dst).connection_opened()
        self.policy.on_connection_change(dst)

    # -- bookkeeping -------------------------------------------------------------

    def _request_done(self, start: float, migrated: bool, node_id: int) -> None:
        self._completed_reqs += 1
        self._last_completion = self.env.now
        if self._measure_start is not None:
            self._measured += 1
            self._measured_migrations += 1 if migrated else 0
            self._node_requests[node_id] += 1
            self._response.record(self.env.now - start)
        if self._completed_reqs == self._warmup_reqs:
            self._begin_measurement()

    def _connection_done(self) -> None:
        self._completed_conns += 1
        self._spawn_next()

    def _begin_measurement(self) -> None:
        self._measure_start = self.env.now
        self.cluster.reset_accounting()
        self.policy.reset_stats()
        self._response.reset()
        self._node_requests = [0] * self.config.nodes

    def _spawn_next(self) -> bool:
        i = self._next_conn
        if i >= self._total_conns:
            return False
        self._next_conn += 1
        self.env.process(self._connection(i), name=f"conn{i}")
        return True

    # -- run ------------------------------------------------------------------------

    def run(self) -> SimResult:
        if self._warmup_reqs == 0:
            self._begin_measurement()
        mpl = self.config.multiprogramming_per_node * self.config.nodes
        for _ in range(min(mpl, self._total_conns)):
            self._spawn_next()
        self.env.run()

        if self._completed_reqs != self._total_reqs:
            raise RuntimeError(
                f"simulation ended early: {self._completed_reqs}/"
                f"{self._total_reqs} requests"
            )
        assert self._measure_start is not None
        elapsed = self._last_completion - self._measure_start
        if elapsed <= 0:
            raise RuntimeError("measurement window is empty")

        cluster = self.cluster
        return SimResult(
            policy=self.policy.name,
            trace=self.trace.name,
            nodes=self.config.nodes,
            cache_bytes=self.config.cache_bytes,
            requests_measured=self._measured,
            requests_warmup=self._warmup_reqs,
            sim_seconds=elapsed,
            throughput_rps=self._measured / elapsed,
            miss_rate=cluster.overall_miss_rate(),
            forwarded_fraction=(
                self._measured_migrations / self._measured if self._measured else 0.0
            ),
            cpu_utilizations=[n.cpu_utilization(elapsed) for n in cluster.nodes],
            mean_response_s=self._response.mean,
            messages_per_request=(
                cluster.net.messages_sent / self._measured if self._measured else 0.0
            ),
            node_completions=list(self._node_requests),
            policy_stats=self.policy.stats(),
        )


def run_persistent_simulation(
    trace: Trace,
    policy: DistributionPolicy,
    nodes: int = 16,
    mean_requests_per_connection: float = 4.0,
    cache_bytes: Optional[int] = None,
    config: Optional[ClusterConfig] = None,
    passes: int = 2,
    seed: int = 0,
) -> SimResult:
    """One persistent-connection run (see :class:`PersistentSimulation`)."""
    from .runner import DEFAULT_SIM_CACHE_BYTES

    if config is None:
        config = ClusterConfig(
            nodes=nodes,
            cache_bytes=cache_bytes if cache_bytes is not None else DEFAULT_SIM_CACHE_BYTES,
        )
    sessions = sessionize(trace, mean_requests_per_connection, seed=seed)
    sim = PersistentSimulation(sessions, policy, config, passes=passes)
    return sim.run()
