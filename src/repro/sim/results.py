"""Simulation outputs: the measurements the paper's figures report."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["SimResult"]


@dataclass(frozen=True)
class SimResult:
    """Measured behaviour of one simulated server configuration."""

    #: Policy name ("l2s", "lard", "traditional", ...).
    policy: str
    #: Trace name the run was driven by.
    trace: str
    #: Cluster size.
    nodes: int
    #: Per-node memory, bytes.
    cache_bytes: int
    #: Requests completed inside the measurement window.
    requests_measured: int
    #: Requests completed during warmup (excluded from all metrics).
    requests_warmup: int
    #: Simulated seconds spanned by the measurement window.
    sim_seconds: float
    #: Completed requests per simulated second — the figures' y-axis.
    throughput_rps: float
    #: Cluster-wide cache miss rate inside the window.
    miss_rate: float
    #: Fraction of measured requests handed off to another node.
    forwarded_fraction: float
    #: Per-node CPU utilization inside the window.
    cpu_utilizations: List[float]
    #: Mean response time per request (simulated seconds).
    mean_response_s: float
    #: Intra-cluster messages per measured request (control + handoff).
    messages_per_request: float
    #: Per-node completed-request counts (load balance view).
    node_completions: List[int]
    #: Policy-specific counters (replications, broadcasts, ...).
    policy_stats: Dict[str, Any] = field(default_factory=dict)
    #: Requests aborted by node failures (failure-injection runs only).
    requests_failed: int = 0
    #: Client retries issued after aborts (fault runs with a RetryPolicy).
    requests_retried: int = 0
    #: Response-time percentiles in seconds (p50/p90/p95/p99/max),
    #: populated only when the driver records latencies.
    latency_percentiles: Dict[str, float] = field(default_factory=dict)
    #: Measured utilization of every hardware station inside the window:
    #: "router" plus per-node-averaged "cpu", "disk", "ni_in", "ni_out".
    station_utilizations: Dict[str, float] = field(default_factory=dict)
    #: Requests rejected by admission control — node-level
    #: ``admission_threshold`` sheds, circuit-breaker sheds, and
    #: front-door :class:`~repro.overload.AdmissionController` sheds.
    requests_shed: int = 0
    #: Per-message-kind delivery accounting, populated on runs with an
    #: active netfault layer.  Each kind maps to sent / delivered /
    #: dropped / dup / retries / acks / dedups / send_failures /
    #: in_flight, where ``sent == delivered + dropped + in_flight``.
    message_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Run-wide netfault summary (drop causes, link/partition events,
    #: DFS fallbacks, hand-off re-dispatches), same runs.
    netfault_summary: Dict[str, Any] = field(default_factory=dict)
    #: Total requests the driver generated, warmup included (0 on
    #: results built by older code paths; :meth:`verify` then skips the
    #: conservation identity).
    requests_generated: int = 0
    #: Terminal failures that happened *before* the measurement
    #: boundary.  The warmup boundary triggers on *finished* requests
    #: (completed + failed), so ``requests_warmup`` includes these;
    #: ``requests_failed`` is the run-wide failure total.
    requests_failed_warmup: int = 0
    #: Overload-control snapshot (admission / limiter / breaker books),
    #: populated only on runs driven with an OverloadControl attached.
    overload_stats: Dict[str, Any] = field(default_factory=dict)

    def verify(self) -> List[str]:
        """Check the result's books; returns problem strings (empty = ok).

        Opt-in (the driver never calls it): ``repro simulate --verify``
        and the chaos oracle do.  Checked:

        * request conservation — every generated request completed or
          failed: ``generated == (warmup completions) + (measured
          completions) + (failures before and after the boundary)``;
        * non-negative counters and a sane measurement window;
        * per-kind message reconciliation residuals are all zero (only
          meaningful on runs that populated ``message_stats``).
        """
        problems: List[str] = []
        if self.requests_generated > 0:
            # requests_warmup counts *finished* warmup requests
            # (completions and failures both advance the boundary), so
            # warmup failures must not be double-counted against the
            # run-wide requests_failed total.
            accounted = (
                (self.requests_warmup - self.requests_failed_warmup)
                + self.requests_measured
                + self.requests_failed
            )
            if self.requests_generated != accounted:
                problems.append(
                    f"request conservation: generated "
                    f"{self.requests_generated} != warmup completions "
                    f"{self.requests_warmup - self.requests_failed_warmup} "
                    f"+ measured {self.requests_measured} + failed "
                    f"{self.requests_failed} = {accounted}"
                )
            if self.requests_failed_warmup > self.requests_failed:
                problems.append(
                    f"warmup failures {self.requests_failed_warmup} exceed "
                    f"the run-wide failure total {self.requests_failed}"
                )
            if self.requests_failed_warmup > self.requests_warmup:
                problems.append(
                    f"warmup failures {self.requests_failed_warmup} exceed "
                    f"finished warmup requests {self.requests_warmup}"
                )
        for name in (
            "requests_measured",
            "requests_warmup",
            "requests_failed",
            "requests_failed_warmup",
            "requests_retried",
            "requests_shed",
        ):
            value = getattr(self, name)
            if value < 0:
                problems.append(f"negative counter: {name} = {value}")
        if self.sim_seconds < 0.0:
            problems.append(
                f"negative measurement window: {self.sim_seconds!r}s"
            )
        for kind, residual in sorted(self.message_reconciliation().items()):
            if residual != 0:
                problems.append(
                    f"message books for kind {kind!r}: sent - delivered - "
                    f"dropped - in_flight = {residual}"
                )
        return problems

    def message_reconciliation(self) -> Dict[str, int]:
        """Per-kind ``sent - delivered - dropped - in_flight`` residuals.

        All-zero means every counted message is accounted for; anything
        else is a bookkeeping bug.  Empty when no netfault layer ran.
        """
        return {
            kind: row["sent"] - row["delivered"] - row["dropped"] - row["in_flight"]
            for kind, row in self.message_stats.items()
        }

    def bottleneck_station(self) -> str:
        """The most utilized station type (empty string if unknown)."""
        if not self.station_utilizations:
            return ""
        return max(self.station_utilizations, key=self.station_utilizations.get)

    @property
    def mean_cpu_utilization(self) -> float:
        if not self.cpu_utilizations:
            return 0.0
        return sum(self.cpu_utilizations) / len(self.cpu_utilizations)

    @property
    def mean_cpu_idle(self) -> float:
        """Mean CPU idle fraction — the paper's load-balance metric."""
        return 1.0 - self.mean_cpu_utilization

    @property
    def load_imbalance(self) -> float:
        """Max/mean ratio of per-node completions (1.0 = perfectly even)."""
        if not self.node_completions or sum(self.node_completions) == 0:
            return 1.0
        mean = sum(self.node_completions) / len(self.node_completions)
        return max(self.node_completions) / mean if mean > 0 else 1.0

    def summary_row(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.policy:>14s} {self.trace:>9s} N={self.nodes:<2d} "
            f"{self.throughput_rps:9.1f} req/s  miss={self.miss_rate:6.2%}  "
            f"fwd={self.forwarded_fraction:6.2%}  idle={self.mean_cpu_idle:6.2%}"
        )
