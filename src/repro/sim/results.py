"""Simulation outputs: the measurements the paper's figures report."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["SimResult"]


@dataclass(frozen=True)
class SimResult:
    """Measured behaviour of one simulated server configuration."""

    #: Policy name ("l2s", "lard", "traditional", ...).
    policy: str
    #: Trace name the run was driven by.
    trace: str
    #: Cluster size.
    nodes: int
    #: Per-node memory, bytes.
    cache_bytes: int
    #: Requests completed inside the measurement window.
    requests_measured: int
    #: Requests completed during warmup (excluded from all metrics).
    requests_warmup: int
    #: Simulated seconds spanned by the measurement window.
    sim_seconds: float
    #: Completed requests per simulated second — the figures' y-axis.
    throughput_rps: float
    #: Cluster-wide cache miss rate inside the window.
    miss_rate: float
    #: Fraction of measured requests handed off to another node.
    forwarded_fraction: float
    #: Per-node CPU utilization inside the window.
    cpu_utilizations: List[float]
    #: Mean response time per request (simulated seconds).
    mean_response_s: float
    #: Intra-cluster messages per measured request (control + handoff).
    messages_per_request: float
    #: Per-node completed-request counts (load balance view).
    node_completions: List[int]
    #: Policy-specific counters (replications, broadcasts, ...).
    policy_stats: Dict[str, Any] = field(default_factory=dict)
    #: Requests aborted by node failures (failure-injection runs only).
    requests_failed: int = 0
    #: Client retries issued after aborts (fault runs with a RetryPolicy).
    requests_retried: int = 0
    #: Response-time percentiles in seconds (p50/p90/p99/max), populated
    #: only when the driver records latencies.
    latency_percentiles: Dict[str, float] = field(default_factory=dict)
    #: Measured utilization of every hardware station inside the window:
    #: "router" plus per-node-averaged "cpu", "disk", "ni_in", "ni_out".
    station_utilizations: Dict[str, float] = field(default_factory=dict)
    #: Requests rejected by admission control inside the window (runs
    #: with ``ClusterConfig.admission_threshold`` set).
    requests_shed: int = 0
    #: Per-message-kind delivery accounting, populated on runs with an
    #: active netfault layer.  Each kind maps to sent / delivered /
    #: dropped / dup / retries / acks / dedups / send_failures /
    #: in_flight, where ``sent == delivered + dropped + in_flight``.
    message_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Run-wide netfault summary (drop causes, link/partition events,
    #: DFS fallbacks, hand-off re-dispatches), same runs.
    netfault_summary: Dict[str, Any] = field(default_factory=dict)

    def message_reconciliation(self) -> Dict[str, int]:
        """Per-kind ``sent - delivered - dropped - in_flight`` residuals.

        All-zero means every counted message is accounted for; anything
        else is a bookkeeping bug.  Empty when no netfault layer ran.
        """
        return {
            kind: row["sent"] - row["delivered"] - row["dropped"] - row["in_flight"]
            for kind, row in self.message_stats.items()
        }

    def bottleneck_station(self) -> str:
        """The most utilized station type (empty string if unknown)."""
        if not self.station_utilizations:
            return ""
        return max(self.station_utilizations, key=self.station_utilizations.get)

    @property
    def mean_cpu_utilization(self) -> float:
        if not self.cpu_utilizations:
            return 0.0
        return sum(self.cpu_utilizations) / len(self.cpu_utilizations)

    @property
    def mean_cpu_idle(self) -> float:
        """Mean CPU idle fraction — the paper's load-balance metric."""
        return 1.0 - self.mean_cpu_utilization

    @property
    def load_imbalance(self) -> float:
        """Max/mean ratio of per-node completions (1.0 = perfectly even)."""
        if not self.node_completions or sum(self.node_completions) == 0:
            return 1.0
        mean = sum(self.node_completions) / len(self.node_completions)
        return max(self.node_completions) / mean if mean > 0 else 1.0

    def summary_row(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.policy:>14s} {self.trace:>9s} N={self.nodes:<2d} "
            f"{self.throughput_rps:9.1f} req/s  miss={self.miss_rate:6.2%}  "
            f"fwd={self.forwarded_fraction:6.2%}  idle={self.mean_cpu_idle:6.2%}"
        )
