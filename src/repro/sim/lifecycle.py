"""The life of one client request through the simulated cluster.

Mirrors Figure 2's path and Section 5.1's methodology:

1. the request enters through the **router** and the initial node's
   **NI-in** (request-sized transfers);
2. the initial node's **CPU parses** it (1/mu_p);
3. the policy picks the service node; a hand-off costs forwarding CPU
   work (1/mu_f) plus a request-sized M-VIA message (CPU and NI charges
   on both sides, switch latency in between);
4. the service node opens the connection (its load metric), brings the
   file into memory — free on a cache hit, a DFS/disk read on a miss —
   and spends reply CPU time (1/mu_m);
5. the reply leaves through the service node's **NI-out** (1/mu_o) and
   the **router**, directly to the client (TCP hand-off: no detour
   through the initial node).

Connection accounting and the policy hooks around it drive L2S's load
broadcasts and LARD's completion notices.

Failure semantics (fault-injection runs): a node involved in the
request crashing aborts the request at the next stage boundary.  The
check is *incarnation-aware* — a request that started against a node
which crashed and already recovered still aborts, because its
connection died with the old incarnation.  A client-side timeout
(:class:`repro.des.Interrupt` thrown by the driver) aborts the same
way.  Aborts fire ``on_failed(index)``; the driver decides whether to
retry.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from ..cluster import Cluster
from ..des import Interrupt
from ..servers import DistributionPolicy
from ..servers.base import ServiceUnavailable

__all__ = ["client_request", "NodeFailedError"]


class NodeFailedError(Exception):
    """A node involved in the request crashed mid-flight."""

    def __init__(self, node_id: int):
        super().__init__(f"node {node_id} failed")
        self.node_id = node_id


def client_request(
    cluster: Cluster,
    policy: DistributionPolicy,
    index: int,
    file_id: int,
    size_bytes: int,
    on_done: Optional[Callable[[int, float, bool, bool], None]] = None,
    on_failed: Optional[Callable[[int], None]] = None,
) -> Generator:
    """Process generator for one client request.

    ``on_done(index, start_time, forwarded, was_miss)`` is invoked after
    the reply has fully left the cluster.  If a node involved crashes
    mid-flight (failure-injection runs) or the driver interrupts the
    request (client timeout), the request aborts and ``on_failed(index)``
    fires instead; without an ``on_failed`` handler the abort propagates
    as :class:`NodeFailedError`.
    """
    env = cluster.env
    hw = cluster.config.hardware
    size_kb = size_bytes / 1024.0
    start = env.now
    initial: Optional[int] = None
    opened = False

    try:
        try:
            initial = policy.initial_node(index, file_id)
        except ServiceUnavailable:
            raise NodeFailedError(-1) from None
        initial_node = cluster.node(initial)
        initial_inc = initial_node.incarnation

        def initial_dead() -> bool:
            return initial_node.failed or initial_node.incarnation != initial_inc

        # Inbound: router moves the request into the cluster, the initial
        # node's NI receives it, the CPU reads and parses it.
        yield from cluster.net.route(hw.request_kb)
        if initial_dead():
            raise NodeFailedError(initial)
        yield from initial_node.use_ni_in(hw.ni_message_time(hw.request_kb))
        yield from initial_node.parse_request()
        if initial_dead():
            raise NodeFailedError(initial)

        try:
            if getattr(policy, "async_decide", False):
                # Dispatcher-style policies decide through the messaging
                # layer (e.g. lard-ng's query round-trip).
                decision = yield from policy.decide_process(initial, file_id)
            else:
                decision = policy.decide(initial, file_id)
        except ServiceUnavailable:
            raise NodeFailedError(initial) from None
        target = decision.target
        if decision.forwarded:
            initial_node.forwarded += 1
            yield from initial_node.forward_work()
            yield from cluster.net.send_message(
                initial, target, hw.request_kb, kind="handoff"
            )

        service_node = cluster.node(target)
        if service_node.failed:
            raise NodeFailedError(target)
        service_inc = service_node.incarnation

        def service_dead() -> bool:
            return service_node.failed or service_node.incarnation != service_inc

        service_node.connection_opened()
        opened = True
        policy.on_connection_change(target)

        misses_before = service_node.cache.misses
        try:
            # Memory or disk, then the reply work and the outbound path.
            yield from cluster.fetch_file(target, file_id, size_bytes)
            if service_dead():
                raise NodeFailedError(target)
            yield from service_node.reply_work(size_kb)
            if service_dead():
                raise NodeFailedError(target)
            yield from service_node.use_ni_out(hw.ni_reply_time(size_kb))
            yield from cluster.net.route(size_kb)
        finally:
            service_node.connection_closed()
            policy.on_connection_change(target)
            policy.on_complete(target, file_id)
            policy.on_connection_end(target)
    except (NodeFailedError, Interrupt):
        if initial is not None:
            # Give dispatcher-style policies a chance to balance their
            # assignment counters for requests that never reached (or
            # never finished at) a service node.
            policy.on_request_aborted(initial, opened)
        if on_failed is None:
            raise
        on_failed(index)
        return

    if on_done is not None:
        was_miss = service_node.cache.misses > misses_before
        on_done(index, start, decision.forwarded, was_miss)
