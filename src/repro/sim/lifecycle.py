"""The life of one client request through the simulated cluster.

Mirrors Figure 2's path and Section 5.1's methodology:

1. the request enters through the **router** and the initial node's
   **NI-in** (request-sized transfers);
2. the initial node's **CPU parses** it (1/mu_p);
3. the policy picks the service node; a hand-off costs forwarding CPU
   work (1/mu_f) plus a request-sized M-VIA message (CPU and NI charges
   on both sides, switch latency in between);
4. the service node opens the connection (its load metric), brings the
   file into memory — free on a cache hit, a DFS/disk read on a miss —
   and spends reply CPU time (1/mu_m);
5. the reply leaves through the service node's **NI-out** (1/mu_o) and
   the **router**, directly to the client (TCP hand-off: no detour
   through the initial node).

Connection accounting and the policy hooks around it drive L2S's load
broadcasts and LARD's completion notices.

Failure semantics (fault-injection runs): a node involved in the
request crashing aborts the request at the next stage boundary.  The
check is *incarnation-aware* — a request that started against a node
which crashed and already recovered still aborts, because its
connection died with the old incarnation.  A client-side timeout
(:class:`repro.des.Interrupt` thrown by the driver) aborts the same
way.  Aborts fire ``on_failed(index)``; the driver decides whether to
retry.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional

from ..cluster import Cluster
from ..cluster.dfs import RemoteFetchFailed
from ..cluster.node import CPU_BULK, CPU_PROMPT
from ..des import Interrupt
from ..des.core import URGENT
from ..servers import DistributionPolicy
from ..servers.base import ServiceUnavailable

__all__ = ["client_request", "start_fast_request", "NodeFailedError"]


class NodeFailedError(Exception):
    """A node involved in the request crashed mid-flight."""

    def __init__(self, node_id: int, shed: bool = False):
        super().__init__(f"node {node_id} failed")
        self.node_id = node_id
        #: True when the request was *shed* (admission threshold or an
        #: open circuit breaker) rather than lost to a crash.  Sheds
        #: never feed the breakers — counting them as failures would let
        #: an overloaded-but-healthy node's breaker trip and then keep
        #: itself open on its own rejections.
        self.shed = shed


def _breaker_allows(cluster: Cluster, node_id: int) -> bool:
    """Service-entry breaker gate (claims a half-open probe slot)."""
    ov = cluster.overload
    if ov is None or ov.breakers is None:
        return True
    return ov.breakers.allow(node_id, cluster.env.now)


def _breaker_failure(cluster: Cluster, node_id: int) -> None:
    ov = cluster.overload
    if ov is not None and ov.breakers is not None:
        ov.breakers.record_failure(node_id, cluster.env.now)


def _breaker_success(cluster: Cluster, node_id: int) -> None:
    ov = cluster.overload
    if ov is not None and ov.breakers is not None:
        ov.breakers.record_success(node_id, cluster.env.now)


def client_request(
    cluster: Cluster,
    policy: DistributionPolicy,
    index: int,
    file_id: int,
    size_bytes: int,
    on_done: Optional[Callable[[int, float, bool, bool], None]] = None,
    on_failed: Optional[Callable[[int], None]] = None,
) -> Generator:
    """Process generator for one client request.

    ``on_done(index, start_time, forwarded, was_miss)`` is invoked after
    the reply has fully left the cluster.  If a node involved crashes
    mid-flight (failure-injection runs) or the driver interrupts the
    request (client timeout), the request aborts and ``on_failed(index)``
    fires instead; without an ``on_failed`` handler the abort propagates
    as :class:`NodeFailedError`.
    """
    env = cluster.env
    hw = cluster.config.hardware
    size_kb = size_bytes / 1024.0
    start = env.now
    initial: Optional[int] = None
    opened = False

    try:
        try:
            initial = policy.initial_node(index, file_id)
        except ServiceUnavailable:
            raise NodeFailedError(-1) from None
        initial_node = cluster.node(initial)
        initial_inc = initial_node.incarnation

        def initial_dead() -> bool:
            return initial_node.failed or initial_node.incarnation != initial_inc

        # Inbound: router moves the request into the cluster, the initial
        # node's NI receives it, the CPU reads and parses it.
        yield from cluster.net.route(hw.request_kb)
        if initial_dead():
            raise NodeFailedError(initial)
        yield from initial_node.use_ni_in(hw.ni_message_time(hw.request_kb))
        yield from initial_node.parse_request()
        if initial_dead():
            raise NodeFailedError(initial)

        proto = cluster.net.protocol
        nf = cluster.net.netfaults
        # On an unreliable fabric the front end may re-run the decision
        # after a hand-off exhausts its message retries (partition
        # tolerance); on a perfect fabric the budget is zero and the
        # loop below runs exactly once.
        redispatch_left = nf.config.handoff_redispatch if nf is not None else 0
        while True:
            try:
                if getattr(policy, "async_decide", False):
                    # Dispatcher-style policies decide through the
                    # messaging layer (e.g. lard-ng's query round-trip).
                    decision = yield from policy.decide_process(initial, file_id)
                else:
                    decision = policy.decide(initial, file_id)
            except ServiceUnavailable:
                raise NodeFailedError(initial) from None
            target = decision.target
            if not decision.forwarded:
                break
            initial_node.forwarded += 1
            yield from initial_node.forward_work()
            if proto is not None and proto.covers("handoff"):
                delivered = yield from proto.request_gen(
                    initial, target, hw.request_kb, "handoff"
                )
            else:
                delivered = yield from cluster.net.send_message(
                    initial, target, hw.request_kb, kind="handoff"
                )
            if delivered:
                break
            # The hand-off (and all its retries) died in the fabric: let
            # the policy roll back its optimistic view charge, then
            # either re-dispatch or give up.
            policy.on_handoff_failed(initial, target)
            if redispatch_left <= 0 or initial_dead():
                raise NodeFailedError(target)
            redispatch_left -= 1
            if proto is not None:
                proto.redispatches += 1

        service_node = cluster.node(target)
        if service_node.failed:
            # Dead on arrival: the hand-off reached a crashed node, so no
            # connection will ever open there and no completion notice
            # will ever acknowledge the decide-time view charge.
            policy.on_handoff_failed(initial, target)
            raise NodeFailedError(target)
        threshold = cluster.config.admission_threshold
        if threshold is not None and service_node.open_connections >= threshold:
            # Admission control: the connection queue is full; the node
            # sheds the request and the client backs off and retries
            # (the driver's RetryPolicy is the retry-after).  A shed
            # connection never opens, so the view charge rolls back too.
            policy.on_handoff_failed(initial, target)
            cluster.note_shed(service_node)
            raise NodeFailedError(target, shed=True)
        if not _breaker_allows(cluster, target):
            # The node's circuit breaker is open (or its half-open probe
            # budget is spent): shed at the service door, after the
            # queue check so a queue shed never wastes a probe slot.
            policy.on_handoff_failed(initial, target)
            cluster.note_shed(service_node)
            raise NodeFailedError(target, shed=True)
        service_inc = service_node.incarnation

        def service_dead() -> bool:
            return service_node.failed or service_node.incarnation != service_inc

        service_node.connection_opened()
        opened = True
        policy.on_connection_change(target)

        misses_before = service_node.cache.misses
        try:
            # Memory or disk, then the reply work and the outbound path.
            yield from cluster.fetch_file(target, file_id, size_bytes)
            if service_dead():
                raise NodeFailedError(target)
            yield from service_node.reply_work(size_kb)
            if service_dead():
                raise NodeFailedError(target)
            yield from service_node.use_ni_out(hw.ni_reply_time(size_kb))
            yield from cluster.net.route(size_kb)
        finally:
            service_node.connection_closed()
            policy.on_connection_change(target)
            policy.on_complete(target, file_id)
            policy.on_connection_end(target)
    except (NodeFailedError, RemoteFetchFailed, Interrupt) as exc:
        if isinstance(exc, NodeFailedError) and not exc.shed and exc.node_id >= 0:
            # A crash-type loss: feed the implicated node's breaker.
            _breaker_failure(cluster, exc.node_id)
        if initial is not None:
            # Give dispatcher-style policies a chance to balance their
            # assignment counters for requests that never reached (or
            # never finished at) a service node.
            policy.on_request_aborted(initial, opened)
        if on_failed is None:
            raise
        on_failed(index)
        return

    _breaker_success(cluster, target)
    if on_done is not None:
        was_miss = service_node.cache.misses > misses_before
        on_done(index, start, decision.forwarded, was_miss)


class _FastRequest:
    """Callback-chain twin of :func:`client_request`.

    Walks the identical stage sequence — router, NI-in, parse, decide,
    (forward + hand-off), connection open, fetch, reply, NI-out, router —
    with the identical incarnation-aware abort checks at the identical
    stage boundaries, but drives it with event callbacks and pooled holds
    instead of one generator ``Process`` per request.  Per request this
    eliminates the process, its initialize/terminate events, every
    ``Release`` event, and all ``Timeout`` allocations; the scheduler
    equivalence suite asserts the results are indistinguishable from the
    generator path.

    The driver falls back to :func:`client_request` whenever a request
    might be *interrupted* (client timeouts need a process to throw
    into), when the policy decides through the messaging layer
    (``async_decide``), or when the DFS is partitioned (remote miss
    traffic keeps the generator path); see ``docs/KERNEL.md``.
    """

    __slots__ = (
        "cluster",
        "policy",
        "index",
        "file_id",
        "size_bytes",
        "size_kb",
        "on_done",
        "on_failed",
        "env",
        "hw",
        "start",
        "initial",
        "initial_node",
        "initial_inc",
        "decision",
        "service_node",
        "service_inc",
        "opened",
        "misses_before",
        "_req",
        "_san_tok",
    )

    def __init__(
        self,
        cluster: Cluster,
        policy: DistributionPolicy,
        index: int,
        file_id: int,
        size_bytes: int,
        on_done: Optional[Callable[[int, float, bool, bool], None]],
        on_failed: Optional[Callable[[int], None]],
    ):
        self.cluster = cluster
        self.policy = policy
        self.index = index
        self.file_id = file_id
        self.size_bytes = size_bytes
        self.size_kb = size_bytes / 1024.0
        self.on_done = on_done
        self.on_failed = on_failed
        self.env = cluster.env
        self.hw = cluster.config.hardware
        self.initial: Optional[int] = None
        self.opened = False
        self._req = None
        # Sanitized runs track each chain as one in-flight operation so
        # a stalled request (no pending event to leak) is still reported.
        san = self.env._san
        self._san_tok = None if san is None else san.op_begin(
            "fast-request", f"request #{index}, file {file_id}"
        )
        # The urgent zero-delay kick mirrors the Initialize event that
        # starts a generator process, keeping both paths' first actions
        # at the same point in the event order.
        self.env.call_later(0.0, self._start, priority=URGENT)

    # -- failure plumbing --------------------------------------------------

    def _initial_dead(self) -> bool:
        node = self.initial_node
        return node.failed or node.incarnation != self.initial_inc

    def _service_dead(self) -> bool:
        node = self.service_node
        return node.failed or node.incarnation != self.service_inc

    def _abort(self) -> None:
        if self._san_tok is not None:
            self.env._san.op_end(self._san_tok)
            self._san_tok = None
        if self.initial is not None:
            self.policy.on_request_aborted(self.initial, self.opened)
        if self.on_failed is None:
            raise NodeFailedError(self.initial if self.initial is not None else -1)
        self.on_failed(self.index)

    def _close_connection(self) -> None:
        """The generator path's ``finally`` block around fetch/reply."""
        self.service_node.connection_closed()
        policy = self.policy
        target = self.decision.target
        policy.on_connection_change(target)
        policy.on_complete(target, self.file_id)
        policy.on_connection_end(target)

    # -- inbound -----------------------------------------------------------

    def _start(self, _e) -> None:
        self.start = self.env.now
        try:
            self.initial = self.policy.initial_node(self.index, self.file_id)
        except ServiceUnavailable:
            self._abort()
            return
        self.initial_node = node = self.cluster.node(self.initial)
        self.initial_inc = node.incarnation
        req = self._req = self.cluster.net.router.request()
        req.callbacks.append(self._route_in_held)

    def _route_in_held(self, _e) -> None:
        self.env.call_later(
            self.hw.route_time(self.hw.request_kb), self._route_in_done
        )

    def _route_in_done(self, _e) -> None:
        self.cluster.net.router.free(self._req)
        if self._initial_dead():
            _breaker_failure(self.cluster, self.initial)
            self._abort()
            return
        req = self._req = self.initial_node.ni_in.request()
        req.callbacks.append(self._ni_in_held)

    def _ni_in_held(self, _e) -> None:
        self.env.call_later(
            self.hw.ni_message_time(self.hw.request_kb), self._ni_in_done
        )

    def _ni_in_done(self, _e) -> None:
        self.initial_node.ni_in.free(self._req)
        req = self._req = self.initial_node.cpu.request(CPU_PROMPT)
        req.callbacks.append(self._parse_held)

    def _parse_held(self, _e) -> None:
        self.env.call_later(
            self.hw.parse_time() / self.initial_node.speed, self._parse_done
        )

    # -- decide + hand-off -------------------------------------------------

    def _parse_done(self, _e) -> None:
        self.initial_node.cpu.free(self._req)
        if self._initial_dead():
            _breaker_failure(self.cluster, self.initial)
            self._abort()
            return
        try:
            self.decision = self.policy.decide(self.initial, self.file_id)
        except ServiceUnavailable:
            # The generator path raises NodeFailedError(initial) here,
            # whose except-block blames the initial node; mirror that.
            _breaker_failure(self.cluster, self.initial)
            self._abort()
            return
        if self.decision.forwarded:
            node = self.initial_node
            node.forwarded += 1
            req = self._req = node.cpu.request(CPU_PROMPT)
            req.callbacks.append(self._forward_held)
        else:
            self._at_service()

    def _forward_held(self, _e) -> None:
        self.env.call_later(
            self.hw.forward_time() / self.initial_node.speed, self._forward_done
        )

    def _forward_done(self, _e) -> None:
        self.initial_node.cpu.free(self._req)
        self.cluster.net.send_message_cb(
            self.initial,
            self.decision.target,
            self.hw.request_kb,
            kind="handoff",
            done=self._at_service,
            on_drop=self._handoff_lost,
        )

    def _handoff_lost(self) -> None:
        """The hand-off died in the fabric (the target crashed while it
        was in flight — netfault runs never use this path).  Without the
        drop wiring the chain would simply stall and wedge the closed
        loop; instead the policy rolls back its view charge and the
        request aborts like any other crash casualty."""
        self.policy.on_handoff_failed(self.initial, self.decision.target)
        _breaker_failure(self.cluster, self.decision.target)
        self._abort()

    # -- service node: fetch + reply ---------------------------------------

    def _at_service(self) -> None:
        target = self.decision.target
        self.service_node = node = self.cluster.node(target)
        if node.failed:
            # Mirrors the generator path: dead on arrival rolls back the
            # decide-time view charge (no connection, no notice).
            self.policy.on_handoff_failed(self.initial, target)
            _breaker_failure(self.cluster, target)
            self._abort()
            return
        threshold = self.cluster.config.admission_threshold
        if threshold is not None and node.open_connections >= threshold:
            self.policy.on_handoff_failed(self.initial, target)
            self.cluster.note_shed(node)
            self._abort()
            return
        if not _breaker_allows(self.cluster, target):
            # Breaker shed, after the queue check (identical ordering to
            # the generator path) so a queue shed never wastes a probe.
            self.policy.on_handoff_failed(self.initial, target)
            self.cluster.note_shed(node)
            self._abort()
            return
        self.service_inc = node.incarnation
        node.connection_opened()
        self.opened = True
        self.policy.on_connection_change(target)
        self.misses_before = node.cache.misses
        if node.cache.lookup(self.file_id):
            self._after_fetch()
        else:
            # Replicated-disk miss: a local disk read (the partitioned
            # layout falls back to the generator lifecycle entirely).
            self.cluster.dfs.local_reads += 1
            req = self._req = node.disk.request()
            req.callbacks.append(self._disk_held)

    def _disk_held(self, _e) -> None:
        self.env.call_later(self.hw.disk_time(self.size_kb), self._disk_done)

    def _disk_done(self, _e) -> None:
        self.service_node.disk.free(self._req)
        self.service_node.cache.insert(self.file_id, self.size_bytes)
        self._after_fetch()

    def _after_fetch(self) -> None:
        if self._service_dead():
            _breaker_failure(self.cluster, self.decision.target)
            self._close_connection()
            self._abort()
            return
        req = self._req = self.service_node.cpu.request(CPU_BULK)
        req.callbacks.append(self._reply_held)

    def _reply_held(self, _e) -> None:
        self.env.call_later(
            self.hw.reply_time(self.size_kb) / self.service_node.speed,
            self._reply_done,
        )

    def _reply_done(self, _e) -> None:
        self.service_node.cpu.free(self._req)
        if self._service_dead():
            _breaker_failure(self.cluster, self.decision.target)
            self._close_connection()
            self._abort()
            return
        req = self._req = self.service_node.ni_out.request()
        req.callbacks.append(self._ni_out_held)

    def _ni_out_held(self, _e) -> None:
        self.env.call_later(
            self.hw.ni_reply_time(self.size_kb), self._ni_out_done
        )

    def _ni_out_done(self, _e) -> None:
        self.service_node.ni_out.free(self._req)
        req = self._req = self.cluster.net.router.request()
        req.callbacks.append(self._route_out_held)

    def _route_out_held(self, _e) -> None:
        self.env.call_later(self.hw.route_time(self.size_kb), self._route_out_done)

    def _route_out_done(self, _e) -> None:
        self.cluster.net.router.free(self._req)
        self._close_connection()
        _breaker_success(self.cluster, self.decision.target)
        if self._san_tok is not None:
            self.env._san.op_end(self._san_tok)
            self._san_tok = None
        if self.on_done is not None:
            was_miss = self.service_node.cache.misses > self.misses_before
            self.on_done(self.index, self.start, self.decision.forwarded, was_miss)


def start_fast_request(
    cluster: Cluster,
    policy: DistributionPolicy,
    index: int,
    file_id: int,
    size_bytes: int,
    on_done: Optional[Callable[[int, float, bool, bool], None]] = None,
    on_failed: Optional[Callable[[int], None]] = None,
) -> None:
    """Launch one client request on the callback-chain fast path.

    Drop-in sibling of ``env.process(client_request(...))`` for requests
    that will never be interrupted; see :class:`_FastRequest` for the
    exact fallback conditions the driver applies.
    """
    _FastRequest(cluster, policy, index, file_id, size_bytes, on_done, on_failed)
