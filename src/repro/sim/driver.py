"""Closed-loop saturation driver.

The paper measures *maximum* throughput: "we disregarded the timing
information in the traces and scheduled new requests as soon as the
router and network interface buffers would accept them".  We implement
this as closed-loop injection with a fixed multiprogramming level (MPL):
``multiprogramming_per_node * nodes`` requests are always in flight; the
moment one completes, the next trace entry is injected.  Once the MPL
exceeds what the bottleneck needs, the measured completion rate is the
saturation throughput and is insensitive to the exact MPL (the MPL
ablation benchmark demonstrates this).

Warmup: the first ``warmup_fraction`` of completions warms caches and
policy state (server sets, load views); at the warmup boundary every
meter is reset — cache *contents* and policy state survive — and
measurement covers the remainder, following the paper's warm-cache
methodology.  Admission control likewise *arms* at the boundary: the
warmup exists to reach the pre-crowd steady state, and a front door
shedding warmup traffic starves the very caches whose misses then keep
its latency signal high (see the ``_admission_armed`` comment).
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster import Cluster, ClusterConfig
from ..des import Environment, Tally
from ..faults import AvailabilityTimeline, FaultInjector, FaultSchedule, RetryPolicy
from ..netfaults import NetFaultInjector
from ..servers import DistributionPolicy
from ..workload import Trace
from .lifecycle import client_request, start_fast_request
from .results import SimResult

__all__ = ["Simulation"]


class Simulation:
    """One trace-driven, closed-loop run of a server design."""

    def __init__(
        self,
        trace: Trace,
        policy: DistributionPolicy,
        config: ClusterConfig,
        warmup_fraction: float = 0.3,
        passes: int = 1,
        prewarm_local_caches: Optional[bool] = None,
        failures: Optional[Sequence[Tuple[int, int]]] = None,
        record_timeline: bool = False,
        arrival_rate: Optional[float] = None,
        record_latencies: bool = False,
        seed: int = 0,
        faults: Optional[FaultSchedule] = None,
        retry: Optional[RetryPolicy] = None,
        timeline_interval_s: Optional[float] = None,
        overload=None,
        sanitize: Optional[bool] = None,
    ):
        if len(trace) == 0:
            raise ValueError("trace is empty")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError(
                f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
            )
        if passes < 1:
            raise ValueError(f"passes must be >= 1, got {passes}")
        self.trace = trace
        self.policy = policy
        self.config = config
        self.warmup_fraction = warmup_fraction
        #: With ``passes > 1`` the trace is replayed that many times and
        #: only the *last* pass is measured — the paper's methodology
        #: ("we warm the node caches by simulating the accesses in each
        #: trace once before starting our measurements"), which removes
        #: first-touch misses from the measurement window.  With
        #: ``passes == 1`` the first ``warmup_fraction`` of completions is
        #: the warmup instead.
        self.passes = passes
        if prewarm_local_caches is None:
            # Zero-time pre-warm is exactly right only for strictly-local
            # policies, where each cache sees the whole request stream.
            prewarm_local_caches = policy.name in ("traditional", "round-robin")
        self.prewarm_local_caches = prewarm_local_caches

        self.env = Environment(sanitize=sanitize)
        self.cluster = Cluster(self.env, config)
        # Time reaches the policy only through the Clock interface: the
        # DES environment satisfies it natively (simulated seconds), and
        # repro.live binds the same policy objects to a wall clock.
        policy.bind(self.cluster, clock=self.env)

        self._sizes = trace.fileset.sizes
        self._trace_len = len(trace)
        #: The full arrival sequence (file id per 0-based arrival index),
        #: shared verbatim with the live loadtest (Trace.replay_ids).
        self._ids = trace.replay_ids(passes)
        self._total = self._trace_len * passes
        if passes > 1:
            self._warmup_count = self._trace_len * (passes - 1)
        else:
            self._warmup_count = int(self._total * warmup_fraction)
        self._next = 0
        self._completed = 0
        self._failed = 0
        #: Terminal failures seen before the measurement boundary
        #: (snapshotted in :meth:`_begin_measurement`); feeds the
        #: conservation identity in :meth:`SimResult.verify`.
        self._failed_at_measure = 0
        self._measured = 0
        self._measured_forwarded = 0
        self._measure_start: Optional[float] = None
        self._last_completion = 0.0
        self._response = Tally()
        #: (node_id, trigger) pairs: node_id crashes when the finished
        #: request count (completed + failed) reaches the trigger.
        self._pending_failures: List[Tuple[int, int]] = sorted(
            failures or [], key=lambda f: f[1]
        )
        for node_id, trigger in self._pending_failures:
            if not 0 <= node_id < config.nodes:
                raise ValueError(f"failure node {node_id} out of range")
            if trigger < 0:
                raise ValueError("failure trigger must be non-negative")
        self.record_timeline = record_timeline
        #: Completion timestamps of measured requests (when recording).
        self.completion_times: List[float] = []
        if arrival_rate is not None and arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        #: Open-loop mode: Poisson arrivals at this rate (req/s) instead
        #: of the closed-loop multiprogramming window.  Use for latency
        #: studies below saturation; the paper's throughput methodology
        #: is the closed-loop default.
        self.arrival_rate = arrival_rate
        self.seed = seed
        self.record_latencies = record_latencies
        self._latencies: List[float] = []

        #: Fault-injection schedule (timed and count-triggered events);
        #: the legacy ``failures`` parameter remains as a shorthand for
        #: count-triggered crashes and both may be used together.
        self.faults = faults
        self._injector = (
            FaultInjector(self, faults) if faults is not None else None
        )
        #: Timed link-down/partition events (``config.net_faults``).
        self._net_injector = (
            NetFaultInjector(self)
            if self.cluster.net.netfaults is not None
            and self.cluster.net.netfaults.config.schedule is not None
            else None
        )
        #: Per-kind in-flight message levels at the warmup boundary, for
        #: the sent/delivered/dropped reconciliation in message_stats.
        self._inflight_at_measure: Dict[str, int] = {}
        #: The built result, kept for callers that tolerate short runs.
        self._result: Optional[SimResult] = None
        #: Client retry behaviour for aborted requests.  ``None`` keeps
        #: the historical semantics: an abort is a terminal failure.
        self.retry = retry
        self._attempts: Dict[int, int] = {}
        self._retried = 0
        #: Availability timeline (sampled goodput / failures / node
        #: states); enabled by passing a sampling interval.
        self.timeline = (
            AvailabilityTimeline(self.env, self.cluster, timeline_interval_s)
            if timeline_interval_s is not None
            else None
        )
        #: :class:`~repro.overload.OverloadControl` for this run, or
        #: ``None``.  The admission controller gates *new arrivals* at
        #: the front door (retries of already-admitted requests are
        #: re-issues, not new admissions); the breaker board is consulted
        #: by the lifecycles at service entry and by breaker-aware
        #: routing.  The identical object model drives the live
        #: front-end — see docs/OVERLOAD.md.
        self.overload = overload
        self.cluster.overload = overload
        self._admission = overload.admission if overload is not None else None
        #: Admission control arms at the warmup boundary, like every
        #: other meter: the warmup pass is a cache-warming device that
        #: models the server's pre-crowd steady state, and a front door
        #: that sheds warmup traffic starves the caches it is trying to
        #: protect — the measured pass then runs disk-bound and the
        #: controller's own sheds "confirm" the overload it created.
        #: (Worse, closed-loop warmup sheds are instantaneous, so one
        #: shed chains into shedding the whole remaining warmup at a
        #: single sim instant.)
        self._admission_armed = False
        #: Indices admitted through the front door (so completions of
        #: requests spawned before arming never release a slot they
        #: never took).
        self._admitted_idx: set = set()
        if overload is not None and overload.breakers is not None:
            policy.attach_breakers(overload.breakers)
        #: Requests shed at the front door (terminal, never retried —
        #: the live substrate's 503 with no client retry).
        self._shed_front = 0
        if self.timeline is not None:
            self.cluster.shed_listener = self.timeline.record_shed
        #: Callback-chain request lifecycle (see docs/KERNEL.md).  The
        #: fast path covers the common shape — replicated disks, a
        #: synchronous ``decide``, no client-side timeout interrupts; the
        #: generator path keeps the rest.  Crash/recovery schedules stay
        #: eligible: the chain performs the same incarnation-aware abort
        #: checks at every stage boundary.  REPRO_SIM_FASTPATH=0 forces
        #: the generator path everywhere (used by the equivalence suite).
        #: Netfault runs force the generator path: reliable hand-offs
        #: wait out protocol timeouts inline, which the callback chain
        #: cannot express.
        self._fastpath = (
            os.environ.get("REPRO_SIM_FASTPATH", "1") != "0"
            and config.replicated_disks
            and not getattr(policy, "async_decide", False)
            and (retry is None or retry.timeout_s is None)
            and self.cluster.net.netfaults is None
        )

    # -- injection -------------------------------------------------------------

    def _spawn_next(self) -> bool:
        """Inject the next trace request; False when the trace is spent."""
        i = self._next
        if i >= self._total:
            return False
        self._next += 1
        if self._admission is not None and self._admission_armed:
            verdict = self._admission.try_admit(self.env.now)
            if not verdict.admitted:
                # Front-door shed: terminal, resolved in microseconds —
                # the whole point of admission control is failing fast
                # instead of queueing past the deadline.  Deferred one
                # zero-delay event so a closed-loop shed burst unrolls
                # as a chain of events instead of recursing through
                # _after_request to trace depth.
                self._shed_front += 1
                self.env.schedule_callback(0.0, self._front_shed)
                return True
            self._admitted_idx.add(i)
        self._spawn_index(i)
        return True

    def _front_shed(self) -> None:
        """Terminal accounting for one front-door shed."""
        self._failed += 1
        if self.timeline is not None:
            self.timeline.record_shed()
            self.timeline.record_failure()
        self._after_request()

    def _spawn_index(self, i: int) -> None:
        fid = int(self._ids[i])
        if self._fastpath:
            start_fast_request(
                self.cluster,
                self.policy,
                i,
                fid,
                int(self._sizes[fid]),
                self._on_done,
                self._on_failed,
            )
            return
        proc = self.env.process(
            client_request(
                self.cluster,
                self.policy,
                i,
                fid,
                int(self._sizes[fid]),
                self._on_done,
                self._on_failed,
            ),
            name=f"req{i}",
        )
        if self.retry is not None and self.retry.timeout_s is not None:
            self.env.schedule_callback(
                self.retry.timeout_s, lambda p=proc: self._client_timeout(p)
            )

    def _client_timeout(self, proc) -> None:
        """Abort a request the client has given up on.  The lifecycle
        catches the interrupt as an abort, which feeds the normal
        failure/retry path."""
        if proc.is_alive:
            proc.interrupt("client timeout")

    @property
    def _finished(self) -> int:
        return self._completed + self._failed

    def _on_done(self, index: int, start: float, forwarded: bool, was_miss: bool) -> None:
        self._attempts.pop(index, None)
        self._completed += 1
        self._last_completion = self.env.now
        if self._admission is not None and index in self._admitted_idx:
            # Release the admission slot; the observed latency feeds the
            # queue-wait estimate and the adaptive concurrency limit.
            self._admitted_idx.remove(index)
            self._admission.release(self.env.now, self.env.now - start)
        if self.timeline is not None:
            self.timeline.record_completion(was_miss)
        if self._measure_start is not None:
            self._measured += 1
            self._measured_forwarded += 1 if forwarded else 0
            self._response.record(self.env.now - start)
            if self.record_timeline:
                self.completion_times.append(self.env.now)
            if self.record_latencies:
                self._latencies.append(self.env.now - start)
        self._after_request()

    def _on_failed(self, index: int) -> None:
        if self.retry is not None:
            attempt = self._attempts.get(index, 0) + 1
            if attempt <= self.retry.max_retries:
                # Client retry: back off (capped exponential) and re-issue
                # the same request.  Not terminal — the closed-loop slot
                # stays occupied by this request until it resolves.
                self._attempts[index] = attempt
                self._retried += 1
                if self.timeline is not None:
                    self.timeline.record_retry()
                self.env.schedule_callback(
                    self.retry.backoff(attempt),
                    lambda i=index: self._spawn_index(i),
                )
                return
            self._attempts.pop(index, None)
        if self._admission is not None and index in self._admitted_idx:
            # Terminal failure of an admitted request: free the slot but
            # feed no latency (a fault says nothing about service rate).
            self._admitted_idx.remove(index)
            self._admission.release(self.env.now, None)
        self._failed += 1
        if self.timeline is not None:
            self.timeline.record_failure()
        self._after_request()

    def _after_request(self) -> None:
        if self._finished == self._warmup_count:
            self._begin_measurement()
        self._check_failures()
        if self._injector is not None:
            self._injector.notify_finished(self._finished)
        if self.arrival_rate is None:
            # Closed loop: a completion frees a slot for the next request.
            self._spawn_next()
        elif self._next < self._warmup_count:
            # Open-loop runs still *warm up* closed-loop — flooding a
            # cold cache with Poisson arrivals above its disk-bound cold
            # capacity would build an unbounded backlog before the
            # measurement even starts.
            self._spawn_next()

    def _check_failures(self) -> None:
        while self._pending_failures and self._finished >= self._pending_failures[0][1]:
            node_id, _ = self._pending_failures.pop(0)
            self.fail_node(node_id)

    def crash_node(self, node_id: int) -> None:
        """Crash a node now: in-flight requests there abort (at their next
        stage boundary, against the bumped incarnation), the policy repairs
        its structures, nothing is routed to it again.  Idempotent."""
        node = self.cluster.node(node_id)
        if node.failed:
            return
        node.crash()
        self.policy.on_node_failed(node_id)
        if self.timeline is not None:
            self.timeline.mark_event("crash", node_id)

    #: Backwards-compatible name for :meth:`crash_node`.
    fail_node = crash_node

    def recover_node(self, node_id: int) -> None:
        """Reboot a crashed node: cold (flushed) cache, base speed, zero
        connections (in-flight aborts drain naturally), and the policy
        re-admits it per its own rejoin semantics.  Idempotent."""
        node = self.cluster.node(node_id)
        if not node.failed:
            return
        node.recover()
        self.policy.on_node_recovered(node_id)
        if self.timeline is not None:
            self.timeline.mark_event("recover", node_id)

    def slow_node(self, node_id: int, factor: float) -> None:
        """Degrade (or restore, with ``factor=1``) a node's CPU speed."""
        self.cluster.node(node_id).set_speed_factor(factor)
        if self.timeline is not None:
            self.timeline.mark_event("slow", node_id)

    def _begin_measurement(self) -> None:
        """Reset all meters at the warmup boundary (state survives)."""
        self._measure_start = self.env.now
        self._admission_armed = True
        self.cluster.reset_accounting()
        self.policy.reset_stats()
        self._response.reset()
        self._inflight_at_measure = dict(self.cluster.net.in_flight_counts)
        self._failed_at_measure = self._failed
        if self.arrival_rate is not None:
            # Open loop: the measured pass is driven by Poisson arrivals.
            self.env.process(self._poisson_arrivals(), name="arrivals")

    def _poisson_arrivals(self):
        """Open-loop injector: exponential inter-arrival gaps."""
        rng = np.random.default_rng(self.seed)
        mean_gap = 1.0 / float(self.arrival_rate)
        while self._spawn_next():
            yield self.env.timeout(rng.exponential(mean_gap))

    def _prewarm(self) -> None:
        """Paper-style zero-time cache warm for strictly-local policies.

        Every node's cache replays the whole trace once (under
        fewest-connections all nodes converge to caching the same hot
        content), so the timed run starts from the LRU steady state.
        """
        sizes = self._sizes
        one_pass = self._ids[: self._trace_len]
        nodes = self.cluster.nodes
        first = nodes[0]
        src = first.cache
        src_started_empty = len(src) == 0
        warm = first.warm_cache
        for fid in one_pass:
            warm(int(fid), int(sizes[fid]))
        for node in nodes[1:]:
            dst = node.cache
            if src_started_empty and dst.capacity == src.capacity and len(dst) == 0:
                # Identical replay into an identical empty cache yields
                # an identical LRU state: clone instead of re-replaying
                # the trace N-1 more times.
                dst.clone_state_from(src)
            else:  # pragma: no cover - heterogeneous/pre-seeded caches
                warm = node.warm_cache
                for fid in one_pass:
                    warm(int(fid), int(sizes[fid]))

    # -- run ---------------------------------------------------------------------

    def run(self) -> SimResult:
        """Execute the whole trace and return the measured results."""
        if self.prewarm_local_caches:
            self._prewarm()
        if self._injector is not None:
            self._injector.start()
        if self._net_injector is not None:
            self._net_injector.start()
        if self.timeline is not None:
            self.timeline.start(lambda: self._finished >= self._total)
        if self._warmup_count == 0:
            self._begin_measurement()

        if self.arrival_rate is not None and self._warmup_count == 0:
            # No warmup at all: purely open-loop from the start.  (The
            # warmup boundary otherwise starts the arrival process.)
            if self._measure_start is None:
                self._begin_measurement()
        else:
            mpl = self.config.multiprogramming_per_node * self.config.nodes
            limit = self._warmup_count if self.arrival_rate is not None else self._total
            for _ in range(min(mpl, max(1, limit), self._total)):
                self._spawn_next()
        self.env.run()

        if self._finished != self._total:
            raise RuntimeError(
                f"simulation ended early: {self._finished}/{self._total} requests"
            )
        assert self._measure_start is not None
        elapsed = self._last_completion - self._measure_start
        if elapsed <= 0:
            raise RuntimeError("measurement window is empty; lower warmup_fraction")

        cluster = self.cluster
        throughput = self._measured / elapsed
        util = [n.cpu_utilization(elapsed) for n in cluster.nodes]
        completions = [n.completed for n in cluster.nodes]
        n_alive = max(1, sum(1 for n in cluster.nodes if not n.failed))

        def node_mean(attr: str) -> float:
            return (
                sum(
                    getattr(n, attr).utilization(elapsed)
                    for n in cluster.nodes
                    if not n.failed
                )
                / n_alive
            )

        stations = {
            "router": cluster.net.router.utilization(elapsed),
            "cpu": node_mean("cpu"),
            "disk": node_mean("disk"),
            "ni_in": node_mean("ni_in"),
            "ni_out": node_mean("ni_out"),
        }
        self._result = SimResult(
            policy=self.policy.name,
            trace=self.trace.name,
            nodes=self.config.nodes,
            cache_bytes=self.config.cache_bytes,
            requests_measured=self._measured,
            requests_warmup=self._warmup_count,
            sim_seconds=elapsed,
            throughput_rps=throughput,
            miss_rate=cluster.overall_miss_rate(),
            forwarded_fraction=(
                self._measured_forwarded / self._measured if self._measured else 0.0
            ),
            cpu_utilizations=util,
            mean_response_s=self._response.mean,
            messages_per_request=(
                cluster.net.messages_sent / self._measured if self._measured else 0.0
            ),
            node_completions=completions,
            policy_stats=self.policy.stats(),
            requests_failed=self._failed,
            requests_retried=self._retried,
            latency_percentiles=self._percentiles(),
            station_utilizations=stations,
            requests_shed=sum(n.shed for n in cluster.nodes) + self._shed_front,
            overload_stats=(
                self.overload.snapshot() if self.overload is not None else {}
            ),
            message_stats=self._message_stats(),
            netfault_summary=self._netfault_summary(),
            requests_generated=self._next,
            requests_failed_warmup=self._failed_at_measure,
        )
        return self._result

    def _message_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-kind message accounting over the measured window.

        Only populated under an active netfault layer — the legacy
        counters stay the report of record otherwise.  ``in_flight`` is
        the level change across the window, so the per-kind identity
        ``sent == delivered + dropped + in_flight`` holds even though
        the level itself is never reset.
        """
        net = self.cluster.net
        if net.netfaults is None:
            return {}
        proto = net.protocol
        kinds = set(net.message_counts)
        kinds.update(net.delivered_counts, net.dropped_counts, net.dup_counts)
        kinds.update(net.in_flight_counts, self._inflight_at_measure)
        if proto is not None:
            kinds.update(proto.retries, proto.acks, proto.dedups, proto.failures)
        stats: Dict[str, Dict[str, int]] = {}
        for kind in sorted(kinds):
            row = {
                "sent": net.message_counts.get(kind, 0),
                "delivered": net.delivered_counts.get(kind, 0),
                "dropped": net.dropped_counts.get(kind, 0),
                "dup": net.dup_counts.get(kind, 0),
                "in_flight": net.in_flight_counts.get(kind, 0)
                - self._inflight_at_measure.get(kind, 0),
            }
            if proto is not None:
                row["retries"] = proto.retries.get(kind, 0)
                row["acks"] = proto.acks.get(kind, 0)
                row["dedups"] = proto.dedups.get(kind, 0)
                row["send_failures"] = proto.failures.get(kind, 0)
            stats[kind] = row
        return stats

    def _netfault_summary(self) -> Dict[str, Any]:
        net = self.cluster.net
        nf = net.netfaults
        if nf is None:
            return {}
        summary: Dict[str, Any] = {
            "drop_causes": {
                cause: net.drop_causes.get(cause, 0)
                for cause in sorted(net.drop_causes)
            },
            "link_downs": nf.link_downs,
            "partitions": nf.partitions,
            "heals": nf.heals,
            "requests_shed": sum(n.shed for n in self.cluster.nodes),
        }
        if net.protocol is not None:
            summary["redispatches"] = net.protocol.redispatches
        dfs = self.cluster.dfs
        summary["dfs_remote_failures"] = dfs.remote_failures
        summary["dfs_local_fallbacks"] = dfs.local_fallbacks
        return summary

    @property
    def latencies(self) -> List[float]:
        """Measured per-request latencies (``record_latencies`` runs)."""
        return list(self._latencies)

    def _percentiles(self) -> Dict[str, float]:
        if not self.record_latencies or not self._latencies:
            return {}
        lat = np.asarray(self._latencies)
        return {
            "p50": float(np.percentile(lat, 50)),
            "p90": float(np.percentile(lat, 90)),
            "p95": float(np.percentile(lat, 95)),
            "p99": float(np.percentile(lat, 99)),
            "max": float(lat.max()),
        }
