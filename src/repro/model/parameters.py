"""Model parameters — the paper's Table 1, with the same default values.

All rates are expressed through per-operation *service times* in seconds
(the reciprocal of the table's ops/s), because both the analytic model and
the simulator consume times.  Size arguments are kilobytes, matching the
table's formulas:

==========  =====================================  =======================
Parameter   Description                            Default
==========  =====================================  =======================
N           number of nodes                        16
R           fraction of memory for replication     0 (model) / 0.15 (figs)
alpha       Zipf constant                          1
mu_r        routing rate                           500000 / size ops/s
mu_i        request service rate at the NI         140000 ops/s
mu_p        request read + parse rate              6300 ops/s
mu_f        request forwarding rate                10000 ops/s
mu_m        reply rate (file cached locally)       1/(0.0001 + S/12000)
mu_d        disk access rate                       1/(0.028 + S/10000)
mu_o        reply service rate at the NI           1/(0.000003 + S/128000)
C           cache (memory) per node                128 MB
==========  =====================================  =======================
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

__all__ = ["ModelParameters", "DEFAULT_PARAMETERS", "KB", "MB"]

KB = 1024
MB = 1024 * 1024


@dataclass(frozen=True)
class ModelParameters:
    """Inputs of the analytic model (Table 1).

    The service-time methods (``parse_time``, ``reply_time`` ...) are
    shared verbatim with the simulator's hardware configuration so that
    model and simulation describe the same cluster.
    """

    #: Number of cluster nodes (N).
    nodes: int = 16
    #: Fraction of each memory reserved for replicated files (R).
    replication: float = 0.0
    #: Zipf constant (alpha).
    alpha: float = 1.0
    #: Main-memory cache per node, bytes (C).
    cache_bytes: int = 128 * MB
    #: Router capacity in KB/s (Cisco 7576-class, 4 Gbit/s): mu_r = this/size.
    router_kb_per_s: float = 500_000.0
    #: NI request service rate, ops/s (mu_i).
    ni_request_rate: float = 140_000.0
    #: Request read+parse rate, ops/s (mu_p).
    parse_rate: float = 6_300.0
    #: Request forwarding rate, ops/s (mu_f).
    forward_rate: float = 10_000.0
    #: Reply fixed overhead, seconds (the 0.0001 in mu_m).
    reply_overhead_s: float = 0.0001
    #: Reply streaming rate, KB/s (the 12000 in mu_m).
    reply_kb_per_s: float = 12_000.0
    #: Disk access (seek + rotation + directory) time, seconds (mu_d).
    disk_access_s: float = 0.028
    #: Disk transfer rate, KB/s (the 10000 in mu_d = 10 MB/s).
    disk_kb_per_s: float = 10_000.0
    #: NI per-message overhead, seconds (the 3 microseconds in mu_o).
    ni_overhead_s: float = 0.000003
    #: NI link rate, KB/s (1 Gbit/s in the table's 128000 KB/s convention).
    ni_kb_per_s: float = 128_000.0
    #: Average client-request message size, KB (gives mu_i ~ 140000 ops/s).
    request_kb: float = 0.5

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")
        if not 0.0 <= self.replication <= 1.0:
            raise ValueError(f"replication must be in [0, 1], got {self.replication}")
        if self.alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {self.alpha}")
        if self.cache_bytes <= 0:
            raise ValueError("cache_bytes must be positive")
        for attr in (
            "router_kb_per_s",
            "ni_request_rate",
            "parse_rate",
            "forward_rate",
            "reply_kb_per_s",
            "disk_kb_per_s",
            "ni_kb_per_s",
        ):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")

    # -- derived cache sizes (Table 1, bottom rows) -------------------------

    @property
    def cache_kb(self) -> float:
        return self.cache_bytes / KB

    def oblivious_cache_kb(self) -> float:
        """Clo = C: every node ends up caching the same hot files."""
        return self.cache_kb

    def conscious_cache_kb(self) -> float:
        """Clc = N*(1-R)*C + R*C: partitioned space plus one replica pool."""
        n, r, c = self.nodes, self.replication, self.cache_kb
        return n * (1.0 - r) * c + r * c

    def replicated_cache_kb(self) -> float:
        """R*C: per-node memory devoted to replicated (hot) files."""
        return self.replication * self.cache_kb

    # -- service times in seconds (reciprocals of the Table 1 rates) --------

    def route_time(self, size_kb: float) -> float:
        """1/mu_r: router occupancy to move ``size_kb`` to/from the Internet."""
        return size_kb / self.router_kb_per_s

    def ni_request_time(self) -> float:
        """1/mu_i: NI occupancy for a request-sized message."""
        return 1.0 / self.ni_request_rate

    def parse_time(self) -> float:
        """1/mu_p: CPU occupancy to read and parse a request."""
        return 1.0 / self.parse_rate

    def forward_time(self) -> float:
        """1/mu_f: CPU occupancy to forward (hand off) a request."""
        return 1.0 / self.forward_rate

    def reply_time(self, size_kb: float) -> float:
        """1/mu_m: CPU occupancy to send a locally cached file."""
        return self.reply_overhead_s + size_kb / self.reply_kb_per_s

    def disk_time(self, size_kb: float) -> float:
        """1/mu_d: disk occupancy to read a file (incl. directory access)."""
        return self.disk_access_s + size_kb / self.disk_kb_per_s

    def ni_reply_time(self, size_kb: float) -> float:
        """1/mu_o: NI occupancy to push a reply of ``size_kb`` out."""
        return self.ni_overhead_s + size_kb / self.ni_kb_per_s

    def ni_message_time(self, size_kb: float) -> float:
        """NI occupancy for an arbitrary message of ``size_kb``."""
        return self.ni_overhead_s + size_kb / self.ni_kb_per_s

    # -- convenience ---------------------------------------------------------

    def with_(self, **changes: Any) -> "ModelParameters":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


#: The paper's default configuration (Table 1, last column).
DEFAULT_PARAMETERS = ModelParameters()
