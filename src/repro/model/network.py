"""Open M/M/1 queuing-network solution.

The model (Figure 2) is an open network: every hardware component is an
M/M/1 queue, requests arrive at aggregate rate ``N * lambda``, and each
request deposits a known *service demand* at each station.  For such a
network the maximum sustainable throughput is the saturation point of the
bottleneck station — exactly the "upper bound on the throughput" the paper
derives by solving its system of equations — and the expected response
time below saturation is the sum of per-station M/M/1 residence times.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf
from typing import Dict, List, Tuple

__all__ = ["StationDemand", "QueuingNetwork"]


@dataclass(frozen=True)
class StationDemand:
    """Aggregate demand one client request places on one station type.

    ``demand_s`` is the expected busy time (seconds) the request induces
    at *one instance* of the station; ``servers`` is how many identical
    instances exist (1 router, N NIs, N CPUs, ...).  With perfect load
    balance each instance sees ``lambda * demand_s / servers`` busy
    seconds per second.
    """

    name: str
    demand_s: float
    servers: int = 1

    def __post_init__(self) -> None:
        if self.demand_s < 0:
            raise ValueError(f"demand must be non-negative, got {self.demand_s}")
        if self.servers < 1:
            raise ValueError(f"servers must be >= 1, got {self.servers}")

    @property
    def capacity(self) -> float:
        """Max request rate this station alone could sustain (req/s)."""
        if self.demand_s == 0:
            return inf
        return self.servers / self.demand_s


class QueuingNetwork:
    """A set of station demands describing one server design."""

    def __init__(self, stations: List[StationDemand]):
        if not stations:
            raise ValueError("a network needs at least one station")
        names = [s.name for s in stations]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate station names: {names}")
        self.stations = list(stations)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{s.name}={s.demand_s:.2e}s" for s in self.stations)
        return f"QueuingNetwork({inner})"

    def saturation_throughput(self) -> float:
        """Upper bound on sustainable request rate (req/s)."""
        return min(s.capacity for s in self.stations)

    def bottleneck(self) -> StationDemand:
        """The station that saturates first."""
        return min(self.stations, key=lambda s: s.capacity)

    def utilizations(self, arrival_rate: float) -> Dict[str, float]:
        """Per-station utilization at the given request rate."""
        if arrival_rate < 0:
            raise ValueError("arrival_rate must be non-negative")
        return {
            s.name: (arrival_rate * s.demand_s / s.servers) for s in self.stations
        }

    def response_time(self, arrival_rate: float) -> float:
        """Mean residence time (s) of a request below saturation.

        Sum of per-station M/M/1 residence times ``d / (1 - rho)``;
        returns ``inf`` at or above saturation.  The paper focuses on
        throughput (server-side latencies are dwarfed by WAN latency) but
        the model supports both.
        """
        if arrival_rate < 0:
            raise ValueError("arrival_rate must be non-negative")
        total = 0.0
        for s in self.stations:
            if s.demand_s == 0:
                continue
            rho = arrival_rate * s.demand_s / s.servers
            if rho >= 1.0:
                return inf
            total += s.demand_s / (1.0 - rho)
        return total

    def as_dict(self) -> Dict[str, Tuple[float, int]]:
        """{name: (demand_s, servers)} for reporting."""
        return {s.name: (s.demand_s, s.servers) for s in self.stations}
