"""Analytic throughput bounds for the two server designs.

Implements Section 3 of the paper: given the average requested-file size
``S`` and a description of the working set, compute the saturation
throughput of

* a **locality-oblivious** server — every node caches the same hot files
  (total effective cache ``Clo = C``), no forwarding; and
* a **locality-conscious** server — the node memories form one large cache
  (``Clc = N*(1-R)*C + R*C``), a fraction ``Q`` of requests is forwarded
  once, and a fraction ``h`` (hits on replicated files) is always local.

Two parameterizations are supported, matching the paper's two uses:

* :func:`oblivious_result` / :func:`conscious_result` take the
  locality-oblivious **hit rate** as the free variable (figures 3–6); the
  working set is recovered through the fitted population ``f``.
* :func:`bound_for_population` takes an explicit file population (count +
  alpha), which is how the "model" curves of figures 7–10 are produced
  from the trace characteristics of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf, isfinite
from typing import Dict, Literal

from .network import QueuingNetwork, StationDemand
from .parameters import ModelParameters
from .zipfmath import fit_population, zipf_mass

__all__ = [
    "ServerModelResult",
    "conscious_hit_rates",
    "oblivious_result",
    "conscious_result",
    "bound_for_population",
    "throughput_increase",
]

ServerKind = Literal["oblivious", "conscious"]


@dataclass(frozen=True)
class ServerModelResult:
    """Solution of the model for one server design at one operating point."""

    kind: str
    #: Saturation throughput, requests/second (the model's upper bound).
    throughput: float
    #: Cache hit rate used (Hlo or Hlc).
    hit_rate: float
    #: Fraction of requests forwarded between nodes (Q; 0 for oblivious).
    forward_fraction: float
    #: Hit rate on replicated files (h; only meaningful for conscious).
    replicated_hit_rate: float
    #: Name of the saturating station.
    bottleneck: str
    #: The underlying queuing network (for utilizations/latency).
    network: QueuingNetwork

    def response_time(self, arrival_rate: float) -> float:
        return self.network.response_time(arrival_rate)

    def utilizations(self, arrival_rate: float) -> Dict[str, float]:
        return self.network.utilizations(arrival_rate)


def _build_network(
    params: ModelParameters,
    size_kb: float,
    hit_rate: float,
    forward_fraction: float,
) -> QueuingNetwork:
    """Station demands for one request (Figure 2's queues).

    Per-node stations are entered with ``servers = N``; the symmetric
    steady state spreads request work evenly, so per-request demand at
    *one* node instance is the cluster-average value.
    """
    n = params.nodes
    q = forward_fraction
    stations = [
        # Router: moves the inbound request and the outbound reply.
        StationDemand(
            "router", params.route_time(size_kb + params.request_kb), servers=1
        ),
        # NI in: the client request, plus any forwarded request arriving.
        StationDemand(
            "ni_in", (1.0 + q) * params.ni_request_time(), servers=n
        ),
        # CPU: parse once, forward a fraction Q, reply once.
        StationDemand(
            "cpu",
            params.parse_time() + q * params.forward_time() + params.reply_time(size_kb),
            servers=n,
        ),
        # Disk: only on misses.
        StationDemand(
            "disk", (1.0 - hit_rate) * params.disk_time(size_kb), servers=n
        ),
        # NI out: the reply, plus any forwarded request leaving.
        StationDemand(
            "ni_out",
            params.ni_reply_time(size_kb)
            + q * params.ni_message_time(params.request_kb),
            servers=n,
        ),
    ]
    return QueuingNetwork(stations)


def _result(
    kind: str,
    params: ModelParameters,
    size_kb: float,
    hit_rate: float,
    forward_fraction: float,
    replicated_hit_rate: float,
) -> ServerModelResult:
    net = _build_network(params, size_kb, hit_rate, forward_fraction)
    return ServerModelResult(
        kind=kind,
        throughput=net.saturation_throughput(),
        hit_rate=hit_rate,
        forward_fraction=forward_fraction,
        replicated_hit_rate=replicated_hit_rate,
        bottleneck=net.bottleneck().name,
        network=net,
    )


def conscious_hit_rates(
    params: ModelParameters,
    size_kb: float,
    oblivious_hit_rate: float,
) -> tuple[float, float, float]:
    """(Hlc, h, Q) implied by a locality-oblivious hit rate (Table 1).

    ``f`` is fitted so that ``Hlo = z(Clo/S, f)``; then
    ``Hlc = z(min(Clc/S, f), f)``, ``h = z(min(R*C/S, f), f)`` and
    ``Q = (N-1) * (1-h) / N``.
    """
    if size_kb <= 0:
        raise ValueError(f"size_kb must be positive, got {size_kb}")
    if not 0.0 <= oblivious_hit_rate <= 1.0:
        raise ValueError(f"hit rate must be in [0, 1], got {oblivious_hit_rate}")
    alpha = params.alpha
    n_lo = params.oblivious_cache_kb() / size_kb
    n_lc = params.conscious_cache_kb() / size_kb
    n_rep = params.replicated_cache_kb() / size_kb

    if oblivious_hit_rate == 0.0:
        f = inf
    else:
        f = fit_population(oblivious_hit_rate, n_lo, alpha)

    if not isfinite(f):
        # Working set effectively unbounded: no finite cache holds mass.
        h_lc = 0.0 if alpha <= 1.0 else zipf_mass(n_lc, inf, alpha)
        h_rep = 0.0 if alpha <= 1.0 else zipf_mass(n_rep, inf, alpha)
    else:
        h_lc = zipf_mass(min(n_lc, f), f, alpha)
        h_rep = zipf_mass(min(n_rep, f), f, alpha) if n_rep > 0 else 0.0

    q = (params.nodes - 1) * (1.0 - h_rep) / params.nodes
    return h_lc, h_rep, q


def oblivious_result(
    params: ModelParameters,
    size_kb: float,
    hit_rate: float,
) -> ServerModelResult:
    """Model bound for the locality-oblivious (traditional) server."""
    if size_kb <= 0:
        raise ValueError(f"size_kb must be positive, got {size_kb}")
    if not 0.0 <= hit_rate <= 1.0:
        raise ValueError(f"hit rate must be in [0, 1], got {hit_rate}")
    return _result("oblivious", params, size_kb, hit_rate, 0.0, 0.0)


def conscious_result(
    params: ModelParameters,
    size_kb: float,
    oblivious_hit_rate: float,
) -> ServerModelResult:
    """Model bound for the locality-conscious server.

    Parameterized by the hit rate the *oblivious* server would see on the
    same workload (the x-axis of figures 3–6).
    """
    h_lc, h_rep, q = conscious_hit_rates(params, size_kb, oblivious_hit_rate)
    return _result("conscious", params, size_kb, h_lc, q, h_rep)


def bound_for_population(
    kind: ServerKind,
    params: ModelParameters,
    size_kb: float,
    num_files: float,
) -> ServerModelResult:
    """Model bound from an explicit file population (figures 7–10).

    Hit rates come directly from ``z(n, F)`` with the given population —
    no fitting step — using the trace's alpha from ``params``.
    """
    if size_kb <= 0:
        raise ValueError(f"size_kb must be positive, got {size_kb}")
    if num_files <= 0:
        raise ValueError(f"num_files must be positive, got {num_files}")
    alpha = params.alpha
    if kind == "oblivious":
        n_lo = params.oblivious_cache_kb() / size_kb
        h = zipf_mass(n_lo, num_files, alpha)
        return _result("oblivious", params, size_kb, h, 0.0, 0.0)
    if kind == "conscious":
        n_lc = params.conscious_cache_kb() / size_kb
        n_rep = params.replicated_cache_kb() / size_kb
        h_lc = zipf_mass(n_lc, num_files, alpha)
        h_rep = zipf_mass(n_rep, num_files, alpha) if n_rep > 0 else 0.0
        q = (params.nodes - 1) * (1.0 - h_rep) / params.nodes
        return _result("conscious", params, size_kb, h_lc, q, h_rep)
    raise ValueError(f"unknown server kind {kind!r}")


def throughput_increase(
    params: ModelParameters,
    size_kb: float,
    oblivious_hit_rate: float,
) -> float:
    """Conscious-over-oblivious throughput ratio (figures 5 and 6)."""
    lo = oblivious_result(params, size_kb, oblivious_hit_rate).throughput
    lc = conscious_result(params, size_kb, oblivious_hit_rate).throughput
    return lc / lo
