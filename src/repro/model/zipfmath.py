"""Zipf accumulation math for the analytic model.

The model (Section 3.1) expresses every cache hit rate through
``z(n, F)`` — the accumulated probability of the ``n`` most popular of
``F`` files under a Zipf-like distribution with exponent ``alpha``:

    z(n, F) = H_n(alpha) / H_F(alpha),   H_n(alpha) = sum_{i=1..n} i^-alpha

Two requirements push this beyond :func:`repro.workload.zipf.harmonic`:

* the paper's ``Hlo -> f`` inversion ("f is such that Hlo = z(Clo/S, f)")
  produces *fitted* populations up to ~1e16 files, far past anything an
  exact vectorized sum can reach, and
* cache capacities ``C/S`` are generally fractional numbers of files.

We therefore evaluate a *continuous* generalized harmonic: exact cached
partial sums up to an anchor, an Euler–Maclaurin continuation beyond it,
and linear interpolation for fractional arguments below the anchor.
"""

from __future__ import annotations

from functools import lru_cache
from math import inf, isfinite, log

import numpy as np

__all__ = ["harmonic_continuous", "zipf_mass", "fit_population"]

#: Largest argument for which partial harmonic sums are computed exactly.
_EXACT_LIMIT = 1 << 20

#: Upper bound for the fitted population f; beyond this, hit rates are
#: numerically indistinguishable from their asymptote.
MAX_POPULATION = 1e18


@lru_cache(maxsize=32)
def _exact_cumsum(alpha: float) -> np.ndarray:
    """Cached cumulative sums ``H_1..H_EXACT_LIMIT`` for one alpha."""
    i = np.arange(1, _EXACT_LIMIT + 1, dtype=np.float64)
    return np.cumsum(i**-alpha)


def harmonic_continuous(x: float, alpha: float) -> float:
    """Generalized harmonic number ``H_x(alpha)`` extended to real x ≥ 0.

    Exact (cached) partial sums for ``x`` below 2**20 with linear
    interpolation between integers; Euler–Maclaurin continuation above:

        H_x ≈ H_a + ∫_a^x t^-alpha dt + (x^-alpha - a^-alpha) / 2

    The continuation's relative error at the 2**20 anchor is far below
    1e-9 for every alpha of interest (0 ≤ alpha ≤ 2.5).
    """
    if alpha < 0:
        raise ValueError(f"alpha must be non-negative, got {alpha}")
    if x < 0:
        raise ValueError(f"x must be non-negative, got {x}")
    if x == 0:
        return 0.0
    if x < 1.0:
        # Fraction of the first (largest) term.
        return x * 1.0
    cs = _exact_cumsum(alpha)
    if x <= _EXACT_LIMIT:
        lo = int(x)
        base = cs[lo - 1]
        frac = x - lo
        if frac == 0.0 or lo >= _EXACT_LIMIT:
            return float(base)
        return float(base + frac * (lo + 1) ** -alpha)
    a = float(_EXACT_LIMIT)
    base = float(cs[-1])
    if abs(alpha - 1.0) < 1e-12:
        integral = log(x / a)
    else:
        integral = (x ** (1.0 - alpha) - a ** (1.0 - alpha)) / (1.0 - alpha)
    correction = 0.5 * (x**-alpha - a**-alpha)
    return base + integral + correction


def zipf_mass(n: float, population: float, alpha: float) -> float:
    """Continuous ``z(n, F)``: top-``n`` probability mass of ``F`` files.

    ``n`` is clamped to ``population``; both may be fractional.  An
    infinite ``population`` with ``alpha <= 1`` gives mass 0 for any
    finite ``n`` (the harmonic series diverges).
    """
    if population <= 0:
        raise ValueError(f"population must be positive, got {population}")
    if n <= 0:
        return 0.0
    n = min(float(n), float(population))
    if not isfinite(population):
        if alpha <= 1.0:
            return 0.0
        # For alpha > 1 the tail converges; approximate F -> inf with the
        # numeric ceiling (error < 1e-12 at that scale).
        population = MAX_POPULATION
    return harmonic_continuous(n, alpha) / harmonic_continuous(population, alpha)


def fit_population(hit_rate: float, cached_files: float, alpha: float) -> float:
    """Invert ``z``: find ``f`` with ``z(cached_files, f) = hit_rate``.

    This is the paper's device for parameterizing the model by the
    locality-oblivious hit rate: given that a single node's cache holds
    ``cached_files = Clo / S`` files and observes ``hit_rate``, the fitted
    population ``f`` describes the implied working set.

    Returns ``inf`` when the requested hit rate is at or below the
    infinite-population asymptote (only possible for ``alpha > 1``; for
    ``alpha <= 1`` every positive hit rate is reachable).  ``hit_rate = 1``
    returns ``cached_files`` (everything popular fits in one cache).
    """
    if not 0.0 < hit_rate <= 1.0:
        raise ValueError(f"hit_rate must be in (0, 1], got {hit_rate}")
    if cached_files <= 0:
        raise ValueError(f"cached_files must be positive, got {cached_files}")
    if hit_rate == 1.0:
        return float(cached_files)

    target_h_f = harmonic_continuous(cached_files, alpha) / hit_rate

    # z(n, f) is strictly decreasing in f; bisect on log(f).
    lo, hi = float(cached_files), MAX_POPULATION
    if harmonic_continuous(hi, alpha) < target_h_f:
        return inf
    llo, lhi = log(lo), log(hi)
    for _ in range(200):
        lmid = 0.5 * (llo + lhi)
        if harmonic_continuous(np.exp(lmid), alpha) < target_h_f:
            llo = lmid
        else:
            lhi = lmid
        if lhi - llo < 1e-13:
            break
    return float(np.exp(0.5 * (llo + lhi)))
