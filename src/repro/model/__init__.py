"""``repro.model`` — the paper's analytic open queuing-network model.

Section 3 of the paper: every cluster component is an M/M/1 queue
(Figure 2), hit rates follow from Zipf accumulation (Table 1's ``z``),
and the solved system yields an upper bound on the throughput of
locality-oblivious and locality-conscious servers.  These bounds are the
"model" curves of figures 7–10 and the surfaces of figures 3–6.
"""

from .mva import MVAResult, mva, mva_from_stations
from .network import QueuingNetwork, StationDemand
from .parameters import DEFAULT_PARAMETERS, KB, MB, ModelParameters
from .servers import (
    ServerModelResult,
    bound_for_population,
    conscious_hit_rates,
    conscious_result,
    oblivious_result,
    throughput_increase,
)
from .surfaces import (
    DEFAULT_HIT_RATES,
    DEFAULT_SIZES_KB,
    ModelSurfaces,
    SurfaceGrid,
    compute_surfaces,
    peak_increase,
    side_view,
)
from .zipfmath import fit_population, harmonic_continuous, zipf_mass

__all__ = [
    "ModelParameters",
    "DEFAULT_PARAMETERS",
    "KB",
    "MB",
    "QueuingNetwork",
    "StationDemand",
    "MVAResult",
    "mva",
    "mva_from_stations",
    "ServerModelResult",
    "oblivious_result",
    "conscious_result",
    "conscious_hit_rates",
    "bound_for_population",
    "throughput_increase",
    "harmonic_continuous",
    "zipf_mass",
    "fit_population",
    "SurfaceGrid",
    "ModelSurfaces",
    "compute_surfaces",
    "peak_increase",
    "side_view",
    "DEFAULT_SIZES_KB",
    "DEFAULT_HIT_RATES",
]
