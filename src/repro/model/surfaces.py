"""Parameter-space sweeps producing the model figures (3, 4, 5, 6).

The paper plots throughput over a (hit rate, average file size) grid for
both server designs, plus their ratio and its side view.  This module
produces those grids as numpy arrays (hit rate along axis 0, size along
axis 1), ready for rendering or assertion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from .parameters import ModelParameters
from .servers import conscious_result, oblivious_result

__all__ = [
    "SurfaceGrid",
    "ModelSurfaces",
    "compute_surfaces",
    "peak_increase",
    "side_view",
]

#: Figures 3-6 sweep sizes 0-128 KB; the smallest physical grid point is
#: 4 KB (a zero-byte file is meaningless and the table's rates diverge).
DEFAULT_SIZES_KB = tuple(float(s) for s in range(4, 132, 4))
#: Hit rates 0..1 (axis labeled "Hit Rate (trad)").
DEFAULT_HIT_RATES = tuple(float(h) for h in np.linspace(0.0, 1.0, 21))


@dataclass(frozen=True)
class SurfaceGrid:
    """The sweep axes: hit rates (rows) x file sizes KB (columns)."""

    hit_rates: Tuple[float, ...] = DEFAULT_HIT_RATES
    sizes_kb: Tuple[float, ...] = DEFAULT_SIZES_KB

    def __post_init__(self) -> None:
        if not self.hit_rates or not self.sizes_kb:
            raise ValueError("grid axes must be non-empty")
        if any(not 0.0 <= h <= 1.0 for h in self.hit_rates):
            raise ValueError("hit rates must lie in [0, 1]")
        if any(s <= 0 for s in self.sizes_kb):
            raise ValueError("sizes must be positive")

    @property
    def shape(self) -> Tuple[int, int]:
        return (len(self.hit_rates), len(self.sizes_kb))


@dataclass(frozen=True)
class ModelSurfaces:
    """All four model figures computed over one grid."""

    grid: SurfaceGrid
    params: ModelParameters
    #: Figure 3: locality-oblivious throughput (req/s).
    oblivious: np.ndarray
    #: Figure 4: locality-conscious throughput (req/s).
    conscious: np.ndarray

    @property
    def increase(self) -> np.ndarray:
        """Figure 5: conscious / oblivious throughput ratio."""
        return self.conscious / self.oblivious

    def peak_increase(self) -> float:
        """Largest ratio anywhere on the grid (the paper's 'up to 7x')."""
        return float(self.increase.max())

    def peak_location(self) -> Tuple[float, float]:
        """(hit_rate, size_kb) of the peak ratio."""
        idx = np.unravel_index(int(self.increase.argmax()), self.increase.shape)
        return (self.grid.hit_rates[idx[0]], self.grid.sizes_kb[idx[1]])

    def to_csv(self) -> str:
        """Long-format CSV: one row per grid cell, ready for any plotter.

        Columns: hit_rate, size_kb, oblivious_rps, conscious_rps, increase.
        """
        lines = ["hit_rate,size_kb,oblivious_rps,conscious_rps,increase"]
        inc = self.increase
        for i, h in enumerate(self.grid.hit_rates):
            for j, s in enumerate(self.grid.sizes_kb):
                lines.append(
                    f"{h:.6g},{s:.6g},{self.oblivious[i, j]:.6g},"
                    f"{self.conscious[i, j]:.6g},{inc[i, j]:.6g}"
                )
        return "\n".join(lines) + "\n"


def compute_surfaces(
    params: ModelParameters | None = None,
    grid: SurfaceGrid | None = None,
) -> ModelSurfaces:
    """Solve the model over the whole grid for both server designs."""
    params = params if params is not None else ModelParameters()
    grid = grid if grid is not None else SurfaceGrid()
    nh, ns = grid.shape
    oblivious = np.empty((nh, ns))
    conscious = np.empty((nh, ns))
    for i, h in enumerate(grid.hit_rates):
        for j, s in enumerate(grid.sizes_kb):
            oblivious[i, j] = oblivious_result(params, s, h).throughput
            conscious[i, j] = conscious_result(params, s, h).throughput
    return ModelSurfaces(grid=grid, params=params, oblivious=oblivious, conscious=conscious)


def peak_increase(
    params: ModelParameters | None = None,
    grid: SurfaceGrid | None = None,
) -> float:
    """Shortcut: the maximum throughput-increase factor over the grid."""
    return compute_surfaces(params, grid).peak_increase()


def side_view(surfaces: ModelSurfaces) -> np.ndarray:
    """Figure 6: the increase surface viewed along the size axis.

    Returns an (n_hit_rates, 2) array of the (min, max) envelope of the
    ratio across all file sizes for each hit rate — what the eye sees when
    figure 5 is rotated to profile.
    """
    inc = surfaces.increase
    return np.stack([inc.min(axis=1), inc.max(axis=1)], axis=1)
