"""Exact Mean Value Analysis (MVA) for closed queuing networks.

The open M/M/1 model (:mod:`repro.model.network`) bounds throughput at
saturation; the *simulator*, following the paper, is closed-loop — a
fixed multiprogramming level of requests circulates.  For a closed
product-form network, exact MVA computes the throughput and per-station
queue lengths at any population:

    R_k(m) = d_k * (1 + Q_k(m-1))          (arrival theorem)
    X(m)   = m / (Z + sum_k R_k(m))
    Q_k(m) = X(m) * R_k(m)

This lets the closed-loop simulation be validated against closed-network
theory at the same multiprogramming level, not just against the open
saturation bound (see ``benchmarks/test_closed_loop_validation.py``).

Multi-instance stations (the per-node CPUs, NIs, disks of
:class:`~repro.model.network.StationDemand`) are expanded into their
identical single-server instances, each receiving ``demand / servers``
(a request visits one instance uniformly at random).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .network import StationDemand

__all__ = ["MVAResult", "mva", "mva_from_stations"]


@dataclass(frozen=True)
class MVAResult:
    """Solution of a closed network at one population."""

    #: Number of circulating customers (requests in flight).
    customers: int
    #: System throughput, requests/second.
    throughput: float
    #: Mean response time per cycle (excluding think time), seconds.
    response_time: float
    #: Mean queue length per station (demand-expanded names).
    queue_lengths: Dict[str, float]

    def utilization(self, demands: Dict[str, float]) -> Dict[str, float]:
        """Per-station utilization: X * d_k."""
        return {k: self.throughput * d for k, d in demands.items()}


def mva(
    demands: Sequence[Tuple[str, float]],
    customers: int,
    think_time: float = 0.0,
) -> MVAResult:
    """Exact MVA over single-server FIFO stations.

    ``demands`` maps station name to the expected service demand
    (seconds) one request places on it per cycle.  ``think_time`` is a
    delay (infinite-server) term — zero for our saturation drivers.
    """
    if customers < 1:
        raise ValueError(f"customers must be >= 1, got {customers}")
    if think_time < 0:
        raise ValueError("think_time must be non-negative")
    names = [n for n, _ in demands]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate station names: {names}")
    ds = [float(d) for _, d in demands]
    if any(d < 0 for d in ds):
        raise ValueError("demands must be non-negative")
    if sum(ds) <= 0 and think_time <= 0:
        raise ValueError("at least one demand (or think time) must be positive")

    q = [0.0] * len(ds)
    x = 0.0
    r_total = 0.0
    for m in range(1, customers + 1):
        r = [d * (1.0 + qk) for d, qk in zip(ds, q)]
        r_total = sum(r)
        x = m / (think_time + r_total)
        q = [x * rk for rk in r]
    return MVAResult(
        customers=customers,
        throughput=x,
        response_time=r_total,
        queue_lengths=dict(zip(names, q)),
    )


def mva_from_stations(
    stations: Sequence[StationDemand],
    customers: int,
    think_time: float = 0.0,
) -> MVAResult:
    """MVA over :class:`StationDemand` objects.

    A station with ``servers = s`` becomes ``s`` identical single-server
    stations, each visited with probability ``1/s`` (per-request demand
    ``d/s``) — the symmetric-cluster assumption the whole model rests on.
    """
    expanded: List[Tuple[str, float]] = []
    for st in stations:
        if st.servers == 1:
            expanded.append((st.name, st.demand_s))
        else:
            share = st.demand_s / st.servers
            expanded.extend(
                (f"{st.name}[{i}]", share) for i in range(st.servers)
            )
    return mva(expanded, customers, think_time)
