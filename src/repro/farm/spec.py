"""Sweep-grid specification: what a farm run executes.

A :class:`SweepSpec` is the cross product of traces, policies, cluster
sizes and seeds, flattened into a deterministic shard list.  The shard
list — not worker scheduling — is the single source of ordering: shard
``i`` means the same simulation no matter how many workers run the
sweep, which is what makes the merged result byte-identical to a serial
run.

Seeds are part of the grid.  When a spec is built with
:meth:`SweepSpec.derived` the seed axis is *derived* from a base seed
with :func:`derive_shard_seed` — a pure function of ``(base, index)``,
never of worker identity or wall clock — so replicate seeds are stable
across machines, worker counts, and reruns (simlint's unseeded-RNG rules
apply to farm workers exactly as they do to the kernel).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["FarmSpecError", "Shard", "SweepSpec", "derive_shard_seed"]

#: Trace presets a spec may name (matches repro.workload.synthesize).
KNOWN_TRACES = ("calgary", "clarknet", "nasa", "rutgers")


class FarmSpecError(ValueError):
    """A sweep spec that cannot be executed."""


def derive_shard_seed(base: int, index: int) -> int:
    """Deterministic per-replicate seed stream.

    A SHA-256 mix of ``(base, index)`` folded to 31 bits: collision-free
    in practice, identical on every platform, and — unlike ``base +
    index`` — uncorrelated between adjacent replicates, so replicate 0
    of base 1 never equals replicate 1 of base 0.
    """
    digest = hashlib.sha256(f"repro-farm:{base}:{index}".encode()).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


@dataclass(frozen=True)
class Shard:
    """One cell of the sweep grid: a single deterministic simulation."""

    index: int
    trace: str
    policy: str
    nodes: int
    seed: int

    def label(self) -> str:
        return f"{self.trace}/{self.policy}/n{self.nodes}/s{self.seed}"


@dataclass(frozen=True)
class SweepSpec:
    """The full grid one ``repro farm sweep`` executes."""

    traces: Tuple[str, ...]
    policies: Tuple[str, ...]
    node_counts: Tuple[int, ...]
    seeds: Tuple[int, ...]
    requests: int
    cache_mb: int = 32
    passes: int = 2

    def __post_init__(self) -> None:
        if not self.traces:
            raise FarmSpecError("spec needs at least one trace")
        if not self.policies:
            raise FarmSpecError("spec needs at least one policy")
        if not self.node_counts:
            raise FarmSpecError("spec needs at least one node count")
        if not self.seeds:
            raise FarmSpecError("spec needs at least one seed")
        for trace in self.traces:
            if trace not in KNOWN_TRACES:
                raise FarmSpecError(
                    f"unknown trace {trace!r} (expected one of "
                    f"{', '.join(KNOWN_TRACES)})"
                )
        for n in self.node_counts:
            if n < 1:
                raise FarmSpecError(f"node count must be >= 1, got {n}")
        if self.requests < 1:
            raise FarmSpecError(f"requests must be >= 1, got {self.requests}")
        if self.cache_mb < 1:
            raise FarmSpecError(f"cache_mb must be >= 1, got {self.cache_mb}")
        if self.passes < 1:
            raise FarmSpecError(f"passes must be >= 1, got {self.passes}")
        if len(set(self.seeds)) != len(self.seeds):
            raise FarmSpecError("seeds must be distinct")

    @classmethod
    def derived(
        cls,
        traces: Sequence[str],
        policies: Sequence[str],
        node_counts: Sequence[int],
        base_seed: int,
        replicates: int,
        requests: int,
        cache_mb: int = 32,
        passes: int = 2,
    ) -> "SweepSpec":
        """Build a spec whose seed axis is derived from ``base_seed``."""
        if replicates < 1:
            raise FarmSpecError(f"replicates must be >= 1, got {replicates}")
        seeds = tuple(derive_shard_seed(base_seed, i) for i in range(replicates))
        return cls(
            traces=tuple(traces),
            policies=tuple(policies),
            node_counts=tuple(node_counts),
            seeds=seeds,
            requests=requests,
            cache_mb=cache_mb,
            passes=passes,
        )

    # -- the shard list ----------------------------------------------------

    def shards(self) -> List[Shard]:
        """Grid order: trace, then policy, then nodes, then seed.

        This order is the merge order and therefore part of the output
        contract — reordering it changes every rendered report.
        """
        out: List[Shard] = []
        index = 0
        for trace in self.traces:
            for policy in self.policies:
                for nodes in self.node_counts:
                    for seed in self.seeds:
                        out.append(Shard(index, trace, policy, nodes, seed))
                        index += 1
        return out

    def __len__(self) -> int:
        return (
            len(self.traces)
            * len(self.policies)
            * len(self.node_counts)
            * len(self.seeds)
        )

    # -- JSON round-trip ---------------------------------------------------

    def to_json(self) -> str:
        payload: Dict[str, Any] = asdict(self)
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FarmSpecError(f"not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise FarmSpecError("spec JSON must be an object")
        known = {
            "traces",
            "policies",
            "node_counts",
            "seeds",
            "requests",
            "cache_mb",
            "passes",
        }
        unknown = set(payload) - known
        if unknown:
            raise FarmSpecError(
                f"unknown spec field(s): {', '.join(sorted(unknown))}"
            )
        missing = {"traces", "policies", "node_counts", "seeds", "requests"} - set(
            payload
        )
        if missing:
            raise FarmSpecError(
                f"missing spec field(s): {', '.join(sorted(missing))}"
            )
        try:
            return cls(
                traces=tuple(str(t) for t in payload["traces"]),
                policies=tuple(str(p) for p in payload["policies"]),
                node_counts=tuple(int(n) for n in payload["node_counts"]),
                seeds=tuple(int(s) for s in payload["seeds"]),
                requests=int(payload["requests"]),
                cache_mb=int(payload.get("cache_mb", 32)),
                passes=int(payload.get("passes", 2)),
            )
        except (TypeError, ValueError) as exc:
            if isinstance(exc, FarmSpecError):
                raise
            raise FarmSpecError(f"malformed spec: {exc}") from None

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "SweepSpec":
        try:
            with open(path) as fh:
                return cls.from_json(fh.read())
        except OSError as exc:
            raise FarmSpecError(f"cannot read {path}: {exc}") from None

    def describe(self) -> str:
        return (
            f"{len(self.traces)} trace(s) x {len(self.policies)} policy(ies) "
            f"x {len(self.node_counts)} size(s) x {len(self.seeds)} seed(s) "
            f"= {len(self)} shards, {self.requests:,} requests each"
        )
