"""Farm execution: shard a spec across processes, merge deterministically.

The execution contract (docs/FARM.md):

* every shard is a pure function of the spec — workers receive the shard
  description and rebuild trace/policy/cluster from it, never shared
  state, so a shard computes the same :class:`SimResult` in any process;
* results are collected *as they finish* but merged *in shard order* —
  worker count and completion order never reach the output;
* a worker process dying (OOM killer, signal) is retried a bounded
  number of times; a deterministic simulation error is not (it would
  fail identically on retry) and propagates.

``pool_map`` is the reusable core; the figure experiments
(:mod:`repro.experiments.figures`) fan out through it too.
"""

from __future__ import annotations

import dataclasses
import json
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..sim import SimResult
from .spec import Shard, SweepSpec

__all__ = [
    "ChaosFarmResult",
    "FarmResult",
    "FarmWorkerError",
    "pool_map",
    "run_chaos_farm",
    "run_sweep",
]

#: Times a shard is re-submitted after its worker process died.
DEFAULT_CRASH_RETRIES = 2


class FarmWorkerError(RuntimeError):
    """A shard's worker died repeatedly; the sweep cannot complete."""


# ---------------------------------------------------------------------------
# Ordered process-pool map with worker-crash retry
# ---------------------------------------------------------------------------


def pool_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    workers: int = 1,
    crash_retries: int = DEFAULT_CRASH_RETRIES,
    progress: Optional[Callable[[int, Any], None]] = None,
) -> List[Any]:
    """``[fn(x) for x in items]`` across a process pool, in item order.

    ``fn`` and every item must be picklable (``fn`` module-level).  With
    ``workers <= 1`` (or one item) everything runs in-process — the
    serial path the parallel one must match byte-for-byte.

    Only a *worker death* (:class:`BrokenProcessPool` — the process was
    killed, not the function) is retried: the pool is rebuilt and every
    affected item resubmitted, with each breakage charged as one retry
    to the oldest affected item; once any item is charged more than
    ``crash_retries`` times :class:`FarmWorkerError` is raised.
    Exceptions raised *by* ``fn`` are deterministic and propagate
    immediately.  ``progress`` (if given) is called with
    ``(index, result)`` as each item finishes — completion order, not
    item order.
    """
    n = len(items)
    results: List[Any] = [None] * n
    if workers <= 1 or n <= 1:
        for i, item in enumerate(items):
            results[i] = fn(item)
            if progress is not None:
                progress(i, results[i])
        return results

    pending = list(range(n))
    attempts = [0] * n
    while pending:
        crashed: List[int] = []
        with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
            futures = {pool.submit(fn, items[i]): i for i in pending}
            outstanding = set(futures)
            broken = False
            while outstanding and not broken:
                done, _ = wait(outstanding, return_when=FIRST_COMPLETED)
                # A worker death breaks the whole pool: every pending
                # future comes back "done" in the same batch, some with
                # a real result (finished before the crash), the rest
                # raising BrokenProcessPool.  Drain the entire batch so
                # no crashed sibling is lost, then rebuild the pool.
                for fut in done:
                    outstanding.discard(fut)
                    i = futures[fut]
                    try:
                        results[i] = fut.result()
                    except BrokenProcessPool:
                        crashed.append(i)
                        broken = True
                    else:
                        if progress is not None:
                            progress(i, results[i])
                if broken:
                    # futures is insertion-ordered (submission order),
                    # so this stays deterministic for a given crash.
                    crashed.extend(
                        i for f, i in futures.items() if f in outstanding
                    )
                    outstanding = set()
        pending = sorted(crashed)
        if pending:
            # One breakage = one retry, charged to the oldest affected
            # item.  The dying worker takes every sibling future down
            # with it, so charging all of them would let a single
            # repeat-crasher exhaust innocent shards' budgets; siblings
            # are resubmitted for free.
            first = pending[0]
            attempts[first] += 1
            if attempts[first] > crash_retries:
                raise FarmWorkerError(
                    f"shard {first} lost its worker process "
                    f"{attempts[first]} time(s); giving up"
                )
    return results


# ---------------------------------------------------------------------------
# Sweep farming
# ---------------------------------------------------------------------------


def _run_sweep_shard(args: Tuple[Shard, int, int, int]) -> SimResult:
    """Execute one grid cell — module-level for pickling.

    Everything is rebuilt from the shard description: the worker holds
    no state a second run (or a serial run) would not reconstruct
    identically.
    """
    shard, requests, cache_mb, passes = args
    from ..model import MB
    from ..sim import run_simulation

    return run_simulation(
        shard.trace,
        shard.policy,
        nodes=shard.nodes,
        cache_bytes=cache_mb * MB,
        num_requests=requests,
        passes=passes,
        seed=shard.seed,
    )


@dataclass(frozen=True)
class FarmResult:
    """A completed sweep: one SimResult per shard, in grid order."""

    spec: SweepSpec
    #: ``results[i]`` belongs to ``spec.shards()[i]``.
    results: Tuple[SimResult, ...]
    workers: int

    def rows(self) -> List[Tuple[Shard, SimResult]]:
        return list(zip(self.spec.shards(), self.results))

    def render(self) -> str:
        """Deterministic text table (the serial-vs-farm identity canary)."""
        lines = [
            "trace      policy        nodes  seed        req/s    miss"
            "    fwd     resp_ms",
        ]
        for shard, r in self.rows():
            lines.append(
                f"{shard.trace:<10s} {shard.policy:<12s} {shard.nodes:>5d}  "
                f"{shard.seed:<10d} {r.throughput_rps:>9,.2f} "
                f"{r.miss_rate:>7.4f} {r.forwarded_fraction:>6.3f} "
                f"{r.mean_response_s * 1e3:>10.4f}"
            )
        return "\n".join(lines)

    def to_json(self) -> str:
        """Canonical JSON of the merged sweep (byte-identical across
        worker counts: SimResult carries no wall-clock fields)."""
        payload = {
            "spec": json.loads(self.spec.to_json()),
            "results": [dataclasses.asdict(r) for r in self.results],
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    progress: Optional[Callable[[Shard, SimResult], None]] = None,
) -> FarmResult:
    """Execute every shard of ``spec`` and merge in grid order."""
    shards = spec.shards()
    tasks = [(s, spec.requests, spec.cache_mb, spec.passes) for s in shards]
    hook = (
        (lambda i, r: progress(shards[i], r)) if progress is not None else None
    )
    results = pool_map(_run_sweep_shard, tasks, workers=workers, progress=hook)
    return FarmResult(spec=spec, results=tuple(results), workers=workers)


# ---------------------------------------------------------------------------
# Chaos-trial farming
# ---------------------------------------------------------------------------


def _run_chaos_trial(
    args: Tuple[int, int, Tuple[str, ...], str, Optional[int], bool]
) -> Tuple[bool, str, Optional[str]]:
    """One chaos trial — regenerated in the worker from (seed, trial).

    Returns ``(passed, report_text, scenario_json)``; the scenario JSON
    travels back only for failures so the *parent* does all file writes
    (workers stay side-effect-free).
    """
    trial, seed, policies, trace, requests, strict = args
    from ..chaos.generator import ScenarioGenerator
    from ..chaos.oracle import OracleConfig
    from ..chaos.runner import render_report, run_scenario

    kwargs = {} if requests is None else {"requests": requests}
    gen = ScenarioGenerator(seed, policies=policies, trace=trace, **kwargs)
    scenario = gen.generate(trial)
    outcome = run_scenario(scenario, OracleConfig(strict=strict))
    scenario_json = None if outcome.passed else scenario.to_json()
    return outcome.passed, render_report(outcome), scenario_json


@dataclass(frozen=True)
class ChaosFarmResult:
    """A farmed chaos sweep: per-trial verdicts in trial order."""

    trials: int
    seed: int
    workers: int
    #: ``(passed, report, scenario_json-or-None)`` per trial, in order.
    outcomes: Tuple[Tuple[bool, str, Optional[str]], ...]

    @property
    def failures(self) -> int:
        return sum(1 for passed, _, _ in self.outcomes if not passed)

    def failing_reports(self) -> List[Tuple[int, str, str]]:
        """(trial, report, scenario_json) for every failed trial."""
        return [
            (i, report, spec_json)
            for i, (passed, report, spec_json) in enumerate(self.outcomes)
            if not passed and spec_json is not None
        ]


def run_chaos_farm(
    trials: int,
    seed: int = 0,
    workers: int = 1,
    policies: Optional[Sequence[str]] = None,
    trace: str = "calgary",
    requests: Optional[int] = None,
    strict: bool = False,
    progress: Optional[Callable[[int, bool], None]] = None,
) -> ChaosFarmResult:
    """Farm ``trials`` seeded chaos trials across ``workers`` processes.

    Each trial regenerates its scenario from ``(seed, trial_index)`` in
    the worker, so the verdict set is identical to a serial
    ``repro chaos run --trials N --seed S`` sweep regardless of worker
    count or completion order.
    """
    from ..chaos.generator import DEFAULT_POLICIES

    pols = tuple(policies) if policies else DEFAULT_POLICIES
    tasks = [(t, seed, pols, trace, requests, strict) for t in range(trials)]
    hook = (
        (lambda i, r: progress(i, r[0])) if progress is not None else None
    )
    outcomes = pool_map(_run_chaos_trial, tasks, workers=workers, progress=hook)
    return ChaosFarmResult(
        trials=trials, seed=seed, workers=workers, outcomes=tuple(outcomes)
    )
