"""Multi-core sweep runner with deterministic shard merging.

``repro farm`` shards a sweep grid (trace x policy x node-count x seed)
or a batch of chaos trials across a process pool and merges the shard
results back in grid order, so the merged output is byte-identical to a
serial run of the same spec — parallelism is a pure wall-clock
optimization, never a source of nondeterminism (see docs/FARM.md).
"""

from .spec import FarmSpecError, Shard, SweepSpec, derive_shard_seed
from .runner import (
    ChaosFarmResult,
    FarmResult,
    FarmWorkerError,
    pool_map,
    run_chaos_farm,
    run_sweep,
)

__all__ = [
    "ChaosFarmResult",
    "FarmResult",
    "FarmSpecError",
    "FarmWorkerError",
    "Shard",
    "SweepSpec",
    "derive_shard_seed",
    "pool_map",
    "run_chaos_farm",
    "run_sweep",
]
