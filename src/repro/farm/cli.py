"""``repro farm`` — shard sweeps and chaos trials across CPU cores.

Subcommands::

    repro farm sweep --traces calgary,clarknet --policies l2s,lard \\
        --nodes 16 --seeds 4 --requests 4000 --workers 4
    repro farm sweep --spec sweep.json --workers 8 --out merged.json
    repro farm sweep --quick --workers 2       # CI smoke grid
    repro farm chaos --trials 16 --workers 4 --seed 42

The merged output (table and ``--out`` JSON) is byte-identical for any
``--workers`` value, including 1 — see docs/FARM.md for the contract.
Progress lines go to stderr so stdout stays diffable.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .runner import FarmWorkerError, run_chaos_farm, run_sweep
from .spec import FarmSpecError, SweepSpec

__all__ = ["main", "build_parser"]

#: The smoke grid behind ``repro farm sweep --quick``.
QUICK_REQUESTS = 1_000


def _int_list(text: str) -> List[int]:
    return [int(x) for x in text.split(",") if x.strip()]


def _str_list(text: str) -> List[str]:
    return [x.strip() for x in text.split(",") if x.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro farm",
        description="multi-core sweep runner with deterministic merging",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sw = sub.add_parser(
        "sweep", help="farm a trace x policy x nodes x seed grid"
    )
    p_sw.add_argument(
        "--spec", default=None, metavar="SPEC.json",
        help="load the grid from a SweepSpec JSON file (exclusive with "
        "the grid flags)",
    )
    p_sw.add_argument(
        "--traces", default="calgary",
        help="comma-separated trace presets (default calgary)",
    )
    p_sw.add_argument(
        "--policies", default="traditional,lard,l2s",
        help="comma-separated policy names (default the paper's three)",
    )
    p_sw.add_argument(
        "--nodes", default="16", help="comma-separated cluster sizes"
    )
    p_sw.add_argument(
        "--seeds", default="0", metavar="S1,S2,...",
        help="explicit comma-separated seed list (default: 0); "
        "exclusive with --replicates",
    )
    p_sw.add_argument(
        "--replicates", type=int, default=None, metavar="N",
        help="instead of --seeds: derive N replicate seeds from "
        "--base-seed (deterministic per (base, index))",
    )
    p_sw.add_argument(
        "--base-seed", type=int, default=0,
        help="base for derived replicate seeds (default 0)",
    )
    p_sw.add_argument("--requests", type=int, default=4_000)
    p_sw.add_argument("--memory", type=int, default=32, help="MB per node")
    p_sw.add_argument("--passes", type=int, default=2)
    p_sw.add_argument(
        "--quick", action="store_true",
        help=f"CI smoke grid ({QUICK_REQUESTS} requests, calgary x three "
        "policies x 16 nodes x 2 seeds)",
    )
    p_sw.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: REPRO_FARM_WORKERS or 1)",
    )
    p_sw.add_argument(
        "--save-spec", default=None, metavar="SPEC.json",
        help="write the (possibly derived) grid as a spec file and exit",
    )
    p_sw.add_argument(
        "--out", default=None, metavar="FILE.json",
        help="write the merged results as canonical JSON",
    )
    p_sw.add_argument(
        "--no-progress", action="store_true",
        help="suppress per-shard progress lines on stderr",
    )

    p_ch = sub.add_parser(
        "chaos", help="farm seeded chaos trials (repro chaos run, sharded)"
    )
    p_ch.add_argument("--trials", type=int, default=8)
    p_ch.add_argument("--seed", type=int, default=0)
    p_ch.add_argument(
        "--policies", default=None,
        help="comma-separated policy names (default: the chaos set)",
    )
    p_ch.add_argument("--trace", default="calgary")
    p_ch.add_argument("--requests", type=int, default=None)
    p_ch.add_argument(
        "--strict", action="store_true", help="strict oracle config"
    )
    p_ch.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: REPRO_FARM_WORKERS or 1)",
    )
    p_ch.add_argument(
        "--out", default=None, metavar="DIR",
        help="directory for failing scenarios (default chaos-farm)",
    )
    p_ch.add_argument(
        "--no-progress", action="store_true",
        help="suppress per-trial progress lines on stderr",
    )
    return parser


def _workers(ns: argparse.Namespace) -> int:
    if ns.workers is not None:
        return max(1, ns.workers)
    value = os.environ.get("REPRO_FARM_WORKERS", "")
    return max(1, int(value)) if value else 1


def _sweep_spec(ns: argparse.Namespace) -> SweepSpec:
    if ns.spec is not None:
        return SweepSpec.load(ns.spec)
    if ns.quick:
        return SweepSpec.derived(
            traces=("calgary",),
            policies=("traditional", "lard", "l2s"),
            node_counts=(16,),
            base_seed=ns.base_seed,
            replicates=2,
            requests=QUICK_REQUESTS,
            cache_mb=ns.memory,
            passes=ns.passes,
        )
    if ns.replicates is not None:
        return SweepSpec.derived(
            traces=_str_list(ns.traces),
            policies=_str_list(ns.policies),
            node_counts=_int_list(ns.nodes),
            base_seed=ns.base_seed,
            replicates=ns.replicates,
            requests=ns.requests,
            cache_mb=ns.memory,
            passes=ns.passes,
        )
    return SweepSpec(
        traces=tuple(_str_list(ns.traces)),
        policies=tuple(_str_list(ns.policies)),
        node_counts=tuple(_int_list(ns.nodes)),
        seeds=tuple(_int_list(ns.seeds)),
        requests=ns.requests,
        cache_mb=ns.memory,
        passes=ns.passes,
    )


def _cmd_sweep(ns: argparse.Namespace) -> int:
    try:
        spec = _sweep_spec(ns)
    except (FarmSpecError, ValueError) as exc:
        print(f"farm sweep: {exc}", file=sys.stderr)
        return 2
    if ns.save_spec is not None:
        spec.save(ns.save_spec)
        print(f"wrote {ns.save_spec}: {spec.describe()}")
        return 0
    workers = _workers(ns)
    # Banner to stderr: stdout carries only the merged report, which is
    # byte-identical across worker counts.
    print(
        f"farm sweep: {spec.describe()}, {workers} worker(s)",
        file=sys.stderr,
    )
    done = [0]

    def progress(shard, result) -> None:
        done[0] += 1
        print(
            f"  [{done[0]}/{len(spec)}] {shard.label()}: "
            f"{result.throughput_rps:,.2f} req/s",
            file=sys.stderr,
        )

    try:
        farm = run_sweep(
            spec,
            workers=workers,
            progress=None if ns.no_progress else progress,
        )
    except FarmWorkerError as exc:
        print(f"farm sweep: {exc}", file=sys.stderr)
        return 1
    print(farm.render())
    if ns.out is not None:
        with open(ns.out, "w") as fh:
            fh.write(farm.to_json())
        print(f"wrote {ns.out}")
    return 0


def _cmd_chaos(ns: argparse.Namespace) -> int:
    workers = _workers(ns)
    policies = _str_list(ns.policies) if ns.policies else None
    print(
        f"farm chaos: {ns.trials} trials, seed {ns.seed}, "
        f"{workers} worker(s)",
        file=sys.stderr,
    )

    def progress(trial: int, passed: bool) -> None:
        print(
            f"  trial {trial}: {'ok' if passed else 'FAIL'}",
            file=sys.stderr,
        )

    try:
        farm = run_chaos_farm(
            ns.trials,
            seed=ns.seed,
            workers=workers,
            policies=policies,
            trace=ns.trace,
            requests=ns.requests,
            strict=ns.strict,
            progress=None if ns.no_progress else progress,
        )
    except FarmWorkerError as exc:
        print(f"farm chaos: {exc}", file=sys.stderr)
        return 1
    out_dir = ns.out or "chaos-farm"
    for trial, report, scenario_json in farm.failing_reports():
        print(report)
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, f"trial{trial:05d}.json")
        with open(path, "w") as fh:
            fh.write(scenario_json)
        print(f"  scenario saved: {path}")
    print(
        f"farm chaos: {farm.trials - farm.failures}/{farm.trials} trials "
        "passed all oracles"
    )
    return 1 if farm.failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    ns = build_parser().parse_args(argv)
    if ns.command == "sweep":
        return _cmd_sweep(ns)
    if ns.command == "chaos":
        return _cmd_chaos(ns)
    raise AssertionError(f"unhandled command {ns.command!r}")


if __name__ == "__main__":
    sys.exit(main())
