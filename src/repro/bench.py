"""Kernel performance harness: ``repro bench``.

Measures wall-clock time and event throughput of the DES kernel on the
three canonical 16-node scenarios (traditional, LARD, L2S on the calgary
trace, two passes — the same shapes the figure benchmarks run), and
writes the numbers to ``BENCH_kernel.json`` so CI can catch performance
regressions.

Metrics per scenario:

``wall_s``
    Wall-clock seconds for ``Simulation.run()`` (best of ``repeats``).
``events``
    Events scheduled by the run (``Environment.event_count``) — the
    kernel's work metric.  Note that kernel *optimizations* legitimately
    lower this number (the callback fast path schedules fewer events for
    the same simulated behaviour), which is why the regression check
    keys on ``events_per_s``.
``events_per_s``
    ``events / wall_s`` — events actually processed per second.
``throughput_rps``
    Simulated requests/s (a correctness canary: for a fixed scenario and
    seed this must not move between kernel versions).

Usage::

    repro bench                       # full scenarios, print a table
    repro bench --quick               # ~4x smaller trace, for CI smoke
    repro bench --out BENCH_kernel.json
    repro bench --check BENCH_kernel.json   # fail on >25% events/s drop
    repro bench --profile 15          # cProfile top-15 per scenario
    repro bench --farm 4              # also record the farm speedup series
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import os
import platform
import pstats
import sys
import time
from typing import Dict, List, Optional

__all__ = [
    "CANONICAL_POLICIES",
    "canonical_simulation",
    "run_scenario",
    "run_bench",
    "run_farm_series",
    "check_regression",
    "main",
]

#: The canonical perf scenarios: one per server design, 16 nodes,
#: calgary trace, two passes (pass 1 warms, pass 2 is measured).
CANONICAL_POLICIES = ("traditional", "lard", "l2s")
CANONICAL_TRACE = "calgary"
CANONICAL_NODES = 16
CANONICAL_PASSES = 2
FULL_REQUESTS = 8_000
QUICK_REQUESTS = 2_000

#: events/s may drop by at most this fraction vs the committed baseline.
DEFAULT_TOLERANCE = 0.25


def canonical_simulation(
    policy: str,
    num_requests: int = FULL_REQUESTS,
    nodes: int = CANONICAL_NODES,
    seed: int = 0,
):
    """Build the canonical perf scenario: one Simulation, ready to run.

    Single source of truth for the scenario shape — the figure
    benchmarks (``benchmarks/figshared.py``) and the perf suite
    (``benchmarks/perf/``) both build their runs through this.
    """
    from .cluster import ClusterConfig
    from .servers import make_policy
    from .sim.driver import Simulation
    from .workload import synthesize

    trace = synthesize(CANONICAL_TRACE, num_requests=num_requests, seed=seed)
    return Simulation(
        trace,
        make_policy(policy),
        ClusterConfig(nodes=nodes),
        passes=CANONICAL_PASSES,
    )


def run_scenario(
    policy: str,
    num_requests: int = FULL_REQUESTS,
    repeats: int = 1,
    profile_top: int = 0,
) -> Dict[str, object]:
    """Run one canonical scenario and return its measurements.

    With ``repeats > 1`` the best pass is reported (CPU-throttle noise
    only ever slows a run down) plus the per-pass spread — ``wall_s_runs``
    lists every pass's wall time so a noisy measurement is visible in
    the committed baseline rather than silently averaged away.
    """
    best: Optional[Dict[str, object]] = None
    walls: List[float] = []
    for _ in range(max(1, repeats)):
        sim = canonical_simulation(policy, num_requests=num_requests)
        if profile_top:
            prof = cProfile.Profile()
            t0 = time.perf_counter()
            prof.enable()
            result = sim.run()
            prof.disable()
            wall = time.perf_counter() - t0
            buf = io.StringIO()
            stats = pstats.Stats(prof, stream=buf)
            stats.sort_stats("tottime").print_stats(profile_top)
            print(f"\n--- profile: {policy} (top {profile_top} by tottime) ---")
            print(buf.getvalue())
        else:
            t0 = time.perf_counter()
            result = sim.run()
            wall = time.perf_counter() - t0
        walls.append(round(wall, 4))
        events = sim.env.event_count
        measured = {
            "policy": policy,
            "requests": num_requests,
            "wall_s": round(wall, 4),
            "events": events,
            "events_per_s": round(events / wall, 1),
            "throughput_rps": round(result.throughput_rps, 2),
        }
        if best is None or measured["wall_s"] < best["wall_s"]:
            best = measured
    assert best is not None
    best["wall_s_runs"] = walls
    if len(walls) > 1:
        best["wall_s_spread"] = round((max(walls) - min(walls)) / min(walls), 4)
    return best


def run_bench(
    quick: bool = False,
    repeats: int = 1,
    profile_top: int = 0,
    policies: Optional[List[str]] = None,
) -> Dict[str, object]:
    """Run all canonical scenarios; return the BENCH_kernel.json payload."""
    from .des.core import DEFAULT_SCHEDULER

    num_requests = QUICK_REQUESTS if quick else FULL_REQUESTS
    scenarios = {}
    for policy in policies or CANONICAL_POLICIES:
        r = run_scenario(
            policy,
            num_requests=num_requests,
            repeats=repeats,
            profile_top=profile_top,
        )
        scenarios[policy] = r
        print(
            f"{policy:12s} {r['wall_s']:8.3f}s  {r['events']:>10,} events  "
            f"{r['events_per_s']:>12,.0f} ev/s  "
            f"{r['throughput_rps']:>12,.0f} req/s"
        )
    return {
        "meta": {
            "trace": CANONICAL_TRACE,
            "requests": num_requests,
            "nodes": CANONICAL_NODES,
            "passes": CANONICAL_PASSES,
            "quick": quick,
            "scheduler": os.environ.get("REPRO_DES_SCHEDULER", DEFAULT_SCHEDULER),
            "python": platform.python_version(),
            # Machine context: events/s comparisons across machines are
            # meaningless without it (the committed baseline pins CI).
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
            "machine": platform.machine(),
        },
        "scenarios": scenarios,
    }


def run_farm_series(
    workers: int = 4, requests: int = QUICK_REQUESTS
) -> Dict[str, object]:
    """Measure the farm's parallel speedup on the acceptance grid.

    Runs the 16-node x 3-policy x 2-trace x 4-seed sweep serially and
    with ``workers`` processes, checks the merged outputs byte-for-byte,
    and reports both wall times.  ``speedup`` is bounded by the machine:
    on a single-core container it hovers near (or below) 1.0 — which is
    why ``cpus`` is recorded next to it.
    """
    from .farm.runner import run_sweep
    from .farm.spec import SweepSpec

    spec = SweepSpec(
        traces=("calgary", "clarknet"),
        policies=CANONICAL_POLICIES,
        node_counts=(CANONICAL_NODES,),
        seeds=(0, 1, 2, 3),
        requests=requests,
        passes=CANONICAL_PASSES,
    )
    t0 = time.perf_counter()
    serial = run_sweep(spec, workers=1)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    farmed = run_sweep(spec, workers=workers)
    farm_s = time.perf_counter() - t0
    identical = serial.to_json() == farmed.to_json()
    print(
        f"farm series: {len(spec)} shards, serial {serial_s:.2f}s, "
        f"{workers} workers {farm_s:.2f}s "
        f"(speedup {serial_s / farm_s:.2f}x on {os.cpu_count()} cpu(s)), "
        f"merged {'identical' if identical else 'DIVERGED'}"
    )
    return {
        "workers": workers,
        "cpus": os.cpu_count(),
        "shards": len(spec),
        "requests": requests,
        "serial_s": round(serial_s, 3),
        "farm_s": round(farm_s, 3),
        "speedup": round(serial_s / farm_s, 3),
        "merged_identical": identical,
    }


def check_regression(
    payload: Dict[str, object],
    baseline_path: str,
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Compare ``payload`` against a committed baseline file.

    Returns human-readable failure strings (empty = pass).  Only
    ``events_per_s`` is rate-based and machine-dependent, so it gets the
    ``tolerance``; ``throughput_rps`` is simulated output and must match
    the baseline exactly when the request counts agree (a moved number
    means the kernel changed simulation behaviour, not just speed).
    """
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    failures: List[str] = []
    base_scenarios = baseline.get("scenarios", {})
    same_scale = baseline.get("meta", {}).get("requests") == payload["meta"][
        "requests"
    ]
    for policy, r in payload["scenarios"].items():
        b = base_scenarios.get(policy)
        if b is None:
            continue
        floor = b["events_per_s"] * (1.0 - tolerance)
        if r["events_per_s"] < floor:
            failures.append(
                f"{policy}: events/s {r['events_per_s']:,.0f} is more than "
                f"{tolerance:.0%} below the baseline "
                f"{b['events_per_s']:,.0f} (floor {floor:,.0f})"
            )
        if same_scale and r["throughput_rps"] != b["throughput_rps"]:
            failures.append(
                f"{policy}: simulated throughput moved "
                f"({b['throughput_rps']} -> {r['throughput_rps']} req/s); "
                "the kernel changed behaviour, not just speed"
            )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench", description="DES kernel performance harness"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help=f"small trace ({QUICK_REQUESTS} requests) for CI smoke runs",
    )
    parser.add_argument(
        "--repeats", type=int, default=1,
        help="run each scenario N times, keep the fastest (default 1)",
    )
    parser.add_argument(
        "--profile", type=int, nargs="?", const=15, default=0, metavar="N",
        help="cProfile each scenario, print top N functions by tottime",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the results as JSON (e.g. BENCH_kernel.json)",
    )
    parser.add_argument(
        "--check", default=None, metavar="FILE",
        help="compare against a baseline JSON; exit 1 on regression",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="allowed fractional events/s drop for --check (default 0.25)",
    )
    parser.add_argument(
        "--policies", default=None,
        help="comma-separated subset of " + ",".join(CANONICAL_POLICIES),
    )
    parser.add_argument(
        "--farm", type=int, nargs="?", const=4, default=0, metavar="N",
        help="also measure the `repro farm` parallel speedup with N "
        "workers (default 4) and record it under the 'farm' key",
    )
    args = parser.parse_args(argv)

    policies = (
        [p.strip() for p in args.policies.split(",") if p.strip()]
        if args.policies
        else None
    )
    payload = run_bench(
        quick=args.quick,
        repeats=args.repeats,
        profile_top=args.profile,
        policies=policies,
    )
    if args.farm:
        payload["farm"] = run_farm_series(workers=args.farm)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    if args.check:
        failures = check_regression(payload, args.check, args.tolerance)
        if failures:
            for f in failures:
                print(f"FAIL: {f}", file=sys.stderr)
            return 1
        print(f"ok: within {args.tolerance:.0%} of {args.check}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
