"""Cluster hardware configuration for the simulator.

The simulator shares its service-time formulas with the analytic model
(:class:`repro.model.ModelParameters`) so that both describe the same
hardware, and adds the communication details the paper simulates
"faithfully" (Section 5.1): M-VIA message costs of 3 microseconds CPU per
side, 6 microseconds NI per side for a 4-byte message, a 1 microsecond
switch latency, and a 1 Gbit/s network.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional, Tuple

from ..model.parameters import MB, ModelParameters
from ..netfaults.model import NetFaultConfig

__all__ = ["ClusterConfig"]


@dataclass(frozen=True)
class ClusterConfig:
    """Hardware and methodology knobs for one simulated cluster."""

    #: Number of nodes.
    nodes: int = 16
    #: Main-memory file cache per node, in bytes.  The paper's simulations
    #: use 32 MB nodes (vs the model's 128 MB default) so that the traces'
    #: working sets are significant relative to the cache.
    cache_bytes: int = 32 * MB
    #: Service-time formulas (Table 1).  ``nodes``/``cache_bytes`` above
    #: take precedence over the copies inside this object.
    hardware: ModelParameters = field(default_factory=ModelParameters)
    #: CPU overhead per message send or receive (seconds).  M-VIA: 19 us
    #: one-way for 4 bytes = 3 us CPU + 6 us NI per side + 1 us switch.
    cpu_msg_overhead_s: float = 3e-6
    #: Switch fabric latency (seconds); pure delay, no contention
    #: (the paper does not model contention inside the fast switch).
    switch_latency_s: float = 1e-6
    #: Size of a 4-byte-payload control message on the wire, in KB.
    control_kb: float = 0.004
    #: NI occupancy overhead per *control* message, per side (seconds).
    #: M-VIA spends 6 us at each NI for a 4-byte message (19 us one-way
    #: total); bulk transfers use Table 1's 3 us mu_o overhead instead.
    ni_control_overhead_s: float = 6e-6
    #: In-flight client connections per node maintained by the closed-loop
    #: injector (saturation mode: "schedule new requests as soon as the
    #: router and network interface buffers would accept them").  Must sit
    #: below L2S's overload threshold T=20 on average or every node looks
    #: permanently overloaded and replication explodes; 12 saturates the
    #: bottleneck resources while leaving threshold headroom (throughput
    #: rises mildly with deeper buffers as long as the T/MPL ratio holds —
    #: see the MPL ablation benchmark).
    multiprogramming_per_node: int = 16
    #: Per-node CPU speed multipliers (1.0 = the Table-1 baseline).  The
    #: paper assumes "all cluster nodes are equally powerful"; setting
    #: this relaxes that for the heterogeneity extension — a 0.5 node's
    #: CPU work takes twice as long.  None means homogeneous.
    node_speeds: Optional[Tuple[float, ...]] = None
    #: If True every node's disk holds a full replica of the content and
    #: misses are served from the local disk (the model's assumption).  If
    #: False, content is hash-partitioned across disks and remote misses
    #: pay an extra fetch message pair (DFS ablation).
    replicated_disks: bool = True
    #: Cache replacement policy per node: "lru" (the paper's), "gds"
    #: (GreedyDual-Size) or "lfu" — see :mod:`repro.cluster.policies`.
    cache_policy: str = "lru"
    #: The paper simulates all contention "except for the contention
    #: within the network fabric itself".  Setting this True adds an
    #: output-queued switch model (one FIFO port per destination node,
    #: occupied for the transfer time) so the simplification can be
    #: quantified (see the switch ablation benchmark).
    model_switch_contention: bool = False
    #: Unreliable-interconnect description (loss, duplication, delay,
    #: link/partition schedules, retry protocol) — see
    #: :mod:`repro.netfaults`.  None, or an inert config, leaves the
    #: fabric perfect and the legacy code paths untouched.
    net_faults: Optional[NetFaultConfig] = None
    #: Per-node admission threshold: a node whose open-connection count
    #: has reached this sheds new requests (the client backs off and
    #: retries).  None disables shedding.
    admission_threshold: Optional[int] = None

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")
        if self.cache_bytes <= 0:
            raise ValueError("cache_bytes must be positive")
        if self.cpu_msg_overhead_s < 0 or self.switch_latency_s < 0:
            raise ValueError("overheads must be non-negative")
        if self.multiprogramming_per_node < 1:
            raise ValueError("multiprogramming_per_node must be >= 1")
        if self.control_kb <= 0:
            raise ValueError("control_kb must be positive")
        if self.cache_policy.lower() not in ("lru", "gds", "lfu"):
            raise ValueError(f"unknown cache policy {self.cache_policy!r}")
        if self.admission_threshold is not None and self.admission_threshold < 1:
            raise ValueError("admission_threshold must be >= 1 when set")
        if self.net_faults is not None and not isinstance(self.net_faults, NetFaultConfig):
            raise TypeError("net_faults must be a NetFaultConfig (or None)")
        if self.node_speeds is not None:
            if len(self.node_speeds) != self.nodes:
                raise ValueError(
                    f"node_speeds has {len(self.node_speeds)} entries for "
                    f"{self.nodes} nodes"
                )
            if any(s <= 0 for s in self.node_speeds):
                raise ValueError("node speeds must be positive")

    def speed_of(self, node_id: int) -> float:
        """CPU speed multiplier of one node (1.0 when homogeneous)."""
        if self.node_speeds is None:
            return 1.0
        return self.node_speeds[node_id]

    def with_(self, **changes: Any) -> "ClusterConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    # -- derived timings -----------------------------------------------------

    def ni_control_time(self) -> float:
        """NI occupancy (s) for a small control message, per side."""
        return self.ni_control_overhead_s + self.control_kb / self.hardware.ni_kb_per_s

    def one_way_message_latency(self) -> float:
        """End-to-end latency of an uncontended 4-byte message.

        Should come to ~19 microseconds, matching the M-VIA measurement
        the paper quotes: 3+3 us CPU, 6+6 us NI, 1 us switch.
        """
        return (
            2 * self.cpu_msg_overhead_s
            + 2 * self.ni_control_time()
            + self.switch_latency_s
        )

    def model_parameters(self, replication: float = 0.0, alpha: float = 1.0) -> ModelParameters:
        """Model parameters describing this cluster (for bound comparison)."""
        return self.hardware.with_(
            nodes=self.nodes,
            cache_bytes=self.cache_bytes,
            replication=replication,
            alpha=alpha,
        )
