"""Cluster assembly: nodes + interconnect + DFS as one object."""

from __future__ import annotations

from typing import Generator, List

from ..des import Environment
from .config import ClusterConfig
from .dfs import DistributedFS
from .network import Interconnect
from .node import Node

__all__ = ["Cluster"]


class Cluster:
    """An N-node cluster wired to a router (Figure 1)."""

    def __init__(self, env: Environment, config: ClusterConfig):
        self.env = env
        self.config = config
        self.nodes: List[Node] = [
            Node(env, i, config) for i in range(config.nodes)
        ]
        self.net = Interconnect(env, config, self.nodes)
        self.dfs = DistributedFS(env, config, self.nodes, self.net)
        #: :class:`~repro.overload.OverloadControl` for this run, or
        #: ``None``.  Set by the driver; the lifecycles consult its
        #: breaker board at service entry.
        self.overload = None
        #: Zero-arg callback fired on every node-level shed (the driver
        #: points this at the availability timeline's ``record_shed``).
        self.shed_listener = None

    def __len__(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def fetch_file(self, node_id: int, file_id: int, size_bytes: int) -> Generator:
        """Bring a file into node ``node_id``'s cache (hit: free).

        The caching unit is the whole file; on a miss the DFS read path is
        charged and the file inserted with LRU replacement.
        """
        node = self.nodes[node_id]
        if not node.cache.lookup(file_id):
            yield from self.dfs.read(node_id, file_id, size_bytes)
            node.cache.insert(file_id, size_bytes)

    def note_shed(self, node: Node) -> None:
        """Count one admission/breaker shed at ``node`` and notify the
        timeline listener, if any."""
        node.shed += 1
        if self.shed_listener is not None:
            self.shed_listener()

    def least_loaded_node(self) -> int:
        """Node id with the fewest open connections (ties: lowest id)."""
        return min(range(len(self.nodes)), key=lambda i: (self.nodes[i].open_connections, i))

    def connection_counts(self) -> List[int]:
        return [n.open_connections for n in self.nodes]

    def total_cache_hits(self) -> int:
        return sum(n.cache.hits for n in self.nodes)

    def total_cache_misses(self) -> int:
        return sum(n.cache.misses for n in self.nodes)

    def overall_miss_rate(self) -> float:
        hits, misses = self.total_cache_hits(), self.total_cache_misses()
        total = hits + misses
        return misses / total if total else 0.0

    def reset_accounting(self) -> None:
        """Discard warmup statistics everywhere (cache contents survive)."""
        for node in self.nodes:
            node.reset_accounting()
        self.net.reset_accounting()
        self.dfs.reset_accounting()
