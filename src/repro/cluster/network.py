"""Cluster interconnect: router to the Internet, switch, VIA messaging.

The router (the cluster's bridge to the Internet) is a single FIFO queue
whose occupancy is ``size / 500000 KB/s`` per transfer (Table 1's mu_r).
The switched network between nodes adds a fixed 1 microsecond latency and
is otherwise contention-free ("we are simulating a very fast switched
network"); contention appears at the NIs and CPUs instead.

:meth:`Interconnect.send_message` models a user-level (M-VIA) message:
3 us CPU at the sender, NI-out occupancy, switch latency, NI-in occupancy
at the receiver, and 3 us CPU at the receiver — 19 us end to end for a
4-byte payload, matching the measurement the paper quotes.

Delivery is not guaranteed.  Two things can kill a message in flight:

* the receiver crashes (or crashes and recovers — a new incarnation must
  not see the old incarnation's bytes), checked at every receiver-side
  stage boundary; and
* an active :class:`~repro.netfaults.layer.NetFaultLayer`
  (``config.net_faults``) drops, delays, duplicates, or partitions it at
  the switch.

Both delivery paths therefore report an outcome: the generator form
returns True/False, the callback form fires ``done`` on delivery or
``on_drop`` on a drop.  Per-kind sent/delivered/dropped/duplicate
counters reconcile as ``sent == delivered + dropped + in_flight``.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional

from ..des import Environment, Resource
from ..des.core import URGENT
from .config import ClusterConfig
from .node import CPU_PROMPT, Node

__all__ = ["Interconnect"]


class _MessageChain:
    """Callback-chain delivery of one intra-cluster message.

    The allocation-free twin of :meth:`Interconnect.send_message`: the
    same charges in the same order (sender CPU, sender NI-out, switch,
    receiver NI-in, receiver CPU), driven by event callbacks and pooled
    holds instead of a generator process.  Fire-and-forget broadcasts and
    the request-lifecycle fast path use it; code that must *wait* inline
    inside a generator keeps the ``yield from`` form.
    """

    __slots__ = (
        "net",
        "env",
        "sender",
        "receiver",
        "size_kb",
        "ni_time",
        "kind",
        "done",
        "on_drop",
        "_req",
        "_rinc",
        "_extra_delay",
        "_dup",
        "_tok",
    )

    def __init__(
        self,
        net: "Interconnect",
        sender: Node,
        receiver: Node,
        size_kb: float,
        ni_time: float,
        kind: str,
        done: Optional[Callable[[], None]],
        on_drop: Optional[Callable[[], None]] = None,
        tok: Optional[int] = None,
    ):
        self.net = net
        self.env = net.env
        self.sender = sender
        self.receiver = receiver
        self.size_kb = size_kb
        self.ni_time = ni_time
        self.kind = kind
        self.done = done
        self.on_drop = on_drop
        self._req = None
        self._rinc = receiver.incarnation
        self._extra_delay = 0.0
        self._dup = False
        self._tok = tok
        # The urgent zero-delay kick stands in for the Initialize event
        # that used to start the equivalent message process, keeping
        # resource-queue arrival order bit-identical to the process path.
        self.env.call_later(0.0, self._start, priority=URGENT)

    def _start(self, _e) -> None:
        req = self._req = self.sender.cpu.request(CPU_PROMPT)
        req.callbacks.append(self._cpu_out_held)

    def _cpu_out_held(self, _e) -> None:
        self.env.call_later(
            self.net.config.cpu_msg_overhead_s / self.sender.speed,
            self._cpu_out_done,
        )

    def _cpu_out_done(self, _e) -> None:
        self.sender.cpu.free(self._req)
        req = self._req = self.sender.ni_out.request()
        req.callbacks.append(self._ni_out_held)

    def _ni_out_held(self, _e) -> None:
        self.env.call_later(self.ni_time, self._ni_out_done)

    def _ni_out_done(self, _e) -> None:
        self.sender.ni_out.free(self._req)
        net = self.net
        cfg = net.config
        nf = net.netfaults
        if nf is not None:
            cause, delay, dup = nf.judge(self.sender.id, self.receiver.id, self.kind)
            if cause is not None:
                self._drop(cause)
                return
            self._extra_delay = delay
            self._dup = dup
        if net.switch_ports is not None:
            # Output-queued fabric: the destination port serializes
            # transfers headed to the same node.
            req = self._req = net.switch_ports[self.receiver.id].request()
            req.callbacks.append(self._port_held)
        else:
            self.env.call_later(cfg.switch_latency_s + self._extra_delay, self._switched)

    def _port_held(self, _e) -> None:
        cfg = self.net.config
        self.env.call_later(
            cfg.switch_latency_s
            + self.size_kb / cfg.hardware.ni_kb_per_s
            + self._extra_delay,
            self._port_done,
        )

    def _port_done(self, _e) -> None:
        self.net.switch_ports[self.receiver.id].free(self._req)
        self._switched(_e)

    def _switched(self, _e) -> None:
        receiver = self.receiver
        if receiver.failed or receiver.incarnation != self._rinc:
            self._drop("crash")
            return
        req = self._req = receiver.ni_in.request()
        req.callbacks.append(self._ni_in_held)

    def _ni_in_held(self, _e) -> None:
        self.env.call_later(self.ni_time, self._ni_in_done)

    def _ni_in_done(self, _e) -> None:
        receiver = self.receiver
        receiver.ni_in.free(self._req)
        if receiver.failed or receiver.incarnation != self._rinc:
            self._drop("crash")
            return
        req = self._req = receiver.cpu.request(CPU_PROMPT)
        req.callbacks.append(self._cpu_in_held)

    def _cpu_in_held(self, _e) -> None:
        self.env.call_later(
            self.net.config.cpu_msg_overhead_s / self.receiver.speed,
            self._cpu_in_done,
        )

    def _cpu_in_done(self, _e) -> None:
        receiver = self.receiver
        receiver.cpu.free(self._req)
        self._req = None
        if receiver.failed or receiver.incarnation != self._rinc:
            self._drop("crash")
            return
        net = self.net
        net._record_delivered(self.kind, self._tok)
        self._tok = None
        if self._dup:
            # A duplicate copy arrives right behind the original: it
            # charges the receiver's NI and CPU again but carries no
            # effect (and no counters beyond the dup tally).
            net._record_dup(self.kind)
            _DupDelivery(net, receiver, self.ni_time)
        if self.done is not None:
            self.done()

    def _drop(self, cause: str) -> None:
        self._req = None
        self.net._record_dropped(self.kind, cause, self._tok)
        self._tok = None
        if self.on_drop is not None:
            self.on_drop()


class _DupDelivery:
    """Receiver-side charges of one duplicated message copy.

    Used by both delivery paths: the copy occupies the receiver's NI-in
    and CPU like the original but fires no completion and moves no
    counters (the dup tally was recorded when it was spawned).
    """

    __slots__ = ("net", "env", "receiver", "ni_time", "_req")

    def __init__(self, net: "Interconnect", receiver: Node, ni_time: float):
        self.net = net
        self.env = net.env
        self.receiver = receiver
        self.ni_time = ni_time
        self._req = None
        if not receiver.failed:
            req = self._req = receiver.ni_in.request()
            req.callbacks.append(self._ni_held)

    def _ni_held(self, _e) -> None:
        self.env.call_later(self.ni_time, self._ni_done)

    def _ni_done(self, _e) -> None:
        self.receiver.ni_in.free(self._req)
        req = self._req = self.receiver.cpu.request(CPU_PROMPT)
        req.callbacks.append(self._cpu_held)

    def _cpu_held(self, _e) -> None:
        self.env.call_later(
            self.net.config.cpu_msg_overhead_s / self.receiver.speed,
            self._cpu_done,
        )

    def _cpu_done(self, _e) -> None:
        self.receiver.cpu.free(self._req)
        self._req = None


class Interconnect:
    """Router plus switched intra-cluster network."""

    def __init__(self, env: Environment, config: ClusterConfig, nodes: List[Node]):
        self.env = env
        self.config = config
        self.nodes = nodes
        self.router = Resource(env, capacity=1, name="router")
        #: Count of intra-cluster messages sent (for overhead accounting).
        self.messages_sent = 0
        #: Message counts by kind: sent, delivered, dropped, duplicated.
        #: ``in_flight_counts`` is a level, not a meter: it survives
        #: :meth:`reset_accounting` so the reconciliation
        #: ``sent == delivered + dropped + in_flight-delta`` holds across
        #: the warmup boundary.
        self.message_counts: dict = {}
        self.delivered_counts: Dict[str, int] = {}
        self.dropped_counts: Dict[str, int] = {}
        self.drop_causes: Dict[str, int] = {}
        self.dup_counts: Dict[str, int] = {}
        self.in_flight_counts: Dict[str, int] = {}
        #: Output-queued switch ports (one per destination node), present
        #: only when the config asks for fabric contention.
        self.switch_ports: Optional[List[Resource]] = None
        if config.model_switch_contention:
            self.switch_ports = [
                Resource(env, capacity=1, name=f"swport{n.id}") for n in nodes
            ]
        #: Unreliable-fabric layer; None when ``config.net_faults`` is
        #: absent or inert, in which case the legacy perfect-delivery
        #: paths run unchanged (crash drops excepted).
        self.netfaults = None
        #: Ack/retry protocol engine; present only with an active layer.
        self.protocol = None
        if config.net_faults is not None and config.net_faults.active:
            from ..netfaults.layer import NetFaultLayer
            from ..netfaults.protocol import ReliableMessenger

            self.netfaults = NetFaultLayer(env, config.net_faults, len(nodes))
            self.protocol = ReliableMessenger(self, config.net_faults)

    # -- router (Internet side) ---------------------------------------------

    def route(self, size_kb: float) -> Generator:
        """Move ``size_kb`` through the router (requests in, replies out)."""
        with self.router.request() as req:
            yield req
            yield self.env.timeout(self.config.hardware.route_time(size_kb))

    # -- message accounting ---------------------------------------------------

    def _record_send(self, kind: str) -> Optional[int]:
        """Count one message at send time; returns a sanitizer token.

        Both delivery variants call this synchronously from the send call
        itself — *before* any event is scheduled — so the counters can
        never straddle a same-timestep :meth:`reset_accounting` differently
        between the generator and callback paths.
        """
        self.messages_sent += 1
        counts = self.message_counts
        counts[kind] = counts.get(kind, 0) + 1
        inflight = self.in_flight_counts
        inflight[kind] = inflight.get(kind, 0) + 1
        san = self.env._san
        if san is None:
            return None
        return san.op_begin("interconnect-message", kind)

    def _record_delivered(self, kind: str, tok: Optional[int]) -> None:
        counts = self.delivered_counts
        counts[kind] = counts.get(kind, 0) + 1
        self.in_flight_counts[kind] -= 1
        if tok is not None:
            self.env._san.op_end(tok)

    def _record_dropped(self, kind: str, cause: str, tok: Optional[int]) -> None:
        counts = self.dropped_counts
        counts[kind] = counts.get(kind, 0) + 1
        causes = self.drop_causes
        causes[cause] = causes.get(cause, 0) + 1
        self.in_flight_counts[kind] -= 1
        if tok is not None:
            self.env._san.op_end(tok)

    def _record_dup(self, kind: str) -> None:
        counts = self.dup_counts
        counts[kind] = counts.get(kind, 0) + 1

    # -- intra-cluster messaging ----------------------------------------------

    def send_message(
        self,
        src: int,
        dst: int,
        size_kb: float,
        kind: str = "msg",
        ni_time_s: Optional[float] = None,
    ) -> Generator:
        """Deliver one message from node ``src`` to node ``dst``.

        Yields until the message has been fully received (the receiver's
        CPU overhead included) or dropped; the generator's return value
        is True on delivery, False on a drop (receiver crash, fabric
        loss, downed link, partition).  Charges, in order: sender CPU
        overhead, sender NI-out, switch latency, receiver NI-in, receiver
        CPU overhead; a dropped message still costs the sender side.
        ``ni_time_s`` overrides the per-side NI occupancy (used for
        control messages).  A zero-latency shortcut applies when
        src == dst (a local "message" never touches the network and is
        not counted).

        Validation and the send counters run eagerly at call time, not at
        first advance, matching :meth:`send_message_cb`.
        """
        if not (0 <= src < len(self.nodes) and 0 <= dst < len(self.nodes)):
            raise ValueError(f"message endpoints out of range: {src} -> {dst}")
        if size_kb <= 0:
            raise ValueError(f"size_kb must be positive, got {size_kb}")
        if src == dst:
            return self._local_delivery()
        tok = self._record_send(kind)
        ni_time = ni_time_s if ni_time_s is not None else self.config.hardware.ni_message_time(size_kb)
        return self._deliver(self.nodes[src], self.nodes[dst], size_kb, ni_time, kind, tok)

    def _local_delivery(self) -> Generator:
        """The src == dst shortcut: instant, uncounted, always delivered."""
        return True
        yield  # pragma: no cover - makes this a generator function

    def _deliver(
        self,
        sender: Node,
        receiver: Node,
        size_kb: float,
        ni_time: float,
        kind: str,
        tok: Optional[int],
    ) -> Generator:
        cfg = self.config
        rinc = receiver.incarnation
        yield from sender.use_cpu(cfg.cpu_msg_overhead_s)
        yield from sender.use_ni_out(ni_time)
        extra = 0.0
        dup = False
        nf = self.netfaults
        if nf is not None:
            cause, extra, dup = nf.judge(sender.id, receiver.id, kind)
            if cause is not None:
                self._record_dropped(kind, cause, tok)
                return False
        if self.switch_ports is not None:
            # Output-queued fabric: the destination port serializes
            # transfers headed to the same node.
            with self.switch_ports[receiver.id].request() as port:
                yield port
                yield self.env.timeout(
                    cfg.switch_latency_s + size_kb / cfg.hardware.ni_kb_per_s + extra
                )
        else:
            yield self.env.timeout(cfg.switch_latency_s + extra)
        if receiver.failed or receiver.incarnation != rinc:
            self._record_dropped(kind, "crash", tok)
            return False
        yield from receiver.use_ni_in(ni_time)
        if receiver.failed or receiver.incarnation != rinc:
            self._record_dropped(kind, "crash", tok)
            return False
        yield from receiver.use_cpu(cfg.cpu_msg_overhead_s)
        if receiver.failed or receiver.incarnation != rinc:
            self._record_dropped(kind, "crash", tok)
            return False
        self._record_delivered(kind, tok)
        if dup:
            self._record_dup(kind)
            _DupDelivery(self, receiver, ni_time)
        return True

    def send_message_cb(
        self,
        src: int,
        dst: int,
        size_kb: float,
        kind: str = "msg",
        ni_time_s: Optional[float] = None,
        done: Optional[Callable[[], None]] = None,
        on_drop: Optional[Callable[[], None]] = None,
    ) -> None:
        """Deliver one message via the callback-chain fast path.

        Same charges and ordering as :meth:`send_message`, but driven by
        event callbacks (no generator, no process): the per-message cost
        drops from a process plus ~16 scheduled events to ~9 pooled ones.
        ``done()`` fires when the receiver's CPU overhead completes;
        ``on_drop()`` fires instead if the message is dropped (receiver
        crash or fabric fault).  With ``src == dst`` the uncounted
        zero-latency shortcut applies and ``done`` fires after the urgent
        kick.

        The chain does not start synchronously: an urgent zero-delay
        event stands in for the Initialize event that used to start the
        equivalent message process, so resource-queue arrival order is
        bit-identical to the process-based path.  The send *counters*,
        however, move synchronously here, exactly as in
        :meth:`send_message`.
        """
        if not (0 <= src < len(self.nodes) and 0 <= dst < len(self.nodes)):
            raise ValueError(f"message endpoints out of range: {src} -> {dst}")
        if size_kb <= 0:
            raise ValueError(f"size_kb must be positive, got {size_kb}")
        if src == dst:
            if done is not None:
                self.env.call_later(0.0, lambda _e: done(), priority=URGENT)
            return
        tok = self._record_send(kind)
        ni_time = (
            ni_time_s
            if ni_time_s is not None
            else self.config.hardware.ni_message_time(size_kb)
        )
        _MessageChain(
            self,
            self.nodes[src],
            self.nodes[dst],
            size_kb,
            ni_time,
            kind,
            done,
            on_drop,
            tok,
        )

    def send_control(self, src: int, dst: int, kind: str = "control") -> Generator:
        """A small (4-byte payload) control message: 19 us one-way.

        Returns True on delivery, False on a drop, like
        :meth:`send_message`.
        """
        return (
            yield from self.send_message(
                src, dst, self.config.control_kb, kind, ni_time_s=self.config.ni_control_time()
            )
        )

    def send_control_cb(
        self,
        src: int,
        dst: int,
        kind: str = "control",
        done: Optional[Callable[[], None]] = None,
        on_drop: Optional[Callable[[], None]] = None,
    ) -> None:
        """Callback-chain twin of :meth:`send_control`."""
        self.send_message_cb(
            src,
            dst,
            self.config.control_kb,
            kind,
            ni_time_s=self.config.ni_control_time(),
            done=done,
            on_drop=on_drop,
        )

    def broadcast_control(
        self,
        src: int,
        kind: str = "broadcast",
        exclude: Optional[int] = None,
    ) -> None:
        """Fire-and-forget control messages from ``src`` to all other nodes.

        The paper implements broadcast as multiple point-to-point M-VIA
        messages; each rides the callback-chain fast path so the sender
        does not block on delivery (and no per-message process is spawned).
        """
        for node in self.nodes:
            if node.id == src or node.id == exclude:
                continue
            self.send_control_cb(src, node.id, kind)

    def in_flight_total(self) -> int:
        """Messages sent but not yet delivered or dropped."""
        return sum(self.in_flight_counts.values())

    def reset_accounting(self) -> None:
        self.router.reset_accounting()
        self.messages_sent = 0
        self.message_counts.clear()
        self.delivered_counts.clear()
        self.dropped_counts.clear()
        self.drop_causes.clear()
        self.dup_counts.clear()
        # in_flight_counts is intentionally NOT cleared: it tracks live
        # messages, and clearing it mid-flight would corrupt the
        # sent/delivered/dropped reconciliation.
        if self.protocol is not None:
            self.protocol.reset_accounting()
