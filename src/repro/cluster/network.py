"""Cluster interconnect: router to the Internet, switch, VIA messaging.

The router (the cluster's bridge to the Internet) is a single FIFO queue
whose occupancy is ``size / 500000 KB/s`` per transfer (Table 1's mu_r).
The switched network between nodes adds a fixed 1 microsecond latency and
is otherwise contention-free ("we are simulating a very fast switched
network"); contention appears at the NIs and CPUs instead.

:meth:`Interconnect.send_message` models a user-level (M-VIA) message:
3 us CPU at the sender, NI-out occupancy, switch latency, NI-in occupancy
at the receiver, and 3 us CPU at the receiver — 19 us end to end for a
4-byte payload, matching the measurement the paper quotes.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from ..des import Environment, Resource
from .config import ClusterConfig
from .node import Node

__all__ = ["Interconnect"]


class Interconnect:
    """Router plus switched intra-cluster network."""

    def __init__(self, env: Environment, config: ClusterConfig, nodes: List[Node]):
        self.env = env
        self.config = config
        self.nodes = nodes
        self.router = Resource(env, capacity=1, name="router")
        #: Count of intra-cluster messages sent (for overhead accounting).
        self.messages_sent = 0
        #: Total control-message payload count by kind, for reporting.
        self.message_counts: dict = {}
        #: Output-queued switch ports (one per destination node), present
        #: only when the config asks for fabric contention.
        self.switch_ports: Optional[List[Resource]] = None
        if config.model_switch_contention:
            self.switch_ports = [
                Resource(env, capacity=1, name=f"swport{n.id}") for n in nodes
            ]

    # -- router (Internet side) ---------------------------------------------

    def route(self, size_kb: float) -> Generator:
        """Move ``size_kb`` through the router (requests in, replies out)."""
        with self.router.request() as req:
            yield req
            yield self.env.timeout(self.config.hardware.route_time(size_kb))

    # -- intra-cluster messaging ----------------------------------------------

    def send_message(
        self,
        src: int,
        dst: int,
        size_kb: float,
        kind: str = "msg",
        ni_time_s: Optional[float] = None,
    ) -> Generator:
        """Deliver one message from node ``src`` to node ``dst``.

        Yields until the message has been fully received (the receiver's
        CPU overhead included).  Charges, in order: sender CPU overhead,
        sender NI-out, switch latency, receiver NI-in, receiver CPU
        overhead.  ``ni_time_s`` overrides the per-side NI occupancy
        (used for control messages).  A zero-latency shortcut applies
        when src == dst.
        """
        if not (0 <= src < len(self.nodes) and 0 <= dst < len(self.nodes)):
            raise ValueError(f"message endpoints out of range: {src} -> {dst}")
        if size_kb <= 0:
            raise ValueError(f"size_kb must be positive, got {size_kb}")
        if src == dst:
            return
        self.messages_sent += 1
        self.message_counts[kind] = self.message_counts.get(kind, 0) + 1
        cfg = self.config
        ni_time = ni_time_s if ni_time_s is not None else cfg.hardware.ni_message_time(size_kb)
        sender, receiver = self.nodes[src], self.nodes[dst]
        yield from sender.use_cpu(cfg.cpu_msg_overhead_s)
        yield from sender.use_ni_out(ni_time)
        if self.switch_ports is not None:
            # Output-queued fabric: the destination port serializes
            # transfers headed to the same node.
            with self.switch_ports[dst].request() as port:
                yield port
                yield self.env.timeout(
                    cfg.switch_latency_s + size_kb / cfg.hardware.ni_kb_per_s
                )
        else:
            yield self.env.timeout(cfg.switch_latency_s)
        yield from receiver.use_ni_in(ni_time)
        yield from receiver.use_cpu(cfg.cpu_msg_overhead_s)

    def send_control(self, src: int, dst: int, kind: str = "control") -> Generator:
        """A small (4-byte payload) control message: 19 us one-way."""
        yield from self.send_message(
            src, dst, self.config.control_kb, kind, ni_time_s=self.config.ni_control_time()
        )

    def broadcast_control(
        self,
        src: int,
        kind: str = "broadcast",
        exclude: Optional[int] = None,
    ) -> None:
        """Fire-and-forget control messages from ``src`` to all other nodes.

        The paper implements broadcast as multiple point-to-point M-VIA
        messages; each is spawned as an independent process so the sender
        does not block on delivery.
        """
        for node in self.nodes:
            if node.id == src or node.id == exclude:
                continue
            self.env.process(
                self.send_control(src, node.id, kind), name=f"{kind}:{src}->{node.id}"
            )

    def reset_accounting(self) -> None:
        self.router.reset_accounting()
        self.messages_sent = 0
        self.message_counts.clear()
