"""Cluster interconnect: router to the Internet, switch, VIA messaging.

The router (the cluster's bridge to the Internet) is a single FIFO queue
whose occupancy is ``size / 500000 KB/s`` per transfer (Table 1's mu_r).
The switched network between nodes adds a fixed 1 microsecond latency and
is otherwise contention-free ("we are simulating a very fast switched
network"); contention appears at the NIs and CPUs instead.

:meth:`Interconnect.send_message` models a user-level (M-VIA) message:
3 us CPU at the sender, NI-out occupancy, switch latency, NI-in occupancy
at the receiver, and 3 us CPU at the receiver — 19 us end to end for a
4-byte payload, matching the measurement the paper quotes.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional

from ..des import Environment, Resource
from ..des.core import URGENT
from .config import ClusterConfig
from .node import CPU_PROMPT, Node

__all__ = ["Interconnect"]


class _MessageChain:
    """Callback-chain delivery of one intra-cluster message.

    The allocation-free twin of :meth:`Interconnect.send_message`: the
    same charges in the same order (sender CPU, sender NI-out, switch,
    receiver NI-in, receiver CPU), driven by event callbacks and pooled
    holds instead of a generator process.  Fire-and-forget broadcasts and
    the request-lifecycle fast path use it; code that must *wait* inline
    inside a generator keeps the ``yield from`` form.
    """

    __slots__ = (
        "net",
        "env",
        "sender",
        "receiver",
        "size_kb",
        "ni_time",
        "kind",
        "done",
        "_req",
    )

    def __init__(
        self,
        net: "Interconnect",
        sender: Node,
        receiver: Node,
        size_kb: float,
        ni_time: float,
        kind: str,
        done: Optional[Callable[[], None]],
    ):
        self.net = net
        self.env = net.env
        self.sender = sender
        self.receiver = receiver
        self.size_kb = size_kb
        self.ni_time = ni_time
        self.kind = kind
        self.done = done
        self._req = None
        # The urgent zero-delay kick stands in for the Initialize event
        # that used to start the equivalent message process, keeping
        # resource-queue arrival order (and counter timing) bit-identical
        # to the process-based path.
        self.env.call_later(0.0, self._start, priority=URGENT)

    def _start(self, _e) -> None:
        net = self.net
        net.messages_sent += 1
        counts = net.message_counts
        counts[self.kind] = counts.get(self.kind, 0) + 1
        req = self._req = self.sender.cpu.request(CPU_PROMPT)
        req.callbacks.append(self._cpu_out_held)

    def _cpu_out_held(self, _e) -> None:
        self.env.call_later(
            self.net.config.cpu_msg_overhead_s / self.sender.speed,
            self._cpu_out_done,
        )

    def _cpu_out_done(self, _e) -> None:
        self.sender.cpu.free(self._req)
        req = self._req = self.sender.ni_out.request()
        req.callbacks.append(self._ni_out_held)

    def _ni_out_held(self, _e) -> None:
        self.env.call_later(self.ni_time, self._ni_out_done)

    def _ni_out_done(self, _e) -> None:
        self.sender.ni_out.free(self._req)
        net = self.net
        cfg = net.config
        if net.switch_ports is not None:
            # Output-queued fabric: the destination port serializes
            # transfers headed to the same node.
            req = self._req = net.switch_ports[self.receiver.id].request()
            req.callbacks.append(self._port_held)
        else:
            self.env.call_later(cfg.switch_latency_s, self._switched)

    def _port_held(self, _e) -> None:
        cfg = self.net.config
        self.env.call_later(
            cfg.switch_latency_s + self.size_kb / cfg.hardware.ni_kb_per_s,
            self._port_done,
        )

    def _port_done(self, _e) -> None:
        self.net.switch_ports[self.receiver.id].free(self._req)
        self._switched(_e)

    def _switched(self, _e) -> None:
        req = self._req = self.receiver.ni_in.request()
        req.callbacks.append(self._ni_in_held)

    def _ni_in_held(self, _e) -> None:
        self.env.call_later(self.ni_time, self._ni_in_done)

    def _ni_in_done(self, _e) -> None:
        self.receiver.ni_in.free(self._req)
        req = self._req = self.receiver.cpu.request(CPU_PROMPT)
        req.callbacks.append(self._cpu_in_held)

    def _cpu_in_held(self, _e) -> None:
        self.env.call_later(
            self.net.config.cpu_msg_overhead_s / self.receiver.speed,
            self._cpu_in_done,
        )

    def _cpu_in_done(self, _e) -> None:
        self.receiver.cpu.free(self._req)
        self._req = None
        if self.done is not None:
            self.done()


class Interconnect:
    """Router plus switched intra-cluster network."""

    def __init__(self, env: Environment, config: ClusterConfig, nodes: List[Node]):
        self.env = env
        self.config = config
        self.nodes = nodes
        self.router = Resource(env, capacity=1, name="router")
        #: Count of intra-cluster messages sent (for overhead accounting).
        self.messages_sent = 0
        #: Total control-message payload count by kind, for reporting.
        self.message_counts: dict = {}
        #: Output-queued switch ports (one per destination node), present
        #: only when the config asks for fabric contention.
        self.switch_ports: Optional[List[Resource]] = None
        if config.model_switch_contention:
            self.switch_ports = [
                Resource(env, capacity=1, name=f"swport{n.id}") for n in nodes
            ]

    # -- router (Internet side) ---------------------------------------------

    def route(self, size_kb: float) -> Generator:
        """Move ``size_kb`` through the router (requests in, replies out)."""
        with self.router.request() as req:
            yield req
            yield self.env.timeout(self.config.hardware.route_time(size_kb))

    # -- intra-cluster messaging ----------------------------------------------

    def send_message(
        self,
        src: int,
        dst: int,
        size_kb: float,
        kind: str = "msg",
        ni_time_s: Optional[float] = None,
    ) -> Generator:
        """Deliver one message from node ``src`` to node ``dst``.

        Yields until the message has been fully received (the receiver's
        CPU overhead included).  Charges, in order: sender CPU overhead,
        sender NI-out, switch latency, receiver NI-in, receiver CPU
        overhead.  ``ni_time_s`` overrides the per-side NI occupancy
        (used for control messages).  A zero-latency shortcut applies
        when src == dst.
        """
        if not (0 <= src < len(self.nodes) and 0 <= dst < len(self.nodes)):
            raise ValueError(f"message endpoints out of range: {src} -> {dst}")
        if size_kb <= 0:
            raise ValueError(f"size_kb must be positive, got {size_kb}")
        if src == dst:
            return
        self.messages_sent += 1
        self.message_counts[kind] = self.message_counts.get(kind, 0) + 1
        cfg = self.config
        ni_time = ni_time_s if ni_time_s is not None else cfg.hardware.ni_message_time(size_kb)
        sender, receiver = self.nodes[src], self.nodes[dst]
        yield from sender.use_cpu(cfg.cpu_msg_overhead_s)
        yield from sender.use_ni_out(ni_time)
        if self.switch_ports is not None:
            # Output-queued fabric: the destination port serializes
            # transfers headed to the same node.
            with self.switch_ports[dst].request() as port:
                yield port
                yield self.env.timeout(
                    cfg.switch_latency_s + size_kb / cfg.hardware.ni_kb_per_s
                )
        else:
            yield self.env.timeout(cfg.switch_latency_s)
        yield from receiver.use_ni_in(ni_time)
        yield from receiver.use_cpu(cfg.cpu_msg_overhead_s)

    def send_message_cb(
        self,
        src: int,
        dst: int,
        size_kb: float,
        kind: str = "msg",
        ni_time_s: Optional[float] = None,
        done: Optional[Callable[[], None]] = None,
    ) -> None:
        """Deliver one message via the callback-chain fast path.

        Same charges and ordering as :meth:`send_message`, but driven by
        event callbacks (no generator, no process): the per-message cost
        drops from a process plus ~16 scheduled events to ~9 pooled ones.
        ``done()`` fires when the receiver's CPU overhead completes; with
        ``src == dst`` it fires after the urgent kick (the zero-latency
        shortcut).

        The chain does not start synchronously: an urgent zero-delay
        event stands in for the Initialize event that used to start the
        equivalent message process, so resource-queue arrival order (and
        counter timing) is bit-identical to the process-based path.
        """
        if not (0 <= src < len(self.nodes) and 0 <= dst < len(self.nodes)):
            raise ValueError(f"message endpoints out of range: {src} -> {dst}")
        if size_kb <= 0:
            raise ValueError(f"size_kb must be positive, got {size_kb}")
        if src == dst:
            if done is not None:
                self.env.call_later(0.0, lambda _e: done(), priority=URGENT)
            return
        ni_time = (
            ni_time_s
            if ni_time_s is not None
            else self.config.hardware.ni_message_time(size_kb)
        )
        _MessageChain(
            self, self.nodes[src], self.nodes[dst], size_kb, ni_time, kind, done
        )

    def send_control(self, src: int, dst: int, kind: str = "control") -> Generator:
        """A small (4-byte payload) control message: 19 us one-way."""
        yield from self.send_message(
            src, dst, self.config.control_kb, kind, ni_time_s=self.config.ni_control_time()
        )

    def send_control_cb(
        self,
        src: int,
        dst: int,
        kind: str = "control",
        done: Optional[Callable[[], None]] = None,
    ) -> None:
        """Callback-chain twin of :meth:`send_control`."""
        self.send_message_cb(
            src,
            dst,
            self.config.control_kb,
            kind,
            ni_time_s=self.config.ni_control_time(),
            done=done,
        )

    def broadcast_control(
        self,
        src: int,
        kind: str = "broadcast",
        exclude: Optional[int] = None,
    ) -> None:
        """Fire-and-forget control messages from ``src`` to all other nodes.

        The paper implements broadcast as multiple point-to-point M-VIA
        messages; each rides the callback-chain fast path so the sender
        does not block on delivery (and no per-message process is spawned).
        """
        for node in self.nodes:
            if node.id == src or node.id == exclude:
                continue
            self.send_control_cb(src, node.id, kind)

    def reset_accounting(self) -> None:
        self.router.reset_accounting()
        self.messages_sent = 0
        self.message_counts.clear()
