"""``repro.cluster`` — the simulated hardware substrate.

Workstation nodes (CPU, duplex NI, disk, LRU file cache), the router that
bridges the cluster to the Internet, the switched intra-cluster network
with M-VIA-style message costs, and the distributed file system read
path.  Server policies (:mod:`repro.servers`) and the request lifecycle
(:mod:`repro.sim`) are built on top of these components.
"""

from .cache import LRUFileCache
from .cluster import Cluster
from .policies import CACHE_POLICIES, GDSFileCache, LFUFileCache, make_cache
from .config import ClusterConfig
from .dfs import DistributedFS
from .network import Interconnect
from .node import Node

__all__ = [
    "ClusterConfig",
    "LRUFileCache",
    "GDSFileCache",
    "LFUFileCache",
    "make_cache",
    "CACHE_POLICIES",
    "Node",
    "Interconnect",
    "DistributedFS",
    "Cluster",
]
