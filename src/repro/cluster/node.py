"""A cluster node: CPU, duplex network interface, disk, and file cache.

Each hardware component is a FIFO :class:`repro.des.Resource`, so all the
contention the paper simulates "faithfully" (CPU, NI, disk) emerges from
queueing.  Convenience generators (``use_cpu``, ``read_from_disk``, ...)
encapsulate the acquire/hold/release pattern.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from ..des import Environment, PriorityResource, Resource, TimeWeightedValue
from .cache import LRUFileCache
from .config import ClusterConfig

__all__ = ["Node", "CPU_PROMPT", "CPU_BULK"]

#: CPU priority for short control work: request parsing, forwarding,
#: message overheads.  Event-driven servers (Flash, on which the paper's
#: mu_p is based) accept and parse new requests promptly instead of
#: queueing them behind multi-millisecond reply transmissions.
CPU_PROMPT = 0
#: CPU priority for bulk reply work (1/mu_m).
CPU_BULK = 1


class Node:
    """One workstation of the cluster (Figure 1)."""

    def __init__(self, env: Environment, node_id: int, config: ClusterConfig):
        self.env = env
        self.id = node_id
        self.config = config
        hw = config.hardware
        self.cpu = PriorityResource(env, capacity=1, name=f"cpu{node_id}")
        self.ni_in = Resource(env, capacity=1, name=f"ni_in{node_id}")
        self.ni_out = Resource(env, capacity=1, name=f"ni_out{node_id}")
        self.disk = Resource(env, capacity=1, name=f"disk{node_id}")
        from .policies import make_cache

        self.cache = make_cache(config.cache_policy, config.cache_bytes)
        #: Open client connections currently assigned to this node — the
        #: load metric every policy in the paper uses.
        self.connections = TimeWeightedValue(env, 0)
        #: Completed requests (for completion-batch notifications).
        self.completed = 0
        #: Requests this node forwarded elsewhere.
        self.forwarded = 0
        #: Requests rejected by admission control (connection queue over
        #: ``config.admission_threshold``); the client backs off and
        #: retries, so a shed is load shedding, not a crash.
        self.shed = 0
        #: True once the node has crashed (failure-injection runs).  The
        #: request lifecycle checks this at stage boundaries and aborts.
        self.failed = False
        #: Incarnation number: bumped on every crash so requests started
        #: against a previous incarnation abort even if the node has since
        #: recovered (their connection died with the old incarnation).
        self.incarnation = 0
        #: Crash / recovery counters (availability reporting).
        self.crashes = 0
        self.recoveries = 0
        #: CPU speed multiplier (heterogeneity extension): CPU work takes
        #: ``seconds / speed``.
        self.speed = config.speed_of(node_id)
        #: Configured speed; ``slow`` fault events scale relative to this
        #: and recovery restores it.
        self.base_speed = self.speed
        self._hw = hw

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.id} conn={self.open_connections}>"

    # -- load --------------------------------------------------------------

    @property
    def open_connections(self) -> int:
        return int(self.connections.value)

    def connection_opened(self) -> None:
        self.connections.add(1)

    def connection_closed(self) -> None:
        if self.open_connections <= 0:
            raise RuntimeError(f"node {self.id}: closing a connection at zero")
        self.connections.add(-1)
        self.completed += 1

    # -- faults --------------------------------------------------------------

    @property
    def state(self) -> str:
        """Availability state: "up", "slow" (CPU degraded), or "down"."""
        if self.failed:
            return "down"
        return "slow" if self.speed < self.base_speed else "up"

    def crash(self) -> None:
        """Kill the node.  Idempotent; in-flight requests abort at their
        next stage boundary (they see the incarnation change)."""
        if self.failed:
            return
        self.failed = True
        self.incarnation += 1
        self.crashes += 1

    def recover(self) -> None:
        """Reboot: rejoin with a cold (flushed) cache at base speed.

        Connection accounting is not forced to zero — every in-flight
        request from the dead incarnation aborts and closes its own
        connection, so the count drains to zero through the normal path.
        """
        if not self.failed:
            return
        self.failed = False
        self.cache.clear()
        self.speed = self.base_speed
        self.recoveries += 1

    def set_speed_factor(self, factor: float) -> None:
        """Scale CPU speed to ``factor`` of the configured base (fail-slow
        injection); ``factor=1.0`` restores full speed."""
        if factor <= 0:
            raise ValueError(f"speed factor must be positive, got {factor}")
        self.speed = self.base_speed * factor

    # -- hardware occupancy generators --------------------------------------

    def use_cpu(self, seconds: float, priority: int = CPU_PROMPT) -> Generator:
        """Occupy the CPU for ``seconds``.

        Control work (the default ``CPU_PROMPT``) overtakes queued bulk
        reply work, mirroring an event-driven server; work at equal
        priority is FIFO.  ``seconds`` is the baseline (speed 1.0) cost;
        slower nodes take proportionally longer.
        """
        with self.cpu.request(priority=priority) as req:
            yield req
            yield self.env.timeout(seconds / self.speed)

    def use_ni_in(self, seconds: float) -> Generator:
        with self.ni_in.request() as req:
            yield req
            yield self.env.timeout(seconds)

    def use_ni_out(self, seconds: float) -> Generator:
        with self.ni_out.request() as req:
            yield req
            yield self.env.timeout(seconds)

    def parse_request(self) -> Generator:
        """CPU work to read and parse an incoming request (1/mu_p)."""
        yield from self.use_cpu(self._hw.parse_time())

    def forward_work(self) -> Generator:
        """CPU work to hand a request off to another node (1/mu_f)."""
        yield from self.use_cpu(self._hw.forward_time())

    def reply_work(self, size_kb: float) -> Generator:
        """CPU work to send a locally available file (1/mu_m, bulk)."""
        yield from self.use_cpu(self._hw.reply_time(size_kb), priority=CPU_BULK)

    def read_from_disk(self, size_kb: float) -> Generator:
        """Disk occupancy for a whole-file read (1/mu_d)."""
        with self.disk.request() as req:
            yield req
            yield self.env.timeout(self._hw.disk_time(size_kb))

    # -- cache path ----------------------------------------------------------

    def serve_file(self, file_id: int, size_bytes: int) -> Generator:
        """Bring a file into memory: cache hit is free, miss reads disk.

        Updates LRU state and hit/miss counters; yields disk time on miss.
        """
        if not self.cache.lookup(file_id):
            yield from self.read_from_disk(size_bytes / 1024.0)
            self.cache.insert(file_id, size_bytes)

    def warm_cache(self, file_id: int, size_bytes: int) -> None:
        """Zero-time cache touch used by warmup passes (no stats)."""
        if not self.cache.touch(file_id):
            self.cache.insert(file_id, size_bytes)

    # -- accounting ----------------------------------------------------------

    def reset_accounting(self) -> None:
        """Discard warmup statistics; cache *contents* are preserved."""
        self.cpu.reset_accounting()
        self.ni_in.reset_accounting()
        self.ni_out.reset_accounting()
        self.disk.reset_accounting()
        self.cache.reset_stats()
        self.connections.reset()
        self.completed = 0
        self.forwarded = 0
        self.shed = 0

    def cpu_utilization(self, elapsed: float) -> float:
        return self.cpu.utilization(elapsed)

    def cpu_idle(self, elapsed: float) -> float:
        return 1.0 - self.cpu_utilization(elapsed)
