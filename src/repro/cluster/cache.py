"""Byte-capacity LRU file cache — each node's main memory.

Whole files are the caching unit (the servers cache files, not blocks).
Insertion of a file larger than the capacity is a no-op: such a file can
never be cached and is always streamed from disk.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, List, Optional

__all__ = ["LRUFileCache"]


class LRUFileCache:
    """LRU cache of (file_id -> size_bytes) bounded by total bytes."""

    __slots__ = ("capacity", "_entries", "_used", "hits", "misses", "insertions", "evictions")

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity = int(capacity_bytes)
        self._entries: "OrderedDict[int, int]" = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0

    def __contains__(self, file_id: int) -> bool:
        return file_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[int]:
        """File ids from least to most recently used."""
        return iter(self._entries)

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity - self._used

    def lookup(self, file_id: int) -> bool:
        """Check for ``file_id``; counts a hit/miss and refreshes recency."""
        if file_id in self._entries:
            self._entries.move_to_end(file_id)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def peek(self, file_id: int) -> bool:
        """Check without recency update or hit/miss accounting."""
        return file_id in self._entries

    def touch(self, file_id: int) -> bool:
        """Refresh recency without hit/miss accounting (warmup passes)."""
        if file_id in self._entries:
            self._entries.move_to_end(file_id)
            return True
        return False

    def size_of(self, file_id: int) -> Optional[int]:
        return self._entries.get(file_id)

    def insert(self, file_id: int, size_bytes: int) -> List[int]:
        """Insert (or refresh) a file; returns the ids evicted to make room.

        A file larger than the whole cache is not inserted (returns []).
        """
        if size_bytes <= 0:
            raise ValueError(f"size must be positive, got {size_bytes}")
        if file_id in self._entries:
            # Size is immutable per file in our workloads; refresh recency.
            self._entries.move_to_end(file_id)
            return []
        if size_bytes > self.capacity:
            return []
        evicted: List[int] = []
        while self._used + size_bytes > self.capacity:
            old_id, old_size = self._entries.popitem(last=False)
            self._used -= old_size
            self.evictions += 1
            evicted.append(old_id)
        self._entries[file_id] = size_bytes
        self._used += size_bytes
        self.insertions += 1
        return evicted

    def clone_state_from(self, other: "LRUFileCache") -> None:
        """Adopt another cache's contents, recency order and counters.

        The prewarm fast path: N nodes replaying the same trace into
        empty same-capacity caches produce N identical LRU states, so
        the driver warms one cache and clones it into the rest (see
        ``Simulation._prewarm``).  Capacities must match — recency and
        eviction decisions depend on it.
        """
        if other.capacity != self.capacity:
            raise ValueError(
                f"clone requires equal capacities "
                f"({other.capacity} != {self.capacity})"
            )
        self._entries = OrderedDict(other._entries)
        self._used = other._used
        self.hits = other.hits
        self.misses = other.misses
        self.insertions = other.insertions
        self.evictions = other.evictions

    def invalidate(self, file_id: int) -> bool:
        """Drop a file if present; returns whether it was cached."""
        size = self._entries.pop(file_id, None)
        if size is None:
            return False
        self._used -= size
        return True

    def clear(self) -> None:
        self._entries.clear()
        self._used = 0

    def reset_stats(self) -> None:
        """Zero hit/miss counters (e.g. after warmup) without losing content."""
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
