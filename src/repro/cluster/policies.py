"""Alternative cache-replacement policies: GreedyDual-Size and LFU.

The paper's servers cache whole files under LRU.  Web-caching work of
the same era (Cao & Irani's GreedyDual-Size, LFU variants) showed the
replacement policy can matter when file sizes vary by orders of
magnitude.  These drop-in replacements for
:class:`~repro.cluster.cache.LRUFileCache` let the cache-policy
ablation quantify how much of the paper's story depends on LRU:

* :class:`GDSFileCache` — GreedyDual-Size with uniform miss cost
  (``H = clock + 1/size``): favors keeping many small files, maximizing
  object hit rate;
* :class:`LFUFileCache` — least-frequently-used with LRU tie-breaking
  (in-cache frequency, reset on eviction).

All caches share the LRU cache's interface (lookup/insert/peek/touch/
invalidate/clear/stats), so a node can host any of them.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Optional, Tuple

from .cache import LRUFileCache

__all__ = ["GDSFileCache", "LFUFileCache", "make_cache", "CACHE_POLICIES"]


class _HeapCacheBase:
    """Shared machinery: byte accounting, stats, lazy-deletion heap."""

    __slots__ = (
        "capacity",
        "_entries",
        "_heap",
        "_seq",
        "_used",
        "hits",
        "misses",
        "insertions",
        "evictions",
    )

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError(f"capacity must be positive, got {capacity_bytes}")
        self.capacity = int(capacity_bytes)
        #: file_id -> (size, priority_key, seq_of_live_heap_entry)
        self._entries: Dict[int, Tuple[int, float, int]] = {}
        #: lazy heap of (priority_key, seq, file_id)
        self._heap: List[Tuple[float, int, int]] = []
        self._seq = 0
        self._used = 0
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0

    # -- shared interface ---------------------------------------------------

    def __contains__(self, file_id: int) -> bool:
        return file_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[int]:
        """File ids in eviction order (worst candidate first)."""
        live = sorted(
            (key, seq, fid)
            for fid, (size, key, seq) in self._entries.items()
        )
        return iter(fid for _, _, fid in live)

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity - self._used

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def peek(self, file_id: int) -> bool:
        return file_id in self._entries

    def size_of(self, file_id: int) -> Optional[int]:
        entry = self._entries.get(file_id)
        return entry[0] if entry else None

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0

    def clear(self) -> None:
        self._entries.clear()
        self._heap.clear()
        self._used = 0

    def invalidate(self, file_id: int) -> bool:
        entry = self._entries.pop(file_id, None)
        if entry is None:
            return False
        self._used -= entry[0]
        return True

    # -- policy hooks ----------------------------------------------------------

    def _priority(self, file_id: int, size: int) -> float:
        raise NotImplementedError

    def _on_hit(self, file_id: int) -> None:
        size, _, _ = self._entries[file_id]
        self._push(file_id, size, self._priority(file_id, size))

    # -- internals ----------------------------------------------------------------

    def _push(self, file_id: int, size: int, key: float) -> None:
        self._seq += 1
        self._entries[file_id] = (size, key, self._seq)
        heapq.heappush(self._heap, (key, self._seq, file_id))

    def _pop_victim(self) -> Tuple[int, int, float]:
        """(file_id, size, key) of the live entry with the lowest key."""
        while self._heap:
            key, seq, fid = heapq.heappop(self._heap)
            entry = self._entries.get(fid)
            if entry is not None and entry[2] == seq:
                return fid, entry[0], key
        raise RuntimeError("eviction requested from an empty cache")

    # -- operations ------------------------------------------------------------------

    def lookup(self, file_id: int) -> bool:
        if file_id in self._entries:
            self.hits += 1
            self._on_hit(file_id)
            return True
        self.misses += 1
        return False

    def touch(self, file_id: int) -> bool:
        if file_id in self._entries:
            self._on_hit(file_id)
            return True
        return False

    def insert(self, file_id: int, size_bytes: int) -> List[int]:
        if size_bytes <= 0:
            raise ValueError(f"size must be positive, got {size_bytes}")
        if file_id in self._entries:
            self._on_hit(file_id)
            return []
        if size_bytes > self.capacity:
            return []
        evicted: List[int] = []
        while self._used + size_bytes > self.capacity:
            fid, vsize, vkey = self._pop_victim()
            del self._entries[fid]
            self._used -= vsize
            self.evictions += 1
            evicted.append(fid)
            self._on_evict(fid, vkey)
        self._push(file_id, size_bytes, self._priority(file_id, size_bytes))
        self._used += size_bytes
        self.insertions += 1
        return evicted

    def _on_evict(self, file_id: int, key: float) -> None:
        """Policy hook after a victim leaves."""


class GDSFileCache(_HeapCacheBase):
    """GreedyDual-Size with uniform miss cost: H = L + 1/size.

    ``L`` (the inflation clock) rises to each victim's H on eviction, so
    recency and size trade off without per-access aging of every entry.
    """

    __slots__ = ("_clock",)

    def __init__(self, capacity_bytes: int):
        super().__init__(capacity_bytes)
        self._clock = 0.0

    def _priority(self, file_id: int, size: int) -> float:
        return self._clock + 1.0 / size

    def _on_evict(self, file_id: int, key: float) -> None:
        self._clock = max(self._clock, key)


class LFUFileCache(_HeapCacheBase):
    """In-cache LFU: evict the least-frequently-used file.

    Frequency counts live only while the file is cached (eviction
    forgets them — "LFU-aging" via forgetting).  Ties break towards the
    least recently inserted/refreshed entry via the heap sequence.
    """

    __slots__ = ("_freq",)

    def __init__(self, capacity_bytes: int):
        super().__init__(capacity_bytes)
        self._freq: Dict[int, int] = {}

    def _priority(self, file_id: int, size: int) -> float:
        self._freq[file_id] = self._freq.get(file_id, 0) + 1
        return float(self._freq[file_id])

    def _on_evict(self, file_id: int, key: float) -> None:
        self._freq.pop(file_id, None)

    def invalidate(self, file_id: int) -> bool:
        self._freq.pop(file_id, None)
        return super().invalidate(file_id)

    def clear(self) -> None:
        self._freq.clear()
        super().clear()


#: Registry of cache constructors by policy name.
CACHE_POLICIES = {
    "lru": LRUFileCache,
    "gds": GDSFileCache,
    "lfu": LFUFileCache,
}


def make_cache(policy: str, capacity_bytes: int):
    """Build a file cache by policy name ("lru", "gds", "lfu")."""
    try:
        cls = CACHE_POLICIES[policy.lower()]
    except KeyError:
        raise KeyError(
            f"unknown cache policy {policy!r}; available: {sorted(CACHE_POLICIES)}"
        ) from None
    return cls(capacity_bytes)
