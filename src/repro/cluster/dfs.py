"""Distributed file system: how misses reach disk content.

The paper's cluster gives every node "access to data stored on any disk
via a distributed file system".  Two layouts are provided:

* **replicated** (default, and the analytic model's implicit assumption):
  every disk holds the full content, a miss is a local disk read; and
* **partitioned**: content is hash-partitioned across disks; a miss on a
  file homed elsewhere pays a request/response message pair around the
  remote node's disk read.  This is the DFS ablation — it quantifies how
  much the "local replica" assumption is worth.

Under an unreliable interconnect (``config.net_faults``) either leg of a
remote fetch can be lost; both ride the reliability protocol when it
covers their kinds (``dfs_req``/``dfs_data``), and an exhausted fetch
either falls back to a degraded local-disk replica
(``NetFaultConfig.dfs_local_fallback``, the default) or surfaces to the
client as a :class:`RemoteFetchFailed` error.
"""

from __future__ import annotations

from typing import Generator, List

from ..des import Environment
from .config import ClusterConfig
from .network import Interconnect
from .node import Node

__all__ = ["DistributedFS", "RemoteFetchFailed"]


class RemoteFetchFailed(Exception):
    """A partitioned-DFS remote fetch exhausted its retries with local
    fallback disabled; the request fails with a client-visible error."""

    def __init__(self, node_id: int, home: int):
        super().__init__(f"remote fetch from node {home} failed at node {node_id}")
        self.node_id = node_id
        self.home = home


class DistributedFS:
    """Read path from the disks, under either content layout."""

    def __init__(
        self,
        env: Environment,
        config: ClusterConfig,
        nodes: List[Node],
        interconnect: Interconnect,
    ):
        self.env = env
        self.config = config
        self.nodes = nodes
        self.net = interconnect
        self.remote_reads = 0
        self.local_reads = 0
        #: Remote fetches whose messaging exhausted its retries.
        self.remote_failures = 0
        #: Of those, fetches served from the degraded local replica.
        self.local_fallbacks = 0

    def home_of(self, file_id: int) -> int:
        """The node whose disk holds ``file_id`` in partitioned layout."""
        return file_id % len(self.nodes)

    def read(self, node_id: int, file_id: int, size_bytes: int) -> Generator:
        """Fetch a file from stable storage into node ``node_id``'s memory.

        Replicated layout: local disk read.  Partitioned layout with a
        remote home: request message out, remote disk read, bulk data
        transfer back through the NIs.
        """
        size_kb = size_bytes / 1024.0
        reader = self.nodes[node_id]
        if self.config.replicated_disks:
            self.local_reads += 1
            yield from reader.read_from_disk(size_kb)
            return
        home = self.home_of(file_id)
        if home == node_id:
            self.local_reads += 1
            yield from reader.read_from_disk(size_kb)
            return
        self.remote_reads += 1
        proto = self.net.protocol
        if proto is not None and proto.covers("dfs_req"):
            ok = yield from proto.request_gen(
                node_id,
                home,
                self.config.control_kb,
                "dfs_req",
                ni_time_s=self.config.ni_control_time(),
            )
        else:
            ok = yield from self.net.send_control(node_id, home, kind="dfs_req")
        if ok:
            # The home node reads from its disk...
            yield from self.nodes[home].read_from_disk(size_kb)
            # ...and streams the file back.
            if proto is not None and proto.covers("dfs_data"):
                ok = yield from proto.request_gen(home, node_id, size_kb, "dfs_data")
            else:
                ok = yield from self.net.send_message(
                    home, node_id, size_kb, kind="dfs_data"
                )
        if ok:
            return
        # Both retries and (if any) the protocol gave up: degrade.
        self.remote_failures += 1
        nf = self.net.netfaults
        if nf is not None and nf.config.dfs_local_fallback:
            self.local_fallbacks += 1
            yield from reader.read_from_disk(size_kb)
            return
        raise RemoteFetchFailed(node_id, home)

    def reset_accounting(self) -> None:
        self.remote_reads = 0
        self.local_reads = 0
        self.remote_failures = 0
        self.local_fallbacks = 0
