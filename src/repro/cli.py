"""Command-line interface: ``repro <command>`` or ``python -m repro``.

Commands
--------
``repro tables``
    Print Table 1 (model parameters) and Table 2 (trace characteristics).
``repro surfaces``
    Print the model figures 3-6 as terminal heat maps.
``repro simulate TRACE POLICY [--nodes N] [--requests K] [--memory MB]``
    One simulation run with a summary line (``--verify`` additionally
    checks the result's request/message books and exits nonzero on any
    imbalance).
``repro figure {7,8,9,10} [--requests K] [--workers N]``
    Reproduce one of the scaling figures (model + all three systems).
``repro faults TRACE POLICY [--schedule SPEC | --mtbf S --mttr S | --crash-node I]``
    Fault-injection run: crash/recover/slow nodes on a schedule, retry
    aborted requests, and print the availability timeline.  Accepts a
    chaos scenario file via ``--spec`` (its node-fault half runs; the
    positional TRACE/POLICY then become optional overrides).
``repro netfaults TRACE [--policies P1,P2] [--loss R] [--schedule SPEC]``
    Unreliable-interconnect run: seeded message loss / duplication /
    delay and timed link-down or partition schedules, with the
    message-reliability protocol on, reported as a deterministic
    policy-comparison table (``--sweep`` runs the full A3 loss sweep).
    Accepts a chaos scenario file via ``--spec`` (its fabric half runs
    under the scenario's own policy).
``repro chaos {run,replay,shrink,soak}``
    Randomized fault-scenario fuzzing: seeded sweeps of combined fault
    plans under invariant oracles, byte-identical replay of stored
    scenarios, and delta-debugging shrinks of failures down to minimal
    reproducers (see docs/CHAOS.md and ``repro chaos --help``).
``repro bound TRACE [--nodes N] [--memory MB]``
    The analytic locality-conscious bound for a trace.
``repro analyze TRACE [--requests K] [--memories 8,32,128]``
    Workload analysis: working set, exact LRU miss-rate curve, and the
    model-vs-LRU hit-rate comparison.  TRACE may be a preset name or a
    ``.npz`` file saved with ``Trace.save``.
``repro ingest LOG -o TRACE.npz [--max-requests K]``
    Convert a (possibly gzipped) Common Log Format access log into a
    trace file for ``repro analyze`` / ``run_simulation``.
``repro reproduce [--out REPORT.md] [--requests K] [--model-only]``
    Run the whole suite and write a consolidated markdown report.
``repro bench [--quick] [--profile [N]] [--out FILE] [--check FILE]``
    DES kernel performance harness: events/s and wall-clock on the
    canonical 16-node scenarios, with an optional regression check
    against a committed baseline (see docs/KERNEL.md).
``repro lint [PATH ...] [--format {text,json}] [--select RULES]
[--explain REPxxx] [--sarif FILE] [--baseline FILE] [--write-baseline
FILE] [--no-project]``
    simlint, the determinism linter: file-local AST checks (unseeded
    RNGs, unordered-set iteration, wall-clock reads in the kernel) plus
    whole-program passes over a project call graph — nondeterminism
    taint into scheduling/results/scenarios, hot-path allocation,
    async safety, policy-contract conformance (see docs/ANALYSIS.md).
    Exits nonzero on findings (or, with --baseline, on *new* findings).
``repro farm {sweep,chaos}``
    Multi-core sweep runner: shard a trace x policy x nodes x seed grid
    (or a batch of chaos trials) across worker processes with
    deterministic shard merging — the merged output is byte-identical
    to a serial run (see docs/FARM.md and ``repro farm --help``).
``repro live {serve,loadtest,compare}``
    The live substrate: boot a real localhost asyncio cluster driven by
    the same distribution policies the simulator runs, replay traces
    against it, and compare live behaviour against the sim's prediction
    (see docs/LIVE.md and ``repro live --help``).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]

#: Figure number -> trace name (the paper's assignment).
FIGURE_TRACES = {7: "calgary", 8: "clarknet", 9: "nasa", 10: "rutgers"}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Evaluating Cluster-Based Network Servers' "
            "(Carrera & Bianchini, HPDC 2000)"
        ),
        epilog=(
            "The same policies also run on a real localhost cluster: "
            "`repro live serve|loadtest|compare` boots an asyncio "
            "front-end plus back-end worker processes and replays the "
            "same traces the simulator uses (see docs/LIVE.md)."
        ),
    )
    from . import __version__

    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="print Tables 1 and 2")

    sub.add_parser("surfaces", help="print the model figures 3-6")

    p_sim = sub.add_parser("simulate", help="run one simulation")
    p_sim.add_argument("trace", help="calgary|clarknet|nasa|rutgers")
    p_sim.add_argument(
        "policy", help="l2s|lard|traditional|round-robin|consistent-hash"
    )
    p_sim.add_argument("--nodes", type=int, default=16)
    p_sim.add_argument("--requests", type=int, default=None)
    p_sim.add_argument("--memory", type=int, default=32, help="MB per node")
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument(
        "--sanitize", action="store_true",
        help="run under the DES sanitizer and print its leak report",
    )
    p_sim.add_argument(
        "--verify", action="store_true",
        help="check the result's request/message books "
        "(SimResult.verify) and exit nonzero on any imbalance",
    )

    p_fig = sub.add_parser("figure", help="reproduce figure 7, 8, 9 or 10")
    p_fig.add_argument("number", type=int, choices=sorted(FIGURE_TRACES))
    p_fig.add_argument("--requests", type=int, default=None)
    p_fig.add_argument(
        "--workers", type=int, default=None,
        help="parallel worker processes (default: REPRO_BENCH_WORKERS or 1)",
    )

    p_flt = sub.add_parser(
        "faults", help="fault-injection run with an availability timeline"
    )
    p_flt.add_argument(
        "trace", nargs="?", default=None,
        help="calgary|clarknet|nasa|rutgers (optional with --spec)",
    )
    p_flt.add_argument(
        "policy", nargs="?", default=None,
        help="l2s|lard|lard-ng|traditional|round-robin|consistent-hash "
        "(optional with --spec)",
    )
    p_flt.add_argument(
        "--spec", default=None, metavar="SCENARIO.json",
        help="chaos scenario file: run its node-fault half with its "
        "trace/policy/nodes/seed/retries (positional TRACE/POLICY "
        "override when given)",
    )
    p_flt.add_argument("--nodes", type=int, default=8)
    p_flt.add_argument("--requests", type=int, default=None)
    p_flt.add_argument("--memory", type=int, default=32, help="MB per node")
    p_flt.add_argument("--seed", type=int, default=0)
    p_flt.add_argument(
        "--schedule", default=None, metavar="SPEC",
        help=(
            "explicit fault events, e.g. 'crash:2@0.5,recover:2@1.5,"
            "slow:1@0.8x0.5' (seconds of simulated time)"
        ),
    )
    p_flt.add_argument(
        "--mtbf", type=float, default=None, metavar="S",
        help="stochastic mode: mean time between failures per node (s)",
    )
    p_flt.add_argument(
        "--mttr", type=float, default=None, metavar="S",
        help="stochastic mode: mean time to repair (s)",
    )
    p_flt.add_argument(
        "--horizon", type=float, default=None, metavar="S",
        help="stochastic mode: schedule horizon (s); default: a healthy "
        "calibration run's duration",
    )
    p_flt.add_argument(
        "--crash-node", type=int, default=0, metavar="I",
        help="fraction mode: node to crash (default 0)",
    )
    p_flt.add_argument(
        "--crash-frac", type=float, default=0.55,
        help="fraction mode: crash at this fraction of the run (default 0.55)",
    )
    p_flt.add_argument(
        "--recover-frac", type=float, default=0.75,
        help="fraction mode: reboot at this fraction (default 0.75)",
    )
    p_flt.add_argument(
        "--no-recover", action="store_true",
        help="fraction mode: crash with no reboot",
    )
    p_flt.add_argument(
        "--retries", type=int, default=4,
        help="client retries per aborted request (default 4)",
    )
    p_flt.add_argument(
        "--timeout", type=float, default=None,
        help="client response timeout in simulated seconds",
    )
    p_flt.add_argument(
        "--failover", type=float, default=None, metavar="S",
        help="lard-ng only: elect a new dispatcher S seconds after a "
        "dispatcher crash",
    )
    p_flt.add_argument(
        "--csv", default=None, metavar="PATH",
        help="also write the raw timeline samples as CSV",
    )

    p_net = sub.add_parser(
        "netfaults",
        help="unreliable-interconnect run (loss/dup/delay/partition)",
    )
    p_net.add_argument(
        "trace", nargs="?", default=None,
        help="calgary|clarknet|nasa|rutgers (optional with --spec)",
    )
    p_net.add_argument(
        "--policies", default="traditional,lard,lard-ng,l2s",
        help="comma-separated policy names (default: the paper's four)",
    )
    p_net.add_argument("--nodes", type=int, default=16)
    p_net.add_argument("--requests", type=int, default=None)
    p_net.add_argument("--memory", type=int, default=32, help="MB per node")
    p_net.add_argument("--seed", type=int, default=0)
    p_net.add_argument(
        "--loss", type=float, default=0.01,
        help="global message-loss probability (default 0.01)",
    )
    p_net.add_argument(
        "--dup", type=float, default=0.0,
        help="message duplication probability",
    )
    p_net.add_argument(
        "--delay", type=float, default=0.0, metavar="S",
        help="fixed extra switch delay per message (s)",
    )
    p_net.add_argument(
        "--jitter", type=float, default=0.0, metavar="S",
        help="uniform random extra delay in [0, S) per message",
    )
    p_net.add_argument(
        "--schedule", default=None, metavar="SPEC",
        help=(
            "timed fabric events, e.g. 'link:0-3@0.5..1.5' or "
            "'partition:0+1@0.8..1.2' (seconds of simulated time; "
            "omit ..END for an event that never heals)"
        ),
    )
    p_net.add_argument(
        "--view-max-age", type=float, default=0.5, metavar="S",
        help="l2s only: ignore load-view entries older than S seconds "
        "(0 disables staleness detection)",
    )
    p_net.add_argument(
        "--sweep", action="store_true",
        help="run the full A3 experiment (loss sweep + timed partition) "
        "instead of the single scenario",
    )
    p_net.add_argument(
        "--spec", default=None, metavar="SCENARIO.json",
        help="chaos scenario file: run its fabric half (loss/dup/delay/"
        "jitter rates, link outages, partitions) under the scenario's "
        "own trace, policy, cluster size, and seed",
    )
    p_net.add_argument(
        "--out", default=None, metavar="PATH",
        help="also write the report to PATH (byte-identical across runs "
        "with the same seed)",
    )

    p_ov = sub.add_parser(
        "overload",
        help="goodput frontier at 1x-4x the saturation knee, with and "
        "without admission control",
    )
    p_ov.add_argument(
        "--trace", default="calgary", help="calgary|clarknet|nasa|rutgers"
    )
    p_ov.add_argument(
        "--policies", default="lard",
        help="comma-separated policy names, or 'all' for the registry",
    )
    p_ov.add_argument("--nodes", type=int, default=8)
    p_ov.add_argument("--requests", type=int, default=None)
    p_ov.add_argument(
        "--deadline", type=float, default=0.25, metavar="S",
        help="client deadline defining goodput (default 0.25 s)",
    )
    p_ov.add_argument(
        "--multipliers", default="1,2,3,4",
        help="comma-separated offered-load multiples of the knee",
    )
    p_ov.add_argument("--seed", type=int, default=0)
    p_ov.add_argument(
        "--no-ramp", action="store_true",
        help="plain trace instead of the seeded flash ramp",
    )
    p_ov.add_argument(
        "--assert-dominates", action="store_true",
        help="exit 1 unless admission goodput strictly dominates beyond "
        "the knee for every policy (the CI smoke contract)",
    )

    p_bound = sub.add_parser("bound", help="analytic bound for a trace")
    p_bound.add_argument("trace")
    p_bound.add_argument("--nodes", type=int, default=16)
    p_bound.add_argument("--memory", type=int, default=32, help="MB per node")

    p_an = sub.add_parser(
        "analyze", help="workload analysis: working set, LRU miss-rate curve"
    )
    p_an.add_argument(
        "trace", help="preset name or a .npz trace saved with Trace.save"
    )
    p_an.add_argument("--requests", type=int, default=None)
    p_an.add_argument(
        "--memories",
        type=str,
        default="8,32,128",
        help="comma-separated cache sizes in MB for the miss-rate curve",
    )

    p_ing = sub.add_parser(
        "ingest", help="convert a Common Log Format access log to a trace"
    )
    p_ing.add_argument("log", help="access log path (plain or .gz)")
    p_ing.add_argument("-o", "--out", required=True, help="output .npz path")
    p_ing.add_argument("--name", default=None)
    p_ing.add_argument("--max-requests", type=int, default=None)

    p_rep = sub.add_parser(
        "reproduce", help="run the whole suite and write a markdown report"
    )
    p_rep.add_argument("--out", default="REPORT.md")
    p_rep.add_argument("--requests", type=int, default=16_000)
    p_rep.add_argument(
        "--traces", default="calgary,clarknet,nasa,rutgers",
        help="comma-separated trace presets",
    )
    p_rep.add_argument(
        "--nodes", default="2,4,8,16", help="comma-separated cluster sizes"
    )
    p_rep.add_argument(
        "--model-only", action="store_true",
        help="skip the simulations (tables + model figures only)",
    )
    p_rep.add_argument(
        "--workers", type=int, default=None,
        help="parallel worker processes (default: REPRO_BENCH_WORKERS or 1)",
    )

    # `repro bench` and `repro lint` own their own argparse (both are
    # also runnable as `python -m repro.<module>`); declared here so
    # they show in --help.
    sub.add_parser(
        "bench",
        help="DES kernel performance harness (see `repro bench --help`)",
        add_help=False,
    )
    sub.add_parser(
        "lint",
        help="determinism linter (see `repro lint --help`)",
        add_help=False,
    )
    sub.add_parser(
        "chaos",
        help="fault-scenario fuzzing: run/replay/shrink/soak "
        "(see `repro chaos --help`)",
        add_help=False,
    )
    sub.add_parser(
        "live",
        help="real asyncio cluster: serve/loadtest/compare "
        "(see `repro live --help`)",
        add_help=False,
    )
    sub.add_parser(
        "farm",
        help="multi-core sweep runner with deterministic merging "
        "(see `repro farm --help`)",
        add_help=False,
    )
    return parser


def _cmd_tables() -> int:
    from .experiments import render_table1, render_table2

    print("Table 1: model parameters and default values\n")
    print(render_table1())
    print("\nTable 2: trace characteristics (paper vs synthesized)\n")
    print(render_table2())
    return 0


def _cmd_surfaces() -> int:
    from .experiments import model_figures
    from .experiments.figures import (
        render_figure3,
        render_figure4,
        render_figure5,
        render_figure6,
    )

    surfaces = model_figures()
    for render in (render_figure3, render_figure4, render_figure5):
        print(render(surfaces))
        print()
    print("Figure 6: side view (min/max increase per hit rate)\n")
    print(render_figure6(surfaces))
    print(
        f"\npeak increase: {surfaces.peak_increase():.2f}x at "
        f"(hit rate, size KB) = {surfaces.peak_location()}"
    )
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .model import MB
    from .sim import model_bound_for_trace, run_simulation
    from .workload import synthesize

    trace = synthesize(args.trace, num_requests=args.requests, seed=args.seed)
    bound = model_bound_for_trace(
        trace, nodes=args.nodes, cache_bytes=args.memory * MB
    )
    if args.sanitize:
        from .cluster import ClusterConfig
        from .servers import make_policy
        from .sim.driver import Simulation

        config = ClusterConfig(
            nodes=args.nodes, cache_bytes=args.memory * MB
        )
        sim = Simulation(
            trace, make_policy(args.policy), config, passes=2, sanitize=True,
            record_latencies=True,
        )
        result = sim.run()
        print(result.summary_row())
        print(sim.env.sanitizer.finish().render())
    else:
        result = run_simulation(
            trace, args.policy, nodes=args.nodes, cache_bytes=args.memory * MB,
            record_latencies=True,
        )
        print(result.summary_row())
    pct = result.latency_percentiles
    if pct:
        print(
            "latency percentiles: "
            + "  ".join(f"{k} {pct[k] * 1000:.2f} ms" for k in sorted(pct))
        )
    print(
        f"model bound: {bound.throughput:,.0f} req/s "
        f"({result.throughput_rps / bound.throughput:.0%} achieved; "
        f"bottleneck {bound.bottleneck})"
    )
    if args.verify:
        problems = result.verify()
        if problems:
            for problem in problems:
                print(f"verify: {problem}", file=sys.stderr)
            return 1
        print(
            f"verify: books balance ({result.requests_generated:,} "
            "requests conserved)"
        )
    return 0


def _cmd_overload(args: argparse.Namespace) -> int:
    from .experiments import overload_frontier
    from .servers import POLICIES

    if args.policies.strip() == "all":
        policies = list(POLICIES)
    else:
        policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    try:
        multipliers = tuple(
            float(m) for m in args.multipliers.split(",") if m.strip()
        )
    except ValueError:
        print(f"bad --multipliers {args.multipliers!r}", file=sys.stderr)
        return 2
    failed = []
    for name in policies:
        frontier = overload_frontier(
            policy_name=name,
            trace_name=args.trace,
            nodes=args.nodes,
            multipliers=multipliers,
            deadline_s=args.deadline,
            num_requests=args.requests,
            seed=args.seed,
            ramp=not args.no_ramp,
        )
        print(frontier.render())
        print()
        if not frontier.dominance_holds():
            failed.append(name)
    if args.assert_dominates and failed:
        print(
            "dominance FAILED for: " + ", ".join(failed), file=sys.stderr
        )
        return 1
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from .experiments import scaling_experiment

    trace = FIGURE_TRACES[args.number]
    exp = scaling_experiment(
        trace, num_requests=args.requests, workers=args.workers
    )
    print(f"Figure {args.number}: throughputs for the {trace} trace\n")
    print(exp.render())
    return 0


def _cmd_bound(args: argparse.Namespace) -> int:
    from .model import MB
    from .sim import model_bound_for_trace

    bound = model_bound_for_trace(
        args.trace, nodes=args.nodes, cache_bytes=args.memory * MB
    )
    print(
        f"{args.trace} x {args.nodes} nodes x {args.memory} MB: "
        f"{bound.throughput:,.0f} req/s (bottleneck {bound.bottleneck}, "
        f"Hlc {bound.hit_rate:.3f}, Q {bound.forward_fraction:.3f})"
    )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .model import MB
    from .workload import (
        Trace,
        miss_rate_curve,
        model_vs_lru_hit_rate,
        synthesize,
        working_set_bytes,
    )

    if args.trace.endswith(".npz") or Path(args.trace).exists():
        trace = Trace.load(args.trace)
    else:
        trace = synthesize(args.trace, num_requests=args.requests)
    stats = trace.stats()
    print(
        f"{trace.name}: {stats.num_requests:,} requests over "
        f"{stats.num_files:,} files (alpha {stats.alpha:g})"
    )
    print(
        f"  mean file {stats.avg_file_kb:.1f} KB, mean request "
        f"{stats.avg_request_kb:.1f} KB"
    )
    print(
        f"  footprint {stats.total_footprint_mb:,.0f} MB, touched working "
        f"set {working_set_bytes(trace) / MB:,.0f} MB "
        f"({trace.unique_files_touched():,} files)"
    )
    memories = [int(m.strip()) for m in args.memories.split(",") if m.strip()]
    curve = miss_rate_curve(trace, [m * MB for m in memories], include_cold=False)
    print("  exact LRU capacity-miss rates:")
    for cache_bytes, miss in curve:
        print(f"    {cache_bytes // MB:>6d} MB: {miss:7.2%}")
    predicted, actual = model_vs_lru_hit_rate(trace, memories[0] * MB)
    print(
        f"  model z(C/S, F) vs exact LRU hit rate at {memories[0]} MB: "
        f"{predicted:.3f} vs {actual:.3f}"
    )
    return 0


def _cmd_netfaults(args: argparse.Namespace) -> int:
    from .cluster import ClusterConfig
    from .experiments.netfault import (
        NetFaultReport,
        summarize_run,
        netfault_experiment,
        run_netfault_simulation,
    )
    from .model import MB
    from .netfaults import NetFaultConfig, NetFaultSchedule
    from .workload import synthesize

    policies = [p.strip() for p in args.policies.split(",") if p.strip()]
    if not policies:
        print("--policies must name at least one policy", file=sys.stderr)
        return 2
    view_max_age = args.view_max_age if args.view_max_age > 0 else None
    if args.trace is None and args.spec is None:
        print(
            "netfaults: TRACE is required without --spec", file=sys.stderr
        )
        return 2
    if args.trace is not None:
        trace = synthesize(
            args.trace, num_requests=args.requests, seed=args.seed
        )

    if args.spec is not None:
        if args.sweep or args.schedule is not None:
            print(
                "--spec carries its own fabric plan; it is exclusive "
                "with --sweep and --schedule",
                file=sys.stderr,
            )
            return 2
        from .chaos.spec import ChaosSpecError, Scenario

        try:
            scenario = Scenario.load(args.spec)
        except ChaosSpecError as exc:
            print(f"netfaults: invalid scenario — {exc}", file=sys.stderr)
            return 2
        nf = scenario.netfault_config()
        if nf is None:
            # No fabric items: exercise the reliability protocol on a
            # clean fabric rather than silently doing nothing.
            print(
                f"note: {args.spec} has no fabric items; running with "
                "the reliability protocol on a clean fabric"
            )
            nf = NetFaultConfig(seed=scenario.seed, always_on=True)
        # The scenario supplies the workload; an explicit positional
        # TRACE still wins, mirroring `repro faults --spec`.
        trace = synthesize(
            args.trace or scenario.trace,
            num_requests=args.requests or scenario.requests,
            seed=scenario.seed,
        )
        config = ClusterConfig(
            nodes=scenario.nodes,
            cache_bytes=scenario.cache_mb * MB,
            net_faults=nf,
        )
        sim = run_netfault_simulation(
            trace,
            scenario.policy,
            config,
            view_max_age_s=scenario.view_max_age_s,
        )
        report = NetFaultReport(
            trace=trace.name,
            nodes=scenario.nodes,
            requests=len(trace),
            seed=scenario.seed,
            loss_rates=(nf.loss_rate,),
            partition=None,
            cells=[
                summarize_run(sim, scenario.policy, nf.loss_rate, "loss")
            ],
        )
    elif args.sweep:
        report = netfault_experiment(
            trace=trace,
            nodes=args.nodes,
            policies=policies,
            seed=args.seed,
            view_max_age_s=view_max_age,
            dup_rate=args.dup,
            extra_delay_s=args.delay,
            jitter_s=args.jitter,
        )
    else:
        schedule = (
            NetFaultSchedule.parse(args.schedule)
            if args.schedule is not None
            else None
        )
        nf = NetFaultConfig(
            loss_rate=args.loss,
            dup_rate=args.dup,
            extra_delay_s=args.delay,
            jitter_s=args.jitter,
            schedule=schedule,
            seed=args.seed,
        )
        if not nf.active:
            nf = NetFaultConfig(seed=args.seed, always_on=True)
        config = ClusterConfig(
            nodes=args.nodes,
            cache_bytes=args.memory * MB,
            net_faults=nf,
        )
        cells = []
        for policy_name in policies:
            sim = run_netfault_simulation(
                trace, policy_name, config, view_max_age_s=view_max_age
            )
            cells.append(summarize_run(sim, policy_name, args.loss, "loss"))
        report = NetFaultReport(
            trace=trace.name,
            nodes=args.nodes,
            requests=len(trace),
            seed=args.seed,
            loss_rates=(args.loss,),
            partition=None,
            cells=cells,
        )
    text = report.render()
    print(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"\nwrote {args.out}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from .cluster import ClusterConfig
    from .experiments import fault_recovery_experiment, run_fault_simulation
    from .faults import FaultSchedule, RetryPolicy
    from .model import MB
    from .workload import synthesize

    if (args.mtbf is None) != (args.mttr is None):
        print("--mtbf and --mttr must be given together", file=sys.stderr)
        return 2
    if args.schedule is not None and args.mtbf is not None:
        print("--schedule and --mtbf/--mttr are exclusive", file=sys.stderr)
        return 2

    spec_schedule = None
    if args.spec is not None:
        if args.schedule is not None or args.mtbf is not None:
            print(
                "--spec carries its own schedule; it is exclusive with "
                "--schedule and --mtbf/--mttr",
                file=sys.stderr,
            )
            return 2
        from .chaos.spec import ChaosSpecError, Scenario

        try:
            scenario = Scenario.load(args.spec)
        except ChaosSpecError as exc:
            print(f"faults: invalid scenario — {exc}", file=sys.stderr)
            return 2
        # The scenario supplies the run shape; explicit positionals
        # still win so a stored scenario can be rerun elsewhere.
        args.trace = args.trace or scenario.trace
        args.policy = args.policy or scenario.policy
        args.nodes = scenario.nodes
        args.memory = scenario.cache_mb
        args.seed = scenario.seed
        args.requests = args.requests or scenario.requests
        args.retries = scenario.retries
        if args.failover is None:
            args.failover = scenario.failover_s
        spec_schedule = scenario.fault_schedule()
        if spec_schedule is None:
            print(
                f"note: {args.spec} has no node-fault items "
                "(fabric/workload items belong to `repro netfaults` and "
                "`repro chaos`); running the healthy baseline",
            )
    if args.trace is None or args.policy is None:
        print(
            "faults: TRACE and POLICY are required without --spec",
            file=sys.stderr,
        )
        return 2
    if args.failover is not None and args.policy != "lard-ng":
        print("--failover only applies to lard-ng", file=sys.stderr)
        return 2

    trace = synthesize(args.trace, num_requests=args.requests, seed=args.seed)
    config = ClusterConfig(nodes=args.nodes, cache_bytes=args.memory * MB)
    retry = RetryPolicy(
        max_retries=args.retries, timeout_s=args.timeout
    )

    if args.spec is None and args.schedule is None and args.mtbf is None:
        # Fraction mode: crash one node partway through, reboot it later.
        r = fault_recovery_experiment(
            args.policy,
            trace=trace,
            nodes=args.nodes,
            failed_node=args.crash_node,
            crash_frac=args.crash_frac,
            recover_frac=None if args.no_recover else args.recover_frac,
            retry=retry,
            failover_s=args.failover,
            cache_bytes=config.cache_bytes,
        )
        timeline = r.timeline
        print(
            f"{args.policy} x {args.nodes} nodes, {args.trace}: "
            f"crash({r.failed_node}) at t={r.crash_at:.3f}s"
            + (
                f", recover at t={r.recover_at:.3f}s"
                if r.recover_at is not None
                else ", no reboot"
            )
        )
        print(
            f"  healthy {r.healthy_throughput:,.0f} req/s | faulted "
            f"{r.faulted_throughput:,.0f} req/s | outage goodput "
            f"{r.outage_goodput:,.0f} req/s ({r.outage_fraction:.0%} of "
            f"healthy) | recovered {r.recovered_goodput:,.0f} req/s"
        )
        print(
            f"  failed {r.requests_failed:,} | retried {r.requests_retried:,}"
            f" | reheat miss {r.reheat_miss_rate:.1%} -> steady "
            f"{r.steady_miss_rate:.1%}"
        )
    else:
        # Calibrate the timescale with a healthy run, then inject.
        healthy = run_fault_simulation(
            trace, args.policy, config, faults=None, failover_s=args.failover
        )
        total_s = healthy._last_completion
        if spec_schedule is not None or args.spec is not None:
            schedule = spec_schedule
        elif args.schedule is not None:
            schedule = FaultSchedule.parse(args.schedule)
        else:
            schedule = FaultSchedule.stochastic(
                args.nodes,
                horizon_s=args.horizon if args.horizon else total_s,
                mtbf_s=args.mtbf,
                mttr_s=args.mttr,
                seed=args.seed,
            )
        if schedule is not None:
            print(f"schedule: {schedule.describe()}")
        sim = run_fault_simulation(
            trace,
            args.policy,
            config,
            faults=schedule,
            retry=retry,
            timeline_interval_s=max(total_s, 1e-9) / 160,
            failover_s=args.failover,
        )
        timeline = sim.timeline
        healthy_rps = healthy._completed / total_s if total_s > 0 else 0.0
        faulted_rps = (
            sim._completed / sim._last_completion
            if sim._last_completion > 0
            else 0.0
        )
        print(
            f"{args.policy} x {args.nodes} nodes, {args.trace}: healthy "
            f"{healthy_rps:,.0f} req/s | faulted {faulted_rps:,.0f} req/s | "
            f"failed {sim._failed:,} | retried {sim._retried:,}"
        )
    print()
    print(timeline.render())
    if args.csv:
        with open(args.csv, "w") as fh:
            fh.write(timeline.to_csv())
        print(f"\nwrote {args.csv}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "bench":
        # Delegate everything after `bench` to the harness's own parser.
        from .bench import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "lint":
        # Likewise for simlint.
        from .analysis.simlint import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "chaos":
        # Likewise for the chaos harness.
        from .chaos.cli import main as chaos_main

        return chaos_main(argv[1:])
    if argv and argv[0] == "live":
        # Likewise for the live substrate.
        from .live.cli import main as live_main

        return live_main(argv[1:])
    if argv and argv[0] == "farm":
        # Likewise for the sweep farm.
        from .farm.cli import main as farm_main

        return farm_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.command == "tables":
        return _cmd_tables()
    if args.command == "surfaces":
        return _cmd_surfaces()
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "overload":
        return _cmd_overload(args)
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "netfaults":
        return _cmd_netfaults(args)
    if args.command == "bound":
        return _cmd_bound(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "ingest":
        from .workload import ingest_log

        trace = ingest_log(args.log, name=args.name, max_requests=args.max_requests)
        trace.save(args.out)
        s = trace.stats()
        print(
            f"wrote {args.out}: {s.num_requests:,} requests over "
            f"{s.num_files:,} files (alpha {s.alpha:.2f}, "
            f"mean request {s.avg_request_kb:.1f} KB)"
        )
        return 0
    if args.command == "reproduce":
        from .experiments.reproduce import write_report

        write_report(
            args.out,
            num_requests=args.requests,
            traces=tuple(t.strip() for t in args.traces.split(",") if t.strip()),
            node_counts=tuple(
                int(n) for n in args.nodes.split(",") if n.strip()
            ),
            include_sims=not args.model_only,
            workers=args.workers,
        )
        print(f"wrote {args.out}")
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
