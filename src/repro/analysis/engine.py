"""The ``repro lint`` driver: file-local rules + whole-program passes.

Pipeline::

    paths ──> per-file v1 pass (REP001–REP008, unchanged)
         └─> package roots ──> ProjectModel ──> CallGraph ──> passes
                                  taint (REP101–103)
                                  hotpath (REP104)
                                  asyncsafe (REP105–106)
                                  conformance (REP107)
                                  wallclock (REP108)

plus the reporting machinery: ``--format text|json``, ``--sarif FILE``,
``--baseline``/``--write-baseline`` (adopt existing findings, fail only
on new ones), ``--select``/``--ignore`` validated against the rule
registry, and ``--explain REPxxx``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from . import (
    asyncsafe,
    baseline as baseline_mod,
    conformance,
    hotpath,
    taint,
    wallclock,
)
from .callgraph import CallGraph
from .modules import ProjectModel
from .rules import REGISTRY, RULES, explain as explain_rule
from .sarif import to_sarif
from .simlint import Finding, _python_files, lint_file

__all__ = ["run_project_passes", "lint_all", "main"]

#: Pass runners in execution order; each yields findings for its rules.
_PROJECT_PASSES = (
    ("taint", taint.run, ("REP101", "REP102", "REP103")),
    ("hotpath", hotpath.run, ("REP104",)),
    ("asyncsafe", asyncsafe.run, ("REP105", "REP106")),
    ("conformance", conformance.run, ("REP107",)),
    ("wallclock", wallclock.run, ("REP108",)),
)


def _package_roots(paths: Sequence[str]) -> List[Path]:
    """Package directories among ``paths`` (or their immediate children).

    ``src`` itself is no package, but ``src/repro`` is; passing either
    must run the whole-program passes over the package.
    """
    roots: List[Path] = []
    seen: Set[str] = set()

    def add(p: Path) -> None:
        key = str(p.resolve())
        if key not in seen:
            seen.add(key)
            roots.append(p)

    for raw in paths:
        p = Path(raw)
        if not p.is_dir():
            continue
        if (p / "__init__.py").is_file():
            add(p)
        else:
            for child in sorted(p.iterdir()):
                if child.is_dir() and (child / "__init__.py").is_file():
                    add(child)
    return roots


def run_project_passes(
    model: ProjectModel, active: Optional[Set[str]] = None
) -> List[Finding]:
    """Run every whole-program pass whose rules intersect ``active``."""
    graph = CallGraph.build(model)
    findings: List[Finding] = []
    for _name, runner, rules in _PROJECT_PASSES:
        if active is not None and not (active & set(rules)):
            continue
        for f in runner(model, graph):
            if active is None or f.rule in active:
                findings.append(f)
    return findings


def lint_all(
    paths: Sequence[str],
    active: Optional[Set[str]] = None,
    *,
    project: bool = True,
) -> tuple:
    """Per-file + whole-program lint.  Returns (findings, files_checked)."""
    files = _python_files(paths)
    findings: List[Finding] = []
    local_select = active if active is not None else None
    for f in files:
        findings.extend(lint_file(f, select=local_select))
    if project:
        linted = {str(Path(f)) for f in files}
        for root in _package_roots(paths):
            model = ProjectModel.load(root)
            for finding in run_project_passes(model, active):
                # Only report findings in files the user asked about
                # (a model loaded from src/repro never strays, but keep
                # the contract explicit).
                if finding.path in linted:
                    findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, len(files)


class _LineCache:
    def __init__(self) -> None:
        self._files: Dict[str, List[str]] = {}

    def __call__(self, path: str, line: int) -> str:
        if path not in self._files:
            try:
                self._files[path] = Path(path).read_text(
                    encoding="utf-8"
                ).splitlines()
            except OSError:
                self._files[path] = []
        lines = self._files[path]
        return lines[line - 1] if 1 <= line <= len(lines) else ""


def _parse_rule_list(raw: str) -> Set[str]:
    return {r.strip() for r in raw.split(",") if r.strip()}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "determinism linter for the simulator codebase: file-local "
            "rules (REP001-REP008) plus whole-program taint, hot-path, "
            "async-safety, policy-conformance, and overload wall-clock "
            "passes (REP101-REP108)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule subset, e.g. REP001,REP104",
    )
    parser.add_argument(
        "--ignore", default=None, metavar="RULES",
        help="comma-separated rules to skip",
    )
    parser.add_argument(
        "--statistics", action="store_true",
        help="print a per-rule finding count summary",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    parser.add_argument(
        "--explain", default=None, metavar="REPxxx",
        help="print the long-form rationale for one rule and exit",
    )
    parser.add_argument(
        "--sarif", default=None, metavar="FILE",
        help="additionally write findings as SARIF 2.1.0 to FILE",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="compare against a committed baseline: only findings not "
        "in FILE fail the run",
    )
    parser.add_argument(
        "--write-baseline", default=None, metavar="FILE",
        help="adopt the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--no-project", action="store_true",
        help="skip the whole-program passes (file-local rules only)",
    )
    args = parser.parse_args(argv)

    if args.explain:
        try:
            print(explain_rule(args.explain))
        except KeyError:
            known = ", ".join(sorted(REGISTRY))
            print(
                f"unknown rule {args.explain!r}; known rules: {known}",
                file=sys.stderr,
            )
            return 2
        return 0

    if args.list_rules:
        for rule, desc in sorted(RULES.items()):
            print(f"{rule}  {desc}")
        return 0

    active: Optional[Set[str]] = None
    if args.select:
        active = _parse_rule_list(args.select)
        unknown = active - set(RULES)
        if unknown:
            print(
                f"unknown rules: {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2
    if args.ignore:
        ignored = _parse_rule_list(args.ignore)
        unknown = ignored - set(RULES)
        if unknown:
            print(
                f"unknown rules: {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2
        active = (active if active is not None else set(RULES)) - ignored

    paths = args.paths or (["src"] if Path("src").is_dir() else ["."])
    findings, files_checked = lint_all(
        paths, active, project=not args.no_project
    )

    get_line = _LineCache()

    if args.write_baseline:
        data = baseline_mod.generate(findings, get_line)
        baseline_mod.save(args.write_baseline, data)
        print(
            f"wrote baseline with {len(findings)} finding"
            f"{'s' if len(findings) != 1 else ''} "
            f"({len(data['counts'])} fingerprints) to {args.write_baseline}"
        )
        return 0

    report = findings
    stale = 0
    if args.baseline:
        try:
            data = baseline_mod.load(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"cannot load baseline: {exc}", file=sys.stderr)
            return 2
        report, stale = baseline_mod.compare(findings, data, get_line)

    if args.sarif:
        Path(args.sarif).write_text(to_sarif(report) + "\n", encoding="utf-8")

    if args.fmt == "json":
        counts: Dict[str, int] = {}
        for f in report:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        payload: Dict[str, object] = {
            "files_checked": files_checked,
            "findings": [f.as_dict() for f in report],
            "counts": counts,
        }
        if args.baseline:
            payload["baselined"] = len(findings) - len(report)
            payload["stale_baseline_entries"] = stale
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for f in report:
            print(f.render())
        if args.statistics:
            counts = {}
            for f in report:
                counts[f.rule] = counts.get(f.rule, 0) + 1
            for rule in sorted(counts):
                print(f"{rule}: {counts[rule]}")
        if args.baseline:
            suppressed = len(findings) - len(report)
            note = f" ({suppressed} baselined"
            if stale:
                note += f", {stale} stale baseline entries"
            note += ")"
            summary = (
                f"{len(report)} new finding{'s' if len(report) != 1 else ''} "
                f"in {files_checked} files{note}"
            )
        else:
            summary = (
                f"{len(report)} finding{'s' if len(report) != 1 else ''} "
                f"in {files_checked} files"
            )
        print(("FAIL: " if report else "ok: ") + summary)
    return 1 if report else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
