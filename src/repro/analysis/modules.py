"""Whole-program project model for simlint v2.

The v1 linter parses one file at a time, so it cannot see a wall-clock
value flowing through three calls into ``Environment.schedule`` or an
allocation introduced two calls below a kernel fast path.  This module
parses the whole package tree *once* and builds the shared substrate the
interprocedural passes (:mod:`callgraph`, :mod:`taint`, :mod:`hotpath`,
:mod:`asyncsafe`, :mod:`conformance`) work from:

* every module's AST, import-alias resolution (``import numpy as np``,
  ``from ..cluster import Cluster``), and suppression comments;
* every function and class, addressable by dotted qualname
  (``repro.des.core.Environment.step``);
* a project-internal class hierarchy (bases resolved through imports)
  with linearized method lookup;
* ``# simlint: hotpath`` / ``# simlint: coldpath`` function markers;
* per-module external-import maps (which local names denote the
  ``time``/``random``/``numpy.random``/... modules) shared by the taint
  and async passes.

The model is deliberately *not* a type checker: it resolves what this
codebase actually writes (direct imports, ``self`` methods, annotated
parameters, ``x = ClassName(...)`` locals) and reports everything else
as unresolved rather than guessing.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = [
    "ExternalImports",
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "ProjectModel",
    "dotted_name",
]

_EXCLUDED_DIRS = {"__pycache__", ".git", "build", "dist", ".venv"}

_MARKER_RE = re.compile(r"#\s*simlint:\s*(hotpath|coldpath)\b")
_DISABLE_RE = re.compile(
    r"#\s*simlint:\s*disable(?:\s*=\s*(?P<rules>[A-Z0-9,\s]+))?"
)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ExternalImports(ast.NodeVisitor):
    """Which local names denote interesting *external* modules/functions.

    One instance per module; the taint and async passes read these maps
    to recognize wall-clock reads, RNG constructors, entropy draws, and
    blocking calls regardless of import style or aliasing.
    """

    def __init__(self) -> None:
        #: local name -> external module it denotes ("time", "numpy.random",
        #: "subprocess", "socket", "os", "uuid", "random", "urllib.request").
        self.modules: Dict[str, str] = {}
        #: local name -> "module.attr" for from-imports of functions
        #: (``from time import monotonic as mono`` -> {"mono":
        #: "time.monotonic"}).
        self.functions: Dict[str, str] = {}

    _TRACKED = {
        "time", "datetime", "random", "numpy", "numpy.random", "os",
        "uuid", "subprocess", "socket", "urllib", "urllib.request",
        "requests",
    }

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name in self._TRACKED:
                bound = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                self.modules[bound] = target

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level or node.module is None:
            return  # relative import: project-internal, handled elsewhere
        mod = node.module
        for alias in node.names:
            bound = alias.asname or alias.name
            full = f"{mod}.{alias.name}"
            if full in self._TRACKED:  # ``from numpy import random``
                self.modules[bound] = full
            elif mod in self._TRACKED or mod.split(".")[0] in self._TRACKED:
                self.functions[bound] = full

    def module_of(self, expr: ast.AST) -> Optional[str]:
        """External module a dotted expression denotes, if any.

        ``np.random`` -> "numpy.random", ``time`` -> "time".
        """
        name = dotted_name(expr)
        if name is None:
            return None
        head, _, rest = name.partition(".")
        base = self.modules.get(head)
        if base is None:
            return None
        return f"{base}.{rest}" if rest else base

    def call_target(self, func: ast.AST) -> Optional[str]:
        """Fully qualified external target of a call's func, if known.

        ``time.monotonic`` -> "time.monotonic"; a bare name bound by a
        from-import resolves through :attr:`functions`.
        """
        if isinstance(func, ast.Name):
            return self.functions.get(func.id)
        if isinstance(func, ast.Attribute):
            mod = self.module_of(func.value)
            if mod is not None:
                return f"{mod}.{func.attr}"
        return None


@dataclass
class FunctionInfo:
    """One function or method in the project."""

    qualname: str
    module: "ModuleInfo"
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    cls: Optional["ClassInfo"] = None
    hotpath: bool = False
    coldpath: bool = False

    @property
    def is_async(self) -> bool:
        return isinstance(self.node, ast.AsyncFunctionDef)

    @property
    def lineno(self) -> int:
        return self.node.lineno

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<fn {self.qualname}>"


@dataclass
class ClassInfo:
    """One class in the project, with project-resolved bases."""

    qualname: str
    module: "ModuleInfo"
    name: str
    node: ast.ClassDef
    #: Base classes as project qualnames where resolvable, else the raw
    #: dotted source text (external bases like ``ABC`` stay raw).
    base_names: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.<attr>`` -> class qualname, inferred from ``self.x =
    #: Cls(...)`` assignments and class-level annotations.
    attr_types: Dict[str, str] = field(default_factory=dict)

    @property
    def lineno(self) -> int:
        return self.node.lineno

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<class {self.qualname}>"


@dataclass
class ModuleInfo:
    """One parsed module."""

    name: str
    path: str
    source: str
    tree: ast.Module
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    ext: ExternalImports = field(default_factory=ExternalImports)
    #: line -> suppressed rule ids (None = all) from ``# simlint: disable``.
    suppressions: Dict[int, Optional[Set[str]]] = field(default_factory=dict)
    lines: List[str] = field(default_factory=list)

    @property
    def scope_dirs(self) -> Set[str]:
        parts = set(Path(self.path).parts)
        parts.update(self.name.split("."))
        return parts

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def is_suppressed(self, lineno: int, rule: str) -> bool:
        rules = self.suppressions.get(lineno, ())
        return rules is None or rule in rules

    def has_marker(self, node: ast.AST) -> Optional[str]:
        """``hotpath``/``coldpath`` marker on the def line or just above."""
        lineno = getattr(node, "lineno", 0)
        for candidate in (lineno, lineno - 1):
            m = _MARKER_RE.search(self.line_text(candidate))
            if m:
                return m.group(1)
        return None


class ProjectModel:
    """All modules of one package, cross-linked and resolvable."""

    def __init__(self, package: str) -> None:
        self.package = package
        self.modules: Dict[str, ModuleInfo] = {}
        #: Every function/method by qualname.
        self.functions: Dict[str, FunctionInfo] = {}
        #: Every class by qualname.
        self.classes: Dict[str, ClassInfo] = {}
        #: Class *name* -> qualnames (for name-based sink matching).
        self.classes_by_name: Dict[str, List[str]] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def load(cls, root: Path) -> "ProjectModel":
        """Parse every ``.py`` under ``root`` (a package directory)."""
        root = Path(root)
        model = cls(package=root.name)
        files = []
        for sub in sorted(root.rglob("*.py")):
            parts = set(sub.parts)
            if parts & _EXCLUDED_DIRS or any(
                part.endswith(".egg-info") for part in sub.parts
            ):
                continue
            files.append(sub)
        for path in files:
            rel = path.relative_to(root)
            dotted = [root.name, *rel.parts[:-1]]
            stem = rel.stem
            if stem != "__init__":
                dotted.append(stem)
            name = ".".join(dotted)
            try:
                source = path.read_text(encoding="utf-8")
            except OSError:  # pragma: no cover - unreadable file
                continue
            model._add_source(name, str(path), source)
        model._link()
        return model

    @classmethod
    def from_sources(
        cls, sources: Dict[str, str], package: Optional[str] = None
    ) -> "ProjectModel":
        """Build a model from in-memory sources (tests, fixtures).

        Keys are dotted module names (``"pkg.a"``); synthetic paths are
        derived from them.
        """
        if package is None:
            package = next(iter(sources)).split(".")[0] if sources else "pkg"
        model = cls(package=package)
        for name, source in sources.items():
            path = name.replace(".", "/") + ".py"
            model._add_source(name, path, source)
        model._link()
        return model

    def _add_source(self, name: str, path: str, source: str) -> None:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            # Syntax errors are the file-local pass's REP000 problem; the
            # project model simply skips the module.
            return
        mod = ModuleInfo(
            name=name, path=path, source=source, tree=tree,
            lines=source.splitlines(),
        )
        mod.ext.visit(tree)
        for lineno, line in enumerate(mod.lines, start=1):
            m = _DISABLE_RE.search(line)
            if m:
                rules = m.group("rules")
                mod.suppressions[lineno] = (
                    None if rules is None
                    else {r.strip() for r in rules.split(",") if r.strip()}
                )
        self._collect_imports(mod)
        self._collect_defs(mod)
        self.modules[name] = mod

    def _collect_imports(self, mod: ModuleInfo) -> None:
        pkg_parts = mod.name.split(".")
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    mod.imports[bound] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    # Relative import: resolve against this module's
                    # package (``__init__`` modules count as packages).
                    is_pkg = mod.path.endswith("__init__.py")
                    drop = node.level - (1 if is_pkg else 0)
                    base_parts = pkg_parts[: len(pkg_parts) - drop]
                    base = ".".join(base_parts)
                    target = f"{base}.{node.module}" if node.module else base
                else:
                    target = node.module or ""
                for alias in node.names:
                    bound = alias.asname or alias.name
                    mod.imports[bound] = (
                        f"{target}.{alias.name}" if target else alias.name
                    )

    def _collect_defs(self, mod: ModuleInfo) -> None:
        for node in mod.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(mod, node, cls=None)
            elif isinstance(node, ast.ClassDef):
                self._add_class(mod, node)

    def _add_function(
        self,
        mod: ModuleInfo,
        node: ast.AST,
        cls: Optional[ClassInfo],
    ) -> FunctionInfo:
        name = node.name  # type: ignore[attr-defined]
        qual = f"{cls.qualname}.{name}" if cls else f"{mod.name}.{name}"
        marker = mod.has_marker(node)
        fn = FunctionInfo(
            qualname=qual, module=mod, name=name, node=node, cls=cls,
            hotpath=marker == "hotpath", coldpath=marker == "coldpath",
        )
        if cls is not None:
            cls.methods[name] = fn
        else:
            mod.functions[name] = fn
        self.functions[qual] = fn
        return fn

    def _add_class(self, mod: ModuleInfo, node: ast.ClassDef) -> None:
        qual = f"{mod.name}.{node.name}"
        info = ClassInfo(qualname=qual, module=mod, name=node.name, node=node)
        for base in node.bases:
            raw = dotted_name(base)
            if raw is not None:
                info.base_names.append(raw)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(mod, item, cls=info)
            elif isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                t = annotation_class_name(item.annotation)
                if t is not None:
                    info.attr_types[item.target.id] = t
        mod.classes[node.name] = info
        self.classes[qual] = info
        self.classes_by_name.setdefault(node.name, []).append(qual)

    def _link(self) -> None:
        """Resolve class bases and self-attr types after all modules load."""
        for cls in self.classes.values():
            resolved = []
            for raw in cls.base_names:
                target = self.resolve(cls.module, raw)
                resolved.append(target if target in self.classes else raw)
            cls.base_names = resolved
            # ``self.x = Cls(...)`` anywhere in the class body.
            for method in cls.methods.values():
                for node in ast.walk(method.node):
                    if not isinstance(node, ast.Assign):
                        continue
                    value = node.value
                    if not (
                        isinstance(value, ast.Call)
                        and dotted_name(value.func) is not None
                    ):
                        continue
                    target_cls = self.resolve(
                        cls.module, dotted_name(value.func)  # type: ignore[arg-type]
                    )
                    if target_cls not in self.classes:
                        continue
                    for tgt in node.targets:
                        if (
                            isinstance(tgt, ast.Attribute)
                            and isinstance(tgt.value, ast.Name)
                            and tgt.value.id == "self"
                        ):
                            cls.attr_types.setdefault(tgt.attr, target_cls)
            # Annotation strings in attr_types -> project qualnames.
            for attr, raw in list(cls.attr_types.items()):
                if raw not in self.classes:
                    target = self.resolve(cls.module, raw)
                    if target in self.classes:
                        cls.attr_types[attr] = target
                    else:
                        del cls.attr_types[attr]

    # -- resolution --------------------------------------------------------

    def resolve(self, mod: ModuleInfo, name: str) -> Optional[str]:
        """Resolve a dotted source name to a project qualname.

        Follows import aliases: in a module with ``from ..cluster import
        Cluster``, ``resolve(mod, "Cluster")`` is
        ``"repro.cluster.Cluster"``.  Returns ``None`` for names that do
        not land in the project.
        """
        if name is None:  # pragma: no cover - defensive
            return None
        head, _, rest = name.partition(".")
        target: Optional[str] = None
        if head in mod.imports:
            target = mod.imports[head]
        elif head in mod.classes:
            target = f"{mod.name}.{head}"
        elif head in mod.functions:
            target = f"{mod.name}.{head}"
        if target is None:
            return None
        full = f"{target}.{rest}" if rest else target
        # Normalize through re-exports: "repro.des.Environment" imported
        # from the package __init__ still names the class; chase one
        # level of package-module indirection.
        if full in self.classes or full in self.functions or full in self.modules:
            return full
        # ``pkg.mod.Class.method``-shaped?  Leave as-is for callers that
        # chase attributes themselves.
        parent, _, leaf = full.rpartition(".")
        if parent in self.modules:
            pm = self.modules[parent]
            if leaf in pm.imports:
                return self.resolve(pm, leaf)
        return full

    def function_at(self, qualname: str) -> Optional[FunctionInfo]:
        return self.functions.get(qualname)

    # -- class hierarchy ---------------------------------------------------

    def mro(self, cls: ClassInfo) -> List[ClassInfo]:
        """Project-internal linearization (C3 is overkill here): the
        class, then bases depth-first, left to right, deduplicated."""
        out: List[ClassInfo] = []
        seen: Set[str] = set()

        def walk(c: ClassInfo) -> None:
            if c.qualname in seen:
                return
            seen.add(c.qualname)
            out.append(c)
            for base in c.base_names:
                bc = self.classes.get(base)
                if bc is not None:
                    walk(bc)

        walk(cls)
        return out

    def lookup_method(
        self, cls: ClassInfo, name: str, *, skip_self: bool = False
    ) -> Optional[FunctionInfo]:
        chain = self.mro(cls)
        if skip_self:
            chain = chain[1:]
        for c in chain:
            if name in c.methods:
                return c.methods[name]
        return None

    def subclasses(self, qualname: str) -> List[ClassInfo]:
        """Transitive project subclasses of ``qualname``."""
        out = []
        for cls in self.classes.values():
            if cls.qualname == qualname:
                continue
            if any(c.qualname == qualname for c in self.mro(cls)[1:]):
                out.append(cls)
        return out


def annotation_class_name(node: Optional[ast.AST]) -> Optional[str]:
    """Class name a simple annotation denotes, unwrapping Optional/quotes.

    ``Environment`` -> "Environment"; ``Optional["Cluster"]`` ->
    "Cluster"; anything structural (unions, containers) -> None.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value or None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return dotted_name(node)
    if isinstance(node, ast.Subscript):
        base = annotation_class_name(node.value)
        if base in ("Optional",) or (base or "").endswith(".Optional"):
            return annotation_class_name(node.slice)
    return None


def iter_project_files(paths: Sequence[str]) -> List[Tuple[Path, Path]]:
    """(package_root, file) pairs for package dirs among ``paths``.

    A directory that contains ``__init__.py`` is a package root; for a
    plain directory (e.g. ``src``) its immediate package children are
    the roots.  Used by the CLI to decide what the project passes see.
    """
    roots: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if not p.is_dir():
            continue
        if (p / "__init__.py").is_file():
            roots.append(p)
        else:
            for child in sorted(p.iterdir()):
                if child.is_dir() and (child / "__init__.py").is_file():
                    roots.append(child)
    out = []
    for root in roots:
        for sub in sorted(root.rglob("*.py")):
            out.append((root, sub))
    return out
