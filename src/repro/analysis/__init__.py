"""``repro.analysis`` — correctness tooling for the simulator.

Two complementary halves:

* :mod:`repro.analysis.simlint` — **simlint**, a repo-specific AST
  linter that flags determinism hazards (unseeded RNGs, unordered-set
  iteration feeding scheduling decisions, wall-clock reads in the
  kernel, ``id()``-based ordering, mutable default arguments, swallowed
  exceptions).  Run it as ``repro lint``.
* :mod:`repro.des.sanitize` — the runtime DES sanitizer
  (``Environment(sanitize=True)`` / ``REPRO_DES_SANITIZE=1``), re-exported
  here for convenience: use-after-recycle poisoning, scheduler invariant
  checks, double-trigger detection, and an end-of-run leak report.

See ``docs/ANALYSIS.md`` for the rule catalog and rationale.
"""

from ..des.sanitize import (
    DESSanitizer,
    LeakReport,
    SanitizerError,
    Violation,
    force_recycle,
)
from .simlint import (
    RULES,
    Finding,
    lint_file,
    lint_paths,
    lint_source,
)
from .simlint import main as lint_main

__all__ = [
    "RULES",
    "Finding",
    "lint_source",
    "lint_file",
    "lint_paths",
    "lint_main",
    "DESSanitizer",
    "SanitizerError",
    "LeakReport",
    "Violation",
    "force_recycle",
]
