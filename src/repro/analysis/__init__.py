"""``repro.analysis`` — correctness tooling for the simulator.

Three complementary layers:

* :mod:`repro.analysis.simlint` — the file-local AST rules
  (REP001–REP008: unseeded RNGs, unordered-set iteration, wall-clock
  reads in the kernel, ``id()``-based ordering, mutable defaults,
  swallowed exceptions, unseeded fault RNG ctors, fragile oracles).
* The whole-program passes over a :class:`~.modules.ProjectModel` and
  its :class:`~.callgraph.CallGraph`: nondeterminism taint with full
  source→sink provenance (:mod:`~.taint`, REP101–REP103), hot-path
  allocation lint for ``# simlint: hotpath`` functions
  (:mod:`~.hotpath`, REP104), async-safety for ``repro.live``
  (:mod:`~.asyncsafe`, REP105–REP106), and DistributionPolicy contract
  conformance (:mod:`~.conformance`, REP107).  Rule metadata lives in
  the table-driven registry (:mod:`~.rules`); the ``repro lint`` CLI —
  ``--baseline``, ``--sarif``, ``--explain`` — in :mod:`~.engine`.
* :mod:`repro.des.sanitize` — the runtime DES sanitizer
  (``Environment(sanitize=True)`` / ``REPRO_DES_SANITIZE=1``),
  re-exported here for convenience.

See ``docs/ANALYSIS.md`` for the rule catalog and rationale.
"""

from ..des.sanitize import (
    DESSanitizer,
    LeakReport,
    SanitizerError,
    Violation,
    force_recycle,
)
from .rules import REGISTRY, RULES, Rule, explain, rule_ids
from .simlint import (
    Finding,
    lint_file,
    lint_paths,
    lint_source,
)
from .simlint import main as lint_main

__all__ = [
    "REGISTRY",
    "RULES",
    "Rule",
    "explain",
    "rule_ids",
    "Finding",
    "lint_source",
    "lint_file",
    "lint_paths",
    "lint_main",
    "DESSanitizer",
    "SanitizerError",
    "LeakReport",
    "Violation",
    "force_recycle",
]
