"""The simlint rule registry — one table, every consumer.

Rule metadata used to live in three places that drifted independently:
the ``RULES`` dict in :mod:`simlint`, the hardcoded prefix check behind
``--select``, and the catalog table in ``docs/ANALYSIS.md``.  This module
is now the single source of truth: every rule — the file-local v1 rules
(REP001–REP008) and the whole-program v2 passes (REP101–REP107) — is a
:class:`Rule` entry here, and ``--select``/``--ignore`` validation,
``--list-rules``, ``--explain``, SARIF rule descriptors, and the docs
catalog all read this table.

Adding a rule is: implement the check, add the entry.  Nothing else to
keep in sync.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = ["Rule", "REGISTRY", "RULES", "rule_ids", "explain"]

#: Analysis pass names (who emits the rule).
LOCAL = "local"              # per-file AST pass (simlint v1)
TAINT = "taint"              # interprocedural nondeterminism taint
HOTPATH = "hotpath"          # hot-path allocation lint
ASYNC = "async"              # async-safety pass (repro.live)
CONFORMANCE = "conformance"  # DistributionPolicy contract pass
WALLCLOCK = "wallclock"      # overload substrate-neutrality pass


@dataclass(frozen=True)
class Rule:
    """One lint rule: identity, catalog line, and the --explain text."""

    id: str
    name: str
    summary: str
    #: Which analysis pass emits it (``local`` rules run per file; the
    #: others need the whole-project model).
    pass_name: str
    #: Multi-line rationale printed by ``repro lint --explain REPxxx``.
    explain: str


def _r(id: str, name: str, summary: str, pass_name: str, explain: str) -> Rule:
    return Rule(id=id, name=name, summary=summary, pass_name=pass_name,
                explain=explain.strip())


#: Every rule, in id order.  ``REP000`` is the pseudo-rule syntax errors
#: are reported under (it cannot be selected or suppressed away).
REGISTRY: Dict[str, Rule] = {
    r.id: r
    for r in (
        _r(
            "REP001", "unseeded-global-rng",
            "unseeded-global-rng: module-level random/numpy.random call",
            LOCAL,
            """
Calls into the module-level ``random`` / ``numpy.random`` API in
simulation code.  The global RNG is implicitly seeded and shared: any
import-order or call-order change anywhere in the process shifts every
draw after it.  Use a seeded ``random.Random(seed)`` /
``numpy.random.default_rng(seed)`` instance.
            """,
        ),
        _r(
            "REP002", "unordered-iteration",
            "unordered-iteration: iterating a set (or dict.keys) where "
            "order matters",
            LOCAL,
            """
Iteration over a ``set``/``frozenset`` (or ``dict.keys()`` views used as
an ordering source).  Set iteration order depends on insertion history
and — for str keys — the per-process hash seed, so the same program can
dispatch requests in a different order on the next run.  Sort, or use an
ordered structure (dicts preserve insertion order).
            """,
        ),
        _r(
            "REP003", "wall-clock",
            "wall-clock: real-time read inside simulation code",
            LOCAL,
            """
Wall-clock reads (``time.time``, ``datetime.now``, ...) inside the
kernel/simulation packages.  Simulated code must read ``env.now``; a
wall-clock read couples results to host speed.  The live substrate
(``repro.live``) is exempt — there, wall-clock seconds *are* the
policies' injected Clock.
            """,
        ),
        _r(
            "REP004", "id-ordering",
            "id-ordering: ordering or hashing derived from id()",
            LOCAL,
            """
``id()``-based ordering or hashing (``sorted(key=id)``,
``hash(id(x))``, ``id(a) < id(b)``).  CPython ids are allocation
addresses: they vary run to run and recycle after GC, so any order
derived from them is nondeterministic.  Identity *equality* is fine.
            """,
        ),
        _r(
            "REP005", "mutable-default",
            "mutable-default: mutable default argument",
            LOCAL,
            """
Mutable default arguments are allocated once and shared across calls —
state bleeds between otherwise independent simulations.  Default to
``None`` and allocate inside the function.
            """,
        ),
        _r(
            "REP006", "swallowed-exception",
            "swallowed-exception: bare or blanket exception handler",
            LOCAL,
            """
Bare ``except:`` or blanket ``except Exception: pass`` handlers.  In
event callbacks these silently eat the generator/callback failures the
kernel relies on to surface broken runs (including ``Interrupt``).
Name the exceptions or handle the error.
            """,
        ),
        _r(
            "REP007", "unseeded-instance-rng",
            "unseeded-instance-rng: zero-argument RNG constructor in "
            "fault-injection code",
            LOCAL,
            """
Zero-argument RNG constructors (``random.Random()``,
``numpy.random.default_rng()``) inside the fault-injection packages.
An instance seeded from OS entropy makes every fault/loss schedule
differ run to run; pass an explicit seed so injected failures replay.
            """,
        ),
        _r(
            "REP008", "fragile-oracle-check",
            "fragile-oracle-check: float ==/!= literal comparison or "
            "wall-clock-derived assert in chaos code",
            LOCAL,
            """
In chaos/oracle code: comparing against a float literal with ``==`` /
``!=``, or an ``assert`` whose condition derives from a wall-clock
read.  Float-equality oracles pass or fail on representation noise, and
wall-clock asserts make a replayed scenario's verdict depend on machine
speed — both break the "same scenario, same verdict" contract.
            """,
        ),
        _r(
            "REP101", "taint-scheduling",
            "taint-scheduling: nondeterministic value flows into a kernel "
            "scheduling call",
            TAINT,
            """
A nondeterministic value — a wall-clock read, a draw from an unseeded
RNG, OS entropy (``os.urandom``/``uuid.uuid4``), or a value whose order
came from set/dict iteration — flows (possibly through several function
calls and modules) into an ``Environment`` scheduling sink:
``timeout()``, ``call_later()``, ``schedule_callback()``,
``succeed_at()``, ``_schedule()``, or a ``Timeout`` constructor.  Event
timing then differs run to run, which breaks byte-identical replay.
The finding reports the full source → sink path.  Derive delays from
simulated state and seeded RNG instances only.
            """,
        ),
        _r(
            "REP102", "taint-result",
            "taint-result: nondeterministic value flows into a SimResult",
            TAINT,
            """
A nondeterministic value (same sources as REP101) flows into a
``SimResult`` — the measurement record the figures, the bench
regression gate, and the byte-identity suites compare.  A tainted field
makes two runs with the same seed report different results even when
the simulation itself was deterministic.  The finding reports the full
source → sink path.
            """,
        ),
        _r(
            "REP103", "taint-scenario",
            "taint-scenario: nondeterministic value flows into scenario "
            "generation",
            TAINT,
            """
A nondeterministic value (same sources as REP101) flows into chaos
scenario generation — a ``Scenario``/``PlanItem`` construction or a
``ScenarioGenerator`` method.  A scenario whose shape depends on wall
clocks or unseeded entropy cannot be replayed or shrunk: the
per-(seed, trial) regeneration contract requires every scenario to be a
pure function of its seed.  The finding reports the full source → sink
path.
            """,
        ),
        _r(
            "REP104", "hotpath-allocation",
            "hotpath-allocation: allocating construct reachable from a "
            "'# simlint: hotpath' function",
            HOTPATH,
            """
A function marked ``# simlint: hotpath`` (or any project function
reachable from one through the call graph) contains an
allocation-bearing construct: a comprehension or generator expression,
a list/set/dict literal, a ``lambda``, a nested ``def``, an f-string,
or a call to ``dict``/``list``/``set``/``deque``/... factories.  These
marked functions are the kernel v3 fast paths that run per event; a
single stray allocation there erodes the measured speedups the bench
gate protects.  Constructs inside ``raise`` statements are exempt
(error paths are cold), and traversal stops at functions marked
``# simlint: coldpath``.  Entry tuples are deliberately not flagged:
the ``(time, priority, eid, event)`` tuple is the scheduler contract.
            """,
        ),
        _r(
            "REP105", "async-blocking",
            "async-blocking: blocking call reachable inside 'async def'",
            ASYNC,
            """
A blocking call — ``time.sleep``, the sync ``subprocess`` API, sync
socket connects, ``urllib.request.urlopen``, or plain ``open()``/file
reads — executes inside an ``async def``, either directly or through a
chain of synchronous project calls (the finding reports the chain).  A
blocking call stalls the whole event loop: in ``repro.live`` that
freezes every in-flight connection of the front-end or a back-end
worker and skews the measured latencies the sim-vs-live compare scores.
Use the asyncio equivalent (``asyncio.sleep``, subprocess, open
connection APIs) or push the work into ``run_in_executor``.
            """,
        ),
        _r(
            "REP106", "never-awaited",
            "never-awaited: coroutine created but never awaited",
            ASYNC,
            """
A call to an ``async def`` whose returned coroutine is never awaited —
a bare expression statement, or an assignment to a name that is never
used again.  The coroutine body silently never runs (Python only warns
at GC time, nondeterministically), so the hook/cleanup it was supposed
to perform is skipped.  ``await`` it, or hand it to
``asyncio.create_task``/``gather``.
            """,
        ),
        _r(
            "REP107", "policy-conformance",
            "policy-conformance: DistributionPolicy subclass violates the "
            "check_invariants/bind contract",
            CONFORMANCE,
            """
Every concrete ``DistributionPolicy`` in ``servers/`` must uphold the
contract both substrates assume: (1) implement ``check_invariants`` —
the chaos oracle calls it mid-run and post-run, and a policy relying on
the base no-op silently opts out of the invariant gate; (2) an
overridden ``bind``/``__init__`` must call ``super()`` so the
cluster/clock/failed-node wiring happens before any hook fires
(``repro.live``'s PolicyEngine binds the same objects); (3) read time
only through ``self.clock`` — reaching into ``cluster.env`` couples the
policy to the DES and silently breaks it on the live substrate.
            """,
        ),
        _r(
            "REP108", "overload-wallclock",
            "overload-wallclock: overload component imports or calls a "
            "wall clock",
            WALLCLOCK,
            """
Modules in the ``overload`` package (admission controller, circuit
breakers, adaptive concurrency limit) run the same object on both
substrates and receive time exclusively as a ``now`` argument.  Any
import of ``time``/``datetime`` there — or an aliased call resolving to
them — is flagged: a component that reads a clock itself leaks wall
time into limit trajectories and breaker cooldowns, breaking
byte-identical sim replay and the sim-vs-live acceptance scoring.
            """,
        ),
    )
}

#: Rule id -> catalog summary line.  Kept as a plain dict for backwards
#: compatibility (v1 consumers iterate ``RULES``); derived from
#: :data:`REGISTRY` so the two can never drift.
RULES: Dict[str, str] = {rid: rule.summary for rid, rule in REGISTRY.items()}


def rule_ids() -> Tuple[str, ...]:
    """Every known rule id, sorted."""
    return tuple(sorted(REGISTRY))


def explain(rule_id: str) -> str:
    """The long-form rationale for ``--explain``; raises KeyError."""
    rule = REGISTRY[rule_id]
    header = f"{rule.id} ({rule.name}) — {rule.pass_name} pass"
    return f"{header}\n{'=' * len(header)}\n{rule.explain}\n"
