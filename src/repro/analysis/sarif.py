"""Minimal SARIF 2.1.0 serialization for simlint findings.

Enough of the standard for GitHub code scanning and editor ingestion:
one run, one driver, rule descriptors straight from the registry, one
result per finding with the provenance trace attached both as related
locations and in the message body.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List

from .rules import REGISTRY
from .simlint import Finding

__all__ = ["to_sarif"]

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_TRACE_LOC_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+):\s*(?P<note>.*)$")


def _rule_descriptor(rule_id: str) -> Dict[str, object]:
    rule = REGISTRY.get(rule_id)
    if rule is None:  # REP000 syntax pseudo-rule
        return {"id": rule_id, "name": "syntax-error"}
    return {
        "id": rule.id,
        "name": rule.name,
        "shortDescription": {"text": rule.summary},
        "fullDescription": {"text": rule.explain},
    }


def _location(path: str, line: int, col: int = 1) -> Dict[str, object]:
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": path},
            "region": {"startLine": max(1, line), "startColumn": max(1, col)},
        }
    }


def _result(finding: Finding) -> Dict[str, object]:
    message = finding.message
    if finding.trace:
        message += "\n" + "\n".join(finding.trace)
    out: Dict[str, object] = {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": message},
        "locations": [_location(finding.path, finding.line, finding.col)],
    }
    related = []
    for step in finding.trace:
        m = _TRACE_LOC_RE.match(step)
        if not m:
            continue
        loc = _location(m.group("path"), int(m.group("line")))
        loc["message"] = {"text": m.group("note")}
        related.append(loc)
    if related:
        out["relatedLocations"] = related
    return out


def to_sarif(findings: List[Finding], *, tool_version: str = "2.0") -> str:
    rule_ids = sorted({f.rule for f in findings} | set(REGISTRY))
    doc = {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "informationUri":
                            "https://example.invalid/repro/docs/ANALYSIS.md",
                        "version": tool_version,
                        "rules": [_rule_descriptor(r) for r in rule_ids],
                    }
                },
                "results": [_result(f) for f in findings],
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
