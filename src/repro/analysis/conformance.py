"""DistributionPolicy conformance pass (REP107).

Both substrates — the DES driver and ``repro.live``'s PolicyEngine —
assume every concrete ``DistributionPolicy`` upholds the same contract:

1. ``check_invariants`` is implemented (by the class or a non-base
   ancestor).  The chaos oracle calls it mid-run and post-run; a policy
   that silently inherits the base's empty list opts out of the
   invariant gate without anyone noticing.
2. An overridden ``bind`` / ``__init__`` calls ``super()`` — the base
   ``bind`` wires ``cluster``/``clock``/failed-node state *before*
   ``_setup`` and any hook fires, identically on both substrates.
3. Policy code reads time through ``self.clock`` only.  Reaching into
   ``cluster.env`` couples the policy to the DES and breaks it silently
   when the live engine binds a ``WallClock``.
"""

from __future__ import annotations

import ast
from typing import List, Set, Tuple

from .callgraph import CallGraph
from .modules import ClassInfo, FunctionInfo, ProjectModel
from .simlint import Finding

__all__ = ["run"]

_BASE_NAME = "DistributionPolicy"


def _shorten(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qualname


def _calls_super(fn: FunctionInfo, method: str) -> bool:
    for node in ast.walk(fn.node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == method
            and isinstance(node.func.value, ast.Call)
            and isinstance(node.func.value.func, ast.Name)
            and node.func.value.func.id == "super"
        ):
            return True
    return False


def _env_reads(fn: FunctionInfo) -> List[Tuple[int, int, str]]:
    """``<anything>.cluster.env`` attribute chains inside ``fn``."""
    out = []
    for node in ast.walk(fn.node):
        if (
            isinstance(node, ast.Attribute)
            and node.attr == "env"
            and isinstance(node.value, ast.Attribute)
            and node.value.attr == "cluster"
        ):
            out.append(
                (node.lineno, node.col_offset + 1,
                 ast.unparse(node))
            )
    return out


def run(model: ProjectModel, graph: CallGraph) -> List[Finding]:
    del graph  # contract checks are hierarchy-based, not call-based
    bases = model.classes_by_name.get(_BASE_NAME, [])
    if not bases:
        return []
    base_quals: Set[str] = set(bases)
    findings: List[Finding] = []
    seen: Set[str] = set()
    for base in bases:
        for cls in model.subclasses(base):
            if cls.qualname in seen or cls.qualname in base_quals:
                continue
            seen.add(cls.qualname)
            findings.extend(_check_policy(model, cls, base_quals))
    findings.sort(key=lambda f: (f.path, f.line, f.col))
    return findings


def _check_policy(
    model: ProjectModel, cls: ClassInfo, base_quals: Set[str]
) -> List[Finding]:
    findings: List[Finding] = []
    mod = cls.module
    cls_trace = (
        f"{mod.path}:{cls.lineno}: class {cls.qualname}"
        f"({', '.join(cls.base_names)})",
    )

    # (1) check_invariants must come from below the base class.
    impl = model.lookup_method(cls, "check_invariants")
    impl_owner = impl.cls.qualname if impl and impl.cls else None
    if impl is None or impl_owner in base_quals:
        if not mod.is_suppressed(cls.lineno, "REP107"):
            where = (
                "only the DistributionPolicy base no-op" if impl is not None
                else "nothing"
            )
            findings.append(
                Finding(
                    path=mod.path, line=cls.lineno,
                    col=cls.node.col_offset + 1, rule="REP107",
                    message=(
                        f"policy {cls.name} resolves check_invariants to "
                        f"{where}; the chaos oracle's invariant gate is a "
                        "silent no-op for it"
                    ),
                    trace=cls_trace + (
                        f"{mod.path}:{cls.lineno}: no check_invariants "
                        "override anywhere in its MRO below the base",
                    ),
                )
            )

    # (2) overridden bind/__init__ must call super().
    for method in ("bind", "__init__"):
        own = cls.methods.get(method)
        if own is None:
            continue
        if not _calls_super(own, method):
            if mod.is_suppressed(own.lineno, "REP107"):
                continue
            findings.append(
                Finding(
                    path=mod.path, line=own.lineno,
                    col=own.node.col_offset + 1, rule="REP107",
                    message=(
                        f"{cls.name}.{method} overrides the base without "
                        f"calling super().{method}(); cluster/clock wiring "
                        "is skipped before hooks fire"
                    ),
                    trace=cls_trace + (
                        f"{mod.path}:{own.lineno}: def {method} has no "
                        f"super().{method}(...) call",
                    ),
                )
            )

    # (3) no ``*.cluster.env`` reads in the policy's own methods
    # (inherited methods are reported on the class that defines them).
    for m in cls.methods.values():
        for line, col, text in _env_reads(m):
            if mod.is_suppressed(line, "REP107"):
                continue
            findings.append(
                Finding(
                    path=mod.path, line=line, col=col, rule="REP107",
                    message=(
                        f"{cls.name}.{m.name} reads {text}: policies "
                        "must read time via self.clock so they run on "
                        "the live substrate"
                    ),
                    trace=cls_trace + (
                        f"{mod.path}:{line}: {text} read in "
                        f"{_shorten(m.qualname)}",
                    ),
                )
            )
    return findings
