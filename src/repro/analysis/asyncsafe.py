"""Async-safety pass for the live substrate (REP105–REP106).

REP105: a blocking call (``time.sleep``, the sync ``subprocess`` API,
``socket.create_connection``, ``urllib.request.urlopen``, ``requests.*``,
plain ``open()``) that executes inside an ``async def`` — directly or
through any chain of synchronous project calls the call graph can
resolve.  One blocked coroutine stalls the whole event loop, which in
``repro.live`` freezes every in-flight connection of the front-end and
skews the latencies the sim-vs-live compare scores.  Calls routed
through ``run_in_executor`` / ``asyncio.to_thread`` are not findings —
those run off-loop, and the call graph sees the function reference, not
a call.

REP106: a call to a project ``async def`` whose coroutine is never
awaited — a bare expression statement, or an assignment to a name that
is never read again.  The body silently never runs.  Wrapping the
coroutine in ``asyncio.create_task`` / ``ensure_future`` / ``gather`` /
``wait`` / ``run`` counts as consumption.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from .callgraph import CallGraph
from .modules import FunctionInfo, ProjectModel
from .simlint import Finding

__all__ = ["run"]

_BLOCKING_EXTERNAL = {
    "time.sleep": "time.sleep() blocks the event loop; use asyncio.sleep",
    "subprocess.run": "sync subprocess.run(); use asyncio.create_subprocess_*",
    "subprocess.call": "sync subprocess.call(); use asyncio.create_subprocess_*",
    "subprocess.check_call":
        "sync subprocess.check_call(); use asyncio.create_subprocess_*",
    "subprocess.check_output":
        "sync subprocess.check_output(); use asyncio.create_subprocess_*",
    "socket.create_connection":
        "sync socket.create_connection(); use asyncio.open_connection",
    "urllib.request.urlopen":
        "sync urllib.request.urlopen(); use an executor",
    "requests.get": "sync requests.get(); use an executor",
    "requests.post": "sync requests.post(); use an executor",
}

#: Wrappers that legitimately consume a coroutine object.
_COROUTINE_CONSUMERS = {
    "create_task", "ensure_future", "gather", "wait", "wait_for", "run",
    "run_coroutine_threadsafe", "shield",
}


def _shorten(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qualname


def _chain_trace(
    model: ProjectModel, path: Tuple[str, ...]
) -> Tuple[str, ...]:
    out: List[str] = []
    for i, qual in enumerate(path):
        fn = model.functions[qual]
        note = (
            "async def (event-loop context)" if i == 0
            else f"called by {_shorten(path[i - 1])}"
        )
        out.append(f"{fn.module.path}:{fn.lineno}: {qual} ({note})")
    return tuple(out)


def _blocking_sites(
    model: ProjectModel, graph: CallGraph, fn: FunctionInfo
) -> List[Tuple[int, int, str]]:
    """(line, col, why) for blocking calls directly inside ``fn``."""
    out: List[Tuple[int, int, str]] = []
    for site in graph.callees(fn.qualname):
        if site.external in _BLOCKING_EXTERNAL:
            out.append(
                (site.lineno, site.node.col_offset + 1,
                 _BLOCKING_EXTERNAL[site.external])
            )
    for node in ast.walk(fn.node):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "open"
        ):
            out.append(
                (node.lineno, node.col_offset + 1,
                 "open() does blocking file I/O; use an executor")
            )
    return out


def _check_blocking(
    model: ProjectModel, graph: CallGraph
) -> List[Finding]:
    roots = [q for q, fn in model.functions.items() if fn.is_async]
    if not roots:
        return []
    reach = graph.reachable_from(roots)
    findings: List[Finding] = []
    seen: Set[Tuple[str, int, int]] = set()
    for qual, path in sorted(reach.items()):
        fn = model.functions[qual]
        mod = fn.module
        for line, col, why in _blocking_sites(model, graph, fn):
            if mod.is_suppressed(line, "REP105"):
                continue
            key = (mod.path, line, col)
            if key in seen:
                continue
            seen.add(key)
            depth = len(path) - 1
            via = (
                "" if depth == 0
                else f" ({depth} call{'s' if depth > 1 else ''} below "
                f"async {_shorten(path[0])})"
            )
            findings.append(
                Finding(
                    path=mod.path, line=line, col=col, rule="REP105",
                    message=f"{why}{via}",
                    trace=_chain_trace(model, path)
                    + (f"{mod.path}:{line}: blocking call", ),
                )
            )
    return findings


def _consumed_calls(fn: FunctionInfo) -> Set[int]:
    """ids of Call nodes that are awaited or handed to a consumer."""
    consumed: Set[int] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Await):
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call):
                    consumed.add(id(sub))
        elif isinstance(node, ast.Call):
            f = node.func
            name = (
                f.attr if isinstance(f, ast.Attribute)
                else f.id if isinstance(f, ast.Name) else None
            )
            if name in _COROUTINE_CONSUMERS:
                for arg in [*node.args, *(kw.value for kw in node.keywords)]:
                    for sub in ast.walk(arg):
                        if isinstance(sub, ast.Call):
                            consumed.add(id(sub))
        elif isinstance(node, ast.Return) and node.value is not None:
            # ``return coro()`` hands the coroutine to the caller.
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Call):
                    consumed.add(id(sub))
        elif isinstance(node, (ast.Yield, ast.YieldFrom)) and node.value:
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Call):
                    consumed.add(id(sub))
    return consumed


def _check_never_awaited(
    model: ProjectModel, graph: CallGraph
) -> List[Finding]:
    findings: List[Finding] = []
    for qual, fn in model.functions.items():
        async_calls: Dict[int, Tuple[ast.Call, str]] = {}
        for site in graph.callees(qual):
            if site.target is None:
                continue
            callee = model.functions.get(site.target)
            if callee is not None and callee.is_async:
                async_calls[id(site.node)] = (site.node, site.target)
        if not async_calls:
            continue
        consumed = _consumed_calls(fn)
        mod = fn.module
        # Name loads, for the assigned-but-never-read case.
        loads: Dict[str, int] = {}
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                loads[node.id] = loads.get(node.id, 0) + 1

        def emit(call: ast.Call, target: str, how: str) -> None:
            if mod.is_suppressed(call.lineno, "REP106"):
                return
            callee = model.functions[target]
            findings.append(
                Finding(
                    path=mod.path,
                    line=call.lineno,
                    col=call.col_offset + 1,
                    rule="REP106",
                    message=(
                        f"coroutine {_shorten(target)}() is never awaited "
                        f"({how}); its body silently never runs"
                    ),
                    trace=(
                        f"{callee.module.path}:{callee.lineno}: "
                        f"async def {target}",
                        f"{mod.path}:{call.lineno}: called from "
                        f"{_shorten(qual)} without await",
                    ),
                )
            )

        for node in ast.walk(fn.node):
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                info = async_calls.get(id(node.value))
                if info and id(node.value) not in consumed:
                    emit(node.value, info[1], "bare call statement")
            elif isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                info = async_calls.get(id(node.value))
                if not info or id(node.value) in consumed:
                    continue
                names = [
                    t.id for t in node.targets if isinstance(t, ast.Name)
                ]
                if names and all(loads.get(n, 0) == 0 for n in names):
                    emit(
                        node.value, info[1],
                        f"assigned to {', '.join(names)!s} which is never "
                        "read",
                    )
    return findings


def run(model: ProjectModel, graph: CallGraph) -> List[Finding]:
    findings = _check_blocking(model, graph) + _check_never_awaited(
        model, graph
    )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
