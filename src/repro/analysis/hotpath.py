"""Hot-path allocation lint (REP104).

Functions marked ``# simlint: hotpath`` are the kernel v3 per-event fast
paths (now-queue drains, free-list grant/release, calendar push/pop).
The bench gate catches regressions *after* they cost a run; this pass
catches them structurally: every project function reachable from a
hotpath root through the call graph is scanned for allocation-bearing
constructs, and each finding reports the call chain that makes the
function hot.

Exemptions, matching how the kernel is actually written:

* constructs inside a ``raise`` statement — error paths are cold, and
  the kernel's f-string diagnostics live there by design;
* tuple literals — the ``(time, priority, eid, event)`` entry tuple *is*
  the scheduler contract, and tuples are the cheapest container CPython
  has;
* traversal stops at functions marked ``# simlint: coldpath`` (e.g.
  ``CalendarQueue._resize``: reachable from ``push`` but amortized and
  deliberately allocation-heavy).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from .callgraph import CallGraph
from .modules import FunctionInfo, ProjectModel
from .simlint import Finding

__all__ = ["run"]

#: Zero/low-arg factory calls that allocate a fresh container.
_ALLOC_FACTORIES = {
    "dict", "list", "set", "frozenset", "bytearray", "deque",
    "defaultdict", "OrderedDict", "Counter",
}


def _chain_trace(
    model: ProjectModel, path: Tuple[str, ...]
) -> Tuple[str, ...]:
    out: List[str] = []
    for i, qual in enumerate(path):
        fn = model.functions[qual]
        note = (
            "marked '# simlint: hotpath'" if i == 0
            else f"called by {_shorten(path[i - 1])}"
        )
        out.append(f"{fn.module.path}:{fn.lineno}: {qual} ({note})")
    return tuple(out)


def _shorten(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qualname


class _AllocScanner:
    """Find allocation-bearing constructs in one function body."""

    def __init__(self, fn: FunctionInfo) -> None:
        self.fn = fn
        self.hits: List[Tuple[int, int, str]] = []  # (line, col, what)

    def scan(self) -> List[Tuple[int, int, str]]:
        for stmt in self.fn.node.body:  # type: ignore[attr-defined]
            self._visit(stmt, in_raise=False)
        return self.hits

    def _visit(self, node: ast.AST, in_raise: bool) -> None:
        if isinstance(node, ast.Raise):
            in_raise = True
        what = None if in_raise else self._classify(node)
        if what is not None:
            self.hits.append(
                (node.lineno, node.col_offset + 1, what)  # type: ignore[attr-defined]
            )
            if isinstance(
                node, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                return  # the closure itself is the allocation; its body
                # executes elsewhere (flagged if *it* is reachable)
        for child in ast.iter_child_nodes(node):
            self._visit(child, in_raise)

    @staticmethod
    def _classify(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.ListComp):
            return "list comprehension"
        if isinstance(node, ast.SetComp):
            return "set comprehension"
        if isinstance(node, ast.DictComp):
            return "dict comprehension"
        if isinstance(node, ast.GeneratorExp):
            return "generator expression"
        if isinstance(node, ast.List):
            return "list literal"
        if isinstance(node, ast.Set):
            return "set literal"
        if isinstance(node, ast.Dict):
            return "dict literal"
        if isinstance(node, ast.Lambda):
            return "lambda"
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return f"nested def {node.name!r}"
        if isinstance(node, ast.JoinedStr):
            return "f-string"
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in _ALLOC_FACTORIES:
            return f"{node.func.id}() call"
        return None


def run(model: ProjectModel, graph: CallGraph) -> List[Finding]:
    roots = [q for q, fn in model.functions.items() if fn.hotpath]
    if not roots:
        return []
    cold = {q for q, fn in model.functions.items() if fn.coldpath}
    reach: Dict[str, Tuple[str, ...]] = graph.reachable_from(
        roots, stop=cold
    )
    findings: List[Finding] = []
    seen: Set[Tuple[str, int, int]] = set()
    for qual, path in sorted(reach.items()):
        fn = model.functions[qual]
        if fn.coldpath:
            continue
        mod = fn.module
        for line, col, what in _AllocScanner(fn).scan():
            if mod.is_suppressed(line, "REP104"):
                continue
            key = (mod.path, line, col)
            if key in seen:
                continue
            seen.add(key)
            root = path[0]
            via = (
                "" if len(path) == 1
                else f" (reachable from hotpath {_shorten(root)}, "
                f"{len(path) - 1} call{'s' if len(path) > 2 else ''} deep)"
            )
            findings.append(
                Finding(
                    path=mod.path,
                    line=line,
                    col=col,
                    rule="REP104",
                    message=(
                        f"{what} in hot-path function "
                        f"{_shorten(qual)}{via}"
                    ),
                    trace=_chain_trace(model, path)
                    + (f"{mod.path}:{line}: allocation: {what}",),
                )
            )
    findings.sort(key=lambda f: (f.path, f.line, f.col))
    return findings
